"""Fig. 8: neighbor grouping closes the balanced-vs-actual gap."""

from repro.bench import fig8_ng_balance, format_table, write_result
from repro.bench.paper_expected import FIG8_NG_REGRESSION
from repro.graph import DATASET_NAMES


def test_fig8_neighbor_grouping_balance(benchmark, out):
    results = benchmark.pedantic(fig8_ng_balance, rounds=1, iterations=1)
    rows = [
        [n, results[n]["base_balanced"], results[n]["base_actual"],
         results[n]["ng_balanced"], results[n]["ng_actual"]]
        for n in DATASET_NAMES
    ]
    text = format_table(
        "Fig. 8 — balanced vs actual kernel time, base vs NG "
        "(relative to base actual)",
        ["dataset", "base_bal", "base_act", "ng_bal", "ng_act"],
        rows,
    )
    out(write_result("fig8_ng_balance", text))

    for n in DATASET_NAMES:
        r = results[n]
        # Balanced time is a lower bound on actual in both layouts.
        assert r["base_balanced"] <= r["base_actual"] + 1e-9, n
        assert r["ng_balanced"] <= r["ng_actual"] + 1e-9, n
        # NG adds some balanced-time overhead (extra partial writes) —
        # the paper's "light-colored portions higher" observation.
        assert r["ng_balanced"] >= 0.95 * r["base_balanced"], n
    # The balanced/actual gap shrinks under NG on the skewed datasets.
    for n in ("arxiv", "ppa", "reddit", "products"):
        r = results[n]
        base_gap = r["base_actual"] - r["base_balanced"]
        ng_gap = r["ng_actual"] - r["ng_balanced"]
        assert ng_gap < base_gap, n
        # And actual time improves outright.
        assert r["ng_actual"] < r["base_actual"], n
    # protein is the paper's regression case: low degree variance means
    # NG's overhead outweighs its benefit (paper: 8% slower).
    reg = results[FIG8_NG_REGRESSION]
    assert reg["ng_actual"] > 0.97 * reg["base_actual"]
