#!/usr/bin/env python
"""Perf-trajectory harness: time the simulator itself, not the simulated GPU.

Runs a representative workload (the Fig. 7 forward-pass grid on the two
largest datasets plus a Fig. 12 tuned-throughput sweep) twice, in
separate subprocesses:

* ``reference`` — fast paths and memoization disabled
  (``REPRO_FASTPATH=0 REPRO_KERNEL_MEMO=0``): the pre-optimization
  implementations, kept callable exactly so this harness always has a
  live baseline;
* ``fast`` — both enabled (the defaults).

Both modes must produce *identical simulated results* (a content hash of
every reported number is compared), so the speedup is attributable to
the performance layer alone.  Each invocation appends one record to
``BENCH_speed.json`` at the repo root — the performance trajectory of
the codebase over time.

Usage::

    PYTHONPATH=src python benchmarks/bench_speed.py [--quick]

``--quick`` shrinks the workload (small datasets, short sweep) for CI
smoke runs; the full workload is the one the speedup targets quote.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import subprocess
import sys
import time

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
TRAJECTORY = os.path.join(ROOT, "BENCH_speed.json")

FULL = {
    "fig7_models": ["gcn", "gat", "sage_lstm"],
    "fig7_datasets": ["reddit", "products"],
    "fig12_datasets": ["reddit"],
    "fig12_feats": [32, 64, 96, 128, 192, 256],
}
QUICK = {
    "fig7_models": ["gcn", "gat"],
    "fig7_datasets": ["arxiv", "ddi"],
    "fig12_datasets": ["arxiv"],
    "fig12_feats": [32, 64],
}


# ----------------------------------------------------------------------
# Worker (runs once per mode, in a fresh process)
# ----------------------------------------------------------------------

def _result_hash(obj) -> str:
    """Stable content hash of the simulated numbers (not wall-clock)."""
    return hashlib.sha256(
        json.dumps(obj, sort_keys=True).encode()
    ).hexdigest()[:16]


def run_workload(spec) -> dict:
    from repro.bench import fig7_overall, fig4_throughput_sweep, sweep_config
    from repro.graph import load_dataset
    from repro.perf import PERF

    # Dataset construction is not what this harness measures.
    for name in set(spec["fig7_datasets"]) | set(spec["fig12_datasets"]):
        load_dataset(name)

    t0 = time.perf_counter()
    grid = fig7_overall(
        models=tuple(spec["fig7_models"]), datasets=spec["fig7_datasets"]
    )
    sweep = fig4_throughput_sweep(
        spec["fig12_datasets"],
        spec["fig12_feats"],
        sweep_config(),
        tuned=True,
    )
    seconds = time.perf_counter() - t0

    results = {
        "fig7": {
            m: {
                f: {d: cell.time_ms for d, cell in row.items()}
                for f, row in frameworks.items()
            }
            for m, frameworks in grid.items()
        },
        "fig12": {
            d: {str(f): round(v, 9) for f, v in series.items()}
            for d, series in sweep.items()
        },
    }
    counts = PERF.counts
    hits = counts.get("kernel_memo_hit", 0)
    misses = counts.get("kernel_memo_miss", 0)
    secs = PERF.seconds
    return {
        "seconds": round(seconds, 3),
        "result_hash": _result_hash(results),
        "perf_seconds": {k: round(v, 3) for k, v in secs.items()},
        # Compile-once/run-many split: time spent in the staged plan
        # pipeline vs. executing compiled plans through the simulator.
        "plan_seconds": round(secs.get("plan_compile", 0.0), 3),
        "run_seconds": round(secs.get("plan_execute", 0.0), 3),
        "plan_cache_hits": counts.get("plan_cache_hit", 0)
        + counts.get("plan_cache_disk_hit", 0),
        "plan_cache_misses": counts.get("plan_cache_miss", 0),
        "kernel_memo_hit_rate": round(hits / (hits + misses), 4)
        if hits + misses
        else 0.0,
        "stream_cache_hits": counts.get("stream_cache_hit", 0),
    }


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------

def _run_mode(mode: str, quick: bool) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in [os.path.join(ROOT, "src"), env.get("PYTHONPATH")] if p
    )
    flag = "0" if mode == "reference" else "1"
    env["REPRO_FASTPATH"] = flag
    env["REPRO_KERNEL_MEMO"] = flag
    args = [sys.executable, os.path.abspath(__file__), "--worker", mode]
    if quick:
        args.append("--quick")
    proc = subprocess.run(
        args, env=env, capture_output=True, text=True, check=False
    )
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout + proc.stderr)
        raise SystemExit(f"{mode} worker failed ({proc.returncode})")
    return json.loads(proc.stdout.splitlines()[-1])


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--quick", action="store_true",
                    help="small workload for CI smoke runs")
    ap.add_argument("--worker", choices=["reference", "fast"],
                    help=argparse.SUPPRESS)
    ap.add_argument("--output", default=TRAJECTORY,
                    help="trajectory JSON file to append to")
    ns = ap.parse_args()

    if ns.worker:
        spec = QUICK if ns.quick else FULL
        print(json.dumps(run_workload(spec)))
        return

    quick = ns.quick
    print(f"workload: {'quick' if quick else 'full'}")
    fast = _run_mode("fast", quick)
    print(f"fast:      {fast['seconds']:8.2f}s  "
          f"memo hit rate {fast['kernel_memo_hit_rate']:.2f}  "
          f"(plan {fast['plan_seconds']:.2f}s / "
          f"run {fast['run_seconds']:.2f}s)")
    ref = _run_mode("reference", quick)
    print(f"reference: {ref['seconds']:8.2f}s")

    if ref["result_hash"] != fast["result_hash"]:
        raise SystemExit(
            "FAIL: fast-path results differ from reference "
            f"({fast['result_hash']} vs {ref['result_hash']})"
        )
    speedup = ref["seconds"] / max(fast["seconds"], 1e-9)
    print(f"speedup:   {speedup:8.2f}x  (results identical: "
          f"{ref['result_hash']})")

    record = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "workload": "quick" if quick else "full",
        "reference_seconds": ref["seconds"],
        "fast_seconds": fast["seconds"],
        "speedup": round(speedup, 2),
        "result_hash": ref["result_hash"],
        "kernel_memo_hit_rate": fast["kernel_memo_hit_rate"],
        "stream_cache_hits": fast["stream_cache_hits"],
        "plan_seconds": fast["plan_seconds"],
        "run_seconds": fast["run_seconds"],
        "plan_cache_hits": fast["plan_cache_hits"],
        "plan_cache_misses": fast["plan_cache_misses"],
        "fast_perf_seconds": fast["perf_seconds"],
    }
    trajectory = []
    if os.path.exists(ns.output):
        try:
            with open(ns.output) as fh:
                trajectory = json.load(fh)
        except (ValueError, OSError):
            trajectory = []
    trajectory.append(record)
    with open(ns.output, "w") as fh:
        json.dump(trajectory, fh, indent=2)
        fh.write("\n")
    print(f"recorded -> {os.path.relpath(ns.output, ROOT)}")


if __name__ == "__main__":
    main()
