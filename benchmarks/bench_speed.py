#!/usr/bin/env python
"""Perf-trajectory harness: time the simulator itself, not the simulated GPU.

Runs a representative workload (the Fig. 7 forward-pass grid on the two
largest datasets plus a Fig. 12 tuned-throughput sweep) twice, in
separate subprocesses:

* ``reference`` — fast paths and memoization disabled
  (``REPRO_FASTPATH=0 REPRO_KERNEL_MEMO=0``): the pre-optimization
  implementations, kept callable exactly so this harness always has a
  live baseline;
* ``fast`` — both enabled (the defaults).

Both modes must produce *identical simulated results* (a content hash of
every reported number is compared), so the speedup is attributable to
the performance layer alone.  Each invocation appends one record to
``BENCH_speed.json`` at the repo root — the performance trajectory of
the codebase over time.

Usage::

    PYTHONPATH=src python benchmarks/bench_speed.py [--quick] [--check]
        [--workers N]

``--quick`` shrinks the workload (small datasets, short sweep) for CI
smoke runs; the full workload is the one the speedup targets quote.
Quick timings are the median of three runs after one warmup (wall-clock
on shared CI runners is noisy; the median of a warmed process tree is
not).  ``--check`` is the CI perf gate: it times the quick workload in both
modes and fails only when *two* signals regress more than
``--tolerance`` (default 20%) against the median prior quick record with
the same result hash — the absolute fast-mode seconds *and* the
fast/reference speedup ratio.  The ratio is measured within one
invocation, so machine-wide slow phases (which swing absolute
wall-clock by tens of percent) cancel out of it; requiring both
signals makes the gate insensitive to shared-runner noise while still
tripping on genuine fast-path regressions.  A changed workload or
result hash never gates against a stale baseline.
``--workers N`` forwards to ``REPRO_WORKERS`` (the parallel stream
analyzer) and is recorded alongside the cache-model tier so trajectory
records are attributable to their configuration.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import statistics
import subprocess
import sys
import time

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
TRAJECTORY = os.path.join(ROOT, "BENCH_speed.json")

FULL = {
    "fig7_models": ["gcn", "gat", "sage_lstm"],
    "fig7_datasets": ["reddit", "products"],
    "fig12_datasets": ["reddit"],
    "fig12_feats": [32, 64, 96, 128, 192, 256],
}
QUICK = {
    "fig7_models": ["gcn", "gat"],
    "fig7_datasets": ["arxiv", "ddi"],
    "fig12_datasets": ["arxiv"],
    "fig12_feats": [32, 64],
}


# ----------------------------------------------------------------------
# Worker (runs once per mode, in a fresh process)
# ----------------------------------------------------------------------

def _result_hash(obj) -> str:
    """Stable content hash of the simulated numbers (not wall-clock)."""
    return hashlib.sha256(
        json.dumps(obj, sort_keys=True).encode()
    ).hexdigest()[:16]


def run_workload(spec) -> dict:
    from repro.bench import fig7_overall, fig4_throughput_sweep, sweep_config
    from repro.graph import load_dataset
    from repro.perf import PERF, cache_model_mode, fastpath_enabled, workers

    # Dataset construction is not what this harness measures.
    for name in set(spec["fig7_datasets"]) | set(spec["fig12_datasets"]):
        load_dataset(name)

    def one_pass():
        grid = fig7_overall(
            models=tuple(spec["fig7_models"]),
            datasets=spec["fig7_datasets"],
        )
        sweep = fig4_throughput_sweep(
            spec["fig12_datasets"],
            spec["fig12_feats"],
            sweep_config(),
            tuned=True,
        )
        return grid, sweep

    t0 = time.perf_counter()
    grid, sweep = one_pass()
    seconds = time.perf_counter() - t0
    # --warm-plans: the first pass above populated the in-process plan
    # cache; a second identical pass measures the warm path (plan-cache
    # hits + kernel memo hits) — the compile-once/run-many steady state.
    warm_seconds = None
    if os.environ.get("REPRO_BENCH_WARM_PLANS") == "1":
        t1 = time.perf_counter()
        grid, sweep = one_pass()
        warm_seconds = time.perf_counter() - t1
    # Test hook for the --check gate: scale the measured wall-clock as
    # if the fast path had slowed down (the simulated numbers, and hence
    # the result hash, are untouched).  Reference-mode timings stay
    # honest so the gate's fast/reference ratio signal drops too.
    inject = float(os.environ.get("REPRO_BENCH_INJECT_SLOWDOWN", "0"))
    if inject and fastpath_enabled():
        seconds *= 1.0 + inject

    results = {
        "fig7": {
            m: {
                f: {d: cell.time_ms for d, cell in row.items()}
                for f, row in frameworks.items()
            }
            for m, frameworks in grid.items()
        },
        "fig12": {
            d: {str(f): round(v, 9) for f, v in series.items()}
            for d, series in sweep.items()
        },
    }
    counts = PERF.counts
    hits = counts.get("kernel_memo_hit", 0)
    misses = counts.get("kernel_memo_miss", 0)
    secs = PERF.seconds
    pool_wall = secs.get("pool_wall", 0.0)
    out = {
        "seconds": round(seconds, 3),
        "result_hash": _result_hash(results),
        "workers": workers(),
        "cache_model_mode": cache_model_mode(),
        "pool_utilization": (
            round(secs.get("pool_busy", 0.0)
                  / (pool_wall * workers()), 4)
            if pool_wall > 0 and workers() > 1 else 0.0
        ),
        "perf_seconds": {k: round(v, 3) for k, v in secs.items()},
        # Compile-once/run-many split: time spent in the staged plan
        # pipeline vs. executing compiled plans through the simulator.
        "plan_seconds": round(secs.get("plan_compile", 0.0), 3),
        "run_seconds": round(secs.get("plan_execute", 0.0), 3),
        "plan_cache_hits": counts.get("plan_cache_hit", 0)
        + counts.get("plan_cache_disk_hit", 0),
        "plan_cache_misses": counts.get("plan_cache_miss", 0),
        "kernel_memo_hit_rate": round(hits / (hits + misses), 4)
        if hits + misses
        else 0.0,
        "stream_cache_hits": counts.get("stream_cache_hit", 0),
    }
    if warm_seconds is not None:
        out["warm_seconds"] = round(warm_seconds, 3)
    return out


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------

def _run_mode(
    mode: str, quick: bool, workers: int = 0, repeats: int = 1,
    warm_plans: bool = False,
) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in [os.path.join(ROOT, "src"), env.get("PYTHONPATH")] if p
    )
    flag = "0" if mode == "reference" else "1"
    env["REPRO_FASTPATH"] = flag
    env["REPRO_KERNEL_MEMO"] = flag
    if workers:
        env["REPRO_WORKERS"] = str(workers)
    if warm_plans:
        env["REPRO_BENCH_WARM_PLANS"] = "1"
    # Pin glibc's mmap/trim thresholds so large transient arrays are not
    # returned to the kernel between workload stages; page faults on
    # re-touch otherwise add multi-percent run-to-run noise.  Applied to
    # both modes, so the speedup ratio is unaffected.
    env.setdefault("MALLOC_MMAP_THRESHOLD_", "1073741824")
    env.setdefault("MALLOC_TRIM_THRESHOLD_", "1073741824")
    args = [sys.executable, os.path.abspath(__file__), "--worker", mode]
    if quick:
        args.append("--quick")

    def one_run() -> dict:
        proc = subprocess.run(
            args, env=env, capture_output=True, text=True, check=False
        )
        if proc.returncode != 0:
            sys.stderr.write(proc.stdout + proc.stderr)
            raise SystemExit(f"{mode} worker failed ({proc.returncode})")
        return json.loads(proc.stdout.splitlines()[-1])

    if repeats <= 1:
        return one_run()
    one_run()  # warmup: page caches, imports, native build
    runs = [one_run() for _ in range(repeats)]
    hashes = {r["result_hash"] for r in runs}
    if len(hashes) != 1:
        raise SystemExit(
            f"FAIL: {mode} result hash unstable across repeats: {hashes}"
        )
    runs.sort(key=lambda r: r["seconds"])
    median = runs[len(runs) // 2]
    median["seconds_runs"] = [r["seconds"] for r in runs]
    return median


def _comparable(trajectory: list, record: dict, field: str) -> list:
    """Prior records gate-comparable to ``record`` carrying ``field``.

    Only records with the same workload *and* result hash compare (a
    changed workload or simulator output resets the trajectory), and —
    since timings are configuration-specific — the same worker count
    and cache-model tier (default-filled, so records written before
    those fields existed keep gating serial/exact runs).
    """
    return [
        r for r in trajectory
        if r.get("workload") == record.get("workload")
        and r.get("result_hash") == record.get("result_hash")
        and r.get("workers", 1) == record.get("workers", 1)
        and r.get("cache_model_mode", "exact")
        == record.get("cache_model_mode", "exact")
        and r.get(field)
    ]


def check_regression(
    trajectory: list, record: dict, tolerance: float = 0.20
) -> str | None:
    """Absolute-time signal: compare against the median prior record.

    The median, not the best: the best record is by definition the
    luckiest machine phase ever seen, and gating against a running
    minimum ratchets ever tighter until honest runs fail.  Returns an
    error message on regression beyond ``tolerance``, ``None`` when
    this signal passes.
    """
    baselines = _comparable(trajectory, record, "fast_seconds")
    if not baselines:
        return None
    base = statistics.median(r["fast_seconds"] for r in baselines)
    current = record["fast_seconds"]
    if current > base * (1.0 + tolerance):
        return (
            f"perf gate: fast {record.get('workload')} workload took "
            f"{current:.2f}s, more than {1 + tolerance:.2f}x the median "
            f"prior record ({base:.2f}s)"
        )
    return None


def check_speedup_regression(
    trajectory: list, record: dict, tolerance: float = 0.20
) -> str | None:
    """Ratio signal: fast/reference speedup vs the median prior record.

    Both modes run back to back in one invocation, so a machine-wide
    slow phase largely cancels out of the ratio — it only drops when
    the fast path itself regressed relative to the references.
    """
    baselines = _comparable(trajectory, record, "speedup")
    if not baselines or not record.get("speedup"):
        return None
    base = statistics.median(r["speedup"] for r in baselines)
    current = record["speedup"]
    if current * (1.0 + tolerance) < base:
        return (
            f"perf gate: {record.get('workload')} speedup {current:.2f}x "
            f"fell more than {1 + tolerance:.2f}x below the median "
            f"prior record ({base:.2f}x)"
        )
    return None


def gate_verdict(
    trajectory: list, record: dict, tolerance: float = 0.20
) -> str | None:
    """Two-signal CI gate: absolute seconds flag, the ratio confirms.

    Wall-clock on shared runners swings tens of percent between machine
    phases with no code change, so an absolute-time regression alone is
    ambiguous.  The gate fails only when the phase-immune speedup ratio
    regressed too; if no prior record carries a comparable ratio, the
    absolute signal decides alone.
    """
    time_error = check_regression(trajectory, record, tolerance)
    if time_error is None:
        return None
    if _comparable(trajectory, record, "speedup") and record.get("speedup"):
        ratio_error = check_speedup_regression(trajectory, record, tolerance)
        if ratio_error is None:
            return None  # machine phase, not a code regression
        return f"{time_error}; {ratio_error}"
    return time_error


def _load_trajectory(path: str) -> list:
    if not os.path.exists(path):
        return []
    try:
        with open(path) as fh:
            return json.load(fh)
    except (ValueError, OSError):
        return []


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--quick", action="store_true",
                    help="small workload for CI smoke runs")
    ap.add_argument("--check", action="store_true",
                    help="CI perf gate: time the quick workload in both "
                         "modes and fail when BOTH the fast-mode "
                         "seconds and the fast/reference speedup "
                         "regress beyond --tolerance vs the best prior "
                         "quick record (implies --quick; does not "
                         "append a record)")
    ap.add_argument("--tolerance", type=float, default=0.20,
                    help="allowed fractional regression for --check "
                         "(default 0.20)")
    ap.add_argument("--workers", type=int, default=0,
                    help="REPRO_WORKERS for the measured workers "
                         "(0 = inherit environment)")
    ap.add_argument("--warm-plans", action="store_true",
                    dest="warm_plans",
                    help="after the measured cold pass, run the "
                         "workload again in-process against the "
                         "populated plan cache and record the warm-path "
                         "time as a separate field")
    ap.add_argument("--worker", choices=["reference", "fast"],
                    help=argparse.SUPPRESS)
    ap.add_argument("--output", default=TRAJECTORY,
                    help="trajectory JSON file to append to")
    ns = ap.parse_args()

    if ns.worker:
        spec = QUICK if ns.quick else FULL
        print(json.dumps(run_workload(spec)))
        return

    quick = ns.quick or ns.check
    # Median-of-3 for the quick workload (noise floor on shared
    # runners); REPRO_BENCH_REPEATS overrides for tests and local use.
    repeats = int(os.environ.get(
        "REPRO_BENCH_REPEATS", "3" if quick else "1"
    ))
    print(f"workload: {'quick' if quick else 'full'}")
    fast = _run_mode("fast", quick, workers=ns.workers, repeats=repeats,
                     warm_plans=ns.warm_plans)
    pool_note = (
        f"  pool util {fast['pool_utilization']:.2f}"
        if fast.get("pool_utilization") else ""
    )
    print(f"fast:      {fast['seconds']:8.2f}s  "
          f"memo hit rate {fast['kernel_memo_hit_rate']:.2f}  "
          f"(plan {fast['plan_seconds']:.2f}s / "
          f"run {fast['run_seconds']:.2f}s){pool_note}")
    if fast.get("warm_seconds") is not None:
        print(f"warm:      {fast['warm_seconds']:8.2f}s  "
              f"(plan cache + kernel memo populated)")

    ref = _run_mode("reference", quick, workers=ns.workers,
                    repeats=repeats)
    print(f"reference: {ref['seconds']:8.2f}s")

    if ref["result_hash"] != fast["result_hash"]:
        raise SystemExit(
            "FAIL: fast-path results differ from reference "
            f"({fast['result_hash']} vs {ref['result_hash']})"
        )
    speedup = ref["seconds"] / max(fast["seconds"], 1e-9)

    if ns.check:
        record = {
            "workload": "quick",
            "fast_seconds": fast["seconds"],
            "speedup": round(speedup, 2),
            "result_hash": fast["result_hash"],
            "workers": fast.get("workers", 1),
            "cache_model_mode": fast.get("cache_model_mode", "exact"),
        }
        error = gate_verdict(
            _load_trajectory(ns.output), record, ns.tolerance
        )
        print(f"measured:  {fast['seconds']:.3f}s  "
              f"hash {fast['result_hash']}")
        print(f"speedup:   {speedup:8.2f}x")
        if error:
            raise SystemExit(f"FAIL: {error}")
        print(f"perf gate: pass (tolerance {ns.tolerance:.0%})")
        return
    print(f"speedup:   {speedup:8.2f}x  (results identical: "
          f"{ref['result_hash']})")

    record = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "workload": "quick" if quick else "full",
        "reference_seconds": ref["seconds"],
        "fast_seconds": fast["seconds"],
        "speedup": round(speedup, 2),
        "result_hash": ref["result_hash"],
        "workers": fast.get("workers", 1),
        "cache_model_mode": fast.get("cache_model_mode", "exact"),
        "kernel_memo_hit_rate": fast["kernel_memo_hit_rate"],
        "stream_cache_hits": fast["stream_cache_hits"],
        "plan_seconds": fast["plan_seconds"],
        "run_seconds": fast["run_seconds"],
        "plan_cache_hits": fast["plan_cache_hits"],
        "plan_cache_misses": fast["plan_cache_misses"],
        "fast_perf_seconds": fast["perf_seconds"],
    }
    if "seconds_runs" in fast:
        record["fast_seconds_runs"] = fast["seconds_runs"]
    if fast.get("warm_seconds") is not None:
        record["warm_seconds"] = fast["warm_seconds"]
    if fast.get("pool_utilization"):
        record["pool_utilization"] = fast["pool_utilization"]
    trajectory = _load_trajectory(ns.output)
    trajectory.append(record)
    with open(ns.output, "w") as fh:
        json.dump(trajectory, fh, indent=2)
        fh.write("\n")
    print(f"recorded -> {os.path.relpath(ns.output, ROOT)}")


if __name__ == "__main__":
    main()
