"""Extension: full training-epoch (forward + backward) comparison.

The paper times forward passes; training doubles the graph-operation
work (the backward aggregation runs over the reversed graph).  Because
the adjoint of aggregation is aggregation, every optimization carries
over — this benchmark confirms the end-to-end epoch speedup tracks the
forward speedup on every dataset.
"""

from repro.bench import bench_config, cached_runtime, format_table, write_result
from repro.frameworks import DGLLike, gcn_epoch_report
from repro.graph import DATASET_NAMES, load_dataset
from repro.models import GCNConfig


def test_gcn_training_epoch(benchmark, out):
    config = bench_config()
    model = GCNConfig()
    dgl = DGLLike()
    ours = cached_runtime()

    def run():
        rows = {}
        for name in DATASET_NAMES:
            g = load_dataset(name)
            df, db = gcn_epoch_report(dgl, g, model, config)
            of, ob = gcn_epoch_report(ours, g, model, config)
            rows[name] = {
                "dgl": (df.total_time + db.total_time) * 1e3,
                "ours": (of.total_time + ob.total_time) * 1e3,
                "fwd_ratio": df.total_time / of.total_time,
                "epoch_ratio": (
                    (df.total_time + db.total_time)
                    / (of.total_time + ob.total_time)
                ),
            }
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = [
        [n, rows[n]["dgl"], rows[n]["ours"], rows[n]["fwd_ratio"],
         rows[n]["epoch_ratio"]]
        for n in DATASET_NAMES
    ]
    text = format_table(
        "Extension — GCN training epoch (fwd+bwd) time in ms",
        ["dataset", "dgl", "ours", "fwd_spd", "epoch_spd"],
        table,
    )
    out(write_result("training_epoch", text))

    for n in DATASET_NAMES:
        r = rows[n]
        # Ours wins the full epoch on every dataset...
        assert r["epoch_ratio"] > 1.0, n
        # ...and the epoch speedup tracks the forward speedup (the
        # backward graph work benefits from the same optimizations).
        assert 0.6 * r["fwd_ratio"] < r["epoch_ratio"] < 1.7 * r[
            "fwd_ratio"
        ], n
