"""Table 6: cumulative optimization ablation on the GAT last layer."""

from repro.bench import format_table, table6_gat_ablation, write_result
from repro.bench.paper_expected import TABLE6
from repro.graph import DATASET_NAMES


def test_table6_gat_ablation(benchmark, out):
    results = benchmark.pedantic(
        table6_gat_ablation, rounds=1, iterations=1
    )
    rows = []
    for n in DATASET_NAMES:
        r, p = results[n], TABLE6[n]
        rows.append([
            n, r["adp"], r["adp_ng"], r["adp_ng_las"],
            p["adp"], p["adp_ng"], p["adp_ng_las"],
        ])
    avg = {
        k: sum(results[n][k] for n in DATASET_NAMES) / len(DATASET_NAMES)
        for k in ("adp", "adp_ng", "adp_ng_las")
    }
    rows.append(["AVERAGE", avg["adp"], avg["adp_ng"], avg["adp_ng_las"],
                 1.27, 2.89, 3.52])
    text = format_table(
        "Table 6 — GAT last-layer speedup over unoptimized "
        "(ours | paper)",
        ["dataset", "Adp", "Adp+NG", "+LAS", "p_Adp", "p_+NG", "p_+LAS"],
        rows,
    )
    out(write_result("table6_ablation", text))

    for n in DATASET_NAMES:
        r = results[n]
        # Every stage speeds up over the unoptimized base ...
        assert r["adp"] > 1.0, n
        # ... and stages compound.  Per-stage regressions on the
        # low-variance datasets are allowed: the paper itself reports
        # protein regressing when LAS is added (1.96 -> 1.83); in our
        # substrate protein's regression appears at the NG stage instead
        # (see EXPERIMENTS.md).
        assert r["adp_ng"] > 0.82 * r["adp"], n
        assert r["adp_ng_las"] > 0.9 * r["adp_ng"], n
    # Average ordering matches the paper: Adp < Adp+NG < Adp+NG+LAS.
    assert avg["adp"] < avg["adp_ng"] <= avg["adp_ng_las"] + 0.05
    # The online+kernel optimizations alone already give a solid
    # average speedup (paper: 2.89x average for Adp+NG).
    assert avg["adp_ng"] > 1.5
    # arxiv shows the largest NG jump (its extreme hub; paper: 1.07 ->
    # 8.02).
    ng_jump = {
        n: results[n]["adp_ng"] / results[n]["adp"] for n in DATASET_NAMES
    }
    top2 = sorted(ng_jump, key=ng_jump.get, reverse=True)[:2]
    assert "arxiv" in top2
