"""Fig. 9: L2 hit rates under NG / LAS / NG+LAS vs the best prior."""

from repro.bench import fig9_l2_hit_rates, format_table, write_result
from repro.graph import DATASET_NAMES


def test_fig9_l2_hit_rates(benchmark, out):
    results = benchmark.pedantic(
        fig9_l2_hit_rates, rounds=1, iterations=1
    )
    rows = [
        [n, results[n]["best_prior"], results[n]["ng"],
         results[n]["las"], results[n]["ng_las"]]
        for n in DATASET_NAMES
    ]
    text = format_table(
        "Fig. 9 — L2 hit rate (%) of GCN last-layer graph op",
        ["dataset", "best_prior", "NG", "LAS", "NG+LAS"],
        rows,
    )
    out(write_result("fig9_l2_hit", text))

    # LAS alone improves the hit rate on at least six of eight datasets
    # (the paper's exact claim).
    improved = sum(
        1
        for n in DATASET_NAMES
        if results[n]["las"] > results[n]["best_prior"] - 0.5
    )
    assert improved >= 6
    # The shuffled community graphs gain strongly from LAS.
    for n in ("collab", "citation", "products"):
        assert results[n]["las"] > results[n]["best_prior"] + 5.0, n
    # Already-clustered / dense datasets cannot gain much (paper: ddi and
    # protein see a slight decrease).
    for n in ("ddi", "protein"):
        assert abs(results[n]["las"] - results[n]["best_prior"]) < 10.0, n
        assert results[n]["best_prior"] > 80.0, n
    # NG+LAS is at least as good as LAS alone on hub-heavy datasets
    # (the synergy of §4.1.2).
    for n in ("ppa", "reddit", "products"):
        assert results[n]["ng_las"] >= results[n]["las"] - 1.0, n
