"""Fig. 4: aggregation throughput vs feature length (no tuning).

The paper's point: the fixed thread mapping makes throughput swing
sharply with small feature-length changes (Observation 5).
"""

import numpy as np

from repro.bench import (
    fig4_throughput_sweep,
    format_table,
    sweep_config,
    write_result,
)

FEATS = list(range(16, 257, 16))
SUBSET = ["arxiv", "collab", "citation", "ddi", "protein", "products"]


def test_fig4_untuned_throughput(benchmark, out):
    results = benchmark.pedantic(
        lambda: fig4_throughput_sweep(
            SUBSET, FEATS, sweep_config(), tuned=False
        ),
        rounds=1, iterations=1,
    )
    rows = [
        [f] + [results[n][f] for n in SUBSET] for f in FEATS
    ]
    text = format_table(
        "Fig. 4 — untuned aggregation GFLOPS vs feature length",
        ["feat"] + SUBSET,
        rows,
    )
    out(write_result("fig4_feature_length", text))

    for n in SUBSET:
        series = np.array([results[n][f] for f in FEATS])
        # Paper shape: "throughput changes significantly even if the
        # feature length changes slightly" — adjacent feature lengths
        # swing by >15% somewhere in the sweep.
        rel_step = np.abs(np.diff(series)) / series[:-1]
        assert rel_step.max() > 0.15, n
    # Cached datasets (ddi/protein) achieve far higher throughput than
    # the miss-bound ones (Fig. 4's spread).  ddi's full working set fits
    # L2 at narrow rows (F=32); protein's community locality holds even
    # at wide rows.
    assert results["ddi"][32] > 2.0 * results["citation"][32]
    assert results["protein"][128] > 2.0 * results["citation"][128]
    assert results["ddi"][128] > 1.2 * results["citation"][128]
