#!/usr/bin/env python
"""Serving-path benchmark: replay a multi-tenant trace through PlanServer.

Replays a deterministic mixed-tenant trace (sampled-subgraph requests
across >= 3 tenants on different frameworks, see
``repro.serve.TraceSpec``) twice, in separate subprocesses:

* ``sequential`` — every request runs on its own through
  ``execute_one`` (the unbatched run path every ``run_*`` entry point
  uses): the live baseline;
* ``batched`` — the same trace through ``PlanServer`` with
  compatibility batching and the pooled cold-plan pre-simulation.

Both modes must produce *identical simulated results* — a content hash
over every request's simulated latency and kernel count is compared —
so the serving layer's throughput win is attributable to batching and
caching alone, never to changed answers.  Each invocation appends one
record (workload ``serve-quick`` / ``serve-full``) to
``BENCH_speed.json`` at the repo root, alongside the simulator's own
perf trajectory.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py [--quick] [--check]
        [--workers N]

``--quick`` shrinks the trace (200 requests) for CI smoke runs; the
full trace serves 1000 requests across 3 tenants.  ``--check`` is the
CI perf gate and reuses the two-signal rule from ``bench_speed.py``:
fail only when *both* the batched wall-clock and the
sequential/batched speedup ratio regress more than ``--tolerance``
(default 20%) against the median comparable prior record (same
workload, result hash, worker count, and cache-model tier).  The ratio
is measured within one invocation, so machine-wide slow phases cancel
out of it.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import subprocess
import sys
import time

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
TRAJECTORY = os.path.join(ROOT, "BENCH_speed.json")

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from bench_speed import _load_trajectory, gate_verdict  # noqa: E402

FULL = {
    "num_requests": 1000,
    "datasets": ["arxiv", "ddi"],
    "models": ["gcn", "gat"],
    "pool_per_dataset": 4,
    "window": 64,
    "seed": 0,
}
QUICK = {
    "num_requests": 200,
    "datasets": ["arxiv", "ddi"],
    "models": ["gcn", "gat"],
    "pool_per_dataset": 3,
    "window": 64,
    "seed": 0,
}

#: The multi-tenant axis: who asks, and which execution strategy
#: serves them.  Three tenants on three frameworks, per the trace spec.
TENANTS = (
    ("tenant-a", "dgl"),
    ("tenant-b", "ours"),
    ("tenant-c", "pyg"),
)


def _result_hash(obj) -> str:
    """Stable content hash of the simulated numbers (not wall-clock)."""
    return hashlib.sha256(
        json.dumps(obj, sort_keys=True).encode()
    ).hexdigest()[:16]


# ----------------------------------------------------------------------
# Worker (runs once per mode, in a fresh process)
# ----------------------------------------------------------------------

def _trace(spec):
    from repro.serve import TraceSpec, synthetic_trace

    ts = TraceSpec(
        num_requests=spec["num_requests"],
        datasets=tuple(spec["datasets"]),
        models=tuple(spec["models"]),
        tenants=TENANTS,
        pool_per_dataset=spec["pool_per_dataset"],
        seed=spec["seed"],
    )
    return ts, synthetic_trace(ts)


def run_workload(spec, mode: str) -> dict:
    from repro.bench import bench_config
    from repro.frameworks import all_frameworks
    from repro.perf import PERF, cache_model_mode, workers
    from repro.serve import PlanServer, execute_one, replay

    ts, trace = _trace(spec)
    sim = bench_config()
    frameworks = all_frameworks()

    t0 = time.perf_counter()
    if mode == "sequential":
        # The unbatched baseline: each request runs exactly the way a
        # run_* entry point would run it, one at a time.
        summaries = []
        for req in trace:
            res = execute_one(
                frameworks[req.framework_name()], req.model, req.graph,
                sim, model=req.model_config, compute=req.compute,
                feat=req.feat, seed=req.seed,
            )
            summaries.append({
                "request_id": req.request_id,
                "time_ms": res.time_ms,
                "num_kernels": res.report.num_kernels,
            })
        stats = {}
    else:
        server = PlanServer(frameworks=frameworks, sim=sim)
        rows = replay(server, trace, window=spec["window"])
        summaries = [
            {
                "request_id": r["request_id"],
                "time_ms": r["time_ms"],
                "num_kernels": r["num_kernels"],
            }
            for r in rows
        ]
        stats = server.stats()
    seconds = time.perf_counter() - t0

    # Test hook for the --check gate (mirrors bench_speed.py): scale
    # the batched wall-clock as if the serving layer had slowed down.
    # The simulated numbers, and hence the result hash, are untouched;
    # sequential timings stay honest so the ratio signal drops too.
    inject = float(os.environ.get("REPRO_BENCH_INJECT_SLOWDOWN", "0"))
    if inject and mode == "batched":
        seconds *= 1.0 + inject

    out = {
        "seconds": round(seconds, 3),
        "requests": len(summaries),
        "rps": round(len(summaries) / max(seconds, 1e-9), 2),
        "result_hash": _result_hash(summaries),
        "workers": workers(),
        "cache_model_mode": cache_model_mode(),
        "plan_seconds": round(PERF.seconds.get("plan_compile", 0.0), 3),
        "run_seconds": round(PERF.seconds.get("plan_execute", 0.0), 3),
    }
    if stats:
        lat = stats["latency"]
        out.update(
            p50_ms=round(lat["p50"] * 1e3, 3),
            p95_ms=round(lat["p95"] * 1e3, 3),
            p99_ms=round(lat["p99"] * 1e3, 3),
            tenants=len(stats["tenants"]),
            batches=stats["batches"],
            max_batch=stats["max_batch"],
            batch_dedup_rate=stats["batch_dedup_rate"],
            plan_cache_hit_rate=stats["plan_cache_hit_rate"],
            plan_cache=stats["plan_cache"],
        )
    return out


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------

def _run_mode(
    mode: str, quick: bool, workers: int = 0, repeats: int = 1
) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in [os.path.join(ROOT, "src"), env.get("PYTHONPATH")] if p
    )
    if workers:
        env["REPRO_WORKERS"] = str(workers)
    env.setdefault("MALLOC_MMAP_THRESHOLD_", "1073741824")
    env.setdefault("MALLOC_TRIM_THRESHOLD_", "1073741824")
    args = [sys.executable, os.path.abspath(__file__), "--worker", mode]
    if quick:
        args.append("--quick")

    def one_run() -> dict:
        proc = subprocess.run(
            args, env=env, capture_output=True, text=True, check=False
        )
        if proc.returncode != 0:
            sys.stderr.write(proc.stdout + proc.stderr)
            raise SystemExit(f"{mode} worker failed ({proc.returncode})")
        return json.loads(proc.stdout.splitlines()[-1])

    if repeats <= 1:
        return one_run()
    one_run()  # warmup: page caches, imports, dataset construction
    runs = [one_run() for _ in range(repeats)]
    hashes = {r["result_hash"] for r in runs}
    if len(hashes) != 1:
        raise SystemExit(
            f"FAIL: {mode} result hash unstable across repeats: {hashes}"
        )
    runs.sort(key=lambda r: r["seconds"])
    median = runs[len(runs) // 2]
    median["seconds_runs"] = [r["seconds"] for r in runs]
    return median


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--quick", action="store_true",
                    help="small trace (200 requests) for CI smoke runs")
    ap.add_argument("--check", action="store_true",
                    help="CI perf gate: replay the quick trace in both "
                         "modes and fail when BOTH the batched seconds "
                         "and the sequential/batched speedup regress "
                         "beyond --tolerance vs the median comparable "
                         "prior record (implies --quick; does not "
                         "append a record)")
    ap.add_argument("--tolerance", type=float, default=0.20,
                    help="allowed fractional regression for --check "
                         "(default 0.20)")
    ap.add_argument("--workers", type=int, default=0,
                    help="REPRO_WORKERS for both modes "
                         "(0 = inherit environment)")
    ap.add_argument("--worker", choices=["sequential", "batched"],
                    help=argparse.SUPPRESS)
    ap.add_argument("--output", default=TRAJECTORY,
                    help="trajectory JSON file to append to")
    ns = ap.parse_args()

    if ns.worker:
        spec = QUICK if ns.quick else FULL
        print(json.dumps(run_workload(spec, ns.worker)))
        return

    quick = ns.quick or ns.check
    workload = "serve-quick" if quick else "serve-full"
    repeats = int(os.environ.get(
        "REPRO_BENCH_REPEATS", "3" if quick else "1"
    ))
    print(f"workload: {workload}")
    batched = _run_mode("batched", quick, workers=ns.workers,
                        repeats=repeats)
    print(f"batched:    {batched['seconds']:8.2f}s  "
          f"{batched['rps']:7.1f} req/s  "
          f"p50 {batched['p50_ms']:.1f}ms  p95 {batched['p95_ms']:.1f}ms  "
          f"p99 {batched['p99_ms']:.1f}ms  "
          f"cache hit {batched['plan_cache_hit_rate']:.2f}  "
          f"fanned out {batched['batch_dedup_rate']:.2f}")

    sequential = _run_mode("sequential", quick, workers=ns.workers,
                           repeats=repeats)
    print(f"sequential: {sequential['seconds']:8.2f}s  "
          f"{sequential['rps']:7.1f} req/s")

    if sequential["result_hash"] != batched["result_hash"]:
        raise SystemExit(
            "FAIL: batched serving results differ from sequential "
            f"({batched['result_hash']} vs {sequential['result_hash']})"
        )
    speedup = sequential["seconds"] / max(batched["seconds"], 1e-9)

    if ns.check:
        record = {
            "workload": "serve-quick",
            "fast_seconds": batched["seconds"],
            "speedup": round(speedup, 2),
            "result_hash": batched["result_hash"],
            "workers": batched.get("workers", 1),
            "cache_model_mode": batched.get("cache_model_mode", "exact"),
        }
        error = gate_verdict(
            _load_trajectory(ns.output), record, ns.tolerance
        )
        print(f"measured:   {batched['seconds']:.3f}s  "
              f"hash {batched['result_hash']}")
        print(f"speedup:    {speedup:8.2f}x")
        if error:
            raise SystemExit(f"FAIL: {error}")
        print(f"perf gate: pass (tolerance {ns.tolerance:.0%})")
        return
    print(f"speedup:    {speedup:8.2f}x  (results identical: "
          f"{batched['result_hash']})")

    record = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "workload": workload,
        # bench_speed schema: fast_seconds is the optimized mode, the
        # speedup ratio is phase-immune — so the serve records gate
        # through the same two-signal rule as the simulator's own.
        "reference_seconds": sequential["seconds"],
        "fast_seconds": batched["seconds"],
        "speedup": round(speedup, 2),
        "result_hash": batched["result_hash"],
        "workers": batched.get("workers", 1),
        "cache_model_mode": batched.get("cache_model_mode", "exact"),
        "requests": batched["requests"],
        "tenants": batched["tenants"],
        "rps": batched["rps"],
        "p50_ms": batched["p50_ms"],
        "p95_ms": batched["p95_ms"],
        "p99_ms": batched["p99_ms"],
        "batches": batched["batches"],
        "max_batch": batched["max_batch"],
        "batch_dedup_rate": batched["batch_dedup_rate"],
        "plan_cache_hit_rate": batched["plan_cache_hit_rate"],
    }
    if "seconds_runs" in batched:
        record["fast_seconds_runs"] = batched["seconds_runs"]
    trajectory = _load_trajectory(ns.output)
    trajectory.append(record)
    with open(ns.output, "w") as fh:
        json.dump(trajectory, fh, indent=2)
        fh.write("\n")
    print(f"recorded -> {os.path.relpath(ns.output, ROOT)}")


if __name__ == "__main__":
    main()
