"""Design-choice ablation: degree bucketing vs neighbor grouping.

DESIGN.md §6 extension.  Both techniques attack Observation 2's load
imbalance; bucketing (DGL's pre-kernel-rewrite batching) buys uniform
blocks with padding waste and one launch per bucket, while neighbor
grouping keeps exact work at the cost of atomics.  The paper's choice
of grouping should win on the hub-heavy datasets where padding explodes.
"""

from repro.bench import bench_config, format_table, write_result
from repro.core import (
    ExecLayout,
    aggregation_kernel,
    bucketed_aggregation_kernels,
    degree_buckets,
    neighbor_grouping,
)
from repro.gpusim import simulate_kernel, simulate_kernels
from repro.graph import DATASET_NAMES, load_dataset

FEAT = 32
DISPATCH = 25e-6


def test_bucketing_vs_neighbor_grouping(benchmark, out):
    config = bench_config()

    def run():
        rows = {}
        for name in DATASET_NAMES:
            g = load_dataset(name)
            base = simulate_kernel(
                aggregation_kernel(
                    g, FEAT, config, ExecLayout.default(g)
                ),
                config,
            )
            buckets = degree_buckets(g)
            bucketed = simulate_kernels(
                bucketed_aggregation_kernels(g, FEAT, config, buckets),
                config, dispatch_overhead=DISPATCH,
            )
            ng = simulate_kernel(
                aggregation_kernel(
                    g, FEAT, config,
                    ExecLayout(grouping=neighbor_grouping(g, 32)),
                ),
                config,
            )
            base_t = base.time + DISPATCH
            ng_t = ng.time + DISPATCH
            bucket_busy = sum(k.makespan for k in bucketed.kernels)
            bucket_bal = sum(k.balanced_time for k in bucketed.kernels)
            rows[name] = {
                "base": base_t * 1e3,
                "bucketed": bucketed.total_time * 1e3,
                "ng": ng_t * 1e3,
                "waste": buckets.padding_waste(g),
                "buckets": buckets.num_buckets,
                "base_imbalance": base.makespan / max(
                    base.balanced_time, 1e-12
                ),
                "bucket_imbalance": bucket_busy / max(bucket_bal, 1e-12),
            }
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = [
        [n, rows[n]["base"], rows[n]["bucketed"], rows[n]["ng"],
         rows[n]["waste"], rows[n]["buckets"]]
        for n in DATASET_NAMES
    ]
    text = format_table(
        "Ablation — degree bucketing vs neighbor grouping "
        "(GCN last-layer aggregation, ms)",
        ["dataset", "base", "bucketed", "NG", "pad_waste", "#buckets"],
        table,
    )
    out(write_result("bucketing_ablation", text))

    for n in DATASET_NAMES:
        r = rows[n]
        # Bucketing always pays padding (>1x) and per-bucket launches.
        assert r["waste"] >= 1.0, n
    # Neighbor grouping beats bucketing on the hub-heavy datasets where
    # power-of-two padding hurts the most.
    wins = sum(
        1
        for n in ("arxiv", "ppa", "reddit", "products")
        if rows[n]["ng"] < rows[n]["bucketed"]
    )
    assert wins >= 3
    # Historical verdict, reproduced: against a modern parallel base
    # kernel, degree bucketing is strictly dominated — the padding,
    # the per-bucket launches and the small buckets' slot
    # underutilization cost more than the balance it buys (which is
    # why DGL abandoned it and why the paper's finer-grained neighbor
    # grouping is the right fix for Observation 2).
    for n in DATASET_NAMES:
        assert rows[n]["ng"] < rows[n]["bucketed"], n
        assert rows[n]["bucketed"] > 0.9 * rows[n]["base"], n
