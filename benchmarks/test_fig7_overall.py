"""Fig. 7: end-to-end forward-pass comparison on all models/datasets.

The headline result (§5.1): our runtime beats DGL/PyG/ROC everywhere,
PyG and ROC run out of memory on the large datasets, and the GAT gap is
far larger than the GCN gap.
"""

import pytest

from repro.bench import fig7_overall, format_table, write_result
from repro.bench.paper_expected import (
    FIG7_GAT_MS,
    FIG7_GCN_MS,
    FIG7_SAGE_MS,
)
from repro.graph import DATASET_NAMES

PAPER = {"gcn": FIG7_GCN_MS, "gat": FIG7_GAT_MS, "sage_lstm": FIG7_SAGE_MS}


@pytest.fixture(scope="module")
def grid():
    return fig7_overall()


def _emit(grid, model, out):
    rows = []
    for fname, row in grid[model].items():
        rows.append([fname] + [row[d].label for d in DATASET_NAMES])
        paper_row = PAPER[model].get(fname)
        if paper_row is not None:
            rows.append(
                ["(paper)"]
                + [
                    "OOM" if paper_row[d] is None else f"{paper_row[d]:g}"
                    for d in DATASET_NAMES
                ]
            )
    text = format_table(
        f"Fig. 7 ({model}) — forward time in ms (ours vs paper rows)",
        ["framework"] + DATASET_NAMES,
        rows,
        col_width=10,
    )
    out(write_result(f"fig7_{model}", text))


def _oom_set(grid, model, fname):
    return {
        d
        for d in DATASET_NAMES
        if grid[model][fname][d].supported
        and grid[model][fname][d].time_ms is None
    }


def test_fig7_gcn(benchmark, grid, out):
    benchmark.pedantic(lambda: grid, rounds=1, iterations=1)
    _emit(grid, "gcn", out)
    ours = grid["gcn"]["ours"]
    dgl = grid["gcn"]["dgl"]
    # Ours wins on every dataset; DGL never OOMs.
    for d in DATASET_NAMES:
        assert dgl[d].time_ms is not None
        assert ours[d].time_ms < dgl[d].time_ms, d
    # OOM sets match the paper exactly.
    assert _oom_set(grid, "gcn", "pyg") == {"protein", "reddit", "products"}
    assert _oom_set(grid, "gcn", "roc") == {"citation", "reddit", "products"}
    # ROC is slower than DGL wherever both run (paper Fig. 7a).
    for d in DATASET_NAMES:
        roc = grid["gcn"]["roc"][d]
        if roc.time_ms is not None:
            assert roc.time_ms > dgl[d].time_ms, d
    # PyG is the slowest running framework wherever it runs.
    for d in DATASET_NAMES:
        pyg = grid["gcn"]["pyg"][d]
        if pyg.time_ms is not None:
            assert pyg.time_ms > dgl[d].time_ms, d


def test_fig7_gat(grid, benchmark, out):
    benchmark.pedantic(lambda: grid, rounds=1, iterations=1)
    _emit(grid, "gat", out)
    ours = grid["gat"]["ours"]
    dgl = grid["gat"]["dgl"]
    for d in DATASET_NAMES:
        assert ours[d].time_ms < dgl[d].time_ms, d
    # ROC does not implement GAT.
    assert all(
        not grid["gat"]["roc"][d].supported for d in DATASET_NAMES
    )
    # PyG GAT OOMs on five datasets (paper Fig. 7b).
    assert _oom_set(grid, "gat", "pyg") == {
        "citation", "protein", "ppa", "reddit", "products",
    }
    # The GAT speedup over DGL exceeds the GCN speedup (paper: 15.5x
    # vs 1.81x) on every dataset.
    for d in DATASET_NAMES:
        gat_ratio = dgl[d].time_ms / ours[d].time_ms
        gcn_ratio = (
            grid["gcn"]["dgl"][d].time_ms / grid["gcn"]["ours"][d].time_ms
        )
        assert gat_ratio > gcn_ratio, d
    # High-degree datasets show the biggest GAT gaps (paper: protein,
    # reddit, products are the extreme cells).
    ratios = {
        d: dgl[d].time_ms / ours[d].time_ms for d in DATASET_NAMES
    }
    top3 = sorted(ratios, key=ratios.get, reverse=True)[:3]
    assert set(top3) <= {"protein", "reddit", "products", "ppa"}


def test_fig7_sage_lstm(grid, benchmark, out):
    benchmark.pedantic(lambda: grid, rounds=1, iterations=1)
    _emit(grid, "sage_lstm", out)
    ours = grid["sage_lstm"]["ours"]
    dgl = grid["sage_lstm"]["dgl"]
    # Only DGL and ours implement it (paper Fig. 7c).
    assert all(
        not grid["sage_lstm"]["pyg"][d].supported for d in DATASET_NAMES
    )
    assert all(
        not grid["sage_lstm"]["roc"][d].supported for d in DATASET_NAMES
    )
    ratios = []
    for d in DATASET_NAMES:
        assert ours[d].time_ms < dgl[d].time_ms, d
        ratios.append(dgl[d].time_ms / ours[d].time_ms)
    avg = sum(ratios) / len(ratios)
    # Paper: 1.37x average speedup — a compute-bound model leaves modest
    # headroom.  Assert the band, not the decimal.
    assert 1.15 < avg < 1.8
