"""Shared fixtures for the paper-reproduction benchmarks.

Every benchmark prints a paper-vs-measured table (visible via the
``out`` fixture even under pytest's capture) and persists it under
``benchmarks/out/``.
"""

import pytest


@pytest.fixture
def out(capsys):
    """Print-through helper: emit benchmark tables despite capture."""

    def _print(text: str) -> None:
        with capsys.disabled():
            print("\n" + text)

    return _print
