"""Table 3: dataset statistics (paper vs scaled reproduction)."""

from repro.bench import format_table, write_result
from repro.graph import DATASET_NAMES, PAPER_STATS, dataset_stats_row


def test_table3_dataset_statistics(benchmark, out):
    rows = benchmark.pedantic(
        lambda: [dataset_stats_row(n) for n in DATASET_NAMES],
        rounds=1, iterations=1,
    )
    table_rows = []
    for r in rows:
        p = PAPER_STATS[r["name"]]
        table_rows.append([
            r["name"], r["N"], r["E"], round(r["avg"], 1), r["max"],
            f"{r['density']:.1e}", p[0], p[1], p[2], f"{p[5]:.1e}",
        ])
    text = format_table(
        "Table 3 — scaled datasets (ours) vs paper (N/E/avg/density)",
        ["dataset", "N", "E", "avg", "max", "dens",
         "paperN", "paperE", "p_avg", "p_dens"],
        table_rows,
        col_width=10,
    )
    out(write_result("table3_datasets", text))

    stats = {r["name"]: r for r in rows}
    # Shape assertions mirroring Table 3's orderings.
    assert max(stats, key=lambda n: stats[n]["density"]) == "ddi"
    assert max(stats, key=lambda n: stats[n]["N"]) == "citation"
    ratio = {n: stats[n]["max"] / stats[n]["avg"] for n in stats}
    assert max(ratio, key=ratio.get) == "arxiv"
