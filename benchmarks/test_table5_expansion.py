"""Table 5: expansion/transformation share of DGL GraphSAGE-LSTM time."""

from repro.bench import (
    format_table,
    table5_expansion_transform,
    write_result,
)
from repro.bench.paper_expected import (
    TABLE5_EXPANSION_PCT,
    TABLE5_TRANSFORM_PCT,
)
from repro.graph import DATASET_NAMES


def test_table5_expansion_transformation(benchmark, out):
    results = benchmark.pedantic(
        table5_expansion_transform, rounds=1, iterations=1
    )
    rows = [
        [n, results[n][0], results[n][1],
         TABLE5_EXPANSION_PCT[n], TABLE5_TRANSFORM_PCT[n]]
        for n in DATASET_NAMES
    ]
    text = format_table(
        "Table 5 — % time in expansion / transformation "
        "(DGL GraphSAGE-LSTM)",
        ["dataset", "expand%", "transf%", "p_exp%", "p_tra%"],
        rows,
    )
    out(write_result("table5_expansion", text))

    for n in DATASET_NAMES:
        exp, trans = results[n]
        # Paper shape: transformation dominates expansion; the two
        # together are a substantial fraction (paper: "as much as 35%").
        assert trans > exp, n
        assert 10.0 < exp + trans < 70.0, n
        # Expansion is a minor-but-visible slice (paper: 7-10%).
        assert 1.0 < exp < 25.0, n
