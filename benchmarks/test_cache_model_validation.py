"""Substrate validation: the window cache model vs exact LRU.

DESIGN.md §5 commits to validating the working-set approximation
against exact LRU stack distances.  This benchmark samples real access
traces from the datasets' aggregation kernels and compares hit rates
under both models across cache capacities — the error bound every
locality conclusion in this reproduction rests on.
"""

import numpy as np

from repro.bench import format_table, write_result
from repro.gpusim.cache import lru_hits, window_hits
from repro.graph import load_dataset

TRACE_LEN = 6_000
CAPACITIES = (64, 256, 1024)
DATASETS = ("arxiv", "collab", "ddi", "protein", "products")


def test_window_model_tracks_exact_lru(benchmark, out):
    def run():
        rows = []
        max_err = 0.0
        for name in DATASETS:
            g = load_dataset(name)
            trace = g.indices[:TRACE_LEN].astype(np.int64)
            for cap in CAPACITIES:
                approx = float(window_hits(trace, cap).mean())
                exact = float(lru_hits(trace, cap).mean())
                err = abs(approx - exact)
                max_err = max(max_err, err)
                rows.append([name, cap, 100 * exact, 100 * approx,
                             100 * err])
        return rows, max_err

    rows, max_err = benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_table(
        "Cache-model validation — window (working-set) vs exact LRU "
        "hit rates (%) on dataset traces",
        ["dataset", "capacity", "LRU%", "window%", "|err|%"],
        rows,
    )
    out(write_result("cache_model_validation", text))

    # The approximation stays within 12 points of exact LRU on every
    # (dataset, capacity) pair and preserves capacity monotonicity.
    assert max_err < 0.12
    by_ds = {}
    for name, cap, _exact, approx, _ in rows:
        by_ds.setdefault(name, []).append((cap, approx))
    for name, series in by_ds.items():
        series.sort()
        hits = [h for _, h in series]
        assert hits == sorted(hits), name  # monotone in capacity
