"""Fig. 3: L2 cache miss rates of graph operations in DGL's GCN."""

from repro.bench import fig3_l2_miss_rates, format_table, write_result
from repro.bench.paper_expected import FIG3_HIGH_MISS, FIG3_LOW_MISS
from repro.graph import DATASET_NAMES


def test_fig3_l2_miss_rates(benchmark, out):
    results = benchmark.pedantic(
        fig3_l2_miss_rates, rounds=1, iterations=1
    )
    rows = [
        [n, 100.0 * results[n][0],
         "w/ cuSPARSE" if results[n][1] else "",
         ">50%" if n in FIG3_HIGH_MISS else "low"]
        for n in DATASET_NAMES
    ]
    text = format_table(
        "Fig. 3 — L2 miss rate (%) of GCN last-layer graph op in DGL",
        ["dataset", "miss%", "path", "paper"],
        rows,
        col_width=12,
    )
    out(write_result("fig3_l2_miss", text))

    # Paper shape: >50% miss except on the small (ddi) or inherently
    # clustered (protein) datasets.
    for name in FIG3_HIGH_MISS:
        assert results[name][0] > 0.50, name
    for name in FIG3_LOW_MISS:
        assert results[name][0] < 0.50, name
    # ddi and protein must be the two LOWEST miss rates.
    ordered = sorted(DATASET_NAMES, key=lambda n: results[n][0])
    assert set(ordered[:2]) == set(FIG3_LOW_MISS)
