"""Table 4: active-thread-block starvation in DGL GAT graph operations."""

from repro.bench import format_table, table4_occupancy, write_result
from repro.bench.paper_expected import TABLE4_BELOW_100
from repro.graph import DATASET_NAMES


def test_table4_active_block_starvation(benchmark, out):
    results = benchmark.pedantic(table4_occupancy, rounds=1, iterations=1)
    rows = [
        [n, results[n][1.0], results[n][0.5], results[n][0.1],
         TABLE4_BELOW_100[n]]
        for n in DATASET_NAMES
    ]
    text = format_table(
        "Table 4 — % time active blocks below 100/50/10% (DGL GAT)",
        ["dataset", "<100%", "<50%", "<10%", "paper<100%"],
        rows,
    )
    out(write_result("table4_occupancy", text))

    for n in DATASET_NAMES:
        o = results[n]
        # Monotonicity: <10% time <= <50% time <= <100% time.
        assert o[0.1] <= o[0.5] + 1e-9 <= o[1.0] + 1e-9
    # Paper shape: arxiv suffers by far the most starvation; citation is
    # among the least starved (its low-variance degrees keep slots full).
    below100 = {n: results[n][1.0] for n in DATASET_NAMES}
    assert max(below100, key=below100.get) == "arxiv"
    assert below100["arxiv"] > 2 * below100["citation"]
    assert below100["arxiv"] > below100["protein"]
    # High-variance ddi... is dense-uniform here; hub datasets starve
    # more than uniform ones.
    assert below100["ppa"] > below100["protein"] or \
        below100["reddit"] > below100["protein"]
