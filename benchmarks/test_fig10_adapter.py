"""Fig. 10: data visible range adapter (± linear property) benefits."""

from repro.bench import fig10_adapter, format_table, write_result
from repro.graph import DATASET_NAMES


def test_fig10a_gat_adapter(benchmark, out):
    results = benchmark.pedantic(
        lambda: fig10_adapter("gat"), rounds=1, iterations=1
    )
    rows = [
        [n, results[n]["base"], results[n]["adapter"],
         results[n]["adapter_linear"]]
        for n in DATASET_NAMES
    ]
    text = format_table(
        "Fig. 10a — GAT layer time, normalized to NG+LAS baseline",
        ["dataset", "base", "+adapter", "+adp+linear"],
        rows,
    )
    out(write_result("fig10a_gat_adapter", text))

    for n in DATASET_NAMES:
        r = results[n]
        # Significant improvement from fusing the 7-kernel chain.
        assert r["adapter"] < 0.9 * r["base"], n
        # The linear property adds more on top (paper: "even more
        # speedups").
        assert r["adapter_linear"] <= r["adapter"] + 1e-9, n


def test_fig10b_gcn_adapter(benchmark, out):
    results = benchmark.pedantic(
        lambda: fig10_adapter("gcn"), rounds=1, iterations=1
    )
    rows = [
        [n, results[n]["base"], results[n]["adapter_linear"]]
        for n in DATASET_NAMES
    ]
    text = format_table(
        "Fig. 10b — GCN layer time, normalized to NG+LAS baseline",
        ["dataset", "base", "+adp+linear"],
        rows,
    )
    out(write_result("fig10b_gcn_adapter", text))

    gains = {
        n: 1.0 - results[n]["adapter_linear"] for n in DATASET_NAMES
    }
    # The simple GCN computation graph leaves limited fusion headroom
    # (paper: ~16% average improvement).
    avg_gain = sum(gains.values()) / len(gains)
    assert 0.02 < avg_gain < 0.45
    # GAT (complex chain) gains more than GCN (simple chain) on average.
    gat = fig10_adapter("gat")
    gat_gain = sum(
        1.0 - gat[n]["adapter_linear"] for n in DATASET_NAMES
    ) / len(DATASET_NAMES)
    assert gat_gain > avg_gain
