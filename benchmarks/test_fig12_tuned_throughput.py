"""Fig. 12: the Fig. 4 sweep with tuning — smooth, higher curves."""

import numpy as np

from repro.bench import (
    fig4_throughput_sweep,
    format_table,
    sweep_config,
    write_result,
)

FEATS = list(range(16, 257, 16))
SUBSET = ["arxiv", "collab", "citation", "ddi", "protein", "products"]


def test_fig12_tuned_throughput(benchmark, out):
    config = sweep_config()
    tuned = benchmark.pedantic(
        lambda: fig4_throughput_sweep(SUBSET, FEATS, config, tuned=True),
        rounds=1, iterations=1,
    )
    untuned = fig4_throughput_sweep(SUBSET, FEATS, config, tuned=False)
    rows = [[f] + [tuned[n][f] for n in SUBSET] for f in FEATS]
    text = format_table(
        "Fig. 12 — tuned aggregation GFLOPS vs feature length",
        ["feat"] + SUBSET,
        rows,
    )
    out(write_result("fig12_tuned_throughput", text))

    for n in SUBSET:
        t = np.array([tuned[n][f] for f in FEATS])
        u = np.array([untuned[n][f] for f in FEATS])
        # Tuning never loses and wins overall (paper: "can achieve good
        # performance" across lengths once tuning is applied).
        assert (t >= 0.9 * u).all(), n
        assert t.mean() > 1.05 * u.mean(), n
        # The sawtooth flattens: worst adjacent-step swing shrinks.
        t_step = (np.abs(np.diff(t)) / t[:-1]).max()
        u_step = (np.abs(np.diff(u)) / u[:-1]).max()
        assert t_step <= u_step + 0.05, n
    # Off-multiple-of-32 lengths benefit most (the lane-waste fix): at
    # F=48 the tuned/untuned ratio beats the F=64 ratio somewhere.
    gains_48 = [tuned[n][48] / untuned[n][48] for n in SUBSET]
    gains_64 = [tuned[n][64] / untuned[n][64] for n in SUBSET]
    assert max(g48 - g64 for g48, g64 in zip(gains_48, gains_64)) > 0.0
