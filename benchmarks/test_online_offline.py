"""§5.2 "Online and offline improvement analysis".

The paper stresses that the offline pre-processing (locality-aware
scheduling) is optional: the online optimization (neighbor grouping)
plus the kernel optimizations already bring 2.89x on average (Table 6),
and offline adds ~1.6x more where the graph is static — but cannot be
used "when the graph dynamically changes at every iteration when graph
sampling is applied".  This benchmark reproduces both halves:

1. the online-only vs +offline split on the static datasets, and
2. the sampled-minibatch scenario, where online-only optimizations
   still beat the DGL baseline on freshly sampled graphs every
   iteration while the offline analysis cost could never amortize.
"""

import numpy as np

from repro.bench import format_table, table6_gat_ablation, write_result
from repro.frameworks import DGLLike, OursOptions, OursRuntime
from repro.gpusim import V100_SCALED
from repro.graph import DATASET_NAMES, khop_sampled_subgraph, load_dataset
from repro.models import GCNConfig


def test_online_only_vs_offline_static(benchmark, out):
    results = benchmark.pedantic(
        table6_gat_ablation, rounds=1, iterations=1
    )
    rows = []
    online, offline_extra = [], []
    for n in DATASET_NAMES:
        r = results[n]
        online.append(r["adp_ng"])
        offline_extra.append(r["adp_ng_las"] / r["adp_ng"])
        rows.append([n, r["adp_ng"], r["adp_ng_las"],
                     r["adp_ng_las"] / r["adp_ng"]])
    rows.append(["AVERAGE", float(np.mean(online)),
                 float(np.mean([results[n]["adp_ng_las"]
                                for n in DATASET_NAMES])),
                 float(np.mean(offline_extra))])
    text = format_table(
        "§5.2 — online-only (Adp+NG) vs +offline (LAS) speedups "
        "(paper: 2.89x avg online; up to 1.6x extra offline)",
        ["dataset", "online", "+offline", "offline_x"],
        rows,
    )
    out(write_result("online_offline_static", text))

    # Online-only is already a solid average speedup...
    assert np.mean(online) > 1.5
    # ...and offline adds a bounded extra factor on top (never a
    # regression of more than the paper's protein-style wiggle).
    assert 0.95 < np.mean(offline_extra) < 1.7


def test_online_only_on_sampled_minibatches(benchmark, out):
    """Fresh k-hop samples each iteration: only online optimizations
    apply, and they still win on every minibatch."""
    parent = load_dataset("products")
    cfg = GCNConfig(dims=(64, 32, 16))
    dgl = DGLLike()
    online_only = OursRuntime(OursOptions(locality_scheduling=False))

    def run():
        rng = np.random.default_rng(0)
        rows = []
        for it in range(3):
            seeds = rng.choice(parent.num_nodes, size=512, replace=False)
            sub = khop_sampled_subgraph(
                parent, seeds, (10, 10), seed=it
            ).graph
            t_dgl = dgl.run_gcn(sub, cfg, V100_SCALED).time_ms
            t_ours = online_only.run_gcn(sub, cfg, V100_SCALED).time_ms
            rows.append([f"iter{it} (N={sub.num_nodes}, "
                         f"E={sub.num_edges})",
                         t_dgl, t_ours, t_dgl / t_ours])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_table(
        "§5.2 — online-only optimizations on per-iteration k-hop "
        "samples of products (GCN forward, ms)",
        ["minibatch", "dgl", "ours(online)", "speedup"],
        rows,
        col_width=14,
    )
    out(write_result("online_offline_sampled", text))
    for row in rows:
        assert row[3] > 1.0, row[0]
