"""Fig. 11: sparse fetching + redundancy bypassing on GraphSAGE-LSTM."""

from repro.bench import fig11_sage_strategies, format_table, write_result
from repro.graph import DATASET_NAMES


def test_fig11_sage_strategies(benchmark, out):
    results = benchmark.pedantic(
        fig11_sage_strategies, rounds=1, iterations=1
    )
    rows = [
        [n, results[n]["base"], results[n]["spfetch"],
         results[n]["redbypass"]]
        for n in DATASET_NAMES
    ]
    text = format_table(
        "Fig. 11 — GraphSAGE-LSTM time (normalized): base / +SpFetch / "
        "+RedBypass",
        ["dataset", "base", "+spfetch", "+redbypass"],
        rows,
    )
    out(write_result("fig11_sparse_fetch", text))

    sp_gains, rb_gains = [], []
    for n in DATASET_NAMES:
        r = results[n]
        # Sparse fetching alone helps but modestly (paper: <10%) —
        # it removes the expansion pass but keeps the O(E) transforms.
        assert r["spfetch"] < 1.02, n
        sp_gains.append(1.0 - r["spfetch"])
        # Redundancy bypassing is the big win (paper: ~32% total).
        assert r["redbypass"] < r["spfetch"], n
        rb_gains.append(1.0 - r["redbypass"])
    avg_sp = sum(sp_gains) / len(sp_gains)
    avg_rb = sum(rb_gains) / len(rb_gains)
    assert avg_sp < 0.18  # modest, in the spirit of <10%
    assert 0.15 < avg_rb < 0.55  # substantial, in the spirit of ~32%
    assert avg_rb > 2.0 * max(avg_sp, 0.01)
