#!/usr/bin/env python
"""Multi-device scaling curves (the ROC/NeuGraph Fig. 7/8 experiment).

For each (dataset, model) cell, runs the sharded executor on 1/2/4/8
simulated devices and records the wall-clock of the multi-device
timeline, the serial-equivalent device-seconds, and the per-device
compute/transfer breakdown.  The curve shape is the multi-GPU GNN
story in miniature: small graphs stop scaling once halo latency
dominates, large graphs scale near-linearly, and the largest only
*run* sharded — the monolithic plan exceeds simulated device memory
(recorded as an OOM cell, not an error).

Records append to ``BENCH_speed.json`` under the ``scaling-quick`` /
``scaling-full`` workload names — deliberately distinct from the
``quick``/``full`` perf-gate workloads, so scaling records are never
gate-comparable to simulator-speed records.

Usage::

    PYTHONPATH=src python benchmarks/bench_scaling.py [--quick]
        [--parts 1 2 4 8] [--method edge_cut] [--workers N]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
TRAJECTORY = os.path.join(ROOT, "BENCH_speed.json")

FULL = {
    "datasets": ["reddit", "products", "ogb49m"],
    "models": ["gcn", "gat"],
}
QUICK = {
    "datasets": ["arxiv"],
    "models": ["gcn", "gat"],
}

PARTS = [1, 2, 4, 8]


def _load_graph(name):
    from repro.graph import load_dataset
    from repro.graph.generators import ogb_scale_graph

    if name == "ogb49m":
        return ogb_scale_graph()
    return load_dataset(name)


def run_cell(fw, model, graph, sim, num_parts, method) -> dict:
    from repro.gpusim.memory import SimulatedOOM
    from repro.shard import run_sharded

    t0 = time.perf_counter()
    try:
        res = run_sharded(
            fw, model, graph, sim,
            num_parts=num_parts, method=method, lint=True,
        )
    except SimulatedOOM as exc:
        return {
            "oom": True,
            "detail": str(exc),
            "harness_seconds": round(time.perf_counter() - t0, 3),
        }
    sh = res.report.extra["perf"]["shard"]
    lint = sh.get("lint", {})
    return {
        "wall_ms": round(sh["wall_seconds"] * 1e3, 6),
        "serial_ms": round(sh["serial_seconds"] * 1e3, 6),
        "transfer_fraction": round(
            sh["cross_device"]["transfer_fraction"], 6
        ),
        "transfer_mb": round(
            sh["cross_device"]["transfer_bytes"] / 1e6, 3
        ),
        "replication_factor": round(res.shard.replication_factor, 4),
        "hb_findings": lint.get("findings", 0),
        "devices": [
            {
                "device": d["device"],
                "compute_ms": round(d["compute_seconds"] * 1e3, 6),
                "transfer_ms": round(d["transfer_seconds"] * 1e3, 6),
                "finish_ms": round(d["finish_seconds"] * 1e3, 6),
                "halo_nodes": d["halo_nodes"],
                "mirror_nodes": d["mirror_nodes"],
            }
            for d in sh["devices"]
        ],
        "harness_seconds": round(time.perf_counter() - t0, 3),
    }


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--quick", action="store_true",
                    help="arxiv-only cells for CI smoke runs")
    ap.add_argument("--parts", type=int, nargs="*", default=None,
                    help=f"device counts (default: {PARTS})")
    ap.add_argument("--method", choices=["edge_cut", "vertex_cut"],
                    default="edge_cut")
    ap.add_argument("--datasets", nargs="*", default=None)
    ap.add_argument("--models", nargs="*", default=None)
    ap.add_argument("--workers", type=int, default=0,
                    help="REPRO_WORKERS for partition-parallel "
                         "simulation (0 = inherit environment)")
    ap.add_argument("--output", default=TRAJECTORY,
                    help="trajectory JSON file to append to")
    ns = ap.parse_args()
    if ns.workers:
        os.environ["REPRO_WORKERS"] = str(ns.workers)

    sys.path.insert(0, os.path.join(ROOT, "src"))
    from repro.bench import bench_config
    from repro.frameworks.dgl_like import DGLLike
    from repro.perf import workers

    spec = QUICK if ns.quick else FULL
    datasets = ns.datasets or spec["datasets"]
    models = ns.models or spec["models"]
    parts = ns.parts or PARTS

    fw = DGLLike()
    sim = bench_config()
    t_all = time.perf_counter()
    curves: dict = {}
    for ds in datasets:
        graph = _load_graph(ds)
        curves[ds] = {}
        for model in models:
            row = {}
            base_wall = None
            for p in parts:
                cell = run_cell(fw, model, graph, sim, p, ns.method)
                if "wall_ms" in cell:
                    if p == 1:
                        base_wall = cell["wall_ms"]
                    if base_wall:
                        cell["speedup_vs_1dev"] = round(
                            base_wall / cell["wall_ms"], 4
                        )
                row[str(p)] = cell
                status = (
                    "OOM" if cell.get("oom")
                    else f"{cell['wall_ms']:10.3f} ms wall, "
                         f"{100 * cell['transfer_fraction']:5.1f}% xfer"
                         + (f", {cell['speedup_vs_1dev']:.2f}x"
                            if "speedup_vs_1dev" in cell else "")
                )
                print(f"{ds:10s} {model:4s} P={p}: {status}",
                      flush=True)
            curves[ds][model] = row
        del graph

    record = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "workload": "scaling-quick" if ns.quick else "scaling-full",
        "method": ns.method,
        "workers": workers(),
        "curves": curves,
        "harness_seconds": round(time.perf_counter() - t_all, 3),
    }
    trajectory = []
    if os.path.exists(ns.output):
        try:
            with open(ns.output) as fh:
                trajectory = json.load(fh)
        except (ValueError, OSError):
            trajectory = []
    trajectory.append(record)
    with open(ns.output, "w") as fh:
        json.dump(trajectory, fh, indent=2)
        fh.write("\n")
    print(f"recorded -> {os.path.relpath(ns.output, ROOT)}")


if __name__ == "__main__":
    main()
