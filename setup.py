"""Shim for environments without the `wheel` package (offline CI):
enables `pip install -e . --no-build-isolation --no-use-pep517`.
Configuration lives in pyproject.toml."""
from setuptools import setup

setup()
