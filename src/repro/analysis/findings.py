"""Finding / report types shared by all static-analysis passes.

A *finding* is one violation (or observation) a pass produced about a
fusion plan or a lowered kernel list.  Severities:

* ``error`` — the plan/lowering is wrong: executing it would corrupt
  results (illegal fusion, missing atomics, stale reads) or mis-account
  cost (conservation drift, phantom atomics).  ``repro lint`` exits
  non-zero.
* ``warning`` — the pass could not prove the property (e.g. an op whose
  name has no numeric semantics registered) or found a suspicious but
  not provably wrong structure.  Exits zero unless ``--fail-on warning``.
* ``info`` — advisory (e.g. a missed fusion or postponement
  opportunity).  Never gates.

Every finding carries a **stable code** (``HB001``, ``FP002``, ...)
registered by its pass via :func:`register_code` together with a short
summary and a long explanation; ``repro lint --explain CODE`` prints
the latter, and the SARIF export publishes the registry as tool rules.
Codes are append-only: a retired check's code is never reused.

Baselines: a checked-in JSON file (``lint_baseline.json``) lists
``{"code": ..., "where": ...}`` entries (``where`` is an fnmatch
pattern) that suppress known findings so a new pass can land clean
without weakening the gate for new regressions.
"""

from __future__ import annotations

import dataclasses
import fnmatch
import json
from typing import Dict, List, Optional, Tuple

__all__ = [
    "Finding",
    "FindingCode",
    "AnalysisReport",
    "PlanVerificationError",
    "CODES",
    "register_code",
    "make_finding",
    "explain_code",
    "load_baseline",
    "unused_baseline_entries",
    "prune_baseline",
    "ERROR",
    "WARNING",
    "INFO",
]

ERROR = "error"
WARNING = "warning"
INFO = "info"

#: Gating order: a report "fails at" a threshold when it holds any
#: finding at least this severe.
_SEVERITY_RANK = {INFO: 0, WARNING: 1, ERROR: 2}


# ----------------------------------------------------------------------
# Finding-code registry
# ----------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class FindingCode:
    """One registered finding code: identity, default severity, docs."""

    code: str         # stable id, e.g. "HB001"
    pass_name: str    # registry name of the pass that emits it
    severity: str     # default severity (ERROR / WARNING / INFO)
    summary: str      # one line, used in SARIF rule shortDescription
    explanation: str  # long text for ``repro lint --explain CODE``


#: code -> :class:`FindingCode`; populated at import time by each pass
#: module.  The registry is what makes codes *stable*: a finding's code
#: is its identity across releases, baselines and SARIF consumers.
CODES: Dict[str, FindingCode] = {}


def register_code(
    code: str, pass_name: str, severity: str, summary: str,
    explanation: str,
) -> str:
    """Register a finding code; returns ``code`` for assignment sugar."""
    if code in CODES and CODES[code].pass_name != pass_name:
        raise ValueError(
            f"finding code {code} already registered by pass "
            f"{CODES[code].pass_name!r}"
        )
    if severity not in _SEVERITY_RANK:
        raise ValueError(f"unknown severity {severity!r} for {code}")
    CODES[code] = FindingCode(code, pass_name, severity, summary,
                              explanation)
    return code


def explain_code(code: str) -> Optional[str]:
    """Human-readable explanation of a code, None if unregistered."""
    fc = CODES.get(code)
    if fc is None:
        return None
    return (
        f"{fc.code} [{fc.severity}] ({fc.pass_name} pass)\n"
        f"{fc.summary}\n\n{fc.explanation.strip()}\n"
    )


@dataclasses.dataclass(frozen=True)
class Finding:
    """One result of one analysis pass."""

    pass_name: str   # registry name (see repro.analysis.registry)
    severity: str    # ERROR / WARNING / INFO
    where: str       # plan/kernel/op context, e.g. "group 1: bcast"
    message: str
    code: str = ""   # stable finding code, e.g. "HB001" (see CODES)

    def format(self) -> str:
        code = f"{self.code} " if self.code else ""
        return (f"[{self.severity.upper():7s}] {code}{self.pass_name}: "
                f"{self.where}: {self.message}")

    def to_dict(self) -> Dict[str, str]:
        return dataclasses.asdict(self)


def make_finding(code: str, where: str, message: str) -> Finding:
    """Construct a finding from a registered code (pass + severity).

    Raises ``KeyError`` with the registered vocabulary when ``code``
    was never passed through :func:`register_code` — an unregistered
    code would otherwise ship findings SARIF consumers and baselines
    cannot resolve.
    """
    fc = CODES.get(code)
    if fc is None:
        raise KeyError(
            f"finding code {code!r} is not registered; every code must "
            f"be declared via register_code() by its pass module "
            f"(known: {', '.join(sorted(CODES)) or 'none'})"
        )
    return Finding(fc.pass_name, fc.severity, where, message, code=code)


# ----------------------------------------------------------------------
# Baseline / suppression
# ----------------------------------------------------------------------

def load_baseline(path: str) -> List[Dict[str, str]]:
    """Load baseline entries: ``[{"code": ..., "where": ...}, ...]``.

    ``where`` patterns are fnmatch globs; a missing ``where`` matches
    everywhere.  Raises ``ValueError`` on a malformed file (a broken
    baseline must not silently disable suppression *or* gating).
    """
    with open(path) as fh:
        payload = json.load(fh)
    entries = payload.get("suppress", payload) if isinstance(
        payload, dict) else payload
    if not isinstance(entries, list):
        raise ValueError(f"baseline {path}: expected a list of entries")
    for entry in entries:
        if not isinstance(entry, dict) or "code" not in entry:
            raise ValueError(
                f"baseline {path}: every entry needs a 'code' key: "
                f"{entry!r}"
            )
    return entries


def _suppressed(finding: Finding, entries: List[Dict[str, str]]) -> bool:
    return any(
        entry["code"] == finding.code
        and fnmatch.fnmatch(finding.where, entry.get("where", "*"))
        for entry in entries
    )


def unused_baseline_entries(
    entries: List[Dict[str, str]], findings: List[Finding]
) -> List[Dict[str, str]]:
    """Baseline entries that suppress nothing in ``findings``.

    A suppression that matches no finding is debt: the underlying issue
    was fixed (or the ``where`` string drifted) and the pattern now
    silently weakens the gate against future regressions.  ``repro lint``
    reports these; ``--prune-baseline`` rewrites the file without them.
    """
    return [
        entry for entry in entries
        if not any(
            entry["code"] == f.code
            and fnmatch.fnmatch(f.where, entry.get("where", "*"))
            for f in findings
        )
    ]


def prune_baseline(path: str, findings: List[Finding]) -> int:
    """Rewrite the baseline at ``path`` without its unused entries.

    Preserves the file's shape (bare list, or a dict whose ``suppress``
    key holds the entries — any other dict keys, like ``_comment``,
    survive untouched).  Returns the number of entries removed; the
    file is rewritten only when at least one is.
    """
    with open(path) as fh:
        payload = json.load(fh)
    entries = load_baseline(path)
    unused = unused_baseline_entries(entries, findings)
    if not unused:
        return 0
    kept = [e for e in entries if e not in unused]
    if isinstance(payload, dict) and "suppress" in payload:
        payload = {**payload, "suppress": kept}
    else:
        payload = kept
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    return len(unused)


# ----------------------------------------------------------------------
# Report
# ----------------------------------------------------------------------

@dataclasses.dataclass
class AnalysisReport:
    """Aggregated findings plus context about what was checked."""

    findings: List[Finding] = dataclasses.field(default_factory=list)
    #: Number of (model, dataset, config) pipelines inspected.
    checked: int = 0
    label: str = ""

    def extend(self, findings: List[Finding]) -> None:
        self.findings.extend(findings)

    def merge(self, other: "AnalysisReport") -> None:
        self.findings.extend(other.findings)
        self.checked += other.checked

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == ERROR]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == WARNING]

    @property
    def ok(self) -> bool:
        return not self.errors

    def gate(self, fail_on: str = ERROR) -> bool:
        """Exit-code contract: True (pass) unless a finding reaches the
        ``fail_on`` threshold.  The default gates on errors only —
        warnings and infos exit 0; ``--fail-on warning`` flips that for
        warnings.  Infos never gate."""
        threshold = _SEVERITY_RANK[fail_on]
        if threshold == 0:
            threshold = 1  # infos are advisory by definition
        return not any(
            _SEVERITY_RANK[f.severity] >= threshold for f in self.findings
        )

    def apply_baseline(
        self, entries: List[Dict[str, str]]
    ) -> Tuple["AnalysisReport", int]:
        """Return (report without suppressed findings, suppressed count)."""
        kept = [f for f in self.findings if not _suppressed(f, entries)]
        suppressed = len(self.findings) - len(kept)
        return (
            AnalysisReport(findings=kept, checked=self.checked,
                           label=self.label),
            suppressed,
        )

    def raise_on_errors(self) -> None:
        if not self.ok:
            raise PlanVerificationError(self)

    def format(self, *, verbose: bool = False) -> str:
        lines = []
        for f in self.findings:
            if verbose or f.severity != INFO:
                lines.append(f.format())
        lines.append(
            f"{self.label + ': ' if self.label else ''}"
            f"{self.checked} pipeline(s) checked, "
            f"{len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s)"
        )
        return "\n".join(lines)

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(
            {
                "label": self.label,
                "checked": self.checked,
                "ok": self.ok,
                "findings": [f.to_dict() for f in self.findings],
            },
            indent=indent,
        )

    def to_sarif(self) -> dict:
        """SARIF 2.1.0 log for CI consumption (one run, one tool)."""
        level = {ERROR: "error", WARNING: "warning", INFO: "note"}
        used = sorted({f.code for f in self.findings if f.code})
        rules = [
            {
                "id": code,
                "shortDescription": {"text": CODES[code].summary},
                "fullDescription": {
                    "text": CODES[code].explanation.strip()
                },
                "defaultConfiguration": {
                    "level": level[CODES[code].severity]
                },
            }
            for code in used if code in CODES
        ]
        results = [
            {
                "ruleId": f.code or f.pass_name,
                "level": level[f.severity],
                "message": {"text": f"{f.where}: {f.message}"},
                "locations": [
                    {
                        "logicalLocations": [
                            {"fullyQualifiedName": f.where}
                        ]
                    }
                ],
            }
            for f in self.findings
        ]
        return {
            "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
            "version": "2.1.0",
            "runs": [
                {
                    "tool": {
                        "driver": {
                            "name": "repro-lint",
                            "rules": rules,
                        }
                    },
                    "results": results,
                }
            ],
        }


class PlanVerificationError(RuntimeError):
    """Raised by the opt-in ``verify_plans`` hook when a pass errors."""

    def __init__(self, report: AnalysisReport) -> None:
        self.report = report
        super().__init__(
            "plan verification failed:\n" + report.format()
        )
