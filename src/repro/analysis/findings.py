"""Finding / report types shared by all static-analysis passes.

A *finding* is one violation (or observation) a pass produced about a
fusion plan or a lowered kernel list.  Severities:

* ``error`` — the plan/lowering is wrong: executing it would corrupt
  results (illegal fusion, missing atomics) or mis-account cost
  (conservation drift, phantom atomics).  ``repro lint`` exits non-zero.
* ``warning`` — the pass could not prove the property (e.g. an op whose
  name has no numeric semantics registered) or found a suspicious but
  not provably wrong structure.
* ``info`` — advisory (e.g. an op that *is* linear but is not flagged,
  leaving a postponement opportunity on the table).
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, List, Optional

__all__ = [
    "Finding",
    "AnalysisReport",
    "PlanVerificationError",
    "ERROR",
    "WARNING",
    "INFO",
]

ERROR = "error"
WARNING = "warning"
INFO = "info"


@dataclasses.dataclass(frozen=True)
class Finding:
    """One result of one analysis pass."""

    pass_name: str   # "legality" | "linearity" | "atomics" | "conservation"
    severity: str    # ERROR / WARNING / INFO
    where: str       # plan/kernel/op context, e.g. "group 1: bcast"
    message: str

    def format(self) -> str:
        return (f"[{self.severity.upper():7s}] {self.pass_name}: "
                f"{self.where}: {self.message}")

    def to_dict(self) -> Dict[str, str]:
        return dataclasses.asdict(self)


@dataclasses.dataclass
class AnalysisReport:
    """Aggregated findings plus context about what was checked."""

    findings: List[Finding] = dataclasses.field(default_factory=list)
    #: Number of (model, dataset, config) pipelines inspected.
    checked: int = 0
    label: str = ""

    def extend(self, findings: List[Finding]) -> None:
        self.findings.extend(findings)

    def merge(self, other: "AnalysisReport") -> None:
        self.findings.extend(other.findings)
        self.checked += other.checked

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == ERROR]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == WARNING]

    @property
    def ok(self) -> bool:
        return not self.errors

    def raise_on_errors(self) -> None:
        if not self.ok:
            raise PlanVerificationError(self)

    def format(self, *, verbose: bool = False) -> str:
        lines = []
        for f in self.findings:
            if verbose or f.severity != INFO:
                lines.append(f.format())
        lines.append(
            f"{self.label + ': ' if self.label else ''}"
            f"{self.checked} pipeline(s) checked, "
            f"{len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s)"
        )
        return "\n".join(lines)

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(
            {
                "label": self.label,
                "checked": self.checked,
                "ok": self.ok,
                "findings": [f.to_dict() for f in self.findings],
            },
            indent=indent,
        )


class PlanVerificationError(RuntimeError):
    """Raised by the opt-in ``verify_plans`` hook when a pass errors."""

    def __init__(self, report: AnalysisReport) -> None:
        self.report = report
        super().__init__(
            "plan verification failed:\n" + report.format()
        )
