"""Verification driver: run every registered pass over a lowered
pipeline, and sweep every shipped model x dataset x config combination
(the ``python -m repro lint`` entry point).

The sweep never runs the simulator — all passes are static, so linting
the full grid costs seconds while covering every plan the benchmarks
can produce: both op chains (GAT attention, GCN layer), every fusion
config (unfused / adapter / adapter+linear), both task layouts
(identity and neighbor-grouped, which exercises the SEG_REDUCE GLOBAL
promotion and the atomics paths), and feature lengths on both sides of
the warp-lane boundary.

Which passes run is not decided here: each pass module registers a
:class:`~repro.analysis.registry.LintPass` at import time and the
driver iterates :func:`~repro.analysis.registry.lint_passes`, running
whichever scope hooks (``chain`` / ``lowering`` / ``artifact``) a pass
provides.  Adding a pass is one new module — no driver edits.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, List, Optional, Sequence

from ..core.adapter import plan_fusion
from ..core.compgraph import FusionPlan, Op, gat_attention_ops, gcn_layer_ops
from ..core.grouping import identity_grouping, neighbor_grouping
from ..core.lowering import ExecLayout, lower_plan
from ..gpusim.config import GPUConfig, V100_SCALED
from ..gpusim.kernel import KernelSpec
from ..graph.csr import CSRGraph
from ..graph.datasets import DATASET_NAMES, load_dataset
from .findings import ERROR, AnalysisReport, make_finding, register_code
from .registry import LintContext, lint_passes

# Importing the pass modules is what populates the registry (and the
# finding-code table); the driver itself never names them again.
from . import atomics      # noqa: F401  (registers "atomics")
from . import conservation  # noqa: F401  (registers "conservation")
from . import footprint    # noqa: F401  (registers "footprint", "opportunity")
from . import hb           # noqa: F401  (registers "hb")
from . import legality     # noqa: F401  (registers "legality")
from . import linearity    # noqa: F401  (registers "linearity")
from . import shardlint    # noqa: F401  (registers "shardmem", "shardflow")

__all__ = [
    "verify_lowering",
    "lint_chain",
    "lint_shipped",
    "lint_plan",
    "MODEL_CHAINS",
    "FUSION_CONFIGS",
]

MODEL_CHAINS = {
    "gat": gat_attention_ops,
    "gcn": gcn_layer_ops,
}

#: (label, allow_adapter, allow_linear) fusion configs the repo ships.
FUSION_CONFIGS = (
    ("unfused", False, False),
    ("adapter", True, False),
    ("linear", True, True),
)

#: Feature lengths: one warp-aligned, one that exercises lane waste and
#: cache-line padding.
DEFAULT_FEATS = (32, 48)

#: Grouping bound for the grouped layout sweep (the untuned default).
LINT_NG_BOUND = 32

# Artifact-plumbing findings emitted by lint_plan itself, before any
# pass can run (the plan cannot even be paired with its graph).
PL001 = register_code(
    "PL001", "plan", ERROR,
    "plan references a graph that is not a shipped dataset",
    """The artifact's ``graph_name`` does not resolve against the
shipped datasets, so no pass can be run against the structure the plan
was compiled for.  Re-lint with the graph passed explicitly.""",
)
PL002 = register_code(
    "PL002", "plan", ERROR,
    "graph fingerprint mismatch: stale artifact",
    """The structural fingerprint of the resolved graph disagrees with
the one recorded in the plan: the artifact was compiled against a
different graph (or the dataset changed).  Every per-layer layout
array and kernel estimate in it is untrustworthy — recompile.""",
)


def _prefixed(findings: Iterable, label: str) -> List:
    """Re-scope findings into a sweep: prefix ``where`` with the
    pipeline label, preserving code/severity (``dataclasses.replace``,
    not positional reconstruction)."""
    return [
        dataclasses.replace(f, where=f"{label}: {f.where}")
        for f in findings
    ]


def verify_lowering(
    ops: List[Op],
    plan: FusionPlan,
    kernels: List[KernelSpec],
    graph: CSRGraph,
    feat_len: int,
    config: GPUConfig,
    layout: ExecLayout,
    *,
    grouped: bool,
    label: str = "",
    check_linearity: bool = True,
    agg_compute_scale: float = 1.0,
    agg_uncoalesced: float = 1.0,
) -> AnalysisReport:
    """Run every registered static pass over one lowered pipeline.

    ``check_linearity=False`` skips the chain-scope passes (callers
    sweeping many lowerings of one chain verify it once instead).
    """
    ctx = LintContext(
        ops=ops, plan=plan, kernels=kernels, graph=graph,
        feat_len=feat_len, config=config, layout=layout, grouped=grouped,
        agg_compute_scale=agg_compute_scale,
        agg_uncoalesced=agg_uncoalesced,
    )
    report = AnalysisReport(label=label, checked=1)
    for p in lint_passes():
        if p.chain is not None and check_linearity:
            report.extend(p.chain(list(ops)))
        if p.lowering is not None:
            report.extend(p.lowering(ctx))
    return report


def _select_fusions(fusions: Optional[Iterable[str]]):
    """Resolve a fusion-config name filter against FUSION_CONFIGS."""
    if fusions is None:
        return FUSION_CONFIGS
    wanted = list(fusions)
    known = {name for name, _, _ in FUSION_CONFIGS}
    unknown = [name for name in wanted if name not in known]
    if unknown:
        raise KeyError(
            f"unknown fusion config(s) {unknown}; one of {sorted(known)}"
        )
    return tuple(c for c in FUSION_CONFIGS if c[0] in wanted)


def lint_chain(
    model: str,
    graph: CSRGraph,
    *,
    config: Optional[GPUConfig] = None,
    feats: Sequence[int] = DEFAULT_FEATS,
    fusions: Optional[Iterable[str]] = None,
    check_linearity: bool = False,
) -> AnalysisReport:
    """Lint every fusion config x layout x feat of one model on a graph.

    ``fusions`` restricts the sweep to a subset of the shipped fusion
    configs by name ("unfused", "adapter", "linear").
    """
    config = config or V100_SCALED
    ops = MODEL_CHAINS[model]()
    report = AnalysisReport(label=f"{model}:{graph.name or 'graph'}")
    report.checked = 0
    layouts = [
        ("identity", identity_grouping(graph)),
        ("grouped", neighbor_grouping(graph, LINT_NG_BOUND)),
    ]
    for lname, grouping in layouts:
        grouped = bool(grouping.needs_atomic.any())
        layout = ExecLayout(grouping=grouping)
        for cname, adapter, linear in _select_fusions(fusions):
            plan = plan_fusion(
                ops, allow_adapter=adapter, allow_linear=linear,
                grouped=grouped, label=cname,
            )
            for feat in feats:
                kernels = lower_plan(plan, graph, feat, config, layout)
                sub = verify_lowering(
                    ops, plan, kernels, graph, feat, config, layout,
                    grouped=grouped,
                    label=f"{report.label}:{cname}:{lname}:F{feat}",
                    check_linearity=False,
                )
                report.findings.extend(
                    _prefixed(sub.findings, sub.label)
                )
                report.checked += sub.checked
    if check_linearity:
        for p in lint_passes():
            if p.chain is not None:
                report.extend(p.chain(list(ops)))
    return report


def lint_shipped(
    dataset_names: Optional[Iterable[str]] = None,
    models: Optional[Iterable[str]] = None,
    *,
    config: Optional[GPUConfig] = None,
    feats: Sequence[int] = DEFAULT_FEATS,
    fusions: Optional[Iterable[str]] = None,
) -> AnalysisReport:
    """Lint all shipped model/dataset/config combinations."""
    names = list(dataset_names or DATASET_NAMES)
    model_list = list(models or MODEL_CHAINS)
    report = AnalysisReport(label="lint")
    # Chains are dataset-independent: verify the chain-scope passes once
    # per model instead of once per pipeline.
    for model in model_list:
        ops = MODEL_CHAINS[model]()
        for p in lint_passes():
            if p.chain is not None:
                report.extend(p.chain(list(ops)))
    for name in names:
        graph = load_dataset(name)
        for model in model_list:
            report.merge(lint_chain(
                model, graph, config=config, feats=feats,
                fusions=fusions, check_linearity=False,
            ))
    return report


def lint_plan(
    plan,
    graph: Optional[CSRGraph] = None,
    config: Optional[GPUConfig] = None,
) -> AnalysisReport:
    """Run the static passes over a :class:`CompiledPlan` *artifact*.

    This is the offline path: a saved plan carries per-layer
    :class:`~repro.core.plan.LayerRecord` entries (fusion plan, layout
    arrays, kernel slice), so the lowering-scope passes re-verify the
    artifact without the live pipeline that produced it, and the
    artifact-scope passes (whole-stream happens-before, footprint
    cross-check) see the complete plan.  Layers lowered outside the
    shared ``lower_plan`` path carry ``chain=None`` and are skipped.

    ``graph`` defaults to loading ``plan.graph_name`` from the shipped
    datasets; a graph whose structural fingerprint disagrees with the
    plan's is an error finding (the artifact is stale for this graph).
    """
    label = plan.label or f"{plan.framework}:{plan.model}"
    report = AnalysisReport(label=f"plan:{label}", checked=0)
    if graph is None:
        if plan.graph_name not in DATASET_NAMES:
            report.findings.append(make_finding(
                PL001, plan.plan_id,
                f"graph {plan.graph_name!r} is not a shipped dataset; "
                "pass the graph explicitly",
            ))
            return report
        graph = load_dataset(plan.graph_name)
    if graph.fingerprint != plan.graph_fingerprint:
        report.findings.append(make_finding(
            PL002, plan.plan_id,
            f"graph fingerprint {graph.fingerprint} != plan's "
            f"{plan.graph_fingerprint}: stale artifact",
        ))
        return report
    config = config or plan.gpu_config
    for rec in plan.layers:
        if rec.chain is None or rec.fusion is None:
            continue
        ops = MODEL_CHAINS[rec.chain]()
        kernels = plan.kernels[rec.kernel_start:rec.kernel_stop]
        sub = verify_lowering(
            ops, rec.fusion, kernels, graph, rec.feat_len, config,
            rec.layout(), grouped=rec.grouped,
            label=f"{report.label}:{rec.label}",
            check_linearity=False,
            agg_compute_scale=rec.agg_compute_scale,
            agg_uncoalesced=rec.agg_uncoalesced,
        )
        report.findings.extend(_prefixed(sub.findings, sub.label))
        report.checked += sub.checked
    for p in lint_passes():
        if p.artifact is not None:
            report.findings.extend(_prefixed(
                p.artifact(plan, graph, config), report.label
            ))
    return report
