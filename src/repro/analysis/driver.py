"""Verification driver: run all four passes over a lowered pipeline,
and sweep every shipped model x dataset x config combination (the
``python -m repro lint`` entry point).

The sweep never runs the simulator — all passes are static, so linting
the full grid costs seconds while covering every plan the benchmarks
can produce: both op chains (GAT attention, GCN layer), every fusion
config (unfused / adapter / adapter+linear), both task layouts
(identity and neighbor-grouped, which exercises the SEG_REDUCE GLOBAL
promotion and the atomics paths), and feature lengths on both sides of
the warp-lane boundary.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from ..core.adapter import plan_fusion
from ..core.compgraph import FusionPlan, Op, gat_attention_ops, gcn_layer_ops
from ..core.grouping import identity_grouping, neighbor_grouping
from ..core.lowering import ExecLayout, lower_plan
from ..gpusim.config import GPUConfig, V100_SCALED
from ..gpusim.kernel import KernelSpec
from ..graph.csr import CSRGraph
from ..graph.datasets import DATASET_NAMES, load_dataset
from .atomics import check_atomic_races
from .conservation import check_conservation
from .findings import ERROR, AnalysisReport, Finding
from .legality import check_fusion_legality
from .linearity import check_linear_flags

__all__ = [
    "verify_lowering",
    "lint_chain",
    "lint_shipped",
    "lint_plan",
    "MODEL_CHAINS",
    "FUSION_CONFIGS",
]

MODEL_CHAINS = {
    "gat": gat_attention_ops,
    "gcn": gcn_layer_ops,
}

#: (label, allow_adapter, allow_linear) fusion configs the repo ships.
FUSION_CONFIGS = (
    ("unfused", False, False),
    ("adapter", True, False),
    ("linear", True, True),
)

#: Feature lengths: one warp-aligned, one that exercises lane waste and
#: cache-line padding.
DEFAULT_FEATS = (32, 48)

#: Grouping bound for the grouped layout sweep (the untuned default).
LINT_NG_BOUND = 32


def verify_lowering(
    ops: List[Op],
    plan: FusionPlan,
    kernels: List[KernelSpec],
    graph: CSRGraph,
    feat_len: int,
    config: GPUConfig,
    layout: ExecLayout,
    *,
    grouped: bool,
    label: str = "",
    check_linearity: bool = True,
    agg_compute_scale: float = 1.0,
    agg_uncoalesced: float = 1.0,
) -> AnalysisReport:
    """Run all four static passes over one lowered pipeline."""
    report = AnalysisReport(label=label, checked=1)
    report.extend(check_fusion_legality(ops, plan, grouped=grouped))
    if check_linearity:
        report.extend(check_linear_flags(ops))
    report.extend(check_atomic_races(plan, kernels, layout))
    report.extend(check_conservation(
        ops, plan, kernels, graph, feat_len, config, layout,
        agg_compute_scale=agg_compute_scale,
        agg_uncoalesced=agg_uncoalesced,
    ))
    return report


def _select_fusions(fusions: Optional[Iterable[str]]):
    """Resolve a fusion-config name filter against FUSION_CONFIGS."""
    if fusions is None:
        return FUSION_CONFIGS
    wanted = list(fusions)
    known = {name for name, _, _ in FUSION_CONFIGS}
    unknown = [name for name in wanted if name not in known]
    if unknown:
        raise KeyError(
            f"unknown fusion config(s) {unknown}; one of {sorted(known)}"
        )
    return tuple(c for c in FUSION_CONFIGS if c[0] in wanted)


def lint_chain(
    model: str,
    graph: CSRGraph,
    *,
    config: Optional[GPUConfig] = None,
    feats: Sequence[int] = DEFAULT_FEATS,
    fusions: Optional[Iterable[str]] = None,
    check_linearity: bool = False,
) -> AnalysisReport:
    """Lint every fusion config x layout x feat of one model on a graph.

    ``fusions`` restricts the sweep to a subset of the shipped fusion
    configs by name ("unfused", "adapter", "linear").
    """
    config = config or V100_SCALED
    ops = MODEL_CHAINS[model]()
    report = AnalysisReport(label=f"{model}:{graph.name or 'graph'}")
    report.checked = 0
    layouts = [
        ("identity", identity_grouping(graph)),
        ("grouped", neighbor_grouping(graph, LINT_NG_BOUND)),
    ]
    for lname, grouping in layouts:
        grouped = bool(grouping.needs_atomic.any())
        layout = ExecLayout(grouping=grouping)
        for cname, adapter, linear in _select_fusions(fusions):
            plan = plan_fusion(
                ops, allow_adapter=adapter, allow_linear=linear,
                grouped=grouped, label=cname,
            )
            for feat in feats:
                kernels = lower_plan(plan, graph, feat, config, layout)
                sub = verify_lowering(
                    ops, plan, kernels, graph, feat, config, layout,
                    grouped=grouped,
                    label=f"{report.label}:{cname}:{lname}:F{feat}",
                    check_linearity=False,
                )
                for f in sub.findings:
                    report.findings.append(f.__class__(
                        f.pass_name, f.severity,
                        f"{sub.label}: {f.where}", f.message,
                    ))
                report.checked += sub.checked
    if check_linearity:
        report.extend(check_linear_flags(ops))
    return report


def lint_shipped(
    dataset_names: Optional[Iterable[str]] = None,
    models: Optional[Iterable[str]] = None,
    *,
    config: Optional[GPUConfig] = None,
    feats: Sequence[int] = DEFAULT_FEATS,
    fusions: Optional[Iterable[str]] = None,
) -> AnalysisReport:
    """Lint all shipped model/dataset/config combinations."""
    names = list(dataset_names or DATASET_NAMES)
    model_list = list(models or MODEL_CHAINS)
    report = AnalysisReport(label="lint")
    # Chains are dataset-independent: verify the linear flags once per
    # model instead of once per pipeline.
    for model in model_list:
        report.extend(check_linear_flags(MODEL_CHAINS[model]()))
    for name in names:
        graph = load_dataset(name)
        for model in model_list:
            report.merge(lint_chain(
                model, graph, config=config, feats=feats,
                fusions=fusions, check_linearity=False,
            ))
    return report


def lint_plan(
    plan,
    graph: Optional[CSRGraph] = None,
    config: Optional[GPUConfig] = None,
) -> AnalysisReport:
    """Run the static passes over a :class:`CompiledPlan` *artifact*.

    This is the offline path: a saved plan carries per-layer
    :class:`~repro.core.plan.LayerRecord` entries (fusion plan, layout
    arrays, kernel slice), so the four passes re-verify the artifact
    without the live pipeline that produced it.  Layers lowered outside
    the shared ``lower_plan`` path carry ``chain=None`` and are skipped.

    ``graph`` defaults to loading ``plan.graph_name`` from the shipped
    datasets; a graph whose structural fingerprint disagrees with the
    plan's is an error finding (the artifact is stale for this graph).
    """
    label = plan.label or f"{plan.framework}:{plan.model}"
    report = AnalysisReport(label=f"plan:{label}", checked=0)
    if graph is None:
        if plan.graph_name not in DATASET_NAMES:
            report.findings.append(Finding(
                "plan", ERROR, plan.plan_id,
                f"graph {plan.graph_name!r} is not a shipped dataset; "
                "pass the graph explicitly",
            ))
            return report
        graph = load_dataset(plan.graph_name)
    if graph.fingerprint != plan.graph_fingerprint:
        report.findings.append(Finding(
            "plan", ERROR, plan.plan_id,
            f"graph fingerprint {graph.fingerprint} != plan's "
            f"{plan.graph_fingerprint}: stale artifact",
        ))
        return report
    config = config or plan.gpu_config
    for rec in plan.layers:
        if rec.chain is None or rec.fusion is None:
            continue
        ops = MODEL_CHAINS[rec.chain]()
        kernels = plan.kernels[rec.kernel_start:rec.kernel_stop]
        sub = verify_lowering(
            ops, rec.fusion, kernels, graph, rec.feat_len, config,
            rec.layout(), grouped=rec.grouped,
            label=f"{report.label}:{rec.label}",
            check_linearity=False,
            agg_compute_scale=rec.agg_compute_scale,
            agg_uncoalesced=rec.agg_uncoalesced,
        )
        for f in sub.findings:
            report.findings.append(Finding(
                f.pass_name, f.severity,
                f"{sub.label}: {f.where}", f.message,
            ))
        report.checked += sub.checked
    return report
