"""Pass 3 — atomic-race detection on lowered kernels.

Neighbor grouping (§4.1.2) may split one center node's edges across
several blocks; every block then write-combines into the same output
row, which is only correct when the kernel charges atomic updates for
those blocks.  This pass walks the lowered :class:`KernelSpec` list
against the :class:`GroupingPlan` and flags, structurally:

* a **write-write race** — two or more blocks own the same center
  (``block_center``) but the kernel charges no atomics on them;
* a **phantom atomic** — atomics charged on a block whose center is
  block-private (a cost-model bug: the simulator would price contention
  that no real kernel pays);
* a fused segment reduction lowered edge-parallel (no per-block center
  ownership at all) **without** any atomic partial-sum charge — its
  blocks write centers they do not own;
* a lowered center-parallel kernel whose block->center map disagrees
  with the grouping plan it was supposedly lowered from.

Center ownership comes from ``KernelSpec.block_center``, metadata the
lowering layer attaches to every center-parallel kernel (and permutes
along with any locality reordering), so the detector needs no
name-matching heuristics.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..core.compgraph import FusionPlan, OpKind
from ..core.lowering import ExecLayout
from ..gpusim.kernel import KernelSpec
from .findings import ERROR, Finding, make_finding, register_code
from .registry import LintPass, register_pass

__all__ = ["check_atomic_races"]

PASS = "atomics"

AT001 = register_code(
    "AT001", PASS, ERROR,
    "write-write race: shared center without atomics",
    """Two or more blocks own the same center (block_center) but the
kernel charges no atomics on them — a cross-SM write-write race under
neighbor grouping.  The merged output row would be corrupted.""",
)
AT002 = register_code(
    "AT002", PASS, ERROR,
    "phantom atomics on block-private centers",
    """Atomics are charged on blocks whose center no other block owns:
the cost model would price contention no real kernel pays.""",
)
AT003 = register_code(
    "AT003", PASS, ERROR,
    "fusion groups and lowered kernels cannot be paired",
    """The plan's group count differs from the lowered kernel count, so
the per-group structural checks cannot run — a group was dropped or
split by lowering.""",
)
AT004 = register_code(
    "AT004", PASS, ERROR,
    "edge-parallel reduction without atomic partial sums",
    """A kernel fuses a segment reduction/aggregation yet chunks blocks
over edges with no atomics charge: blocks write centers they do not
own, so partial sums would be lost.""",
)
AT005 = register_code(
    "AT005", PASS, ERROR,
    "block->center ownership disagrees with the grouping plan",
    """The lowered kernel's block_center multiset differs from the
grouping plan it was supposedly lowered from — the kernel executes a
different task layout than the plan records.""",
)


def _check_center_parallel(
    kernel: KernelSpec, where: str, findings: List[Finding]
) -> None:
    centers = kernel.block_center
    counts = np.bincount(centers, minlength=int(centers.max()) + 1
                         if centers.size else 0)
    shared = counts[centers] > 1
    racy = shared & (kernel.atomics == 0)
    if racy.any():
        example = int(centers[np.argmax(racy)])
        findings.append(make_finding(
            AT001, where,
            f"{int(racy.sum())} block(s) write centers owned by "
            f"multiple blocks without an atomics charge (e.g. center "
            f"{example}) — a cross-SM write-write race",
        ))
    phantom = (~shared) & (kernel.atomics > 0)
    if phantom.any():
        example = int(centers[np.argmax(phantom)])
        findings.append(make_finding(
            AT002, where,
            f"{int(phantom.sum())} block(s) charge atomics on "
            f"block-private centers (e.g. center {example}) — phantom "
            f"contention in the cost model",
        ))


def check_atomic_races(
    plan: FusionPlan,
    kernels: List[KernelSpec],
    layout: Optional[ExecLayout] = None,
) -> List[Finding]:
    """Cross-check a lowered kernel list against its plan and layout."""
    findings: List[Finding] = []
    if len(kernels) != len(plan.groups):
        findings.append(make_finding(
            AT003, "plan",
            f"plan has {len(plan.groups)} fusion groups but lowering "
            f"produced {len(kernels)} kernels — cannot pair them",
        ))
        return findings
    for gi, (group, kernel) in enumerate(zip(plan.groups, kernels)):
        where = f"group {gi}: {kernel.name}"
        kinds = {op.kind for op in group.ops}
        has_reduction = bool(
            kinds & {OpKind.SEG_REDUCE, OpKind.AGGREGATE}
        )
        if kernel.block_center is not None:
            _check_center_parallel(kernel, where, findings)
            if (
                layout is not None
                and OpKind.AGGREGATE in kinds
                and kernel.num_blocks == layout.grouping.num_groups
            ):
                want = np.sort(layout.grouping.group_center)
                got = np.sort(kernel.block_center)
                if not np.array_equal(want, got):
                    findings.append(make_finding(
                        AT005, where,
                        "block->center ownership disagrees with the "
                        "grouping plan the kernel was lowered from",
                    ))
        elif has_reduction:
            # Edge-parallel lowering of a reduction: blocks are chunked
            # over edges with no regard for segment boundaries, so
            # partial sums *must* merge through atomics.
            if int(kernel.atomics.sum()) == 0:
                findings.append(make_finding(
                    AT004, where,
                    "fuses a segment reduction/aggregation into an "
                    "edge-parallel kernel without any atomic "
                    "partial-sum charge — blocks write centers they do "
                    "not own",
                ))
    return findings


register_pass(LintPass(
    name=PASS,
    doc="atomic-race detection via block_center ownership",
    lowering=lambda ctx: check_atomic_races(
        ctx.plan, ctx.kernels, ctx.layout
    ),
))
