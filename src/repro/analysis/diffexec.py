"""Differential verification: execute two fusion plans of one chain
exactly and demand bit-identical outputs.

The rewrite engine's last line of defence.  The static passes prove
structural properties; this harness *runs* the original and rewritten
plans and compares results.  Floating point would defeat the purpose —
the linear-property postponement reorders a division around a sum, and
``sum(x_e / c)`` and ``sum(x_e) / c`` differ in the last ulp under
IEEE — so the interpreter computes over exact rationals
(:class:`fractions.Fraction`).  Ops without rational semantics get
rational *surrogates* that preserve the properties the rewrites rely
on (``exp -> x^2 + 1/4``: positive and non-linear; ``leaky_relu`` with
slope exactly ``1/5``: piecewise, non-linear).  A legal rewrite is an
algebraic identity over the rationals, so the two interpretations are
*equal*, and their float64 renderings are bit-identical; an illegal one
(stale operand, non-linear op postponed, dropped op) lands on different
rationals and is rejected.  Whether the *true* IEEE semantics commute
is a separate property, proven numerically by the linearity pass.

Operand resolution mirrors :func:`repro.analysis.legality.chain_dataflow`
and the lowering's ``_plan_dataflow`` walk — the same producer trackers,
the same postponed-op treatment (a postponed op transforms the host
aggregate's output at center granularity; a postponed BCAST is the
denominator's carrier and touches nothing).

Verification runs on a small fixed synthetic adjacency
(:func:`verification_graph`) with seeded small-integer rational inputs:
exactness does not depend on scale, and a dozen nodes keep Fraction
arithmetic effectively free inside the fix-point loop.
"""

from __future__ import annotations

import dataclasses
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.compgraph import FusionPlan, Op, OpKind

__all__ = [
    "DiffExecUnsupported",
    "verification_graph",
    "interpret_plan",
    "render_output",
    "differential_verify",
]


class DiffExecUnsupported(RuntimeError):
    """The chain contains an op the exact interpreter has no rational
    semantics for — verification cannot vouch for a rewrite of it."""


# ----------------------------------------------------------------------
# Verification graph + seeded exact inputs
# ----------------------------------------------------------------------

def verification_graph(
    num_nodes: int = 11,
) -> Tuple[List[List[int]], int]:
    """A fixed small adjacency: ``(neighbors per center, num_nodes)``.

    Deterministic, every center has at least one in-edge, degrees vary
    (including one hub), and several sources repeat across centers —
    enough structure to distinguish per-edge from per-center rewrites.
    """
    adj: List[List[int]] = []
    for c in range(num_nodes):
        deg = 1 + (c * 3 + 1) % 4
        if c == 0:
            deg = num_nodes - 1  # hub center
        adj.append([(c * 5 + 2 * k + 1) % num_nodes for k in range(deg)])
    return adj, num_nodes


@dataclasses.dataclass
class ExactInputs:
    """Seeded rational inputs of one chain interpretation."""

    features: List[List[Fraction]]          # [N][F]
    src_score: List[Fraction]               # U_ADD_V's per-source scalar
    dst_score: List[Fraction]               # U_ADD_V's per-center scalar
    node_aux: Dict[str, List[Fraction]]     # per-op-name NODE_MAP scale
    edge_in: List[Fraction]                 # chain input for bare E1 ops


def exact_inputs(
    num_nodes: int,
    num_edges: int,
    feat_len: int,
    node_map_names: Sequence[str],
) -> ExactInputs:
    """Deterministic small-integer rationals (no RNG: exactness needs
    no randomness, and determinism keeps rejects reproducible)."""
    feats = [
        [Fraction((i * 7 + j * 3) % 11 - 5, 4) for j in range(feat_len)]
        for i in range(num_nodes)
    ]
    src = [Fraction((i * 5) % 13 - 6, 3) for i in range(num_nodes)]
    dst = [Fraction((i * 3) % 7 - 3, 2) for i in range(num_nodes)]
    aux = {
        name: [
            Fraction(1 + (i + 2 * k) % 5, 2) for i in range(num_nodes)
        ]
        for k, name in enumerate(node_map_names)
    }
    edge = [Fraction((e * 7) % 9 - 4, 5) for e in range(num_edges)]
    return ExactInputs(feats, src, dst, aux, edge)


# ----------------------------------------------------------------------
# Exact interpreter
# ----------------------------------------------------------------------

_QUARTER = Fraction(1, 4)
_FIFTH = Fraction(1, 5)

#: Rational surrogates for the shipped edge-map names.  Each preserves
#: what matters for rewrite verification: non-linearity (so an illegal
#: postponement changes the result) and, for ``exp``, positivity (so a
#: downstream segment-sum denominator is never zero).
_EDGE_MAP_EXACT = {
    "exp": lambda x: x * x + _QUARTER,
    "leaky_relu": lambda x: x if x > 0 else x * _FIFTH,
    "relu": lambda x: x if x > 0 else Fraction(0),
}

#: NODE_MAP names interpreted as multiplication by a per-node scale.
_NODE_SCALE_NAMES = {"norm_src", "norm_dst", "scale"}


def interpret_plan(
    plan: FusionPlan,
    adj: List[List[int]],
    inputs: ExactInputs,
) -> List[List[Fraction]]:
    """Execute a fusion plan exactly; returns the final value.

    Output is normalized to a per-center matrix: ``[N][F]`` for NF
    results, ``[N][1]`` for a trailing reduction, ``[E][1]`` rendered
    per edge for a trailing edge value — whatever the chain's last
    non-postponed op produces (after its group's postponed epilogue).
    """
    edges: List[Tuple[int, int]] = [
        (c, s) for c, nbrs in enumerate(adj) for s in nbrs
    ]
    num_nodes = len(adj)
    edge_centers = [c for c, _ in edges]
    edge_sources = [s for _, s in edges]

    # Producer trackers, mirroring chain_dataflow / _plan_dataflow.
    last_e1: Optional[List[Fraction]] = None
    last_e1_nonbcast: Optional[List[Fraction]] = None
    last_bcast: Optional[List[Fraction]] = None
    last_reduce: Optional[List[Fraction]] = None
    last_nf: Optional[List[List[Fraction]]] = None
    bcast_after_reduce = False  # which denominator EDGE_DIV sees
    final: Optional[object] = None
    final_shape = ""

    def edge_value() -> List[Fraction]:
        return list(last_e1) if last_e1 is not None else list(
            inputs.edge_in
        )

    def nf_value() -> List[List[Fraction]]:
        src = last_nf if last_nf is not None else inputs.features
        return [list(row) for row in src]

    for group in plan.groups:
        group_out_nf: Optional[List[List[Fraction]]] = None
        for op in group.ops:
            kind = op.kind
            if kind == OpKind.U_ADD_V:
                vals = [
                    inputs.src_score[s] + inputs.dst_score[c]
                    for c, s in edges
                ]
            elif kind == OpKind.EDGE_MAP:
                fn = _EDGE_MAP_EXACT.get(op.name)
                if fn is None:
                    raise DiffExecUnsupported(
                        f"edge map {op.name!r} has no exact semantics"
                    )
                vals = [fn(x) for x in edge_value()]
            elif kind == OpKind.SEG_REDUCE:
                x = edge_value()
                acc = [Fraction(0)] * num_nodes
                for e, c in enumerate(edge_centers):
                    acc[c] += x[e]
                last_reduce = acc
                bcast_after_reduce = False
                final, final_shape = acc, "N1"
                continue
            elif kind == OpKind.BCAST:
                if last_reduce is None:
                    raise DiffExecUnsupported(
                        f"{op.name!r} reads a reduction the chain has "
                        f"not produced"
                    )
                vals = [last_reduce[c] for c in edge_centers]
                last_e1 = vals
                last_bcast = vals
                bcast_after_reduce = True
                final, final_shape = vals, "E1"
                continue
            elif kind == OpKind.EDGE_DIV:
                num = (
                    list(last_e1_nonbcast)
                    if last_e1_nonbcast is not None
                    else list(inputs.edge_in)
                )
                if last_bcast is not None and bcast_after_reduce:
                    denom = list(last_bcast)
                elif last_reduce is not None:
                    denom = [last_reduce[c] for c in edge_centers]
                else:
                    raise DiffExecUnsupported(
                        f"{op.name!r} has no denominator to read"
                    )
                vals = [x / d for x, d in zip(num, denom)]
            elif kind == OpKind.AGGREGATE:
                w = last_e1  # None -> unweighted sum
                feats = nf_value()
                feat_len = len(feats[0]) if feats else 0
                out = [
                    [Fraction(0)] * feat_len for _ in range(num_nodes)
                ]
                for e, (c, s) in enumerate(edges):
                    we = w[e] if w is not None else Fraction(1)
                    row = feats[s]
                    dst_row = out[c]
                    for j in range(feat_len):
                        dst_row[j] += we * row[j]
                last_nf = out
                group_out_nf = out
                final, final_shape = out, "NF"
                continue
            elif kind == OpKind.NODE_MAP:
                x = nf_value()
                if op.name in _NODE_SCALE_NAMES:
                    aux = inputs.node_aux.get(op.name)
                    if aux is None:
                        raise DiffExecUnsupported(
                            f"node map {op.name!r} has no aux input"
                        )
                    out = [
                        [v * aux[i] for v in row]
                        for i, row in enumerate(x)
                    ]
                elif op.name == "relu":
                    out = [
                        [v if v > 0 else Fraction(0) for v in row]
                        for row in x
                    ]
                else:
                    raise DiffExecUnsupported(
                        f"node map {op.name!r} has no exact semantics"
                    )
                last_nf = out
                group_out_nf = out
                final, final_shape = out, "NF"
                continue
            else:
                raise DiffExecUnsupported(
                    f"op kind {kind} has no exact semantics"
                )
            # Common tail for edge-aligned producers.
            last_e1 = vals
            last_e1_nonbcast = vals
            bcast_after_reduce = False
            final, final_shape = vals, "E1"

        # Postponed epilogue: transform the aggregate output at center
        # granularity, in listed (chain) order.
        if group.postponed:
            if group_out_nf is None:
                raise DiffExecUnsupported(
                    "postponed ops in a group without an aggregate "
                    "output to transform"
                )
            for op in group.postponed:
                if op.kind == OpKind.BCAST:
                    continue  # the denominator's carrier; no transform
                if op.kind == OpKind.EDGE_DIV:
                    if last_reduce is None:
                        raise DiffExecUnsupported(
                            "postponed division without a reduction"
                        )
                    for c in range(num_nodes):
                        if not adj[c]:
                            continue  # no edges -> nothing was divided
                        d = last_reduce[c]
                        group_out_nf[c] = [
                            v / d for v in group_out_nf[c]
                        ]
                elif (
                    op.kind == OpKind.NODE_MAP
                    and op.name in _NODE_SCALE_NAMES
                ):
                    aux = inputs.node_aux[op.name]
                    for c in range(num_nodes):
                        group_out_nf[c] = [
                            v * aux[c] for v in group_out_nf[c]
                        ]
                else:
                    raise DiffExecUnsupported(
                        f"postponed {op.name!r} has no center-"
                        f"granularity semantics"
                    )
            last_nf = group_out_nf
            final, final_shape = group_out_nf, "NF"

    if final is None:
        raise DiffExecUnsupported("empty plan")
    if final_shape == "NF":
        return [list(row) for row in final]
    # Normalize vectors to single-column matrices for uniform compare.
    return [[v] for v in final]


def render_output(exact: List[List[Fraction]]) -> np.ndarray:
    """Correctly-rounded float64 rendering of an exact result.

    Equal rationals render to bit-identical doubles, which is what
    makes the ``ForwardResult`` outputs of a verified rewrite
    byte-for-byte equal.
    """
    return np.array(
        [[float(v) for v in row] for row in exact], dtype=np.float64
    )


def differential_verify(
    original: FusionPlan,
    rewritten: FusionPlan,
    ops: List[Op],
    feat_len: int = 5,
) -> Tuple[bool, str]:
    """Execute both plans exactly; ``(ok, detail)``.

    ``ok`` means the exact results are equal rationals *and* their
    float64 renderings are byte-identical (the former implies the
    latter; both are checked so the contract stays visible).  A chain
    the interpreter cannot model returns ``(False, reason)`` — the
    engine treats unverifiable as unacceptable.
    """
    adj, n = verification_graph()
    num_edges = sum(len(nbrs) for nbrs in adj)
    node_maps = [op.name for op in ops if op.kind == OpKind.NODE_MAP]
    inputs = exact_inputs(n, num_edges, feat_len, node_maps)
    try:
        a = interpret_plan(original, adj, inputs)
        b = interpret_plan(rewritten, adj, inputs)
    except DiffExecUnsupported as exc:
        return False, f"unsupported: {exc}"
    if len(a) != len(b) or any(
        len(ra) != len(rb) for ra, rb in zip(a, b)
    ):
        return False, "outputs differ in shape"
    for i, (ra, rb) in enumerate(zip(a, b)):
        for j, (va, vb) in enumerate(zip(ra, rb)):
            if va != vb:
                return False, (
                    f"outputs diverge at [{i}][{j}]: {va} != {vb}"
                )
    if render_output(a).tobytes() != render_output(b).tobytes():
        return False, "float64 renderings are not byte-identical"
    return True, "exact outputs equal; float64 renderings bit-identical"
