"""Pass registry: how analysis passes plug into the lint drivers.

Pass names are no longer a hard-coded taxonomy: each pass module
registers a :class:`LintPass` at import time, and the drivers
(:func:`~repro.analysis.driver.verify_lowering`,
``lint_chain``/``lint_shipped``/``lint_plan``) iterate the registry, so
a new pass lands by adding one module — no driver edits.  A pass
exposes up to three hooks, one per scope it analyzes:

* ``chain(ops)`` — properties of the op chain alone, independent of any
  graph or lowering (linearity is one); run once per model by
  ``lint_shipped`` instead of once per pipeline.
* ``lowering(ctx)`` — properties of one lowered (plan, kernels, layout)
  triple; run for every pipeline in the sweep and for every
  :class:`~repro.core.plan.LayerRecord` of a plan artifact.
* ``artifact(plan, graph, config)`` — whole-:class:`CompiledPlan`
  properties that need the complete kernel stream or the recorded
  peak-memory/stage metadata; run only by ``lint_plan``.
* ``shard(ctx)`` — properties of a
  :class:`~repro.shard.partition.ShardPlan` (plus, when available, its
  per-partition plans and stitched device streams); run by
  :func:`~repro.analysis.shardlint.lint_shard` with a
  :class:`~repro.analysis.shardlint.ShardLintContext`.

A pass that can also *repair* what it reports exposes a fourth hook,
``rewrite(ctx)``, returning :class:`RewriteAction` candidates — one per
advisory finding the pass would emit on the same context, correlated by
``(code, where)``.  Actions are proposals, never truths: the rewrite
engine (:mod:`repro.analysis.rewrite`) re-lowers each candidate plan,
re-runs every registered pass over it, and differentially executes it
against the original before accepting.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Tuple

from ..core.compgraph import FusionPlan, Op
from ..core.lowering import ExecLayout
from ..gpusim.config import GPUConfig
from ..gpusim.kernel import KernelSpec
from ..graph.csr import CSRGraph
from .findings import Finding

__all__ = ["LintContext", "LintPass", "RewriteAction", "register_pass",
           "lint_passes", "pass_names"]


@dataclasses.dataclass(frozen=True)
class LintContext:
    """Everything a lowering-scope pass may inspect."""

    ops: List[Op]
    plan: FusionPlan
    kernels: List[KernelSpec]
    graph: CSRGraph
    feat_len: int
    config: GPUConfig
    layout: ExecLayout
    grouped: bool
    agg_compute_scale: float = 1.0
    agg_uncoalesced: float = 1.0


@dataclasses.dataclass(frozen=True)
class RewriteAction:
    """One candidate plan transformation proposed by a pass.

    ``code``/``where`` match the finding the action would fix, exactly
    as the pass emits them (the rewrite engine correlates the two by
    string equality).  ``build()`` returns a *new* :class:`FusionPlan`
    with the transformation applied — the source plan is never mutated,
    so a rejected candidate costs nothing.
    """

    code: str
    where: str
    description: str
    build: Callable[[], FusionPlan]


@dataclasses.dataclass(frozen=True)
class LintPass:
    """One registered pass: a name, a one-liner, and its scope hooks."""

    name: str
    doc: str
    chain: Optional[Callable[[List[Op]], List[Finding]]] = None
    lowering: Optional[Callable[[LintContext], List[Finding]]] = None
    artifact: Optional[
        Callable[..., List[Finding]]
    ] = None  # (plan, graph, config) -> findings
    rewrite: Optional[
        Callable[[LintContext], List["RewriteAction"]]
    ] = None  # advisory findings -> candidate fixes
    shard: Optional[
        Callable[..., List[Finding]]
    ] = None  # (ShardLintContext) -> findings


_PASSES: Dict[str, LintPass] = {}


def register_pass(p: LintPass) -> LintPass:
    """Register (or replace, by name) a pass; returns it for sugar."""
    _PASSES[p.name] = p
    return p


def lint_passes() -> Tuple[LintPass, ...]:
    """All registered passes, in registration order."""
    return tuple(_PASSES.values())


def pass_names() -> Tuple[str, ...]:
    return tuple(_PASSES)
