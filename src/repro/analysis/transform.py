"""Plan surgery: the transformations the rewrite actions apply.

Two primitives cover every advisory the passes currently emit:

* :func:`merge_boundary` — fuse two adjacent groups into one kernel
  (the FP002 redundancy bypass and the FP003 visible-range fusion both
  reduce to deleting one kernel boundary);
* :func:`postpone_group` — move a whole group's ops into the postponed
  list of the next downstream AGGREGATE group (the HB003 sync elision:
  the §4.2 linear-property rewrite applied after the fact).

Both are *pure*: they deep-copy the group structure and return a new
:class:`FusionPlan`, so the rewrite engine can propose, verify and
reject candidates without ever touching the plan under analysis.
Neither primitive checks legality — that is deliberately left to the
verification loop, which re-runs every registered pass on the result.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.compgraph import FusionGroup, FusionPlan, Op, OpKind

__all__ = [
    "clone_plan",
    "chain_order",
    "merge_boundary",
    "postpone_group",
]


def clone_plan(plan: FusionPlan, label: str = "") -> FusionPlan:
    """Structural copy: fresh groups and lists, shared (frozen) ops."""
    return FusionPlan(
        [FusionGroup(list(g.ops), list(g.postponed)) for g in plan.groups],
        label=label or plan.label,
    )


def chain_order(ops: List[Op]) -> Dict[str, int]:
    """Op name -> position in the source chain (names are unique)."""
    return {op.name: i for i, op in enumerate(ops)}


def merge_boundary(plan: FusionPlan, gi: int, label: str = "") -> FusionPlan:
    """Fuse group ``gi + 1`` into group ``gi``, deleting one boundary.

    The right group's ops run after the left group's; postponed ops of
    both ride along (they execute at kernel end either way).
    """
    if not 0 <= gi < len(plan.groups) - 1:
        raise IndexError(f"no kernel boundary {gi}|{gi + 1} in the plan")
    out = clone_plan(plan, label)
    left, right = out.groups[gi], out.groups[gi + 1]
    merged = FusionGroup(
        left.ops + right.ops, left.postponed + right.postponed
    )
    out.groups[gi:gi + 2] = [merged]
    return out


def _next_aggregate(plan: FusionPlan, gi: int) -> Optional[int]:
    for gj in range(gi + 1, len(plan.groups)):
        if any(op.kind == OpKind.AGGREGATE for op in plan.groups[gj].ops):
            return gj
    return None


def postpone_group(
    plan: FusionPlan,
    gi: int,
    order: Dict[str, int],
    label: str = "",
) -> Optional[FusionPlan]:
    """Move group ``gi``'s ops into the next AGGREGATE group's postponed
    list (the linear-property sync elision), deleting group ``gi``.

    ``order`` is the source chain's name->position map; the combined
    postponed list keeps chain order regardless of the sequence in
    which groups were postponed.  Returns None when no downstream
    aggregate exists to postpone into.
    """
    if not 0 <= gi < len(plan.groups):
        raise IndexError(f"no group {gi} in the plan")
    if plan.groups[gi].postponed:
        return None  # a group hosting postponed ops is not movable
    gj = _next_aggregate(plan, gi)
    if gj is None:
        return None
    out = clone_plan(plan, label)
    moved = out.groups[gi].ops
    host = out.groups[gj]
    host.postponed = sorted(
        host.postponed + moved, key=lambda op: order[op.name]
    )
    del out.groups[gi]
    return out
