"""Pass 1 — fusion legality.

Re-derives, from the op-kind effects table alone (never from
``plan_fusion``'s rules), whether a :class:`FusionPlan` is a legal
execution of its op chain:

* **conservation** — fusion must not drop, duplicate, or reorder ops;
* **visibility** — a consumer may read a producer's value inside the
  same kernel only if the producer's data visible range covers it.
  Per-element producers complete at THREAD scope, so aligned consumers
  chain freely.  A fused segment reduction is complete only at BLOCK
  scope — and the lowered edge-parallel chunking does not align blocks
  with segment boundaries, so an in-kernel consumer would read partial
  sums; under neighbor grouping the reduction's scope is promoted to
  GLOBAL (a center's edges span blocks), making the same read wrong for
  a second reason.  Either way a consumer of reduced data needs the
  global synchronization of a kernel boundary.  AGGREGATE / DENSE
  outputs complete at kernel end; the only legal same-kernel consumer
  is a *linear* elementwise epilogue (scaling distributes over the
  partial sums).
* **postponement** — a postponed op must be linear in its edge operand
  (or a BCAST materialization whose consumer is postponed with it), its
  host group must contain the AGGREGATE it was moved into, and no
  non-postponed op may read its output at its original position.

The def-use derivation below resolves each op's operands by walking the
chain (``OP_EFFECTS[...].reads``), which is what makes the pass
independent: it re-discovers who reads whom instead of trusting the
planner.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.compgraph import OP_EFFECTS, FusionPlan, Op, OpKind
from .findings import ERROR, Finding, make_finding, register_code
from .registry import LintPass, register_pass

__all__ = ["chain_dataflow", "check_fusion_legality"]

PASS = "legality"

LG001 = register_code(
    "LG001", PASS, ERROR,
    "fusion plan contains an op the chain does not",
    """A fusion group holds an op that is not in the source chain (or a
duplicate of one already matched).  Fusion partitions the chain; it
must conserve the op multiset exactly — an extra op means the planner
invented or duplicated work.""",
)
LG002 = register_code(
    "LG002", PASS, ERROR,
    "fusion plan dropped a chain op",
    """An op of the source chain appears in no fusion group: the plan
would simply not execute it.  Fusion must conserve the op multiset.""",
)
LG003 = register_code(
    "LG003", PASS, ERROR,
    "non-postponed ops reordered across the plan",
    """Reading fusion groups in execution order yields the chain's
non-postponed ops out of their original order.  Only the linear-property
postponement may move an op; everything else must keep chain order.""",
)
LG004 = register_code(
    "LG004", PASS, ERROR,
    "postponed op is not linear in its edge operand",
    """An op was moved past an aggregation but is neither linear nor a
BCAST materialization: applying it to the aggregated output instead of
per edge does not commute with the sum, so results would change.""",
)
LG005 = register_code(
    "LG005", PASS, ERROR,
    "postponed op's host group has no later AGGREGATE",
    """A postponed op landed in a group that contains no aggregation
after it — there is nothing to postpone past, so the op would execute
at the wrong granularity for no reason.""",
)
LG006 = register_code(
    "LG006", PASS, ERROR,
    "BCAST postponed without a postponed consumer",
    """A bare broadcast is constant in its edge operand; it can ride
along a postponement only as the materialization feeding another
postponed op.  Postponing it alone is meaningless and signals a
planner bug.""",
)
LG007 = register_code(
    "LG007", PASS, ERROR,
    "consumer reads a value that has not been produced yet",
    """Def-use resolution found a consumer scheduled at or before its
producer (or reading a value whose producer was postponed past it).
Execution order within a plan is groups-in-order, ranks-in-order,
postponed ops at kernel end.""",
)
LG008 = register_code(
    "LG008", PASS, ERROR,
    "in-kernel read of a fused segment reduction (partial sums)",
    """A consumer reads a SEG_REDUCE output inside the producing kernel.
The reduction is complete only at BLOCK scope (or GLOBAL under neighbor
grouping), and edge-parallel chunking does not align blocks with
segment boundaries — the consumer would read partial sums.  A kernel
boundary (global sync) is required.""",
)
LG009 = register_code(
    "LG009", PASS, ERROR,
    "illegal in-kernel consumer of an aggregation/GEMM output",
    """Only a linear elementwise epilogue may read an AGGREGATE or DENSE
output inside its own kernel (scaling distributes over the partial
sums).  Any other consumer needs the output complete, i.e. a kernel
boundary.""",
)


def chain_dataflow(ops: List[Op]) -> List[List[int]]:
    """For each chain position, the positions whose output it reads.

    Operands produced before the chain (node features, the u/v scalars
    of U_ADD_V) resolve to nothing — they are globally visible inputs.
    """
    deps: List[List[int]] = []
    last_e1: Optional[int] = None        # most recent edge-aligned value
    last_e1_nonbcast: Optional[int] = None  # ... excluding BCAST copies
    last_bcast: Optional[int] = None
    last_reduce: Optional[int] = None
    last_nf: Optional[int] = None
    for i, op in enumerate(ops):
        d: List[int] = []
        kind = op.kind
        if kind in (OpKind.EDGE_MAP,):
            if last_e1 is not None:
                d.append(last_e1)
        elif kind == OpKind.SEG_REDUCE:
            if last_e1 is not None:
                d.append(last_e1)
        elif kind == OpKind.BCAST:
            if last_reduce is not None:
                d.append(last_reduce)
        elif kind == OpKind.EDGE_DIV:
            # Numerator: the running edge value (a BCAST is the
            # denominator's materialization, not the numerator).
            if last_e1_nonbcast is not None:
                d.append(last_e1_nonbcast)
            # Denominator: the broadcast segment sum — through the
            # BCAST if one materialized it, else straight from the
            # reduction (DGL's e_div_v form).
            denom = last_bcast if (
                last_bcast is not None
                and (last_reduce is None or last_bcast > last_reduce)
            ) else last_reduce
            if denom is not None:
                d.append(denom)
        elif kind == OpKind.AGGREGATE:
            if last_e1 is not None:
                d.append(last_e1)  # per-edge weights
            if last_nf is not None:
                d.append(last_nf)  # feature rows
        elif kind in (OpKind.NODE_MAP, OpKind.DENSE):
            if last_nf is not None:
                d.append(last_nf)
        deps.append(d)
        # Update producer trackers from the effects table.
        out = op.out_shape
        if out in ("E1", "EF") and kind != OpKind.SEG_REDUCE:
            last_e1 = i
            if kind == OpKind.BCAST:
                last_bcast = i
            else:
                last_e1_nonbcast = i
        if out == "NF":
            last_nf = i
        if kind == OpKind.SEG_REDUCE:
            last_reduce = i
    return deps


def _op_key(op: Op) -> Tuple:
    return (op.name, op.kind, op.out_shape, op.linear)


def _match_plan_positions(
    ops: List[Op], plan: FusionPlan, findings: List[Finding]
) -> Optional[Dict[int, Tuple[int, int, bool]]]:
    """Map chain position -> (group, rank-in-group, postponed).

    Emits conservation findings (dropped / duplicated ops) and order
    findings (non-postponed ops permuted across the plan); returns None
    when the plan is too broken to analyze further.
    """
    unmatched = list(range(len(ops)))
    pos: Dict[int, Tuple[int, int, bool]] = {}
    for gi, group in enumerate(plan.groups):
        entries = [(op, False) for op in group.ops] + [
            (op, True) for op in group.postponed
        ]
        for rank, (op, postponed) in enumerate(entries):
            hit = next(
                (i for i in unmatched if _op_key(ops[i]) == _op_key(op)),
                None,
            )
            if hit is None:
                findings.append(make_finding(
                    LG001, f"group {gi}: {op.name}",
                    "op does not appear in the chain (duplicated or "
                    "foreign op) — fusion must conserve the op multiset",
                ))
                return None
            unmatched.remove(hit)
            pos[hit] = (gi, rank, postponed)
    for i in unmatched:
        findings.append(make_finding(
            LG002, f"chain op {i}: {ops[i].name}",
            "op dropped by the fusion plan — fusion must conserve the "
            "op multiset",
        ))
    if unmatched:
        return None
    # Non-postponed ops must keep their chain order across groups.
    seq = sorted(
        (i for i in pos if not pos[i][2]),
        key=lambda i: (pos[i][0], pos[i][1]),
    )
    if seq != sorted(seq):
        findings.append(make_finding(
            LG003, "plan",
            "non-postponed ops were reordered relative to the chain",
        ))
    return pos


def check_fusion_legality(
    ops: List[Op], plan: FusionPlan, *, grouped: bool
) -> List[Finding]:
    """Verify that ``plan`` is a legal fusion of ``ops``."""
    findings: List[Finding] = []
    ops = list(ops)
    pos = _match_plan_positions(ops, plan, findings)
    if pos is None:
        return findings
    deps = chain_dataflow(ops)

    def executes_before(a: int, b: int) -> bool:
        """Does chain op ``a`` produce its value before ``b`` reads it?

        Groups execute in order; within a group normal ops run in rank
        order and postponed ops run at kernel end (after every normal
        op), in their listed order.
        """
        ga, ra, pa = pos[a]
        gb, rb, pb = pos[b]
        if ga != gb:
            return ga < gb
        if pa != pb:
            return pb  # postponed consumers run after normal producers
        return ra < rb

    for i, op in enumerate(ops):
        gi, _, postponed = pos[i]
        group = plan.groups[gi]
        if postponed:
            eff = OP_EFFECTS[op.kind]
            if not (op.linear or op.kind == OpKind.BCAST):
                findings.append(make_finding(
                    LG004, f"group {gi}: {op.name}",
                    "postponed past an aggregation but not linear in its "
                    "edge operand — the rewrite does not commute with "
                    "the sum",
                ))
            agg_positions = [
                j for j, o in enumerate(ops)
                if o.kind == OpKind.AGGREGATE and pos.get(j, (None,))[0] == gi
                and not pos[j][2]
            ]
            if not any(j > i for j in agg_positions):
                findings.append(make_finding(
                    LG005, f"group {gi}: {op.name}",
                    "postponed into a group that holds no later "
                    "AGGREGATE to postpone past",
                ))
            if op.kind == OpKind.BCAST and not eff.can_be_linear:
                consumers = [
                    j for j in range(len(ops))
                    if i in deps[j] and pos[j][2] and pos[j][0] == gi
                ]
                if not consumers:
                    findings.append(make_finding(
                        LG006, f"group {gi}: {op.name}",
                        "BCAST postponed without a postponed consumer — "
                        "a bare broadcast is constant in its edge "
                        "operand and cannot be postponed on its own",
                    ))
        for d in deps[i]:
            gd, _, pd = pos[d]
            producer = ops[d]
            if not executes_before(d, i):
                if pd and gd == gi and op.kind == OpKind.AGGREGATE:
                    # The postponement rewrite itself: the aggregate
                    # deliberately reads the *pre*-postponement value
                    # and the moved op is applied to its output.  The
                    # substitution's legality (linearity / BCAST
                    # companionship) is checked on the postponed op.
                    continue
                findings.append(make_finding(
                    LG007,
                    f"group {gi}: {op.name} <- {producer.name}",
                    "reads a value that has not been produced yet "
                    + ("(its producer was postponed past it)" if pd
                       else "(producer scheduled later)"),
                ))
                continue
            if gd != gi or pd:
                continue  # earlier kernel (global sync) or epilogue order
            # Same kernel, normal producer: check visible range.
            if producer.kind == OpKind.SEG_REDUCE:
                scope = "GLOBAL (neighbor grouping splits centers " \
                    "across blocks)" if grouped else \
                    "BLOCK, and edge-parallel chunking does not align " \
                    "blocks with segment boundaries"
                findings.append(make_finding(
                    LG008,
                    f"group {gi}: {op.name} <- {producer.name}",
                    f"reads a segment reduction fused into the same "
                    f"kernel; the reduction completes only at {scope} "
                    f"scope, so the consumer would read partial sums — "
                    f"a kernel boundary (global sync) is required",
                ))
            elif producer.kind in (OpKind.AGGREGATE, OpKind.DENSE):
                if not (op.linear and OP_EFFECTS[op.kind].elementwise):
                    findings.append(make_finding(
                        LG009,
                        f"group {gi}: {op.name} <- {producer.name}",
                        "reads an aggregation/GEMM output inside its own "
                        "kernel; only a linear elementwise epilogue "
                        "(which distributes over the partial sums) may "
                        "fuse here",
                    ))
            # Elementwise producers complete at THREAD scope: aligned
            # same-kernel consumers are always legal.
    return findings


register_pass(LintPass(
    name=PASS,
    doc="fusion legality from re-derived def-use/visible ranges",
    lowering=lambda ctx: check_fusion_legality(
        ctx.ops, ctx.plan, grouped=ctx.grouped
    ),
))
