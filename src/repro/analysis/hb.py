"""Pass 5 — cross-kernel happens-before synchronization safety.

The gpusim executor runs kernels **sequentially in launch order**
(null-stream semantics): every kernel's completion is a device-wide
synchronization, and blocks inside a kernel are list-scheduled in issue
order.  Under that model the happens-before relation over a lowered
kernel stream is the total launch order — a buffer's *producing sync*
is the completion of the kernel that writes it, so a read is safe iff
every writer of the buffer launches strictly before the reader.

That sounds trivial until the adapter starts moving synchronizations:
linear-property postponement deletes kernel boundaries, and a bug there
(PR 2 found one by luck) reorders a consumer *before* the completion of
the reduction it reads — a stale read that no per-kernel pass can see.
This pass proves the ordering from the
:class:`~repro.gpusim.kernel.KernelDataflow` metadata lowering stamps
onto every kernel (excluded from memo fingerprints like
``block_center``):

* **HB001** (error) — a kernel reads a buffer whose producing sync has
  not happened at its launch (the producer launches at or after the
  reader): a stale read.
* **HB002** (warning) — a kernel reads a buffer no kernel in the stream
  writes: the ordering cannot be proven (a dropped producer, or
  metadata drift).
* **HB003** (info) — a provably removable sync: a kernel whose every op
  the adapter could postpone into a downstream aggregate (its ops
  commute with the sum) still runs as its own kernel, so the sync after
  it is paid for nothing.  This fires on unfused plans and is exactly
  the discount the ``linear`` fusion config takes.

Kernels without dataflow metadata (lowered outside the shared
``lower_plan`` path — GEMMs, SAGE phases) take part in the launch order
but carry no buffer obligations, mirroring how ``lint_plan`` skips
``chain=None`` layers.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

from ..gpusim.kernel import KernelSpec
from .findings import ERROR, INFO, WARNING, Finding, register_code
from .findings import make_finding
from .registry import LintContext, LintPass, RewriteAction, register_pass
from .transform import chain_order, postpone_group

__all__ = [
    "check_happens_before",
    "check_happens_before_multidev",
    "hb_rewrites",
]

PASS = "hb"

HB001 = register_code(
    "HB001", PASS, ERROR,
    "stale read: buffer read before its producing sync",
    """A kernel reads a buffer whose writer launches at or after it.
Under the gpusim scheduling model (sequential launch order, each
kernel completion a device-wide sync) the value is not published yet —
for reduced buffers the reader would observe partial sums, for others
garbage.  This is the cross-kernel bug class sync postponement can
introduce: the adapter moved or removed a kernel boundary that the
dataflow still relies on.""",
)
HB002 = register_code(
    "HB002", PASS, WARNING,
    "dangling read: no kernel in the stream writes the buffer",
    """A kernel's dataflow metadata names a read buffer that no kernel
in the analyzed stream produces.  The happens-before relation cannot be
proven: either a producer kernel was dropped from the stream, or the
lowering's dataflow stamping drifted from the plan.""",
)
HB003 = register_code(
    "HB003", PASS, INFO,
    "provably removable sync: postponable kernel before an aggregate",
    """Every op in this kernel commutes with the downstream sum
aggregation (linear property / BCAST materialization), and its output
feeds an aggregate later in the stream — the kernel boundary (global
sync) after it is provably removable by linear-property postponement,
which the planner did not apply.  The §4.2 K1/K2 normalization discount
is left on the table.""",
)
HB004 = register_code(
    "HB004", PASS, ERROR,
    "cross-device stale read: ghost data read before its transfer "
    "completes",
    """Under the per-device stream model (each device runs its kernels
sequentially; devices are ordered only by explicit transfer-dependency
edges) a kernel reads a buffer whose only writers live on *other*
devices, and no dependency path orders any of those writes before this
launch.  For halo exchanges this means a partition aggregates over
ghost feature rows the exchange has not delivered yet — the
multi-device analogue of HB001, invisible to any single-stream
checker.""",
)
HB005 = register_code(
    "HB005", PASS, WARNING,
    "dead transfer: moved bytes are never read",
    """A transfer kernel (halo exchange or mirror reduction) writes a
buffer no later kernel on any device reads.  The link time and launch
overhead are paid for data nobody consumes — a stale halo set, an
over-wide exchange, or dataflow metadata drift in the stream
builder.""",
)


def _reaches_aggregate(
    start: int, kernels: Sequence[KernelSpec],
    readers: Dict[str, List[int]],
) -> bool:
    """Does ``start``'s output feed a downstream aggregate kernel,
    possibly through other postponable kernels?"""
    frontier = [start]
    seen = set()
    while frontier:
        ki = frontier.pop()
        if ki in seen:
            continue
        seen.add(ki)
        flow = kernels[ki].dataflow
        for buf in flow.writes:
            for reader in readers.get(buf, []):
                if reader <= ki:
                    continue
                rflow = kernels[reader].dataflow
                if rflow.aggregate:
                    return True
                if rflow.postponable:
                    frontier.append(reader)
    return False


def check_happens_before(
    kernels: Sequence[KernelSpec], *, opportunities: bool = True
) -> List[Finding]:
    """Verify the happens-before order of one lowered kernel stream.

    ``kernels`` is a launch-ordered stream — one layer's lowering or a
    whole :class:`~repro.core.plan.CompiledPlan` kernel list (per-layer
    name prefixes keep buffers distinct).  ``opportunities=False``
    silences HB003 (used when the same stream is linted twice at
    different scopes, so advisories are not duplicated).
    """
    findings: List[Finding] = []
    writers: Dict[str, List[int]] = {}
    readers: Dict[str, List[int]] = {}
    for ki, kernel in enumerate(kernels):
        flow = kernel.dataflow
        if flow is None:
            continue
        for buf in flow.writes:
            writers.setdefault(buf, []).append(ki)
        for buf in flow.reads:
            readers.setdefault(buf, []).append(ki)

    for ki, kernel in enumerate(kernels):
        flow = kernel.dataflow
        if flow is None:
            continue
        where = f"kernel {ki}: {kernel.name}"
        for buf in flow.reads:
            producing = writers.get(buf)
            if not producing:
                findings.append(make_finding(
                    HB002, where,
                    f"reads buffer {buf!r} that no kernel in the stream "
                    f"writes — the happens-before order cannot be "
                    f"proven (dropped producer or stale dataflow "
                    f"metadata)",
                ))
                continue
            late = [w for w in producing if w >= ki]
            if late:
                wk = kernels[late[0]]
                sync = (
                    "producing sync (atomic partial-sum completion)"
                    if wk.dataflow is not None
                    and buf in wk.dataflow.sync_writes
                    else "producing kernel's completion sync"
                )
                findings.append(make_finding(
                    HB001, where,
                    f"reads buffer {buf!r} but its {sync} — kernel "
                    f"{late[0]} ({wk.name}) — happens at or after this "
                    f"launch: a stale read under the sequential "
                    f"launch-order model",
                ))
    if opportunities:
        for ki, kernel in enumerate(kernels):
            flow = kernel.dataflow
            if flow is None or not flow.postponable:
                continue
            if _reaches_aggregate(ki, kernels, readers):
                findings.append(make_finding(
                    HB003, f"kernel {ki}: {kernel.name}",
                    "every op commutes with the downstream aggregation "
                    "— the global sync after this kernel is provably "
                    "removable by linear-property postponement, which "
                    "the planner did not apply",
                ))
    return findings


def check_happens_before_multidev(
    streams: Mapping[int, Sequence[KernelSpec]],
    deps: Mapping[Tuple[int, int], Sequence[Tuple[int, int]]],
) -> List[Finding]:
    """Happens-before verification over per-device kernel streams.

    Generalizes :func:`check_happens_before` from the single null-stream
    model to the multi-device model :mod:`repro.gpusim.multidev`
    executes: each device ``d`` runs ``streams[d]`` sequentially in
    launch order (every completion a device-local sync), and the only
    cross-device ordering is the explicit dependency edges ``deps`` —
    ``deps[(d, i)]`` lists the ``(q, j)`` kernels that must complete
    before ``streams[d][i]`` may start (transfer edges: an exchange
    waits on the peers' layer outputs, an aggregation on its ghost
    delivery).

    The proof runs on vector clocks: ``clock[(d, i)][q]`` is the number
    of device-``q`` kernels provably complete when ``(d, i)`` launches,
    propagated along same-device program order and the dependency edges
    in topological order.  A read of a buffer is safe iff some writer
    ``(q, j)`` satisfies ``j < clock[(d, i)][q]``.

    Findings: HB002 for buffers nobody writes, HB001 when an unordered
    writer shares the reader's device (the single-stream bug class),
    HB004 when every unordered writer is remote (a ghost read racing
    its transfer), HB005 for transfer kernels whose written buffers no
    later kernel reads.
    """
    devices = sorted(streams)
    writers: Dict[str, List[Tuple[int, int]]] = {}
    readers: Dict[str, List[Tuple[int, int]]] = {}
    for d in devices:
        for i, kernel in enumerate(streams[d]):
            flow = kernel.dataflow
            if flow is None:
                continue
            for buf in flow.writes:
                writers.setdefault(buf, []).append((d, i))
            for buf in flow.reads:
                readers.setdefault(buf, []).append((d, i))

    # Vector clocks in dependency order (Kahn).  Graph nodes are every
    # kernel; edges: (d, i-1) -> (d, i) plus the explicit deps.
    succs: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
    indeg: Dict[Tuple[int, int], int] = {}
    for d in devices:
        for i in range(len(streams[d])):
            node = (d, i)
            indeg[node] = 0
    for d in devices:
        for i in range(1, len(streams[d])):
            succs.setdefault((d, i - 1), []).append((d, i))
            indeg[(d, i)] += 1
    for node, preds in deps.items():
        for pred in preds:
            if pred not in indeg or node not in indeg:
                continue
            succs.setdefault(pred, []).append(node)
            indeg[node] += 1
    clock: Dict[Tuple[int, int], Dict[int, int]] = {
        node: dict.fromkeys(devices, 0) for node in indeg
    }
    frontier = sorted(n for n, k in indeg.items() if k == 0)
    order: List[Tuple[int, int]] = []
    while frontier:
        node = frontier.pop()
        order.append(node)
        d, i = node
        # Knowledge a successor inherits: everything this kernel knew
        # at launch, plus this kernel's own completion.
        done = dict(clock[node])
        done[d] = max(done[d], i + 1)
        for nxt in succs.get(node, ()):
            cn = clock[nxt]
            for q, v in done.items():
                if v > cn[q]:
                    cn[q] = v
            indeg[nxt] -= 1
            if indeg[nxt] == 0:
                frontier.append(nxt)
    findings: List[Finding] = []
    if len(order) < len(indeg):
        # Cyclic dependency edges: the unprocessed kernels keep their
        # partial clocks (racing reads below still surface), but the
        # cycle itself is a deadlock — same-device program order is
        # acyclic, so the cycle necessarily crosses devices.
        stuck = sorted(n for n in indeg if indeg[n] > 0)
        d, i = stuck[0]
        findings.append(make_finding(
            HB004, f"device {d} kernel {i}: {streams[d][i].name}",
            f"transfer dependency edges form a cycle through "
            f"{len(stuck)} kernels — the streams deadlock; no "
            f"happens-before order exists",
        ))
    for d in devices:
        for i, kernel in enumerate(streams[d]):
            flow = kernel.dataflow
            if flow is None:
                continue
            where = f"device {d} kernel {i}: {kernel.name}"
            c = clock[(d, i)]
            for buf in flow.reads:
                producing = writers.get(buf)
                if not producing:
                    findings.append(make_finding(
                        HB002, where,
                        f"reads buffer {buf!r} that no kernel on any "
                        f"device writes — the happens-before order "
                        f"cannot be proven (dropped producer or stale "
                        f"dataflow metadata)",
                    ))
                    continue
                ordered = any(j < c[q] for q, j in producing)
                if ordered:
                    continue
                local = [(q, j) for q, j in producing if q == d]
                if local:
                    q, j = local[0]
                    wk = streams[q][j]
                    findings.append(make_finding(
                        HB001, where,
                        f"reads buffer {buf!r} but its producing "
                        f"kernel — device {q} kernel {j} ({wk.name}) — "
                        f"launches at or after it in the same device "
                        f"stream: a stale read",
                    ))
                else:
                    q, j = producing[0]
                    wk = streams[q][j]
                    findings.append(make_finding(
                        HB004, where,
                        f"reads buffer {buf!r} whose writer — device "
                        f"{q} kernel {j} ({wk.name}) — is on another "
                        f"device with no dependency path ordering the "
                        f"transfer before this launch: the aggregation "
                        f"races its ghost delivery",
                    ))
    for d in devices:
        for i, kernel in enumerate(streams[d]):
            flow = kernel.dataflow
            if flow is None or kernel.tag != "transfer":
                continue
            for buf in flow.writes:
                consumed = any(
                    (q, j) != (d, i) for q, j in readers.get(buf, ())
                )
                if consumed:
                    continue
                # Re-published compute buffers (a reduction adding into
                # a buffer a compute kernel also writes) alias compute
                # output whose downstream dataflow may be elided — only
                # transfer-exclusive buffers are provably dead traffic.
                republished = any(
                    streams[q][j].tag != "transfer"
                    for q, j in writers.get(buf, ())
                    if (q, j) != (d, i)
                )
                if not republished:
                    findings.append(make_finding(
                        HB005, f"device {d} kernel {i}: {kernel.name}",
                        f"transfer writes buffer {buf!r} that no kernel "
                        f"on any device reads — link time paid for data "
                        f"nobody consumes",
                    ))
    return findings


def hb_rewrites(ctx: LintContext) -> List[RewriteAction]:
    """Candidate fixes for HB003: elide the removable sync by moving
    the postponable kernel's ops into the downstream aggregate group.

    One action per HB003 finding, same ``(code, where)`` strings.  A
    lone-BCAST postponement is still proposed here — the legality pass
    rejects it (LG006) until its consumer is postponed with it, which
    is exactly the propose/verify division of labour: the engine's
    reject is what sequences the two moves correctly.
    """
    readers: Dict[str, List[int]] = {}
    for ki, kernel in enumerate(ctx.kernels):
        if kernel.dataflow is None:
            continue
        for buf in kernel.dataflow.reads:
            readers.setdefault(buf, []).append(ki)
    order = chain_order(ctx.ops)
    plan = ctx.plan
    actions: List[RewriteAction] = []
    for ki, kernel in enumerate(ctx.kernels):
        flow = kernel.dataflow
        if flow is None or not flow.postponable:
            continue
        if ki >= len(plan.groups):
            continue  # stream/plan mismatch; other passes report it
        if not _reaches_aggregate(ki, ctx.kernels, readers):
            continue
        if postpone_group(plan, ki, order) is None:
            continue
        actions.append(RewriteAction(
            code=HB003,
            where=f"kernel {ki}: {kernel.name}",
            description=(
                f"postpone kernel {ki}'s ops past the downstream "
                f"aggregation (linear property), deleting its global "
                f"sync"
            ),
            build=lambda gi=ki: postpone_group(plan, gi, order),
        ))
    return actions


register_pass(LintPass(
    name=PASS,
    doc="happens-before sync safety over the lowered kernel stream",
    lowering=lambda ctx: check_happens_before(ctx.kernels),
    rewrite=hb_rewrites,
    # Whole-plan scope: the same checker over the full launch-ordered
    # stream catches cross-layer ordering damage; advisories already
    # fired per layer.
    artifact=lambda plan, graph, config: check_happens_before(
        plan.kernels, opportunities=False
    ),
))
