"""Pass 2 — linear-property verification.

The adapter postpones an op past a sum aggregation only when the op is
*linear* in its edge-aligned operand: ``f(sum x) == sum f(x)`` per
center (with any secondary operand held center-constant).  A wrong
``linear=True`` flag silently corrupts every result downstream of the
postponement, so this pass verifies each flag twice:

* **algebraically** — the op kind must be eligible at all
  (``OP_EFFECTS[kind].can_be_linear``): a BCAST is constant in its edge
  operand, a SEG_REDUCE/U_ADD_V has no edge operand to be linear in;
* **numerically** — the op's registered numeric semantics
  (:data:`~repro.core.compgraph.OP_NUMERIC`) are probed on randomized
  small segmented inputs for additivity, homogeneity, and commutation
  with segment-sum aggregation.  An op flagged linear whose name has no
  registered semantics cannot be verified and yields a warning.

The converse is also reported (as ``info``): an op whose semantics *do*
commute with aggregation but which is not flagged leaves a postponement
opportunity unused.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..core.compgraph import OP_EFFECTS, OP_NUMERIC, Op
from .findings import (
    ERROR,
    INFO,
    WARNING,
    Finding,
    make_finding,
    register_code,
)
from .registry import LintPass, register_pass

__all__ = ["probe_commutes_with_sum", "check_linear_flags"]

PASS = "linearity"

LN001 = register_code(
    "LN001", PASS, ERROR,
    "linear flag on an algebraically ineligible op kind",
    """The op kind cannot be linear in an edge operand (a BCAST is
constant in it; a SEG_REDUCE/U_ADD_V has none).  Postponing an op on
the strength of this flag would corrupt results.""",
)
LN002 = register_code(
    "LN002", PASS, WARNING,
    "linear flag without registered numeric semantics",
    """The op is flagged linear but its name has no OP_NUMERIC entry, so
the randomized distributivity probe cannot verify the flag.  Register
the op's semantics or drop the flag.""",
)
LN003 = register_code(
    "LN003", PASS, ERROR,
    "linear flag refuted by the distributivity probe",
    """The op's registered semantics failed additivity, homogeneity, or
commutation with segment sums on randomized inputs: it is not linear,
and postponing it would corrupt results.""",
)
LN004 = register_code(
    "LN004", PASS, WARNING,
    "numeric semantics raised during the distributivity probe",
    """The op's registered semantics threw on the probe's randomized
inputs; linearity is unverified either way.""",
)
LN005 = register_code(
    "LN005", PASS, INFO,
    "provably linear op not flagged linear",
    """The op's semantics commute with sum aggregation but the chain
does not flag it linear — a postponement opportunity (the paper's
§4.2 K1/K2 normalization discount) is left unused.""",
)

#: Probe sizes: enough segments/edges for a nonlinearity to show, small
#: enough that the probe costs microseconds.
_N_CENTERS = 13
_N_EDGES = 157
_RTOL = 1e-5


def probe_commutes_with_sum(
    fn, *, seed: int = 0, trials: int = 3
) -> Optional[bool]:
    """Randomized check that ``fn(x, aux)`` commutes with segment sums.

    ``fn`` maps an edge-aligned operand ``x`` (and a per-center-constant
    secondary operand ``aux``, broadcast per edge) to an edge-aligned
    output.  Returns True when, across all trials,

    * additivity: ``fn(a + b) == fn(a) + fn(b)``,
    * homogeneity: ``fn(c * a) == c * fn(a)``,
    * aggregation: ``segsum(fn(x, aux_e)) == fn(segsum(x), aux_c)``.
    """
    rng = np.random.default_rng(seed)
    for _ in range(trials):
        dst = rng.integers(0, _N_CENTERS, size=_N_EDGES)
        # Positive, well-conditioned aux (a segment-sum denominator or a
        # norm scale is positive in every shipped chain).
        aux_c = rng.uniform(0.5, 2.0, size=_N_CENTERS)
        aux_e = aux_c[dst]
        a = rng.standard_normal(_N_EDGES)
        b = rng.standard_normal(_N_EDGES)
        scale = float(rng.uniform(-3.0, 3.0))
        try:
            additive = np.allclose(
                fn(a + b, aux_e), fn(a, aux_e) + fn(b, aux_e), rtol=_RTOL
            )
            homogeneous = np.allclose(
                fn(scale * a, aux_e), scale * fn(a, aux_e), rtol=_RTOL
            )
            seg = np.bincount(
                dst, weights=fn(a, aux_e), minlength=_N_CENTERS
            )
            post = fn(np.bincount(dst, weights=a, minlength=_N_CENTERS),
                      aux_c)
            commutes = np.allclose(seg, np.asarray(post), rtol=_RTOL,
                                   atol=1e-9)
        except Exception:
            return None
        if not (additive and homogeneous and commutes):
            return False
    return True


def check_linear_flags(ops: List[Op], *, seed: int = 0) -> List[Finding]:
    """Verify every ``linear`` flag in an op chain (both directions)."""
    findings: List[Finding] = []
    for op in ops:
        eff = OP_EFFECTS[op.kind]
        fn = OP_NUMERIC.get(op.name)
        if op.linear:
            if not eff.can_be_linear:
                findings.append(make_finding(
                    LN001, op.name,
                    f"flagged linear but a {op.kind.value} op cannot be "
                    "linear in an edge operand (it is constant in it or "
                    "has none) — postponing it would corrupt results",
                ))
                continue
            if fn is None:
                findings.append(make_finding(
                    LN002, op.name,
                    "flagged linear but has no registered numeric "
                    "semantics (OP_NUMERIC) — the distributivity probe "
                    "cannot verify the flag",
                ))
                continue
            verdict = probe_commutes_with_sum(fn, seed=seed)
            if verdict is False:
                findings.append(make_finding(
                    LN003, op.name,
                    "flagged linear but its semantics do not commute "
                    "with sum aggregation (randomized distributivity "
                    "probe failed) — postponing it would corrupt "
                    "results",
                ))
            elif verdict is None:
                findings.append(make_finding(
                    LN004, op.name,
                    "numeric semantics raised during the distributivity "
                    "probe; linearity unverified",
                ))
        elif fn is not None and eff.can_be_linear and eff.elementwise:
            if probe_commutes_with_sum(fn, seed=seed):
                findings.append(make_finding(
                    LN005, op.name,
                    "commutes with sum aggregation but is not flagged "
                    "linear — a postponement opportunity is unused",
                ))
    return findings


register_pass(LintPass(
    name=PASS,
    doc="algebraic + randomized verification of linear flags",
    chain=check_linear_flags,
))
