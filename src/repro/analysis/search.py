"""Footprint-guided plan search: the analyses as an optimizer's oracle.

The rewrite engine (:mod:`repro.analysis.rewrite`) is greedy — it takes
the first verified fix and repeats.  This module searches: a beam over
the space of plans reachable through the passes' own rewrite proposals
(merge a boundary, postpone a group), scored by the symbolic N/E/F
footprint the footprint pass already computes.  The move generator and
the scoring function are both *reused analyses* — the search adds no
new judgment about legality or cost, only enumeration:

* **moves** — each candidate's proposals come from the registered
  ``rewrite`` hooks run on its own lowering, so the frontier only ever
  contains transformations some pass argued for;
* **verification** — every expanded candidate must pass all registered
  passes with zero errors/warnings *and* execute bit-identically to the
  **root** plan (not its parent: exactness is transitive, but verifying
  against the root keeps the guarantee independent of the path);
* **score** — lexicographic ``(peak symbolic footprint bytes evaluated
  on the plan's graph, kernel count, total flops)``: smaller is better.
  The footprint dominates (the paper's memory story), launches break
  ties, flops catch pathological rewrites that trade neither.

``optimize_plan`` applies the search to a :class:`CompiledPlan`
artifact layer by layer, re-lowers improved layers with the layer's own
recorded layout/scales, rebuilds the kernel stream, stamps provenance
into ``plan.extra`` and re-lints the rebuilt artifact before returning
it — an optimized plan that fails its own lint gate is discarded in
favour of the original.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.compgraph import FusionPlan, Op
from ..core.lowering import ExecLayout, lower_plan
from ..gpusim.config import GPUConfig
from ..gpusim.kernel import KernelSpec
from ..graph.csr import CSRGraph
from .footprint import layer_footprint
from .registry import LintContext
from .rewrite import (AppliedRewrite, RewriteStats, collect_actions,
                      plan_signature, verify_candidate)

__all__ = [
    "PlanScore",
    "SearchResult",
    "ShardChoice",
    "ShardScore",
    "score_lowering",
    "search_plan",
    "optimize_plan",
    "choose_partitioning",
]


@dataclasses.dataclass(frozen=True, order=True)
class PlanScore:
    """Lexicographic plan cost: smaller is better on every axis."""

    peak_bytes: float     # symbolic footprint peak, evaluated on graph
    num_kernels: int
    total_flops: float

    def to_dict(self) -> Dict[str, float]:
        return {
            "peak_bytes": float(self.peak_bytes),
            "num_kernels": int(self.num_kernels),
            "total_flops": float(self.total_flops),
        }


@dataclasses.dataclass
class SearchResult:
    """Outcome of one layer's beam search."""

    plan: FusionPlan
    kernels: List[KernelSpec]
    score: PlanScore
    original_score: PlanScore
    applied: List[AppliedRewrite]
    stats: RewriteStats
    nodes_expanded: int = 0

    @property
    def improved(self) -> bool:
        return self.score < self.original_score


def score_lowering(
    plan: FusionPlan,
    kernels: List[KernelSpec],
    graph: CSRGraph,
    feat_len: int,
) -> PlanScore:
    """Score one lowering: symbolic peak bytes, launches, flops."""
    n, e = graph.num_nodes, graph.num_edges
    live = layer_footprint(plan, kernels)
    if live is None:
        peak = float("inf")  # unanalyzable lowering never wins
    else:
        peak = max(
            expr.evaluate(n, e, feat_len) for _, expr in live
        )
    flops = float(sum(float(np.sum(k.block_flops)) for k in kernels))
    return PlanScore(peak, len(kernels), flops)


def search_plan(
    ops: List[Op],
    plan: FusionPlan,
    graph: CSRGraph,
    feat_len: int,
    config: GPUConfig,
    layout: ExecLayout,
    *,
    grouped: bool,
    agg_compute_scale: float = 1.0,
    agg_uncoalesced: float = 1.0,
    beam_width: int = 4,
    max_nodes: int = 64,
) -> SearchResult:
    """Beam search over pass-proposed rewrites of one layer's plan.

    The beam holds ``(score, plan, kernels, applied)`` states; each
    round expands every state's verified successors and keeps the best
    ``beam_width`` *new* states (a visited set on the structural plan
    signature prevents re-expansion — merge/postpone sequences commute
    and would otherwise be re-verified factorially often).  Search ends
    when a round adds no new state or ``max_nodes`` candidates have
    been expanded; the best state ever seen wins.
    """
    stats = RewriteStats()
    kernels = lower_plan(
        plan, graph, feat_len, config, layout,
        agg_compute_scale=agg_compute_scale,
        agg_uncoalesced=agg_uncoalesced,
    )
    root_score = score_lowering(plan, kernels, graph, feat_len)
    best: Tuple[PlanScore, FusionPlan, List[KernelSpec], List[AppliedRewrite]]
    best = (root_score, plan, kernels, [])
    beam = [best]
    visited = {plan_signature(plan)}
    nodes = 0

    while beam and nodes < max_nodes:
        frontier: List[Tuple[PlanScore, FusionPlan, List[KernelSpec],
                             List[AppliedRewrite]]] = []
        for score, state, state_kernels, applied in beam:
            ctx = LintContext(
                ops=ops, plan=state, kernels=state_kernels,
                graph=graph, feat_len=feat_len, config=config,
                layout=layout, grouped=grouped,
                agg_compute_scale=agg_compute_scale,
                agg_uncoalesced=agg_uncoalesced,
            )
            for action in collect_actions(ctx):
                if nodes >= max_nodes:
                    break
                stats.attempts += 1
                nodes += 1
                candidate = action.build()
                if candidate is None:
                    stats.reject("build")
                    continue
                sig = plan_signature(candidate)
                if sig in visited:
                    stats.reject("visited")
                    continue
                visited.add(sig)
                # Verify against the ROOT plan: the guarantee every
                # accepted state carries is path-independent.
                cand_kernels, _ = verify_candidate(
                    ops, plan, candidate, graph, feat_len, config,
                    layout, grouped=grouped,
                    agg_compute_scale=agg_compute_scale,
                    agg_uncoalesced=agg_uncoalesced,
                )
                if cand_kernels is None:
                    stats.reject("verify")
                    continue
                stats.accept(action.code)
                cand_score = score_lowering(
                    candidate, cand_kernels, graph, feat_len
                )
                cand_applied = applied + [AppliedRewrite(
                    code=action.code, where=action.where,
                    description=action.description,
                    groups_before=len(state.groups),
                    groups_after=len(candidate.groups),
                )]
                frontier.append(
                    (cand_score, candidate, cand_kernels, cand_applied)
                )
                if cand_score < best[0]:
                    best = (
                        cand_score, candidate, cand_kernels, cand_applied
                    )
        frontier.sort(key=lambda s: s[0])
        beam = frontier[:beam_width]

    score, out_plan, out_kernels, applied = best
    return SearchResult(
        plan=out_plan, kernels=out_kernels, score=score,
        original_score=root_score, applied=applied, stats=stats,
        nodes_expanded=nodes,
    )


# ----------------------------------------------------------------------
# Whole-artifact optimization
# ----------------------------------------------------------------------

def _layer_prefix(kernels: List[KernelSpec]) -> str:
    """Recover the per-layer buffer/kernel name prefix the original
    lowering used (e.g. ``"gat0."``) from the stamped dataflow: buffers
    are ``prefix + op.name`` and op names never contain dots."""
    for kernel in kernels:
        if kernel.dataflow is None:
            continue
        for buf in kernel.dataflow.writes:
            if "." in buf:
                return buf.rsplit(".", 1)[0] + "."
            return ""
    return ""


def optimize_plan(
    plan,
    graph: CSRGraph,
    *,
    beam_width: int = 4,
    max_nodes: int = 64,
    plan_id: Optional[str] = None,
):
    """Search-optimize a :class:`~repro.core.plan.CompiledPlan`.

    Runs :func:`search_plan` over every lintable layer; when at least
    one layer improves, rebuilds the artifact — re-lowered kernel
    stream (each layer with its own recorded layout and aggregation
    scales, under its original name prefix), shifted kernel slices,
    rewrite provenance in ``extra["rewrites"]`` and search stats in
    ``extra["optimize"]`` — and re-lints it end to end.  Returns the
    original object untouched when nothing improves or the rebuilt
    artifact fails its lint gate; ``plan_id`` names the optimized
    artifact (defaults to ``<original>-opt``).
    """
    from ..core.plan import CompiledPlan  # noqa: F401  (type only)
    from .driver import MODEL_CHAINS, lint_plan

    stats = RewriteStats()
    results: Dict[int, SearchResult] = {}
    nodes = 0
    for li, rec in enumerate(plan.layers):
        if rec.chain is None or rec.fusion is None:
            continue
        ops = MODEL_CHAINS[rec.chain]()
        res = search_plan(
            ops, rec.fusion, graph, rec.feat_len, plan.gpu_config,
            rec.layout(), grouped=rec.grouped,
            agg_compute_scale=rec.agg_compute_scale,
            agg_uncoalesced=rec.agg_uncoalesced,
            beam_width=beam_width, max_nodes=max_nodes,
        )
        stats.merge(res.stats)
        nodes += res.nodes_expanded
        if res.improved:
            results[li] = res

    optimize_meta = {
        **stats.to_dict(),
        "nodes_expanded": nodes,
        "beam_width": beam_width,
        "layers_improved": len(results),
    }
    if not results:
        return plan

    new_kernels: List[KernelSpec] = []
    new_layers = []
    rewrites: List[Dict[str, object]] = []
    for li, rec in enumerate(plan.layers):
        old = plan.kernels[rec.kernel_start:rec.kernel_stop]
        res = results.get(li)
        if res is None:
            layer_kernels = list(old)
            fusion = rec.fusion
        else:
            # Re-lower under the layer's own prefix so buffer names in
            # the whole-plan stream stay unique across layers.
            layer_kernels = lower_plan(
                res.plan, graph, rec.feat_len, plan.gpu_config,
                rec.layout(), prefix=_layer_prefix(old),
                agg_compute_scale=rec.agg_compute_scale,
                agg_uncoalesced=rec.agg_uncoalesced,
            )
            fusion = res.plan
            rewrites.extend(
                {"layer": rec.label, **ar.to_dict()}
                for ar in res.applied
            )
        start = len(new_kernels)
        new_kernels.extend(layer_kernels)
        new_layers.append(dataclasses.replace(
            rec, fusion=fusion, kernel_start=start,
            kernel_stop=len(new_kernels),
        ))

    out = dataclasses.replace(
        plan,
        plan_id=plan_id or f"{plan.plan_id}-opt",
        kernels=new_kernels,
        layers=new_layers,
        extra={
            **plan.extra,
            "rewrites": rewrites,
            "optimize": {
                **optimize_meta,
                "scores": {
                    plan.layers[li].label: {
                        "before": res.original_score.to_dict(),
                        "after": res.score.to_dict(),
                    }
                    for li, res in results.items()
                },
            },
        },
    )
    report = lint_plan(out, graph=graph, config=plan.gpu_config)
    if not report.ok:
        # An optimized artifact must hold itself to the same gate the
        # original passed; anything less ships the original.
        return plan
    return out


# ----------------------------------------------------------------------
# Partitioning choice: the shard analyses as the planner's oracle
# ----------------------------------------------------------------------

@dataclasses.dataclass(frozen=True, order=True)
class ShardScore:
    """Lexicographic partitioning cost: smaller is better on every axis.

    The :class:`PlanScore` discipline extended with transfer bytes:
    feasibility dominates (``infeasible`` counts SH001 verdicts — a
    partitioning that cannot compile never beats one that can), then
    symbolic cross-device traffic (the quantity that gates multi-GPU
    scaling), then the per-device symbolic peak, then device count —
    P=1 wins whenever it fits, because it moves zero bytes.
    """

    infeasible: int       # SH001 findings (devices that cannot compile)
    transfer_bytes: float  # total symbolic halo+mirror bytes
    peak_bytes: float      # max per-device symbolic peak
    num_parts: int

    def to_dict(self) -> Dict[str, float]:
        return {
            "infeasible": int(self.infeasible),
            "transfer_bytes": float(self.transfer_bytes),
            "peak_bytes": float(self.peak_bytes),
            "num_parts": int(self.num_parts),
        }


@dataclasses.dataclass
class ShardChoice:
    """One scored (method, P) candidate partitioning."""

    method: str
    num_parts: int
    score: ShardScore
    shard: object          # shard.partition.ShardPlan
    report: object         # AnalysisReport from lint_shard

    @property
    def feasible(self) -> bool:
        return self.score.infeasible == 0


def choose_partitioning(
    graph: CSRGraph,
    model_name: str,
    *,
    model=None,
    device=None,
    link=None,
    methods: Optional[Tuple[str, ...]] = None,
    parts: Tuple[int, ...] = (1, 2, 4, 8),
    imbalance_threshold: Optional[float] = None,
    blowup_threshold: Optional[float] = None,
) -> List[ShardChoice]:
    """Score every (strategy x P) candidate and rank them, statically.

    Closes the loop between the shard analyses and the search engine:
    each candidate partitioning is verified by the registered shard
    passes (:func:`~repro.analysis.shardlint.lint_shard`, symbolic-only
    — zero compiles, zero simulation) and scored by the lexicographic
    :class:`ShardScore`.  Returns candidates best-first; ``[0]`` is the
    cheapest *feasible* partitioning whenever any candidate fits the
    declared :class:`~repro.shard.cost.DeviceConfig` capacity.
    """
    from ..shard.partition import METHODS, partition_graph
    from .shardlint import (DEFAULT_IMBALANCE_THRESHOLD, lint_shard,
                            resolve_model, round_feat_lens,
                            shard_peak_bytes, shard_transfer_bytes)

    model = resolve_model(model_name, model)
    if imbalance_threshold is None:
        imbalance_threshold = DEFAULT_IMBALANCE_THRESHOLD
    feats = round_feat_lens(model_name, model)
    candidates: List[ShardChoice] = []
    for method in (methods or METHODS):
        for p in parts:
            if p < 1 or p > graph.num_nodes:
                continue
            shard = partition_graph(graph, p, method)
            report = lint_shard(
                shard, model_name=model_name, model=model,
                device=device, link=link,
                imbalance_threshold=imbalance_threshold,
                blowup_threshold=blowup_threshold,
            )
            transfer = sum(
                sum(kinds.values())
                for kinds in shard_transfer_bytes(shard, feats).values()
            )
            peaks = shard_peak_bytes(shard, model_name, model)
            score = ShardScore(
                infeasible=sum(
                    1 for f in report.findings if f.code == "SH001"
                ),
                transfer_bytes=float(transfer),
                peak_bytes=max(peak for _, peak, _ in peaks),
                num_parts=p,
            )
            candidates.append(ShardChoice(
                method=method, num_parts=p, score=score,
                shard=shard, report=report,
            ))
    candidates.sort(key=lambda c: c.score)
    return candidates
