"""Pass 4 — flops/bytes conservation audit.

Lowering charges every fusion group's kernel according to the cost
conventions of DESIGN.md §5 (feature rows at cache-line granularity,
CSR structure and per-edge scalars as streaming traffic, postponed ops
per *output* element).  This pass re-resolves those charges
independently from the op chain, the plan, and the layout — walking the
effects table and the N1/NF/E1/EF element counts, not
:func:`~repro.core.lowering.lower_plan`'s code — and asserts that each
lowered kernel's totals match the re-resolution exactly, and that the
whole plan stays within fusion's documented savings envelope relative
to the unfused resolution.  A lowering regression that double-charges a
tensor, drops an op's work, or forgets the postponement discount lands
here as a per-kernel mismatch.
"""

from __future__ import annotations

import math
from typing import List, Tuple

from ..core.compgraph import (
    FusionGroup,
    FusionPlan,
    Op,
    OpKind,
    unfused_plan,
    work_elems,
)
from ..core.lowering import ExecLayout, compute_waste, effective_row_bytes
from ..gpusim.config import GPUConfig
from ..gpusim.kernel import KernelSpec
from ..graph.csr import CSRGraph
from .findings import ERROR, Finding, make_finding, register_code
from .registry import LintPass, register_pass

__all__ = ["expected_group_cost", "check_conservation"]

PASS = "conservation"

CV001 = register_code(
    "CV001", PASS, ERROR,
    "fusion groups and lowered kernels cannot be paired",
    """The plan's group count differs from the lowered kernel count, so
the per-kernel cost audit cannot run.""",
)
CV002 = register_code(
    "CV002", PASS, ERROR,
    "lowered FLOPs drifted from the element-count re-resolution",
    """A kernel's total FLOPs disagree with the independent resolution
from element counts and the DESIGN §5 cost conventions — lowering
double-charges or drops work.""",
)
CV003 = register_code(
    "CV003", PASS, ERROR,
    "lowered bytes drifted from the element-count re-resolution",
    """A kernel's total traffic disagrees with the independent
resolution from element counts and the DESIGN §5 cost conventions.""",
)
CV004 = register_code(
    "CV004", PASS, ERROR,
    "whole-plan FLOPs outside the fusion envelope",
    """Total lowered FLOPs fall outside the documented band around the
unfused element-count resolution: fusion must remove traffic and
launches, not math.""",
)
CV005 = register_code(
    "CV005", PASS, ERROR,
    "fused plan moves more bytes than the unfused resolution",
    """Fusion may only remove traffic; a fused plan that streams more
bytes than its unfused equivalent charges something twice.""",
)

#: Relative tolerance on the per-kernel exact re-resolution (float
#: accumulation noise only — the formulas are meant to agree exactly).
_RTOL = 1e-5

#: Documented savings envelope for the whole plan: fusion removes
#: launches and traffic, not math, so total FLOPs stay within this band
#: of the unfused element-count resolution (lane waste can inflate,
#: postponement can shrink).
_FLOP_BAND = (0.3, 3.0)


def expected_group_cost(
    group: FusionGroup,
    graph: CSRGraph,
    feat_len: int,
    config: GPUConfig,
    layout: ExecLayout,
    *,
    agg_compute_scale: float = 1.0,
    agg_uncoalesced: float = 1.0,
) -> Tuple[float, float]:
    """Independent re-resolution of one fusion group's (flops, bytes).

    Written against the cost conventions, not against the lowering
    implementation: all quantities derive from element counts (N, E, F,
    group count G) and the layout.
    """
    n = graph.num_nodes
    e = graph.num_edges
    f = feat_len
    g = layout.grouping.num_groups
    kinds = {op.kind for op in group.ops}
    edge_flops = sum(
        op.flops_per_elem for op in group.ops if op.out_shape == "E1"
    )
    if OpKind.AGGREGATE in kinds:
        waste = compute_waste(f, layout.lanes) * agg_compute_scale
        post_flops = sum(op.flops_per_elem for op in group.postponed)
        node_map_flops = sum(
            op.flops_per_elem for op in group.ops
            if op.kind == OpKind.NODE_MAP
        )
        # One MAC per edge x feature for the aggregation itself; fused
        # edge ops pay per edge; postponed + folded node maps pay per
        # output row (the linear-property discount: G rows, not E edges).
        flops = (
            2.0 * e * f * waste
            + e * edge_flops
            + g * f * (post_flops + node_map_flops)
        )
        # Rows: one cacheable feature-row access per edge.  Stream: CSR
        # structure (4 B/edge + 16 B/group), one output row per group,
        # and per-edge scalars — the weight stream plus one per-center
        # gather for each BCAST/EDGE_DIV executed per edge (postponed
        # ones moved to per-row work, which is the other half of the
        # discount).
        row_bytes = int(
            effective_row_bytes(f, config, layout.packed_rows)
            * agg_uncoalesced
        )
        has_edge_weights = any(
            op.out_shape == "E1" for op in group.ops
        ) or bool(group.postponed)
        per_edge_gathers = sum(
            1 for op in group.ops
            if op.kind in (OpKind.BCAST, OpKind.EDGE_DIV)
        )
        edge_stream = (4.0 if has_edge_weights else 0.0) + (
            4.0 * per_edge_gathers
        )
        bytes_ = (
            e * row_bytes
            + (4.0 * e + 16.0 * g)
            + e * edge_stream
            + 4.0 * f * g
        )
        return flops, bytes_
    if kinds == {OpKind.SEG_REDUCE}:
        # Center-parallel scalar reduction: one add per edge; streams
        # the per-edge scalars plus one write and the row pointers per
        # center.
        return float(e), 4.0 * e + 12.0 * n
    if OpKind.DENSE in kinds:
        flops = 2.0 * n * f * f
        return flops, 4.0 * (n * f + f * f + n * f)
    if kinds and kinds <= {OpKind.NODE_MAP}:
        flops = sum(op.flops_per_elem for op in group.ops) * n * f
        return flops, n * f * 8.0 + n * 4.0
    # Edge-aligned chain (possibly with gathers and a fused reduction):
    # per-edge reads scale with the gather count, one write per edge,
    # and a fused segment reduction streams the destination ids.
    gathers = sum(
        2 if op.kind == OpKind.U_ADD_V else
        1 if op.kind in (OpKind.BCAST, OpKind.EDGE_DIV) else 0
        for op in group.ops
    )
    reads = 4.0 * max(1, gathers) + 4.0
    flops = max(edge_flops, 1.0) * e
    bytes_ = (reads + 4.0) * e
    if OpKind.SEG_REDUCE in kinds:
        bytes_ += 4.0 * e
    return flops, bytes_


def check_conservation(
    ops: List[Op],
    plan: FusionPlan,
    kernels: List[KernelSpec],
    graph: CSRGraph,
    feat_len: int,
    config: GPUConfig,
    layout: ExecLayout,
    *,
    agg_compute_scale: float = 1.0,
    agg_uncoalesced: float = 1.0,
) -> List[Finding]:
    """Audit a lowered plan's totals against the independent resolution."""
    findings: List[Finding] = []
    if len(kernels) != len(plan.groups):
        findings.append(make_finding(
            CV001, "plan",
            f"{len(plan.groups)} fusion groups lowered to "
            f"{len(kernels)} kernels — a group was dropped or split",
        ))
        return findings
    kw = {"agg_compute_scale": agg_compute_scale,
          "agg_uncoalesced": agg_uncoalesced}
    total_lowered_flops = 0.0
    for gi, (group, kernel) in enumerate(zip(plan.groups, kernels)):
        want_flops, want_bytes = expected_group_cost(
            group, graph, feat_len, config, layout, **kw
        )
        got_flops = kernel.total_flops
        got_bytes = kernel.total_bytes
        total_lowered_flops += got_flops
        if not math.isclose(got_flops, want_flops, rel_tol=_RTOL):
            findings.append(make_finding(
                CV002, f"group {gi}: {kernel.name}",
                f"lowered FLOPs {got_flops:.6g} != re-resolved "
                f"{want_flops:.6g} from element counts — lowering "
                f"drifted from the documented cost conventions",
            ))
        if not math.isclose(got_bytes, want_bytes, rel_tol=_RTOL):
            findings.append(make_finding(
                CV003, f"group {gi}: {kernel.name}",
                f"lowered bytes {got_bytes:.6g} != re-resolved "
                f"{want_bytes:.6g} from element counts — lowering "
                f"drifted from the documented cost conventions",
            ))
    # Whole-plan envelope vs. the unfused element-count resolution.  A
    # baseline's serialized aggregation (agg_compute_scale > 1) pays that
    # factor in *both* terms — the envelope polices fusion, not the
    # baseline's documented inefficiency.
    n, e, f = graph.num_nodes, graph.num_edges, feat_len
    unfused_work = sum(
        op.flops_per_elem * work_elems(op, n, e, f)
        * (agg_compute_scale if op.kind == OpKind.AGGREGATE else 1.0)
        for op in ops
    )
    if unfused_work > 0:
        ratio = total_lowered_flops / unfused_work
        lo, hi = _FLOP_BAND
        if not (lo <= ratio <= hi):
            findings.append(make_finding(
                CV004, "plan",
                f"total lowered FLOPs are {ratio:.2f}x the unfused "
                f"element-count resolution (allowed {lo}-{hi}x) — "
                f"fusion must remove traffic and launches, not math",
            ))
    unfused_bytes = sum(
        expected_group_cost(gr, graph, feat_len, config, layout, **kw)[1]
        for gr in unfused_plan(ops).groups
    )
    fused_bytes = sum(k.total_bytes for k in kernels)
    if fused_bytes > unfused_bytes * 1.01:
        findings.append(make_finding(
            CV005, "plan",
            f"fused plan moves {fused_bytes:.6g} bytes, more than the "
            f"unfused resolution's {unfused_bytes:.6g} — fusion may "
            f"only remove traffic",
        ))
    return findings


register_pass(LintPass(
    name=PASS,
    doc="flops/bytes conservation audit vs the cost conventions",
    lowering=lambda ctx: check_conservation(
        ctx.ops, ctx.plan, ctx.kernels, ctx.graph, ctx.feat_len,
        ctx.config, ctx.layout,
        agg_compute_scale=ctx.agg_compute_scale,
        agg_uncoalesced=ctx.agg_uncoalesced,
    ),
))
