"""Shard-aware static analysis: the SH pass family.

The multi-device milestone exposed a regime — the ~49M-edge
``ogb_scale_graph`` that OOMs monolithic and at P <= 4 — that used to
be discoverable only by *running* the simulator (the per-partition
compile raises :class:`~repro.gpusim.memory.SimulatedOOM`).  Every
quantity behind that verdict is a pure function of the partition
structure, so this module computes them symbolically from a
:class:`~repro.shard.partition.ShardPlan` alone:

* **SH001** (error) — a device's symbolic peak memory (the
  :func:`~repro.analysis.footprint.model_live_sets` closed form over
  the partition's C/H/M/E stats) exceeds the declared
  :class:`~repro.shard.cost.DeviceConfig` capacity.  This statically
  reproduces the simulator's compile-time OOM, byte-for-byte.
* **SH002** (error) — transfer-volume conservation: the symbolic
  halo-exchange and mirror-reduce bytes derived from the partitioner's
  halo/mirror sets (DESIGN §5's ``4*F`` bytes/row convention) must
  equal the priced ``tag="transfer"`` kernels the stream builder
  emitted.  Drift means the partition metadata and the executed
  transfers disagree — one of them is lying about the traffic.
* **SH003** (info) — load-imbalance advisory: max/mean per-device
  symbolic flops beyond a threshold.
* **SH004** (info) — replication-blowup advisory: summed per-device
  footprints exceed a multiple of the monolithic footprint (with the
  default threshold P, sharding costs more aggregate memory than P
  full replicas — pure replication overhead).
* **SH005** (warning) — dead/duplicated exchange: a halo exchange
  writes a ghost buffer no downstream kernel on the destination device
  reads, or a second exchange overwrites it unread.  This subsumes the
  dynamic-only HB005 path for exchanges, statically.

SH001/SH003/SH004 need only the :class:`ShardPlan` and a model config
— zero compiles, zero simulation.  SH002/SH005 additionally inspect
per-partition plans / stitched streams and are skipped when those are
not supplied (``repro shard lint --no-plans``).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from ..shard.cost import FLOAT_BYTES, DeviceConfig, LinkConfig
from .findings import ERROR, INFO, WARNING, AnalysisReport, Finding, \
    make_finding, register_code
from .footprint import model_flops_expr, model_live_sets, shard_env
from .registry import LintPass, register_pass

__all__ = [
    "ShardLintContext",
    "lint_shard",
    "round_feat_lens",
    "shard_transfer_bytes",
    "shard_peak_bytes",
    "resolve_model",
    "DEFAULT_IMBALANCE_THRESHOLD",
]

PASS_SHARDMEM = "shardmem"
PASS_SHARDFLOW = "shardflow"

#: Advisory when the busiest device carries > 25% more symbolic flops
#: than the average one.
DEFAULT_IMBALANCE_THRESHOLD = 1.25

SH001 = register_code(
    "SH001", PASS_SHARDMEM, ERROR,
    "per-device symbolic peak memory exceeds the declared capacity",
    """The symbolic peak footprint of one partition's compiled plan —
the model's DeviceMemory allocation schedule in closed form over the
partition's centers, halo, mirrors and local edges — exceeds the
declared ``DeviceConfig.mem_bytes``.  The closed form reproduces the
per-partition compile's recorded ``peak_mem_bytes`` exactly, so this
finding *is* the simulator's compile-time SimulatedOOM verdict,
reached without compiling or simulating anything: a partitioning that
fires SH001 on any device cannot run.  Repartition with more devices
or a cheaper method.""",
)
SH002 = register_code(
    "SH002", PASS_SHARDFLOW, ERROR,
    "transfer volume disagrees with the partition's halo/mirror sets",
    """Transfer-volume conservation: the bytes the priced
``tag="transfer"`` kernels move must equal the symbolic prediction
from the partitioner's halo/mirror sets — per aggregation round, each
ghost row costs ``4*F`` bytes from its owner and each mirrored center
ships a ``4*F``-byte partial row to its owner (DESIGN §5).  A
mismatch means the stream builder and the partition metadata disagree
about the traffic: a stale halo set, a dropped or duplicated exchange,
or a mis-sized payload.  Either the simulated cost model is pricing
phantom bytes or the partition is under-declaring real ones.""",
)
SH003 = register_code(
    "SH003", PASS_SHARDMEM, INFO,
    "per-device symbolic flops are imbalanced beyond the threshold",
    """The max/mean ratio of per-device symbolic flops exceeds the
imbalance threshold: the slowest device will gate every BSP round
while the others idle.  The flops closed form is coarse (dense
transforms + aggregation MACs), but every device's estimate carries
the same constants, so the *ratio* is trustworthy.  Contiguous
range partitioning balances edge counts, not feature-transform work —
a skewed center/edge mix shows up here before any timeline is built.""",
)
SH004 = register_code(
    "SH004", PASS_SHARDMEM, INFO,
    "replication makes sharding cost more memory than full replicas",
    """The summed per-device symbolic footprint exceeds the blowup
threshold times the monolithic footprint.  With the default threshold
P this means the halo/mirror replication factor has grown to the
point where P partitions hold more aggregate bytes than P complete
copies of the graph would — partitioning is no longer buying memory
headroom, only exchange traffic.  Vertex-cut mirror sets on dense
graphs are the usual culprit; prefer fewer parts or edge-cut.""",
)
SH005 = register_code(
    "SH005", PASS_SHARDFLOW, WARNING,
    "dead or duplicated halo exchange on the destination device",
    """A halo exchange writes a ghost buffer that no downstream kernel
on the destination device reads (dead: link time and launch overhead
paid for data nobody consumes), or a second exchange overwrites the
same ghost buffer before anything reads the first delivery
(duplicated: the first transfer was wasted).  This is the static
subsumption of the dynamic HB005 path for exchanges — detected from
the stream structure alone, before any timeline is priced.""",
)


@dataclasses.dataclass(frozen=True)
class ShardLintContext:
    """Everything a shard-scope pass may inspect.

    ``plans`` / ``streams`` are optional: the memory/balance checks
    (SH001/SH003/SH004) are pure functions of the shard plan and the
    model config, while the flow checks (SH002/SH005) verify the
    stitched streams and are skipped without them.
    """

    shard: object                      # shard.partition.ShardPlan
    model_name: str
    model: object                      # GCNConfig / GATConfig / ...
    device: DeviceConfig
    link: LinkConfig
    plans: Optional[Sequence] = None   # CompiledPlan per partition
    streams: Optional[object] = None   # gpusim.multidev.ShardStreams
    imbalance_threshold: float = DEFAULT_IMBALANCE_THRESHOLD
    blowup_threshold: Optional[float] = None  # default: num_parts


def resolve_model(model_name: str, model=None):
    """Default model config for a model name (the shipped paper dims)."""
    if model is not None:
        return model
    from ..models.gat import GATConfig
    from ..models.gcn import GCNConfig
    from ..models.sage_lstm import SageLSTMConfig

    defaults = {
        "gcn": GCNConfig,
        "gat": GATConfig,
        "sage_lstm": SageLSTMConfig,
    }
    if model_name not in defaults:
        raise KeyError(f"no default model config for {model_name!r}")
    return defaults[model_name]()


def round_feat_lens(model_name: str, model, plans=None) -> List[int]:
    """Feature length of each aggregation round, in round order.

    With per-partition plans available the rounds come from the plans
    themselves (the same ``_agg_rounds`` walk the stream builder uses);
    otherwise from the model config — GCN/GAT aggregate once per layer
    at the layer's output width, GraphSAGE-LSTM lowers outside the
    layered path and exchanges nothing.
    """
    if plans:
        from ..gpusim.multidev import _agg_rounds

        plan = plans[0]
        return [plan.layers[li].feat_len for li in _agg_rounds(plan)]
    if model_name in ("gcn", "gat"):
        return list(model.dims[1:])
    if model_name == "sage_lstm":
        return []
    raise KeyError(f"no aggregation-round model for {model_name!r}")


def shard_transfer_bytes(
    shard, feats: Sequence[int]
) -> Dict[int, Dict[str, float]]:
    """Symbolic per-device transfer bytes from the halo/mirror sets.

    Returns ``{device: {"halo": bytes, "mirror": bytes}}`` summed over
    the aggregation rounds ``feats``: a device's halo exchange pulls
    ``4*F`` bytes per ghost row per round from each owning peer, and a
    device owning mirrored centers receives ``4*F`` bytes per mirror
    per round from each mirroring peer.  This is exactly the payload
    arithmetic of :func:`repro.shard.cost.halo_exchange_kernel` /
    :func:`mirror_reduce_kernel` — integer byte counts, so equality
    against the priced kernels is exact, not approximate.
    """
    num = shard.num_parts
    incoming: Dict[int, Dict[int, int]] = {p: {} for p in range(num)}
    for part in shard.parts:
        for owner, count in part.mirror_count_by_owner().items():
            incoming[owner][part.part_id] = count
    round_rows = sum(FLOAT_BYTES * f for f in feats)
    out: Dict[int, Dict[str, float]] = {}
    for part in shard.parts:
        p = part.part_id
        halo = 0.0
        if num > 1:
            halo = float(sum(
                count * round_rows
                for owner, count in part.halo_count_by_owner().items()
                if owner != p
            ))
        mirror = float(sum(
            count * round_rows
            for q, count in incoming[p].items()
            if q != p
        )) if num > 1 else 0.0
        out[p] = {"halo": halo, "mirror": mirror}
    return out


def shard_peak_bytes(
    shard, model_name: str, model
) -> List[Tuple[int, float, str]]:
    """Per-device symbolic peak memory: ``(device, bytes, layer)``."""
    live = model_live_sets(model_name, model)
    out = []
    for part in shard.parts:
        env = shard_env(part)
        label, peak = max(
            ((lbl, expr.evaluate(env)) for lbl, expr in live),
            key=lambda kv: kv[1],
        )
        out.append((part.part_id, peak, label))
    return out


# ----------------------------------------------------------------------
# shardmem pass: SH001 / SH003 / SH004
# ----------------------------------------------------------------------

def check_shard_memory(ctx: ShardLintContext) -> List[Finding]:
    findings: List[Finding] = []
    shard = ctx.shard
    live = model_live_sets(ctx.model_name, ctx.model)

    # SH001 — per-device symbolic peak vs declared capacity.
    peaks = shard_peak_bytes(shard, ctx.model_name, ctx.model)
    cap = ctx.device.mem_bytes
    for p, peak, label in peaks:
        if peak > cap:
            expr = dict(live)[label]
            findings.append(make_finding(
                SH001, f"device {p}",
                f"symbolic peak {peak:,.0f} B at layer {label} "
                f"({expr}) exceeds the declared device capacity "
                f"{cap:,} B — this partition cannot compile; "
                f"repartition with more devices or a cheaper method",
            ))

    # SH003 — symbolic flops imbalance.
    if shard.num_parts > 1:
        flops_expr = model_flops_expr(ctx.model_name, ctx.model)
        flops = [
            flops_expr.evaluate(shard_env(part)) for part in shard.parts
        ]
        mean = sum(flops) / len(flops)
        if mean > 0:
            ratio = max(flops) / mean
            if ratio > ctx.imbalance_threshold:
                worst = max(range(len(flops)), key=flops.__getitem__)
                findings.append(make_finding(
                    SH003, f"device {worst}",
                    f"symbolic flops imbalance max/mean = {ratio:.2f} "
                    f"exceeds {ctx.imbalance_threshold:.2f}: device "
                    f"{worst} carries {flops[worst]:,.0f} flops vs "
                    f"{mean:,.0f} average — it gates every BSP round",
                ))

    # SH004 — replication blowup vs the monolithic footprint.
    mono_env = {
        "C": float(shard.num_nodes), "H": 0.0, "M": 0.0,
        "E": float(shard.num_edges),
    }
    mono = max(expr.evaluate(mono_env) for _, expr in live)
    total = sum(peak for _, peak, _ in peaks)
    threshold = (
        ctx.blowup_threshold if ctx.blowup_threshold is not None
        else float(shard.num_parts)
    )
    if shard.num_parts > 1 and mono > 0 and total > threshold * mono:
        findings.append(make_finding(
            SH004, f"shard {shard.fingerprint}",
            f"summed per-device footprint {total:,.0f} B exceeds "
            f"{threshold:g}x the monolithic {mono:,.0f} B "
            f"(replication factor {shard.replication_factor:.2f}, "
            f"{shard.total_halo:,} halo + {shard.total_mirrors:,} "
            f"mirror rows) — partitioning buys exchange traffic, "
            f"not memory headroom",
        ))
    return findings


# ----------------------------------------------------------------------
# shardflow pass: SH002 / SH005
# ----------------------------------------------------------------------

def check_shard_flow(ctx: ShardLintContext) -> List[Finding]:
    findings: List[Finding] = []
    streams = ctx.streams
    if streams is None:
        return findings
    shard = ctx.shard
    feats = round_feat_lens(ctx.model_name, ctx.model, ctx.plans)

    # SH002 — priced transfer kernels vs symbolic halo/mirror bytes.
    symbolic = shard_transfer_bytes(shard, feats)
    priced: Dict[int, Dict[str, float]] = {
        p: {"halo": 0.0, "mirror": 0.0} for p in streams.streams
    }
    for (d, _i), info in streams.transfers.items():
        kind = "halo" if info.kind == "halo_exchange" else "mirror"
        priced[d][kind] += info.payload_bytes
    for p in sorted(streams.streams):
        for kind in ("halo", "mirror"):
            want = symbolic.get(p, {}).get(kind, 0.0)
            got = priced[p][kind]
            if got != want:
                findings.append(make_finding(
                    SH002, f"device {p}",
                    f"{kind} transfer bytes: priced kernels move "
                    f"{got:,.0f} B but the partition's "
                    f"{kind}/ownership sets predict {want:,.0f} B over "
                    f"{len(feats)} round(s) — the stream builder and "
                    f"the partition metadata disagree about traffic",
                ))

    # SH005 — dead / duplicated halo exchanges, statically.
    for d in sorted(streams.streams):
        stream = streams.streams[d]
        # ghost buffer -> ordered (position, event) timeline
        events: Dict[str, List[Tuple[int, str]]] = {}
        exch_at: Dict[int, str] = {}
        for i, kernel in enumerate(stream):
            info = streams.transfers.get((d, i))
            is_exchange = (
                info is not None and info.kind == "halo_exchange"
            )
            if kernel.dataflow is None:
                continue
            for buf in kernel.dataflow.reads:
                if buf in events:
                    events[buf].append((i, "r"))
            if is_exchange:
                for buf in kernel.dataflow.writes:
                    events.setdefault(buf, []).append((i, "w"))
                    exch_at[i] = buf
        for buf, timeline in events.items():
            for j, (pos, ev) in enumerate(timeline):
                if ev != "w":
                    continue
                later = timeline[j + 1:]
                nxt = later[0] if later else None
                if nxt is None:
                    findings.append(make_finding(
                        SH005,
                        f"device {d} kernel {pos}: {stream[pos].name}",
                        f"dead exchange: ghost buffer {buf!r} is never "
                        f"read downstream — link time paid for data "
                        f"nobody consumes",
                    ))
                elif nxt[1] == "w":
                    findings.append(make_finding(
                        SH005,
                        f"device {d} kernel {pos}: {stream[pos].name}",
                        f"duplicated exchange: ghost buffer {buf!r} is "
                        f"overwritten by kernel {nxt[0]} "
                        f"({stream[nxt[0]].name}) before anything "
                        f"reads this delivery",
                    ))
    return findings


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------

def lint_shard(
    shard,
    *,
    model_name: str,
    model=None,
    device: Optional[DeviceConfig] = None,
    link: Optional[LinkConfig] = None,
    plans: Optional[Sequence] = None,
    streams: Optional[object] = None,
    imbalance_threshold: float = DEFAULT_IMBALANCE_THRESHOLD,
    blowup_threshold: Optional[float] = None,
) -> AnalysisReport:
    """Run every registered shard-scope pass over one partitioning.

    With only ``shard`` + a model name this is fully static —
    SH001/SH003/SH004 verdicts with zero compiles and zero simulator
    invocations.  Pass ``plans`` (per-partition :class:`CompiledPlan`)
    and/or ``streams`` (:class:`ShardStreams`) to additionally verify
    transfer conservation (SH002) and exchange liveness (SH005).
    """
    from .registry import lint_passes

    ctx = ShardLintContext(
        shard=shard,
        model_name=model_name,
        model=resolve_model(model_name, model),
        device=device if device is not None else DeviceConfig(),
        link=link if link is not None else LinkConfig(),
        plans=plans,
        streams=streams,
        imbalance_threshold=imbalance_threshold,
        blowup_threshold=blowup_threshold,
    )
    report = AnalysisReport(
        label=(
            f"shardlint:{shard.graph_name or 'graph'}:{model_name}:"
            f"{shard.method}x{shard.num_parts}"
        ),
        checked=1,
    )
    for p in lint_passes():
        if p.shard is not None:
            report.extend(p.shard(ctx))
    return report


register_pass(LintPass(
    name=PASS_SHARDMEM,
    doc="per-device symbolic peak memory, flops balance, replication",
    shard=check_shard_memory,
))

register_pass(LintPass(
    name=PASS_SHARDFLOW,
    doc="transfer-volume conservation and exchange liveness",
    shard=check_shard_flow,
))
