"""Static analysis over the IR -> fusion -> lowering pipeline.

Four passes verify, without running the simulator, every
:class:`~repro.core.compgraph.FusionPlan` and lowered kernel list the
pipeline produces:

1. **fusion legality** (:mod:`.legality`) — re-derives each op's
   required/provided data visible range from the op-kind effects table
   and rejects fusions where a consumer reads data at a scope its
   producer has not reached (including the grouped-SEG_REDUCE GLOBAL
   promotion and illegal postponements);
2. **linear-property verification** (:mod:`.linearity`) — checks every
   ``linear=True`` flag algebraically and with a randomized
   distributivity probe before the adapter may postpone the op;
3. **atomic-race detection** (:mod:`.atomics`) — walks lowered
   :class:`~repro.gpusim.kernel.KernelSpec` lists against the
   :class:`~repro.core.grouping.GroupingPlan` for write-write conflicts
   without atomics (and phantom atomics on block-private centers);
4. **conservation audit** (:mod:`.conservation`) — re-resolves the
   chain's element counts and pins each kernel's flops/bytes to the
   documented cost conventions.

Entry points: ``python -m repro lint`` (CI sweep), and the opt-in
``OursOptions(verify_plans=True)`` /  ``REPRO_VERIFY_PLANS=1`` hook
that verifies every plan the runtime lowers.
"""

from .atomics import check_atomic_races
from .conservation import check_conservation, expected_group_cost
from .driver import (
    FUSION_CONFIGS,
    MODEL_CHAINS,
    lint_chain,
    lint_plan,
    lint_shipped,
    verify_lowering,
)
from .findings import (
    ERROR,
    INFO,
    WARNING,
    AnalysisReport,
    Finding,
    PlanVerificationError,
)
from .legality import chain_dataflow, check_fusion_legality
from .linearity import check_linear_flags, probe_commutes_with_sum

__all__ = [
    "AnalysisReport",
    "Finding",
    "PlanVerificationError",
    "ERROR",
    "WARNING",
    "INFO",
    "FUSION_CONFIGS",
    "MODEL_CHAINS",
    "chain_dataflow",
    "lint_plan",
    "check_atomic_races",
    "check_conservation",
    "check_fusion_legality",
    "check_linear_flags",
    "expected_group_cost",
    "lint_chain",
    "lint_shipped",
    "probe_commutes_with_sum",
    "verify_lowering",
]
