"""Static analysis over the IR -> fusion -> lowering pipeline.

Nine registered passes verify, without running the simulator, every
:class:`~repro.core.compgraph.FusionPlan`, lowered kernel list,
:class:`~repro.core.plan.CompiledPlan` artifact and
:class:`~repro.shard.partition.ShardPlan` the pipeline produces:

1. **fusion legality** (:mod:`.legality`) — re-derives each op's
   required/provided data visible range from the op-kind effects table
   and rejects fusions where a consumer reads data at a scope its
   producer has not reached (including the grouped-SEG_REDUCE GLOBAL
   promotion and illegal postponements);
2. **linear-property verification** (:mod:`.linearity`) — checks every
   ``linear=True`` flag algebraically and with a randomized
   distributivity probe before the adapter may postpone the op;
3. **atomic-race detection** (:mod:`.atomics`) — walks lowered
   :class:`~repro.gpusim.kernel.KernelSpec` lists against the
   :class:`~repro.core.grouping.GroupingPlan` for write-write conflicts
   without atomics (and phantom atomics on block-private centers);
4. **conservation audit** (:mod:`.conservation`) — re-resolves the
   chain's element counts and pins each kernel's flops/bytes to the
   documented cost conventions;
5. **happens-before sync safety** (:mod:`.hb`) — proves, from the
   per-kernel dataflow metadata, that every read of a reduced or
   postponed buffer is ordered after all of its writers under the
   sequential launch-order scheduling model, and flags provably
   removable synchronizations;
6. **symbolic footprint** (:mod:`.footprint`) — abstract-interprets a
   plan's buffers into closed forms over N/E/F and cross-checks the
   evaluated lower bound against an artifact's recorded peak memory;
7. **opportunity analysis** (:mod:`.footprint`) — advisory findings for
   O(E) materializations with O(N) equivalents (Table 5) and adjacent
   kernels admitting a legal fusion the planner skipped (Listing 1);
8. **shard memory/balance** (:mod:`.shardlint`) — per-device symbolic
   peak memory against a declared :class:`~repro.shard.cost.DeviceConfig`
   capacity (SH001 statically reproduces the simulator's OOM verdict),
   symbolic flops imbalance (SH003) and replication blowup (SH004),
   all from the :class:`~repro.shard.partition.ShardPlan` alone;
9. **shard dataflow** (:mod:`.shardlint`) — transfer-volume
   conservation between the partitioner's halo/mirror sets and the
   priced ``tag="transfer"`` kernels (SH002), and static dead /
   duplicated exchange detection (SH005).

Passes are not a hard-coded taxonomy: each module registers a
:class:`~repro.analysis.registry.LintPass` at import time (importing
this package, or :mod:`.driver`, populates the registry) and the lint
drivers iterate :func:`~repro.analysis.registry.lint_passes` — a new
pass self-registers into ``lint_chain``/``lint_shipped``/``lint_plan``
without driver edits.  Every finding carries a stable code (``HB001``,
``FP002``, ...); ``repro lint --explain CODE`` documents each.

The analyzer -> optimizer loop is closed: passes that can repair what
they report expose a ``rewrite`` hook proposing
:class:`~repro.analysis.registry.RewriteAction` candidates, the
verified auto-fix engine (:mod:`.rewrite`) applies them — each
candidate re-lowered, re-verified by every registered pass, and
differentially executed over exact rationals
(:mod:`.diffexec`) against the original before acceptance — and the
footprint-guided beam search (:mod:`.search`) explores the reachable
plan space scored by the symbolic N/E/F footprint, optimizing whole
:class:`~repro.core.plan.CompiledPlan` artifacts.

Entry points: ``python -m repro lint`` (CI sweep, with ``--fail-on``,
``--baseline``, ``--sarif``, and ``--fix [--dry-run]`` for the
auto-fix engine), ``python -m repro plan lint`` / ``plan optimize``
for saved artifacts, and the opt-in ``OursOptions(verify_plans=True)``
/ ``REPRO_VERIFY_PLANS=1`` hook that verifies every plan the runtime
lowers.
"""

from .atomics import check_atomic_races
from .conservation import check_conservation, expected_group_cost
from .driver import (
    FUSION_CONFIGS,
    MODEL_CHAINS,
    lint_chain,
    lint_plan,
    lint_shipped,
    verify_lowering,
)
from .findings import (
    CODES,
    ERROR,
    INFO,
    WARNING,
    AnalysisReport,
    Finding,
    FindingCode,
    PlanVerificationError,
    explain_code,
    load_baseline,
    make_finding,
    register_code,
)
from .footprint import (
    ShardSymExpr,
    SymExpr,
    check_footprint,
    check_opportunities,
    layer_footprint,
    model_flops_expr,
    model_live_sets,
    shard_env,
    shard_term,
)
from .diffexec import differential_verify
from .hb import check_happens_before
from .legality import chain_dataflow, check_fusion_legality
from .linearity import check_linear_flags, probe_commutes_with_sum
from .registry import (
    LintContext,
    LintPass,
    RewriteAction,
    lint_passes,
    pass_names,
    register_pass,
)
from .rewrite import (
    FIXABLE_CODES,
    AutofixResult,
    AutofixSweep,
    RewriteStats,
    autofix_lowering,
    autofix_shipped,
    collect_actions,
)
from .search import (
    PlanScore,
    SearchResult,
    ShardChoice,
    ShardScore,
    choose_partitioning,
    optimize_plan,
    search_plan,
)
from .shardlint import (
    ShardLintContext,
    lint_shard,
    round_feat_lens,
    shard_peak_bytes,
    shard_transfer_bytes,
)

__all__ = [
    "AnalysisReport",
    "CODES",
    "Finding",
    "FindingCode",
    "LintContext",
    "LintPass",
    "PlanVerificationError",
    "ERROR",
    "WARNING",
    "INFO",
    "FUSION_CONFIGS",
    "FIXABLE_CODES",
    "MODEL_CHAINS",
    "AutofixResult",
    "AutofixSweep",
    "PlanScore",
    "RewriteAction",
    "RewriteStats",
    "SearchResult",
    "ShardChoice",
    "ShardLintContext",
    "ShardScore",
    "ShardSymExpr",
    "SymExpr",
    "choose_partitioning",
    "autofix_lowering",
    "autofix_shipped",
    "collect_actions",
    "differential_verify",
    "optimize_plan",
    "search_plan",
    "chain_dataflow",
    "check_atomic_races",
    "check_conservation",
    "check_footprint",
    "check_fusion_legality",
    "check_happens_before",
    "check_linear_flags",
    "check_opportunities",
    "expected_group_cost",
    "explain_code",
    "layer_footprint",
    "lint_chain",
    "lint_passes",
    "lint_plan",
    "lint_shard",
    "lint_shipped",
    "load_baseline",
    "make_finding",
    "model_flops_expr",
    "model_live_sets",
    "pass_names",
    "round_feat_lens",
    "shard_env",
    "shard_peak_bytes",
    "shard_term",
    "shard_transfer_bytes",
    "probe_commutes_with_sum",
    "register_code",
    "register_pass",
    "verify_lowering",
]
