"""Passes 6 & 7 — symbolic memory footprint and missed-opportunity
analysis.

Both passes abstract-interpret a fusion plan's buffers into a tiny
**symbolic cost language**: closed-form expressions over the graph size
symbols ``N`` (nodes), ``E`` (edges) and ``F`` (feature length), with
byte coefficients (float32 throughout the simulator, so every shape
class costs ``4·|shape|``).  The buffers are exactly the cross-kernel
materializations the lowering stamps into
:class:`~repro.gpusim.kernel.KernelDataflow` — values that stay in
registers inside a fused kernel never appear, which is the point: the
footprint *is* the fusion plan's memory story.

**footprint** (artifact scope) — rebuild each layer's peak live set
symbolically (a buffer is live from its producing kernel through its
last consuming kernel; layer inputs are live throughout), evaluate the
closed form on the plan's graph, and cross-check it against the
recorded :attr:`~repro.core.plan.CompiledPlan.peak_mem_bytes`.  The
closed form is a *lower bound* on any faithful accounting — it counts
only the chain's own buffers, none of the CSR structure or parameters —
so a recorded peak below it is impossible: **FP001** (error), the
artifact's memory metadata is corrupt or under-accounted.

**opportunity** (lowering scope) — two advisory findings:

* **FP002** (info) — an O(E)-materialized buffer with an O(N)
  equivalent: a BCAST output (per-center constant replicated along
  edges) written to DRAM, or an ``EF`` edge-feature transform that
  could be hoisted to ``NF`` before the scatter.  Missed redundancy
  bypassing — the paper's Table 5 optimization.
* **FP003** (info) — an adjacent kernel pair admitting a legal fusion
  the planner skipped (an elementwise producer, or a linear elementwise
  consumer of a reduction output — the Listing 1 fusions).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.compgraph import OP_EFFECTS, FusionPlan, Op, OpKind
from ..gpusim.kernel import KernelSpec
from .findings import ERROR, INFO, Finding, make_finding, register_code
from .registry import LintContext, LintPass, RewriteAction, register_pass
from .transform import merge_boundary

__all__ = [
    "SymExpr",
    "ShardSymExpr",
    "shape_bytes",
    "shard_term",
    "layer_footprint",
    "model_live_sets",
    "model_flops_expr",
    "shard_env",
    "check_footprint",
    "check_opportunities",
    "opportunity_rewrites",
]

PASS_FOOTPRINT = "footprint"
PASS_OPPORTUNITY = "opportunity"

FP001 = register_code(
    "FP001", PASS_FOOTPRINT, ERROR,
    "recorded peak memory below the plan's provable lower bound",
    """The symbolic footprint of a layer's fusion plan — its cross-kernel
buffers sized as closed forms over N (nodes), E (edges) and F (feature
length), with liveness from producing kernel to last consumer —
evaluates, on the plan's own graph, to more bytes than the artifact's
recorded ``peak_mem_bytes``.  The closed form counts only the chain's
own materializations (no CSR structure, no parameters), so it is a
lower bound on any faithful accounting: a smaller recorded peak means
the artifact's memory metadata is corrupt, or the framework
under-accounted a buffer its fusion config actually materializes.""",
)
FP002 = register_code(
    "FP002", PASS_OPPORTUNITY, INFO,
    "O(E) materialization with an O(N) equivalent (Table 5)",
    """A kernel writes an edge-aligned buffer to DRAM whose information
content is node-aligned: a BCAST output replicates one per-center
scalar along every edge, and an edge-feature (``EF``) transform of
gathered node features can be hoisted before the gather to ``NF``.
Redundancy bypassing (the paper's Table 5) replaces the O(E) buffer
with its O(N) equivalent — on power-law graphs an order of magnitude of
memory traffic.  The planner left that on the table.""",
)
FP003 = register_code(
    "FP003", PASS_OPPORTUNITY, INFO,
    "adjacent kernels admit a legal fusion the planner skipped",
    """Two consecutive kernels are dataflow-adjacent and their boundary
satisfies the data-visible-range fusion rules (an elementwise producer
whose output each consumer thread can recompute or read at thread
scope, or a linear elementwise consumer of a global-scope producer that
can run as its epilogue) — the Listing 1 fusions.  Fusing them deletes
a kernel launch and the boundary buffer's DRAM round-trip.""",
)


# ----------------------------------------------------------------------
# Symbolic cost language
# ----------------------------------------------------------------------

#: shape class -> (N-power, E-power, F-power) monomial
_SHAPE_MONOMIAL = {
    "N1": (1, 0, 0),
    "NF": (1, 0, 1),
    "E1": (0, 1, 0),
    "EF": (0, 1, 1),
}

_SYMBOLS = ("N", "E", "F")


@dataclasses.dataclass(frozen=True)
class SymExpr:
    """A linear combination of monomials over N, E and F.

    ``terms`` maps ``(n_pow, e_pow, f_pow)`` to a numeric coefficient;
    the expression is their sum.  Immutable — arithmetic returns new
    expressions — so per-kernel live sets can share sub-expressions.
    """

    terms: Tuple[Tuple[Tuple[int, int, int], float], ...] = ()

    @staticmethod
    def of(monomial: Tuple[int, int, int], coeff: float) -> "SymExpr":
        if coeff == 0:
            return SymExpr()
        return SymExpr(((monomial, float(coeff)),))

    def __add__(self, other: "SymExpr") -> "SymExpr":
        merged: Dict[Tuple[int, int, int], float] = dict(self.terms)
        for mono, coeff in other.terms:
            merged[mono] = merged.get(mono, 0.0) + coeff
        return SymExpr(tuple(sorted(
            (m, c) for m, c in merged.items() if c != 0
        )))

    def evaluate(self, n: int, e: int, f: int) -> float:
        vals = (n, e, f)
        total = 0.0
        for mono, coeff in self.terms:
            prod = coeff
            for sym_val, power in zip(vals, mono):
                prod *= sym_val ** power
            total += prod
        return total

    def __str__(self) -> str:
        if not self.terms:
            return "0"
        parts = []
        # Highest-degree terms first reads like a cost bound.
        for mono, coeff in sorted(self.terms, key=lambda t: t[0],
                                  reverse=True):
            syms = "".join(
                f"*{s}" for s, p in zip(_SYMBOLS, mono) for _ in range(p)
            )
            parts.append(f"{coeff:g}{syms}")
        return " + ".join(parts)


def shape_bytes(shape: str) -> SymExpr:
    """Bytes of one float32 buffer of a shape class, symbolically."""
    return SymExpr.of(_SHAPE_MONOMIAL[shape], 4.0)


# ----------------------------------------------------------------------
# Shard symbol vocabulary: per-device closed forms
# ----------------------------------------------------------------------
#
# The single-device language above speaks N/E/F of *the* graph.  On a
# sharded run every device sees its own local graph, whose node space
# is [centers..., halo...]: the same closed forms apply per device, but
# the memory story now depends on *which kind* of row a local node is —
# owned centers are the useful work, halo (ghost) rows are replicated
# reads, mirrors are replicated partial aggregates.  ``ShardSymExpr``
# therefore splits the node axis into C (centers, mirrors included), H
# (halo) and M (mirrors), keeps E (local edges) and F (feature length),
# and evaluates against one device's partition stats.  ``P`` enters by
# evaluation: a shard-level quantity is the max or sum of a per-device
# expression over the P partitions.

#: shard symbol order: centers, halo, mirrors, local edges, feat len
_SHARD_SYMBOLS = ("C", "H", "M", "E", "F")

_SHARD_INDEX = {s: i for i, s in enumerate(_SHARD_SYMBOLS)}


def _shard_monomial(symbols: str) -> Tuple[int, ...]:
    powers = [0] * len(_SHARD_SYMBOLS)
    for s in symbols:
        powers[_SHARD_INDEX[s]] += 1
    return tuple(powers)


@dataclasses.dataclass(frozen=True)
class ShardSymExpr:
    """A linear combination of monomials over C, H, M, E and F.

    Same algebra as :class:`SymExpr`, over the per-device shard
    vocabulary.  ``N`` (local nodes) is not a symbol: it is the sum
    ``C + H`` — :func:`shard_term` expands ``"N"`` accordingly so model
    closed forms can be written against local-node counts and still
    report which bytes are replication.
    """

    terms: Tuple[Tuple[Tuple[int, ...], float], ...] = ()

    @staticmethod
    def of(symbols: str, coeff: float) -> "ShardSymExpr":
        if coeff == 0:
            return ShardSymExpr()
        return ShardSymExpr(((_shard_monomial(symbols), float(coeff)),))

    def __add__(self, other: "ShardSymExpr") -> "ShardSymExpr":
        merged: Dict[Tuple[int, ...], float] = dict(self.terms)
        for mono, coeff in other.terms:
            merged[mono] = merged.get(mono, 0.0) + coeff
        return ShardSymExpr(tuple(sorted(
            (m, c) for m, c in merged.items() if c != 0
        )))

    def scaled(self, factor: float) -> "ShardSymExpr":
        if factor == 0:
            return ShardSymExpr()
        return ShardSymExpr(tuple(
            (m, c * factor) for m, c in self.terms
        ))

    def evaluate(self, env: Dict[str, float]) -> float:
        """Evaluate under ``{"C": ..., "H": ..., "M": ..., "E": ...,
        "F": ...}`` (missing symbols default to 0)."""
        vals = tuple(float(env.get(s, 0)) for s in _SHARD_SYMBOLS)
        total = 0.0
        for mono, coeff in self.terms:
            prod = coeff
            for val, power in zip(vals, mono):
                prod *= val ** power
            total += prod
        return total

    def __str__(self) -> str:
        if not self.terms:
            return "0"
        parts = []
        for mono, coeff in sorted(self.terms, key=lambda t: t[0],
                                  reverse=True):
            syms = "".join(
                f"*{s}" for s, p in zip(_SHARD_SYMBOLS, mono)
                for _ in range(p)
            )
            parts.append(f"{coeff:g}{syms}")
        return " + ".join(parts)


def shard_term(symbols: str, coeff: float) -> ShardSymExpr:
    """One shard-vocabulary term; ``"N"`` expands to ``C + H``.

    ``shard_term("NF", 4.0)`` is one float32 feature row per local node
    — ``4*C*F + 4*H*F`` — which is exactly how a per-partition compile
    allocates it (the local node space includes ghosts).
    """
    expanded = [""]
    for s in symbols:
        if s == "N":
            expanded = [pre + alt for pre in expanded for alt in "CH"]
        else:
            expanded = [pre + s for pre in expanded]
    out = ShardSymExpr()
    for mono in expanded:
        out = out + ShardSymExpr.of(mono, coeff)
    return out


def shard_env(part) -> Dict[str, float]:
    """The evaluation environment of one
    :class:`~repro.shard.partition.GraphPartition` (``F`` left to the
    caller: it varies per layer)."""
    return {
        "C": float(part.centers.size),
        "H": float(part.halo.size),
        "M": float(part.mirrors.size),
        "E": float(part.local_graph.num_edges),
    }


def model_live_sets(model_name: str, model) -> List[Tuple[str, ShardSymExpr]]:
    """Per-layer symbolic live-set peaks of one device's compiled plan.

    Mirrors the :class:`~repro.gpusim.memory.DeviceMemory` accounting
    of the DGL-style framework (the allocation schedule in
    :meth:`repro.frameworks.dgl_like.DGLLike.compile_gcn` and friends)
    closed-form: each entry is the live bytes at the layer's allocation
    high-water mark, over local nodes ``N = C + H`` and local edges
    ``E``.  The max over entries *is* the compile-time
    ``peak_mem_bytes`` of a per-partition plan — bit-for-bit, which is
    what lets SH001 reproduce the simulator's OOM verdict without
    compiling anything (``tests/test_shardlint.py`` pins the equality).
    """
    graph_csr = shard_term("N", 4.0) + shard_term("E", 4.0)
    if model_name == "gcn":
        dims = model.dims
        out = []
        for li in range(len(dims) - 1):
            f_in, f_out = dims[li], dims[li + 1]
            # live: CSR + h_li [N,f_in] + hw_li [N,f_out] + h_{li+1}
            expr = graph_csr + shard_term("N", 4.0 * (f_in + 2 * f_out))
            out.append((f"gcn{li}", expr))
        return out
    if model_name == "gat":
        dims = model.dims
        out = []
        for li in range(len(dims) - 1):
            f_in, f_out = dims[li], dims[li + 1]
            # live: CSR + h_li + hw_li + h_{li+1} + att [N,2] + edge [E,3]
            expr = (
                graph_csr
                + shard_term("N", 4.0 * (f_in + 2 * f_out + 2))
                + shard_term("E", 12.0)
            )
            out.append((f"gat{li}", expr))
        return out
    if model_name == "sage_lstm":
        # No frees: the peak is the running total of every allocation.
        expr = graph_csr + shard_term("N", 4.0 * (
            model.f_in                          # h0
            + model.num_neighbors * model.f_in  # expanded [N,k,F]
            + 2 * model.hidden                  # LSTM state
            + model.f_out                       # projection output
        ))
        return [("sage", expr)]
    raise KeyError(f"no symbolic memory model for {model_name!r}")


def model_flops_expr(model_name: str, model) -> ShardSymExpr:
    """Symbolic per-device flops of one model, for load-imbalance
    ratios (SH003).  Deliberately coarse — dense transforms at
    ``2*N*f_in*f_out``, aggregations at ``2*E*f_out`` — because only
    the max/mean *ratio* across devices matters, and every device's
    estimate carries the same constants."""
    expr = ShardSymExpr()
    if model_name in ("gcn", "gat"):
        dims = model.dims
        for li in range(len(dims) - 1):
            f_in, f_out = dims[li], dims[li + 1]
            expr = expr + shard_term("N", 2.0 * f_in * f_out)
            expr = expr + shard_term("E", 2.0 * f_out)
            if model_name == "gat":
                # att gemm [N,f_out]x[f_out,2] + per-edge softmax chain
                expr = expr + shard_term("N", 4.0 * f_out)
                expr = expr + shard_term("E", 8.0)
        return expr
    if model_name == "sage_lstm":
        k, h, f = model.num_neighbors, model.hidden, model.f_in
        # k LSTM cells of 8*h*(f+h) MACs each, plus the projection.
        expr = expr + shard_term("N", 8.0 * k * h * (f + h))
        expr = expr + shard_term("N", 2.0 * (f + h) * model.f_out)
        return expr
    raise KeyError(f"no symbolic flops model for {model_name!r}")


# ----------------------------------------------------------------------
# Liveness over the stamped dataflow
# ----------------------------------------------------------------------

def _ops_by_name(plan: FusionPlan) -> Dict[str, Op]:
    out: Dict[str, Op] = {}
    for group in plan.groups:
        for op in list(group.ops) + list(group.postponed):
            out[op.name] = op
    return out


def _buffer_op(buf: str, ops: Dict[str, Op]) -> Optional[Op]:
    # Artifact kernel streams carry per-layer name prefixes
    # ("gat0.exp"); op names never contain dots.
    return ops.get(buf.rsplit(".", 1)[-1])


def layer_footprint(
    plan: FusionPlan, kernels: Sequence[KernelSpec]
) -> Optional[List[Tuple[int, SymExpr]]]:
    """Per-kernel symbolic live set of one layer's lowering.

    Returns ``[(kernel_index, live_bytes_expr), ...]`` or None when the
    kernels carry no dataflow metadata (pre-v2 artifact).  The live set
    of kernel ``k`` holds every cross-kernel buffer whose lifetime
    [producer, last consumer] covers ``k`` plus the layer's standing
    inputs: the node-feature operand every chain aggregates or maps,
    and the two attention scalars when the chain combines node pairs.
    """
    if any(k.dataflow is None for k in kernels) or not kernels:
        return None
    ops = _ops_by_name(plan)

    produced: Dict[str, int] = {}
    last_use: Dict[str, int] = {}
    for ki, kernel in enumerate(kernels):
        for buf in kernel.dataflow.writes:
            produced.setdefault(buf, ki)
            last_use.setdefault(buf, ki)
        for buf in kernel.dataflow.reads:
            if buf in produced:
                last_use[buf] = max(last_use[buf], ki)

    inputs = shape_bytes("NF")  # the feature matrix the chain consumes
    if any(op.kind == OpKind.U_ADD_V for op in ops.values()):
        inputs = inputs + shape_bytes("N1") + shape_bytes("N1")

    live_sets: List[Tuple[int, SymExpr]] = []
    for ki in range(len(kernels)):
        expr = inputs
        for buf, pi in produced.items():
            op = _buffer_op(buf, ops)
            if op is None:
                continue
            if pi <= ki <= last_use[buf]:
                expr = expr + shape_bytes(op.out_shape)
        live_sets.append((ki, expr))
    return live_sets


# ----------------------------------------------------------------------
# footprint pass (artifact scope): FP001
# ----------------------------------------------------------------------

def check_footprint(plan, graph, config) -> List[Finding]:
    """Cross-check a :class:`CompiledPlan`'s recorded peak memory
    against each layer's symbolic lower bound evaluated on its graph."""
    findings: List[Finding] = []
    n, e = graph.num_nodes, graph.num_edges
    for rec in plan.layers:
        if rec.chain is None or rec.fusion is None:
            continue
        kernels = plan.kernels[rec.kernel_start:rec.kernel_stop]
        live_sets = layer_footprint(rec.fusion, kernels)
        if live_sets is None:
            continue
        peak_ki, peak_expr = max(
            live_sets,
            key=lambda kv, f=rec.feat_len: kv[1].evaluate(n, e, f),
        )
        bound = peak_expr.evaluate(n, e, rec.feat_len)
        if bound > plan.peak_mem_bytes:
            findings.append(make_finding(
                FP001, f"layer {rec.label}",
                f"symbolic footprint lower bound {peak_expr} = "
                f"{bound:,.0f} B at N={n}, E={e}, F={rec.feat_len} "
                f"(peak at kernel {peak_ki}: "
                f"{kernels[peak_ki].name}) exceeds the recorded "
                f"peak_mem_bytes={plan.peak_mem_bytes:,} — the "
                f"artifact's memory accounting cannot be faithful",
            ))
    return findings


# ----------------------------------------------------------------------
# opportunity pass (lowering scope): FP002 / FP003
# ----------------------------------------------------------------------

def _materialized_buffers(
    kernels: Sequence[KernelSpec],
) -> List[Tuple[int, str]]:
    """(kernel index, buffer) pairs the lowering writes to DRAM."""
    out = []
    for ki, kernel in enumerate(kernels):
        if kernel.dataflow is None:
            continue
        out.extend((ki, buf) for buf in kernel.dataflow.writes)
    return out


def check_opportunities(ctx: LintContext) -> List[Finding]:
    findings: List[Finding] = []
    ops = _ops_by_name(ctx.plan)

    # FP002 — O(E) materializations with O(N) equivalents.
    for ki, buf in _materialized_buffers(ctx.kernels):
        op = _buffer_op(buf, ops)
        if op is None:
            continue
        where = f"kernel {ki}: {ctx.kernels[ki].name}"
        if op.kind == OpKind.BCAST:
            findings.append(make_finding(
                FP002, where,
                f"materializes {op.name!r}: an O(E) buffer holding one "
                f"per-center scalar replicated along every edge — its "
                f"O(N) equivalent (read the center value directly) "
                f"needs no DRAM round-trip (redundancy bypassing, "
                f"Table 5)",
            ))
        elif op.out_shape == "EF" and OP_EFFECTS[op.kind].elementwise:
            findings.append(make_finding(
                FP002, where,
                f"materializes {op.name!r}: an O(E*F) edge-feature "
                f"transform of gathered node rows — hoisting it before "
                f"the gather costs O(N*F) (redundancy bypassing, "
                f"Table 5)",
            ))

    # FP003 — legal fusions across adjacent kernel boundaries.
    for gi in range(len(ctx.plan.groups) - 1):
        left, right = ctx.plan.groups[gi], ctx.plan.groups[gi + 1]
        if not left.ops or not right.ops:
            continue
        p, c = left.ops[-1], right.ops[0]
        p_eff, c_eff = OP_EFFECTS[p.kind], OP_EFFECTS[c.kind]
        if p.kind == OpKind.SEG_REDUCE:
            # The consumer needs the completed reduction: only the
            # linear-property transform crosses this boundary, and that
            # is HB003's finding, not a visible-range fusion.
            continue
        fusible = reason = None
        if p_eff.elementwise:
            fusible = True
            reason = (
                f"{p.name!r} is elementwise — each consumer thread can "
                f"read or recompute it at thread visible range"
            )
        elif c_eff.elementwise and c.linear:
            fusible = True
            reason = (
                f"{c.name!r} is linear and elementwise — it can run as "
                f"the producer kernel's epilogue on the completed output"
            )
        if fusible:
            findings.append(make_finding(
                FP003,
                f"kernel boundary {gi}|{gi + 1}: {p.name}->{c.name}",
                f"legal fusion skipped: {reason}; merging removes one "
                f"launch and the {p.name!r} boundary buffer's DRAM "
                f"round-trip (Listing 1)",
            ))
    return findings


def opportunity_rewrites(ctx: LintContext) -> List[RewriteAction]:
    """Candidate fixes for the FP002/FP003 advisories.

    Each action mirrors one finding :func:`check_opportunities` emits
    on the same context — same code, same ``where`` string — so the
    rewrite engine can pair them up without parsing messages.

    * FP002 (BCAST materialization): merge the broadcasting group with
      the following group, so the replicated per-center scalar stays in
      registers instead of round-tripping through DRAM.  The EF-hoist
      variant has no structural plan fix (it needs an op rewrite, not a
      regrouping) and proposes nothing.
    * FP003 (skipped legal fusion): merge the two boundary groups.
    """
    actions: List[RewriteAction] = []
    ops = _ops_by_name(ctx.plan)
    plan = ctx.plan

    for ki, buf in _materialized_buffers(ctx.kernels):
        op = _buffer_op(buf, ops)
        if op is None or op.kind != OpKind.BCAST:
            continue
        if ki >= len(plan.groups) - 1:
            continue  # no following kernel to keep the value in
        actions.append(RewriteAction(
            code=FP002,
            where=f"kernel {ki}: {ctx.kernels[ki].name}",
            description=(
                f"merge kernel {ki} into kernel {ki + 1} so the "
                f"broadcast {op.name!r} stays in registers "
                f"(redundancy bypassing)"
            ),
            build=lambda gi=ki: merge_boundary(plan, gi),
        ))

    for gi in range(len(plan.groups) - 1):
        left, right = plan.groups[gi], plan.groups[gi + 1]
        if not left.ops or not right.ops:
            continue
        p, c = left.ops[-1], right.ops[0]
        p_eff, c_eff = OP_EFFECTS[p.kind], OP_EFFECTS[c.kind]
        if p.kind == OpKind.SEG_REDUCE:
            continue
        if p_eff.elementwise or (c_eff.elementwise and c.linear):
            actions.append(RewriteAction(
                code=FP003,
                where=f"kernel boundary {gi}|{gi + 1}: "
                      f"{p.name}->{c.name}",
                description=(
                    f"fuse {p.name!r} and {c.name!r} into one kernel, "
                    f"removing a launch and the boundary buffer"
                ),
                build=lambda gi=gi: merge_boundary(plan, gi),
            ))
    return actions


register_pass(LintPass(
    name=PASS_FOOTPRINT,
    doc="symbolic peak-footprint lower bound vs recorded peak memory",
    artifact=check_footprint,
))

register_pass(LintPass(
    name=PASS_OPPORTUNITY,
    doc="missed redundancy-bypassing and fusion opportunities",
    lowering=check_opportunities,
    rewrite=opportunity_rewrites,
))
