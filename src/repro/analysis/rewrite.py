"""Verified auto-fix engine: close the analyzer -> optimizer loop.

The passes *report* missed optimizations (FP002 redundancy bypass,
FP003 proven-legal fusion, HB003 removable sync); this module *applies*
them.  The division of labour is strict:

* a pass's ``rewrite(ctx)`` hook **proposes** — one
  :class:`~repro.analysis.registry.RewriteAction` per advisory finding,
  correlated by ``(code, where)``;
* the engine **verifies** — each candidate plan is re-lowered and every
  registered pass is re-run over it; a candidate is accepted only if
  the result has *zero errors and zero warnings* (not "no worse": a
  fix must leave the plan provably clean, not plausibly so);
* the differential harness (:mod:`repro.analysis.diffexec`) **executes**
  both plans over exact rationals and demands bit-identical float64
  renderings — a structural proof plus a semantic one.

Proposals are allowed to be wrong.  The canonical example: HB003
proposes postponing the lone-BCAST kernel, legality rejects it (LG006:
a postponed BCAST needs its postponed consumer), the engine counts a
reject and moves on; once the consumer's own postponement is accepted,
the next fix-point iteration re-proposes the BCAST move and it lands.
The reject *is* the sequencing mechanism — no action ordering logic
exists anywhere.

Termination: every accepted action deletes exactly one kernel boundary
(merge) or one group (postpone), so the group count strictly decreases
and the fix-point loop runs at most ``len(plan.groups)`` accepts; a
``max_rounds`` guard backstops proposal bugs.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.compgraph import FusionPlan, Op
from ..core.lowering import ExecLayout, lower_plan
from ..gpusim.config import GPUConfig, V100_SCALED
from ..gpusim.kernel import KernelSpec
from ..graph.csr import CSRGraph
from .diffexec import differential_verify
from .findings import AnalysisReport, Finding
from .registry import LintContext, RewriteAction, lint_passes

__all__ = [
    "FIXABLE_CODES",
    "AppliedRewrite",
    "RewriteStats",
    "AutofixResult",
    "collect_actions",
    "plan_signature",
    "verify_candidate",
    "autofix_lowering",
    "autofix_shipped",
    "AutofixSweep",
]

#: Finding codes with a registered repair.  Derived at call time from
#: the rewrite hooks, but named here so the CLI / CI gate can ask "is
#: this finding *supposed* to be fixable" without running the engine.
FIXABLE_CODES = ("FP002", "FP003", "HB003")


@dataclasses.dataclass(frozen=True)
class AppliedRewrite:
    """Provenance of one accepted rewrite (serialized into plan extra)."""

    code: str
    where: str
    description: str
    groups_before: int
    groups_after: int

    def to_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)


@dataclasses.dataclass
class RewriteStats:
    """Engine observability: fed into ``RunReport.extra['perf']``."""

    attempts: int = 0
    accepts: int = 0
    rejects: int = 0
    #: rejects by stage: "build" (action returned no plan),
    #: "verify" (a pass errored/warned), "diffexec" (outputs diverged).
    reject_stages: Dict[str, int] = dataclasses.field(default_factory=dict)
    by_code: Dict[str, int] = dataclasses.field(default_factory=dict)

    def reject(self, stage: str) -> None:
        self.rejects += 1
        self.reject_stages[stage] = self.reject_stages.get(stage, 0) + 1

    def accept(self, code: str) -> None:
        self.accepts += 1
        self.by_code[code] = self.by_code.get(code, 0) + 1

    def merge(self, other: "RewriteStats") -> None:
        self.attempts += other.attempts
        self.accepts += other.accepts
        self.rejects += other.rejects
        for k, v in other.reject_stages.items():
            self.reject_stages[k] = self.reject_stages.get(k, 0) + v
        for k, v in other.by_code.items():
            self.by_code[k] = self.by_code.get(k, 0) + v

    def to_dict(self) -> Dict[str, object]:
        return {
            "attempts": self.attempts,
            "accepts": self.accepts,
            "rejects": self.rejects,
            "reject_stages": dict(self.reject_stages),
            "by_code": dict(self.by_code),
        }


@dataclasses.dataclass
class AutofixResult:
    """Outcome of fixing one lowered pipeline."""

    plan: FusionPlan
    kernels: List[KernelSpec]
    applied: List[AppliedRewrite]
    stats: RewriteStats
    #: findings remaining on the fixed plan (same pass set).
    remaining: List[Finding]

    @property
    def changed(self) -> bool:
        return bool(self.applied)


def collect_actions(ctx: LintContext) -> List[RewriteAction]:
    """All candidate fixes the registered passes propose for ``ctx``,
    in pass-registration order (so FP002's cheap merge is tried before
    HB003's postponement of the same kernel)."""
    actions: List[RewriteAction] = []
    for p in lint_passes():
        if p.rewrite is not None:
            actions.extend(p.rewrite(ctx))
    return actions


def plan_signature(plan: FusionPlan) -> Tuple:
    """Canonical structural identity of a plan (for visited sets)."""
    return tuple(
        (
            tuple(op.name for op in g.ops),
            tuple(op.name for op in g.postponed),
        )
        for g in plan.groups
    )


def _chain_findings(ops: List[Op]) -> List[Finding]:
    out: List[Finding] = []
    for p in lint_passes():
        if p.chain is not None:
            out.extend(p.chain(list(ops)))
    return out


def verify_candidate(
    ops: List[Op],
    original: FusionPlan,
    candidate: FusionPlan,
    graph: CSRGraph,
    feat_len: int,
    config: GPUConfig,
    layout: ExecLayout,
    *,
    grouped: bool,
    agg_compute_scale: float = 1.0,
    agg_uncoalesced: float = 1.0,
    chain_findings: Optional[List[Finding]] = None,
) -> Tuple[Optional[List[KernelSpec]], str]:
    """Full verification of one candidate plan against the original.

    Returns ``(kernels, detail)`` — the candidate's lowering when it
    passes every registered pass with zero errors *and* zero warnings
    and is differentially bit-identical to ``original``; otherwise
    ``(None, reason)``.  ``chain_findings`` lets callers amortize the
    chain-scope passes (the op chain is invariant under plan rewrites).
    """
    from .driver import verify_lowering  # local: driver imports passes

    kernels = lower_plan(
        candidate, graph, feat_len, config, layout,
        agg_compute_scale=agg_compute_scale,
        agg_uncoalesced=agg_uncoalesced,
    )
    report = verify_lowering(
        ops, candidate, kernels, graph, feat_len, config, layout,
        grouped=grouped, check_linearity=False,
        agg_compute_scale=agg_compute_scale,
        agg_uncoalesced=agg_uncoalesced,
    )
    findings = list(report.findings)
    findings.extend(
        chain_findings if chain_findings is not None
        else _chain_findings(ops)
    )
    blocking = [
        f for f in findings if f.severity in ("error", "warning")
    ]
    if blocking:
        return None, "; ".join(
            f"{f.code or f.pass_name}: {f.where}: {f.message}"
            for f in blocking[:3]
        )
    ok, detail = differential_verify(original, candidate, ops)
    if not ok:
        return None, f"differential execution: {detail}"
    return kernels, detail


def autofix_lowering(
    ops: List[Op],
    plan: FusionPlan,
    graph: CSRGraph,
    feat_len: int,
    config: GPUConfig,
    layout: ExecLayout,
    *,
    grouped: bool,
    agg_compute_scale: float = 1.0,
    agg_uncoalesced: float = 1.0,
    max_rounds: int = 64,
) -> AutofixResult:
    """Fix one lowered pipeline to a fix-point.

    Each round lowers the current plan, collects proposals from every
    pass's ``rewrite`` hook, and tries them in order; the first
    candidate to survive verification + differential execution is
    accepted and the round restarts on the fixed plan.  A round with no
    acceptable candidate is the fix-point.  Differential verification
    always compares against the *round's* plan — acceptance is
    transitive over exact equality, so the final plan is bit-identical
    to the input plan by construction.
    """
    stats = RewriteStats()
    applied: List[AppliedRewrite] = []
    chain_findings = _chain_findings(ops)
    current = plan
    kernels = lower_plan(
        current, graph, feat_len, config, layout,
        agg_compute_scale=agg_compute_scale,
        agg_uncoalesced=agg_uncoalesced,
    )
    # A broken chain is not ours to fix: refuse to rewrite anything.
    if any(f.severity == "error" for f in chain_findings):
        remaining = _remaining(
            ops, current, kernels, graph, feat_len, config, layout,
            grouped=grouped, chain_findings=chain_findings,
            agg_compute_scale=agg_compute_scale,
            agg_uncoalesced=agg_uncoalesced,
        )
        return AutofixResult(current, kernels, applied, stats, remaining)

    for _ in range(max_rounds):
        ctx = LintContext(
            ops=ops, plan=current, kernels=kernels, graph=graph,
            feat_len=feat_len, config=config, layout=layout,
            grouped=grouped, agg_compute_scale=agg_compute_scale,
            agg_uncoalesced=agg_uncoalesced,
        )
        accepted = False
        for action in collect_actions(ctx):
            stats.attempts += 1
            candidate = action.build()
            if candidate is None:
                stats.reject("build")
                continue
            cand_kernels, _ = verify_candidate(
                ops, current, candidate, graph, feat_len, config,
                layout, grouped=grouped,
                agg_compute_scale=agg_compute_scale,
                agg_uncoalesced=agg_uncoalesced,
                chain_findings=chain_findings,
            )
            if cand_kernels is None:
                stats.reject("verify")
                continue
            applied.append(AppliedRewrite(
                code=action.code, where=action.where,
                description=action.description,
                groups_before=len(current.groups),
                groups_after=len(candidate.groups),
            ))
            stats.accept(action.code)
            current, kernels = candidate, cand_kernels
            accepted = True
            break
        if not accepted:
            break

    remaining = _remaining(
        ops, current, kernels, graph, feat_len, config, layout,
        grouped=grouped, chain_findings=chain_findings,
        agg_compute_scale=agg_compute_scale,
        agg_uncoalesced=agg_uncoalesced,
    )
    return AutofixResult(current, kernels, applied, stats, remaining)


def _remaining(
    ops, plan, kernels, graph, feat_len, config, layout, *,
    grouped, chain_findings, agg_compute_scale=1.0, agg_uncoalesced=1.0,
) -> List[Finding]:
    from .driver import verify_lowering

    report = verify_lowering(
        ops, plan, kernels, graph, feat_len, config, layout,
        grouped=grouped, check_linearity=False,
        agg_compute_scale=agg_compute_scale,
        agg_uncoalesced=agg_uncoalesced,
    )
    return list(chain_findings) + list(report.findings)


# ----------------------------------------------------------------------
# Sweep: the ``repro lint --fix`` entry point
# ----------------------------------------------------------------------

@dataclasses.dataclass
class AutofixSweep:
    """Auto-fix outcome over the shipped pipeline grid."""

    #: (pipeline label, AutofixResult) per swept pipeline.
    entries: List[Tuple[str, AutofixResult]] = dataclasses.field(
        default_factory=list
    )
    stats: RewriteStats = dataclasses.field(default_factory=RewriteStats)

    def fixed_lines(self) -> List[str]:
        lines = []
        for label, res in self.entries:
            for ar in res.applied:
                lines.append(
                    f"[FIXED  ] {ar.code} {label}: {ar.where}: "
                    f"{ar.description} "
                    f"({ar.groups_before} -> {ar.groups_after} groups)"
                )
        return lines

    def remaining_report(self, label: str = "lint --fix") -> AnalysisReport:
        """Findings that survive auto-fix, prefixed like the lint sweep
        (so baselines written against ``repro lint`` keep matching)."""
        import dataclasses as _dc

        report = AnalysisReport(label=label)
        for plabel, res in self.entries:
            report.checked += 1
            report.findings.extend(
                _dc.replace(f, where=f"{plabel}: {f.where}")
                for f in res.remaining
            )
        return report

    def unfixed_fixable(self) -> List[Finding]:
        """Auto-fixable findings the engine could not discharge — the
        CI ``autofix-clean`` gate's subject."""
        return [
            f for f in self.remaining_report().findings
            if f.code in FIXABLE_CODES
        ]


def autofix_shipped(
    dataset_names: Optional[Iterable[str]] = None,
    models: Optional[Iterable[str]] = None,
    *,
    config: Optional[GPUConfig] = None,
    feats: Optional[Sequence[int]] = None,
    fusions: Optional[Iterable[str]] = None,
) -> AutofixSweep:
    """Run the auto-fix engine over the same grid ``lint_shipped``
    sweeps (models x datasets x fusion configs x layouts x feats)."""
    from ..core.adapter import plan_fusion
    from ..core.grouping import identity_grouping, neighbor_grouping
    from ..graph.datasets import DATASET_NAMES, load_dataset
    from .driver import (DEFAULT_FEATS, LINT_NG_BOUND, MODEL_CHAINS,
                         _select_fusions)

    config = config or V100_SCALED
    feats = tuple(feats or DEFAULT_FEATS)
    names = list(dataset_names or DATASET_NAMES)
    model_list = list(models or MODEL_CHAINS)
    sweep = AutofixSweep()
    for name in names:
        graph = load_dataset(name)
        layouts = [
            ("identity", identity_grouping(graph)),
            ("grouped", neighbor_grouping(graph, LINT_NG_BOUND)),
        ]
        for model in model_list:
            ops = MODEL_CHAINS[model]()
            for lname, grouping in layouts:
                grouped = bool(grouping.needs_atomic.any())
                layout = ExecLayout(grouping=grouping)
                for cname, adapter, linear in _select_fusions(fusions):
                    plan = plan_fusion(
                        ops, allow_adapter=adapter, allow_linear=linear,
                        grouped=grouped, label=cname,
                    )
                    for feat in feats:
                        label = (
                            f"{model}:{graph.name or 'graph'}:{cname}:"
                            f"{lname}:F{feat}"
                        )
                        res = autofix_lowering(
                            ops, plan, graph, feat, config, layout,
                            grouped=grouped,
                        )
                        sweep.entries.append((label, res))
                        sweep.stats.merge(res.stats)
    return sweep
