"""GNN model definitions and reference (framework-independent) forwards."""

from .gat import GATConfig, gat_layer_reference, gat_reference_forward
from .gat_multihead import (
    MultiHeadGATConfig,
    MultiHeadGATParams,
    multihead_gat_forward,
    multihead_gat_layer,
)
from .generic import AGGREGATORS, GenericLayer
from .gcn import GCNConfig, gcn_norms, gcn_reference_forward
from .layers import (
    EDGE_WEIGHT_OPS,
    edge_const,
    edge_cosine,
    edge_gat,
    edge_gcn,
    edge_gene_linear,
    edge_linear,
    edge_sym_gat,
    layer_mean,
    layer_mlp,
    layer_pooling,
    layer_softmax_aggr,
    layer_sum,
)
from .params import GATParams, GCNParams, SageLSTMParams, glorot
from .sage_lstm import SageLSTMConfig, sage_lstm_reference_forward

__all__ = [
    "AGGREGATORS",
    "GenericLayer",
    "MultiHeadGATConfig",
    "MultiHeadGATParams",
    "multihead_gat_forward",
    "multihead_gat_layer",
    "GATConfig",
    "gat_layer_reference",
    "gat_reference_forward",
    "GCNConfig",
    "gcn_norms",
    "gcn_reference_forward",
    "EDGE_WEIGHT_OPS",
    "edge_const",
    "edge_cosine",
    "edge_gat",
    "edge_gcn",
    "edge_gene_linear",
    "edge_linear",
    "edge_sym_gat",
    "layer_mean",
    "layer_mlp",
    "layer_pooling",
    "layer_softmax_aggr",
    "layer_sum",
    "GATParams",
    "GCNParams",
    "SageLSTMParams",
    "glorot",
    "SageLSTMConfig",
    "sage_lstm_reference_forward",
]
