"""Generic GNN layer: any Table 2 edge-weight op x any Table 1 aggregator.

The paper's Tables 1 and 2 catalogue the layer space GNN frameworks must
support.  :class:`GenericLayer` composes one edge-weight operation with
one computing layer, giving the library the full operator surface — and
a stress-test bed for the runtime beyond the three benchmark models.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

import numpy as np

from ..graph.csr import CSRGraph
from .layers import (
    EDGE_WEIGHT_OPS,
    layer_mean,
    layer_mlp,
    layer_pooling,
    layer_softmax_aggr,
    layer_sum,
)
from .params import glorot

__all__ = ["GenericLayer", "AGGREGATORS"]

AGGREGATORS = {
    "sum": layer_sum,
    "mean": layer_mean,
    "pooling": layer_pooling,
    "mlp": layer_mlp,
    "softmax_aggr": layer_softmax_aggr,
}


@dataclasses.dataclass
class GenericLayer:
    """One configurable GNN layer.

    Parameters
    ----------
    edge_op:
        Name from :data:`repro.models.EDGE_WEIGHT_OPS` (Table 2).
    aggregator:
        Name from :data:`AGGREGATORS` (Table 1).
    f_in / f_out:
        Feature widths; projection parameters are created as needed.
    seed:
        Parameter initialization seed.
    """

    edge_op: str
    aggregator: str
    f_in: int
    f_out: int
    seed: int = 0

    def __post_init__(self) -> None:
        if self.edge_op not in EDGE_WEIGHT_OPS:
            raise KeyError(f"unknown edge op {self.edge_op!r}")
        if self.aggregator not in AGGREGATORS:
            raise KeyError(f"unknown aggregator {self.aggregator!r}")
        rng = np.random.default_rng(self.seed)
        self._params: Dict[str, np.ndarray] = {
            # Scalar projections for gat/sym_gat.
            "w_l_vec": rng.standard_normal(self.f_in).astype(np.float32)
            * 0.1,
            "w_r_vec": rng.standard_normal(self.f_in).astype(np.float32)
            * 0.1,
            # Matrix projections for cosine/linear/gene_linear.
            "w_l_mat": glorot(rng, self.f_in, 8),
            "w_r_mat": glorot(rng, self.f_in, 8),
            "w_a": rng.standard_normal(8).astype(np.float32) * 0.1,
            # Aggregator weights.
            "w_pool": glorot(rng, self.f_in, self.f_out),
            "w_mlp1": glorot(rng, self.f_in, self.f_out),
            "w_mlp2": glorot(rng, self.f_out, self.f_out),
            "w_out": glorot(rng, self.f_in, self.f_out),
        }

    # ------------------------------------------------------------------
    def edge_weights(self, graph: CSRGraph, h: np.ndarray) -> np.ndarray:
        fn = EDGE_WEIGHT_OPS[self.edge_op]
        p = self._params
        if self.edge_op in ("cosine", "gene_linear"):
            return fn(graph, h, w_l=p["w_l_mat"], w_r=p["w_r_mat"],
                      w_a=p["w_a"])
        if self.edge_op == "linear":
            return fn(graph, h, w_l=p["w_l_mat"])
        if self.edge_op in ("gat", "sym_gat"):
            return fn(graph, h, w_l=p["w_l_vec"], w_r=p["w_r_vec"])
        return fn(graph, h)

    def forward(self, graph: CSRGraph, h: np.ndarray) -> np.ndarray:
        """Compute the layer output ``[N, f_out]``."""
        ew = self.edge_weights(graph, h)
        p = self._params
        if self.aggregator == "pooling":
            return AGGREGATORS["pooling"](graph, h, ew, p["w_pool"])
        if self.aggregator == "mlp":
            return AGGREGATORS["mlp"](graph, h, ew, p["w_mlp1"],
                                      p["w_mlp2"])
        agg = AGGREGATORS[self.aggregator](graph, h, ew)
        return (agg @ p["w_out"]).astype(np.float32)
