"""Seeded parameter containers for the three evaluation models."""

from __future__ import annotations

import dataclasses
from typing import List, Sequence, Tuple

import numpy as np

from ..ops.lstm import LSTMParams

__all__ = ["GCNParams", "GATParams", "SageLSTMParams", "glorot"]


def glorot(rng: np.random.Generator, f_in: int, f_out: int) -> np.ndarray:
    """Glorot-uniform initialization, float32."""
    bound = np.sqrt(6.0 / (f_in + f_out))
    return rng.uniform(-bound, bound, size=(f_in, f_out)).astype(np.float32)


@dataclasses.dataclass(frozen=True)
class GCNParams:
    """One weight matrix per layer."""

    weights: Tuple[np.ndarray, ...]

    @staticmethod
    def init(dims: Sequence[int], seed: int = 0) -> "GCNParams":
        rng = np.random.default_rng(seed)
        ws = tuple(
            glorot(rng, dims[i], dims[i + 1]) for i in range(len(dims) - 1)
        )
        return GCNParams(weights=ws)

    @property
    def num_layers(self) -> int:
        return len(self.weights)


@dataclasses.dataclass(frozen=True)
class GATParams:
    """Per layer: feature weight ``W`` and the two attention vectors
    ``a_l``/``a_r`` (the paper's ``Wl``/``Wr`` attention projections)."""

    weights: Tuple[np.ndarray, ...]
    att_left: Tuple[np.ndarray, ...]   # [F_out] each
    att_right: Tuple[np.ndarray, ...]  # [F_out] each

    @staticmethod
    def init(dims: Sequence[int], seed: int = 0) -> "GATParams":
        rng = np.random.default_rng(seed)
        ws: List[np.ndarray] = []
        al: List[np.ndarray] = []
        ar: List[np.ndarray] = []
        for i in range(len(dims) - 1):
            ws.append(glorot(rng, dims[i], dims[i + 1]))
            al.append(
                rng.standard_normal(dims[i + 1]).astype(np.float32) * 0.1
            )
            ar.append(
                rng.standard_normal(dims[i + 1]).astype(np.float32) * 0.1
            )
        return GATParams(tuple(ws), tuple(al), tuple(ar))

    @property
    def num_layers(self) -> int:
        return len(self.weights)


@dataclasses.dataclass(frozen=True)
class SageLSTMParams:
    """LSTM aggregator weights plus the post-aggregation projection
    applied to ``concat(h_self, h_neigh)``."""

    lstm: LSTMParams
    w_out: np.ndarray  # [F_in + H, F_out]

    @staticmethod
    def init(
        f_in: int, hidden: int, f_out: int, seed: int = 0
    ) -> "SageLSTMParams":
        rng = np.random.default_rng(seed)
        return SageLSTMParams(
            lstm=LSTMParams.init(f_in, hidden, seed=seed + 1),
            w_out=glorot(rng, f_in + hidden, f_out),
        )
