"""Training support: forward+backward and SGD for GCN and GAT.

Manual reverse-mode differentiation built from the VJPs in
:mod:`repro.ops.grads`.  Gradients are exact (finite-difference-checked
in tests); the optimizer is plain SGD.  This is the piece that turns the
reproduction into a usable library: the paper's motivation is *training*
epochs ("each run may involve thousands of epochs", §4.4), so the
per-epoch forward the benchmarks time is exactly what these loops run.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

import numpy as np

from ..graph.csr import CSRGraph
from ..ops.grads import (
    copy_u_sum_vjp,
    leaky_relu_vjp,
    linear_vjp,
    relu_vjp,
    segment_softmax_vjp,
    u_add_v_vjp,
    u_mul_e_sum_vjp,
)
from ..ops.graphops import (
    copy_u_sum,
    segment_softmax,
    u_add_v,
    u_mul_e_sum,
)
from ..ops.nnops import leaky_relu, relu, row_softmax
from .gcn import gcn_norms
from .params import GATParams, GCNParams

__all__ = [
    "softmax_cross_entropy",
    "gcn_forward_backward",
    "gat_forward_backward",
    "sgd_step",
    "train_gcn",
]


def softmax_cross_entropy(
    logits: np.ndarray, labels: np.ndarray, mask: np.ndarray
) -> Tuple[float, np.ndarray]:
    """Mean masked cross-entropy loss and its gradient w.r.t. logits."""
    probs = row_softmax(logits.astype(np.float64))
    m = int(mask.sum())
    picked = probs[np.arange(logits.shape[0]), labels]
    loss = float(-np.log(np.maximum(picked[mask], 1e-12)).sum() / m)
    g = probs.copy()
    g[np.arange(logits.shape[0]), labels] -= 1.0
    g *= mask[:, None] / m
    return loss, g.astype(np.float32)


# ----------------------------------------------------------------------
# GCN
# ----------------------------------------------------------------------

def gcn_forward_backward(
    graph: CSRGraph,
    feat: np.ndarray,
    params: GCNParams,
    labels: np.ndarray,
    mask: np.ndarray,
) -> Tuple[float, List[np.ndarray]]:
    """One training step's loss and weight gradients for the GCN."""
    norm_src, norm_dst = gcn_norms(graph)
    h = feat
    tape = []
    num_layers = params.num_layers
    for li, w in enumerate(params.weights):
        hw = h @ w
        scaled = hw * norm_src[:, None]
        agg = copy_u_sum(graph, scaled)
        out = agg * norm_dst[:, None]
        pre_act = out
        if li < num_layers - 1:
            out = relu(out)
        tape.append((h, hw, pre_act))
        h = out
    loss, g = softmax_cross_entropy(h, labels, mask)
    grads: List[np.ndarray] = [None] * num_layers
    for li in reversed(range(num_layers)):
        h_in, hw, pre_act = tape[li]
        if li < num_layers - 1:
            g = relu_vjp(pre_act, g)
        g = g * norm_dst[:, None]          # through the dst scaling
        g = copy_u_sum_vjp(graph, g)       # through the aggregation
        g = g * norm_src[:, None]          # through the src scaling
        g_h, g_w = linear_vjp(h_in, params.weights[li], g)
        grads[li] = g_w
        g = g_h
    return loss, grads


# ----------------------------------------------------------------------
# GAT
# ----------------------------------------------------------------------

def gat_forward_backward(
    graph: CSRGraph,
    feat: np.ndarray,
    params: GATParams,
    labels: np.ndarray,
    mask: np.ndarray,
    negative_slope: float = 0.2,
) -> Tuple[float, Dict[str, List[np.ndarray]]]:
    """Loss and gradients (weights + attention vectors) for the GAT."""
    h = feat
    tape = []
    num_layers = params.num_layers
    for li in range(num_layers):
        w = params.weights[li]
        a_l, a_r = params.att_left[li], params.att_right[li]
        hw = (h @ w).astype(np.float32)
        att_src = hw @ a_l
        att_dst = hw @ a_r
        e_raw = u_add_v(graph, att_src, att_dst)
        e_act = leaky_relu(e_raw, negative_slope)
        alpha = segment_softmax(graph, e_act)
        agg = u_mul_e_sum(graph, hw, alpha)
        pre_act = agg
        out = relu(agg) if li < num_layers - 1 else agg
        tape.append((h, hw, e_raw, alpha, pre_act))
        h = out
    loss, g = softmax_cross_entropy(h, labels, mask)
    grads = {"weights": [None] * num_layers,
             "att_left": [None] * num_layers,
             "att_right": [None] * num_layers}
    for li in reversed(range(num_layers)):
        h_in, hw, e_raw, alpha, pre_act = tape[li]
        w = params.weights[li]
        a_l, a_r = params.att_left[li], params.att_right[li]
        if li < num_layers - 1:
            g = relu_vjp(pre_act, g)
        # Through the weighted aggregation.
        g_hw_agg, g_alpha = u_mul_e_sum_vjp(graph, hw, alpha, g)
        # Through the edge softmax and leaky ReLU.
        g_e_act = segment_softmax_vjp(graph, alpha, g_alpha)
        g_e_raw = leaky_relu_vjp(e_raw, g_e_act, negative_slope)
        # Through u_add_v to the per-node attention scalars.
        g_att_src, g_att_dst = u_add_v_vjp(graph, g_e_raw)
        # Through the attention projections.
        grads["att_left"][li] = hw.T @ g_att_src
        grads["att_right"][li] = hw.T @ g_att_dst
        g_hw = (
            g_hw_agg
            + np.outer(g_att_src, a_l)
            + np.outer(g_att_dst, a_r)
        ).astype(np.float32)
        g_h, g_w = linear_vjp(h_in, w, g_hw)
        grads["weights"][li] = g_w
        g = g_h
    return loss, grads


# ----------------------------------------------------------------------
# Optimizer + loop
# ----------------------------------------------------------------------

def sgd_step(
    params: GCNParams, grads: List[np.ndarray], lr: float
) -> GCNParams:
    """Pure-functional SGD update (params containers are frozen)."""
    new = tuple(
        (w - lr * g).astype(np.float32)
        for w, g in zip(params.weights, grads)
    )
    return GCNParams(weights=new)


@dataclasses.dataclass
class TrainResult:
    params: GCNParams
    losses: List[float]
    train_accuracy: float


def train_gcn(
    graph: CSRGraph,
    feat: np.ndarray,
    labels: np.ndarray,
    mask: np.ndarray,
    dims: Tuple[int, ...],
    epochs: int = 50,
    lr: float = 0.5,
    seed: int = 0,
) -> TrainResult:
    """Full-batch GCN training loop (the workload behind every epoch the
    paper's benchmarks time)."""
    params = GCNParams.init(dims, seed=seed)
    losses = []
    for _ in range(epochs):
        loss, grads = gcn_forward_backward(
            graph, feat, params, labels, mask
        )
        losses.append(loss)
        params = sgd_step(params, grads, lr)
    from .gcn import gcn_reference_forward

    logits = gcn_reference_forward(graph, feat, params)
    pred = logits.argmax(axis=1)
    acc = float((pred[mask] == labels[mask]).mean())
    return TrainResult(params=params, losses=losses, train_accuracy=acc)
