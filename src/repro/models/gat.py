"""GAT (Velickovic et al. 2018) — reference semantics.

Per layer (single head, as in the paper's evaluation):

.. math::
   h'_v = \\sum_{u \\to v} \\mathrm{softmax}_v(\\mathrm{leaky\\_relu}
          (att_u + att_v)) \\cdot (W h_u)

with ``att_u = (W h_u) a_l`` and ``att_v = (W h_v) a_r`` — Equation 2 /
Listing 1 of the paper.  Frameworks differ only in how they *lower* this
math (seven kernels in DGL vs. two fused kernels in ours).
"""

from __future__ import annotations

import dataclasses
from typing import Tuple

import numpy as np

from ..graph.csr import CSRGraph
from ..ops.graphops import segment_softmax, u_add_v, u_mul_e_sum
from ..ops.nnops import leaky_relu, relu
from .params import GATParams

__all__ = ["GATConfig", "gat_layer_reference", "gat_reference_forward"]

#: Same stacked dimensions as GCN (the paper uses one configuration).
PAPER_GAT_DIMS: Tuple[int, ...] = (512, 128, 64, 32)


@dataclasses.dataclass(frozen=True)
class GATConfig:
    dims: Tuple[int, ...] = PAPER_GAT_DIMS
    negative_slope: float = 0.2

    @property
    def num_layers(self) -> int:
        return len(self.dims) - 1

    def params(self, seed: int = 0) -> GATParams:
        return GATParams.init(self.dims, seed=seed)


def gat_layer_reference(
    graph: CSRGraph,
    h: np.ndarray,
    w: np.ndarray,
    a_l: np.ndarray,
    a_r: np.ndarray,
    negative_slope: float = 0.2,
) -> np.ndarray:
    """One GAT layer: projection, attention, edge softmax, aggregation."""
    hw = (h @ w).astype(np.float32)
    att_src = hw @ a_l  # [N]
    att_dst = hw @ a_r  # [N]
    e = u_add_v(graph, att_src, att_dst)          # [E]
    e = leaky_relu(e, negative_slope)
    alpha = segment_softmax(graph, e)             # [E]
    return u_mul_e_sum(graph, hw, alpha).astype(np.float32)


def gat_reference_forward(
    graph: CSRGraph,
    feat: np.ndarray,
    params: GATParams,
    negative_slope: float = 0.2,
) -> np.ndarray:
    h = feat
    last = params.num_layers - 1
    for li in range(params.num_layers):
        h = gat_layer_reference(
            graph,
            h,
            params.weights[li],
            params.att_left[li],
            params.att_right[li],
            negative_slope,
        )
        if li < last:
            h = relu(h)
    return h.astype(np.float32)
