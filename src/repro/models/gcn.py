"""GCN (Kipf & Welling 2017) — reference semantics.

Layer: ``H' = ReLU(Â (H W))`` with the symmetric normalization
``e_uv = 1 / sqrt(d_u d_v)`` of Table 2 (degrees are in-degrees of the
destination-major CSR, clamped to >= 1; self-degree convention is
documented here once and shared by every framework so outputs agree).

The transform-then-aggregate order (W first when it shrinks the feature)
matches DGL's GraphConv and is what determines the feature length at
which aggregation runs — the quantity every locality experiment sweeps.
"""

from __future__ import annotations

import dataclasses
from typing import Tuple

import numpy as np

from ..graph.csr import CSRGraph
from ..ops.graphops import copy_u_sum
from ..ops.nnops import relu
from .params import GCNParams

__all__ = ["GCNConfig", "gcn_norms", "gcn_reference_forward"]

#: The paper's layer dimensions (footnote 2): 512 input, 128/64 hidden,
#: 32 output features, three stacked layers.
PAPER_GCN_DIMS: Tuple[int, ...] = (512, 128, 64, 32)


@dataclasses.dataclass(frozen=True)
class GCNConfig:
    dims: Tuple[int, ...] = PAPER_GCN_DIMS

    @property
    def num_layers(self) -> int:
        return len(self.dims) - 1

    def params(self, seed: int = 0) -> GCNParams:
        return GCNParams.init(self.dims, seed=seed)


def gcn_norms(graph: CSRGraph) -> Tuple[np.ndarray, np.ndarray]:
    """Per-node ``1/sqrt(d)`` factors: (source-side, destination-side).

    ``e_uv = norm_src[u] * norm_dst[v]``; applying them as two node-level
    scalings (before and after aggregation) is exactly DGL's lowering and
    is mathematically identical to per-edge weights.
    """
    deg = np.maximum(graph.degrees, 1).astype(np.float32)
    inv_sqrt = 1.0 / np.sqrt(deg)
    return inv_sqrt, inv_sqrt


def gcn_reference_forward(
    graph: CSRGraph,
    feat: np.ndarray,
    params: GCNParams,
) -> np.ndarray:
    """Three(-or-more)-layer GCN forward pass; no activation on the last
    layer (logits), ReLU in between — the evaluation configuration."""
    norm_src, norm_dst = gcn_norms(graph)
    h = feat
    for li, w in enumerate(params.weights):
        h = h @ w
        h = h * norm_src[:, None]
        h = copy_u_sum(graph, h)
        h = h * norm_dst[:, None]
        if li < len(params.weights) - 1:
            h = relu(h)
    return h.astype(np.float32)
