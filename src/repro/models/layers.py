"""The full catalogue of GNN computing layers and edge-weight operations.

Table 1 of the paper lists the common computing layers (sum, mean,
pooling, MLP, LSTM, softmax-aggregation); Table 2 lists the edge-weight
operations (const, GCN, GAT, Sym-GAT, GaAN/cosine, Linear, Gene-linear).
This module implements all of them functionally so the library covers
the paper's full operator surface, not just the three benchmark models.

All functions take a destination-major :class:`~repro.graph.CSRGraph`;
``h`` is ``float32[N, F]``.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from ..graph.csr import CSRGraph
from ..ops.graphops import (
    segment_max,
    segment_softmax,
    segment_sum,
    u_add_v,
)
from ..ops.nnops import leaky_relu, linear, relu, tanh

__all__ = [
    "layer_sum",
    "layer_mean",
    "layer_pooling",
    "layer_mlp",
    "layer_softmax_aggr",
    "edge_const",
    "edge_gcn",
    "edge_gat",
    "edge_sym_gat",
    "edge_cosine",
    "edge_linear",
    "edge_gene_linear",
    "EDGE_WEIGHT_OPS",
]


# ----------------------------------------------------------------------
# Table 1: computing layers
# ----------------------------------------------------------------------

def _edge_scaled(graph: CSRGraph, h: np.ndarray,
                 edge_weight: np.ndarray) -> np.ndarray:
    return h[graph.indices] * edge_weight[:, None]


def layer_sum(
    graph: CSRGraph, h: np.ndarray, edge_weight: np.ndarray
) -> np.ndarray:
    """``SUM_{u->v} h_u * e_uv``."""
    return segment_sum(graph, _edge_scaled(graph, h, edge_weight))


def layer_mean(
    graph: CSRGraph, h: np.ndarray, edge_weight: np.ndarray
) -> np.ndarray:
    """``SUM_{u->v} h_u * e_uv / D_v``."""
    deg = np.maximum(graph.degrees, 1).astype(h.dtype)
    return layer_sum(graph, h, edge_weight) / deg[:, None]


def layer_pooling(
    graph: CSRGraph,
    h: np.ndarray,
    edge_weight: np.ndarray,
    w: np.ndarray,
    act: Callable[[np.ndarray], np.ndarray] = relu,
) -> np.ndarray:
    """``MAX_{u->v} act(W h_u * e_uv)`` (the max-pooling aggregator).

    Isolated centers yield zeros (the identity after masking -inf).
    """
    msg = act(
        linear(h, w)[graph.indices] * edge_weight[:, None]
    )
    out = segment_max(graph, msg)
    return np.where(np.isneginf(out), 0.0, out).astype(np.float32)


def layer_mlp(
    graph: CSRGraph,
    h: np.ndarray,
    edge_weight: np.ndarray,
    w1: np.ndarray,
    w2: np.ndarray,
) -> np.ndarray:
    """GIN-style ``MLP(SUM_{u->v} h_u * e_uv)`` with a 2-layer MLP."""
    agg = layer_sum(graph, h, edge_weight)
    return linear(relu(linear(agg, w1)), w2).astype(np.float32)


def layer_softmax_aggr(
    graph: CSRGraph, h: np.ndarray, edge_weight: np.ndarray
) -> np.ndarray:
    """DeepGCN's ``SUM_{u->v} h_u * softmax_v(e_uv)``."""
    alpha = segment_softmax(graph, edge_weight)
    return layer_sum(graph, h, alpha)


# ----------------------------------------------------------------------
# Table 2: edge-weight operations
# ----------------------------------------------------------------------

def edge_const(graph: CSRGraph, h: np.ndarray, **_) -> np.ndarray:
    """``e_uv = 1``."""
    return np.ones(graph.num_edges, dtype=np.float32)


def edge_gcn(graph: CSRGraph, h: np.ndarray, **_) -> np.ndarray:
    """``e_uv = 1 / sqrt(d_u d_v)``."""
    deg = np.maximum(graph.degrees, 1).astype(np.float64)
    inv = 1.0 / np.sqrt(deg)
    src = graph.indices
    dst = np.repeat(np.arange(graph.num_nodes), graph.degrees)
    return (inv[src] * inv[dst]).astype(np.float32)


def edge_gat(
    graph: CSRGraph,
    h: np.ndarray,
    w_l: np.ndarray,
    w_r: np.ndarray,
    negative_slope: float = 0.2,
    **_,
) -> np.ndarray:
    """``e_uv = leaky_relu(Wl h_u + Wr h_v)`` (scalar projections)."""
    left = h @ w_l
    right = h @ w_r
    return leaky_relu(
        u_add_v(graph, left, right), negative_slope
    ).astype(np.float32)


def edge_sym_gat(
    graph: CSRGraph,
    h: np.ndarray,
    w_l: np.ndarray,
    w_r: np.ndarray,
    negative_slope: float = 0.2,
    **_,
) -> np.ndarray:
    """``e_uv = e^gat_uv + e^gat_vu`` — evaluated on this graph's edges
    with the roles of the projections swapped for the reverse term."""
    fwd = edge_gat(graph, h, w_l, w_r, negative_slope)
    left = h @ w_l
    right = h @ w_r
    # reverse edge (v -> u): leaky(Wl h_v + Wr h_u)
    src = graph.indices
    dst = np.repeat(np.arange(graph.num_nodes), graph.degrees)
    rev = leaky_relu(left[dst] + right[src], negative_slope)
    return (fwd + rev).astype(np.float32)


def edge_cosine(
    graph: CSRGraph, h: np.ndarray, w_l: np.ndarray, w_r: np.ndarray, **_
) -> np.ndarray:
    """GaAN: ``e_uv = <Wl h_u, Wr h_v>`` (inner product of projections)."""
    left = h @ w_l   # [N, D]
    right = h @ w_r  # [N, D]
    src = graph.indices
    dst = np.repeat(np.arange(graph.num_nodes), graph.degrees)
    return np.einsum(
        "ed,ed->e", left[src], right[dst]
    ).astype(np.float32)


def edge_linear(
    graph: CSRGraph, h: np.ndarray, w_l: np.ndarray, **_
) -> np.ndarray:
    """``e_uv = tanh(sum(Wl h_u))`` — depends only on the source node."""
    val = tanh((h @ w_l).sum(axis=1))
    return val[graph.indices].astype(np.float32)


def edge_gene_linear(
    graph: CSRGraph,
    h: np.ndarray,
    w_l: np.ndarray,
    w_r: np.ndarray,
    w_a: np.ndarray,
    **_,
) -> np.ndarray:
    """Gene-linear: ``e_uv = Wa tanh(Wl h_u + Wr h_v)``."""
    left = h @ w_l   # [N, D]
    right = h @ w_r  # [N, D]
    src = graph.indices
    dst = np.repeat(np.arange(graph.num_nodes), graph.degrees)
    return (tanh(left[src] + right[dst]) @ w_a).astype(np.float32)


EDGE_WEIGHT_OPS: Dict[str, Callable[..., np.ndarray]] = {
    "const": edge_const,
    "gcn": edge_gcn,
    "gat": edge_gat,
    "sym_gat": edge_sym_gat,
    "cosine": edge_cosine,
    "linear": edge_linear,
    "gene_linear": edge_gene_linear,
}
