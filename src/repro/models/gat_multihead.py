"""Multi-head GAT (extension beyond the paper's single-head evaluation).

Velickovic et al.'s GAT uses K independent attention heads whose outputs
are concatenated (hidden layers) or averaged (output layer).  The paper
evaluates the single-head configuration; multi-head is the natural
extension and a stress test for the varying-feature-length machinery
(§2.2.3: "There can be multiple types of features on each node, such as
hidden feature and attention feature") — per-head widths are rarely
multiples of 32, which is exactly the case the tuner's lane selection
exists for.
"""

from __future__ import annotations

import dataclasses
from typing import List, Tuple

import numpy as np

from ..graph.csr import CSRGraph
from ..ops.graphops import segment_softmax, u_add_v, u_mul_e_sum
from ..ops.nnops import leaky_relu, relu
from .params import glorot

__all__ = ["MultiHeadGATConfig", "MultiHeadGATParams",
           "multihead_gat_layer", "multihead_gat_forward"]


@dataclasses.dataclass(frozen=True)
class MultiHeadGATConfig:
    """Stacked multi-head GAT: per-layer (head count, per-head width).

    Hidden layers concatenate their heads; the last layer averages them
    (the original paper's output convention).
    """

    dims: Tuple[int, ...] = (64, 16, 16, 8)
    heads: Tuple[int, ...] = (4, 4, 1)
    negative_slope: float = 0.2

    def __post_init__(self) -> None:
        if len(self.heads) != len(self.dims) - 1:
            raise ValueError("need one head count per layer")

    @property
    def num_layers(self) -> int:
        return len(self.heads)

    def layer_input_width(self, li: int) -> int:
        if li == 0:
            return self.dims[0]
        return self.dims[li] * self.heads[li - 1]

    def params(self, seed: int = 0) -> "MultiHeadGATParams":
        return MultiHeadGATParams.init(self, seed)


@dataclasses.dataclass(frozen=True)
class MultiHeadGATParams:
    """Per layer: list over heads of (W, a_l, a_r)."""

    layers: Tuple[Tuple[Tuple[np.ndarray, np.ndarray, np.ndarray], ...], ...]

    @staticmethod
    def init(
        config: MultiHeadGATConfig, seed: int = 0
    ) -> "MultiHeadGATParams":
        rng = np.random.default_rng(seed)
        layers = []
        for li in range(config.num_layers):
            f_in = config.layer_input_width(li)
            f_out = config.dims[li + 1]
            heads = []
            for _ in range(config.heads[li]):
                heads.append((
                    glorot(rng, f_in, f_out),
                    rng.standard_normal(f_out).astype(np.float32) * 0.1,
                    rng.standard_normal(f_out).astype(np.float32) * 0.1,
                ))
            layers.append(tuple(heads))
        return MultiHeadGATParams(layers=tuple(layers))


def multihead_gat_layer(
    graph: CSRGraph,
    h: np.ndarray,
    head_params,
    negative_slope: float,
    combine: str,
) -> np.ndarray:
    """One layer: run every head independently, then concat or mean."""
    outs: List[np.ndarray] = []
    for w, a_l, a_r in head_params:
        hw = (h @ w).astype(np.float32)
        e = leaky_relu(
            u_add_v(graph, hw @ a_l, hw @ a_r), negative_slope
        )
        alpha = segment_softmax(graph, e)
        outs.append(u_mul_e_sum(graph, hw, alpha))
    if combine == "concat":
        return np.concatenate(outs, axis=1).astype(np.float32)
    return np.mean(outs, axis=0).astype(np.float32)


def multihead_gat_forward(
    graph: CSRGraph,
    feat: np.ndarray,
    params: MultiHeadGATParams,
    config: MultiHeadGATConfig,
) -> np.ndarray:
    h = feat
    last = config.num_layers - 1
    for li, head_params in enumerate(params.layers):
        combine = "mean" if li == last else "concat"
        h = multihead_gat_layer(
            graph, h, head_params, config.negative_slope, combine
        )
        if li < last:
            h = relu(h)
    return h
