"""GraphSAGE-LSTM (Hamilton et al. 2017) — reference semantics.

One layer (the paper's evaluation uses a single layer with input/output
feature length 32 and 16 sampled neighbors):

1. sample ``k`` neighbors per center (fixed-size, with replacement);
2. run an LSTM over the neighbor feature sequence; the final hidden
   state is the neighborhood representation;
3. project ``concat(h_self, h_neigh)`` with ``w_out``.

The LSTM aggregation is the center-neighbor neural operation of paper
Fig. 1/Fig. 6; its execution strategies live in
:mod:`repro.core.sparse_fetch`.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from ..core.sparse_fetch import SageStrategy, run_sage_lstm_functional
from ..graph.csr import CSRGraph
from .params import SageLSTMParams

__all__ = ["SageLSTMConfig", "sage_lstm_reference_forward"]


@dataclasses.dataclass(frozen=True)
class SageLSTMConfig:
    """The paper's configuration (footnote 3): F_in = F_out = 32, k = 16."""

    f_in: int = 32
    hidden: int = 32
    f_out: int = 32
    num_neighbors: int = 16
    sample_seed: int = 0

    def params(self, seed: int = 0) -> SageLSTMParams:
        return SageLSTMParams.init(
            self.f_in, self.hidden, self.f_out, seed=seed
        )


def sage_lstm_reference_forward(
    graph: CSRGraph,
    feat: np.ndarray,
    params: SageLSTMParams,
    config: Optional[SageLSTMConfig] = None,
    strategy: SageStrategy = SageStrategy.BASE,
) -> np.ndarray:
    """One GraphSAGE-LSTM layer under any execution strategy."""
    config = config if config is not None else SageLSTMConfig()
    h_neigh = run_sage_lstm_functional(
        graph,
        feat,
        params.lstm,
        k=config.num_neighbors,
        strategy=strategy,
        seed=config.sample_seed,
    )
    combined = np.concatenate([feat, h_neigh], axis=1)
    return (combined @ params.w_out).astype(np.float32)
