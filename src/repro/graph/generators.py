"""Seeded synthetic graph generators.

The paper evaluates on eight OGB datasets whose behavioural differences are
driven by their *degree statistics* (average degree, degree variance, max
degree, density) and clustering (ddi is dense, protein is "inherently
clustered", arxiv has extreme hubs).  These generators reproduce those
signatures at reduced scale so the per-dataset orderings in every
figure/table carry over.  All generators are deterministic given a seed.

Three families:

* :func:`power_law_graph` — heavy-tailed in-degree (citation/social/
  co-purchasing networks: arxiv, collab, citation, ppa, reddit, products).
* :func:`clustered_graph` — community-structured, neighbors drawn mostly
  from a node's own community (protein).
* :func:`dense_graph` — Erdős–Rényi at high density (ddi).
"""

from __future__ import annotations

import numpy as np

from .csr import CSRGraph, coo_to_csr

__all__ = [
    "power_law_graph",
    "clustered_graph",
    "dense_graph",
    "ogb_scale_graph",
]


def _dedupe(src: np.ndarray, dst: np.ndarray):
    """Drop duplicate (src, dst) pairs and self-loops, preserving set."""
    mask = src != dst
    src, dst = src[mask], dst[mask]
    key = src.astype(np.int64) * (dst.max() + 1 if dst.size else 1) + dst
    _, first = np.unique(key, return_index=True)
    return src[first], dst[first]


def power_law_graph(
    num_nodes: int,
    avg_degree: float,
    *,
    exponent: float = 2.2,
    max_degree: int | None = None,
    locality: float = 0.75,
    community_scale: float = 1.5,
    shuffle: bool = True,
    seed: int = 0,
    name: str = "",
) -> CSRGraph:
    """Directed graph with power-law in-degrees and community sources.

    In-degree of each node is drawn from a Pareto-like distribution with
    the given tail ``exponent``, rescaled to hit ``avg_degree`` on
    average and clipped to ``max_degree``.  Larger exponents give lighter
    tails (lower degree variance).

    Sources mix two mechanisms, both present in real citation/social
    graphs: a ``locality`` fraction is drawn from the destination's
    *community* (a pool of ``community_scale * avg_degree`` nodes), the
    rest preferentially from high-degree hubs.  Same-community centers
    therefore share neighbors — the Jaccard similarity the paper's
    locality-aware scheduling clusters on.  With ``shuffle`` (the
    default, matching how real datasets arrive) node ids are randomly
    relabelled, so the *natural* issue order has no locality and
    scheduling has something to recover.
    """
    rng = np.random.default_rng(seed)
    raw = rng.pareto(exponent - 1.0, size=num_nodes) + 1.0
    deg = raw / raw.mean() * avg_degree
    if max_degree is not None:
        deg = np.minimum(deg, max_degree)
    deg = np.maximum(np.round(deg).astype(np.int64), 1)
    # Rescale after rounding/clipping so that E ~= N * avg_degree.
    target_e = int(round(num_nodes * avg_degree))
    scale = target_e / max(int(deg.sum()), 1)
    deg = np.maximum(np.round(deg * scale).astype(np.int64), 1)
    if max_degree is not None:
        deg = np.minimum(deg, max_degree)
    dst = np.repeat(np.arange(num_nodes, dtype=np.int64), deg)
    # Preferential (hub) source pool.
    popularity = deg.astype(np.float64)
    popularity /= popularity.sum()
    hub_src = rng.choice(num_nodes, size=dst.shape[0], p=popularity)
    # Community source pool: contiguous windows before the shuffle.
    comm_size = max(2, int(round(community_scale * avg_degree)))
    comm_lo = (dst // comm_size) * comm_size
    # Hubs draw from windows proportional to their own degree (anchored at
    # their community) so sampling-with-dedup does not collapse them.
    want = np.maximum(comm_size, 2 * deg[dst])
    width = np.minimum(comm_lo + want, num_nodes) - comm_lo
    comm_src = comm_lo + (rng.random(dst.shape[0]) * width).astype(np.int64)
    use_comm = rng.random(dst.shape[0]) < locality
    src = np.where(use_comm, comm_src, hub_src)
    src, dst = _dedupe(src, dst)
    if shuffle:
        relabel = rng.permutation(num_nodes)
        src, dst = relabel[src], relabel[dst]
    return coo_to_csr(src, dst, num_nodes, name=name)


def ogb_scale_graph(
    num_nodes: int = 1_200_000,
    avg_degree: float = 40.8,
    *,
    exponent: float = 2.4,
    max_degree: int = 4096,
    locality: float = 0.96,
    seed: int = 0,
    name: str = "ogb49m",
) -> CSRGraph:
    """Full-scale power-law graph (~49M edges at the defaults).

    The reduced-scale generators above keep the tier-1 suite fast; this
    one reproduces the *size* regime of the larger OGB datasets
    (products-class density at a papers100M-direction node count), where
    a monolithic plan exceeds the simulated device memory and execution
    only becomes possible sharded across devices — the regime ROC and
    NeuGraph were built for.  The defaults are sized against the 1 GiB
    simulated device budget: the 512-dim input features alone need
    ~2.3 GiB monolithic, still exceed one device at P=4 after edge-cut
    replication (~2x at these locality settings), and first fit at
    P=8 — so the 1/2/4/8 scaling curve records OOM cells until the
    sharded regime genuinely begins.

    Built straight into CSR: degrees draw the indptr, sources are
    sampled per edge (community window + hub preferential mix, as in
    :func:`power_law_graph`), and a single lexsort puts rows in the
    canonical (dst-grouped, src-sorted) order.  Self-loops are shifted
    rather than dropped so the degree array stays exact; duplicate
    sources within a row are tolerated (real co-purchase graphs carry
    multi-edges too).  No O(N^2) step anywhere — ~49M edges build in
    seconds.
    """
    rng = np.random.default_rng(seed)
    raw = rng.pareto(exponent - 1.0, size=num_nodes) + 1.0
    deg = raw / raw.mean() * avg_degree
    deg = np.minimum(deg, max_degree)
    deg = np.maximum(np.round(deg).astype(np.int64), 1)
    target_e = int(round(num_nodes * avg_degree))
    scale = target_e / max(int(deg.sum()), 1)
    deg = np.maximum(np.round(deg * scale).astype(np.int64), 1)
    deg = np.minimum(deg, max_degree)
    indptr = np.concatenate(
        ([0], np.cumsum(deg))
    ).astype(np.int64)
    num_edges = int(indptr[-1])
    dst = np.repeat(np.arange(num_nodes, dtype=np.int64), deg)
    # Community windows scale with the destination's own degree so hubs
    # reach past their window instead of collapsing onto duplicates.
    comm_size = max(2, int(round(1.5 * avg_degree)))
    comm_lo = (dst // comm_size) * comm_size
    want = np.maximum(comm_size, 2 * deg[dst])
    width = np.minimum(comm_lo + want, num_nodes) - comm_lo
    comm_src = comm_lo + (
        rng.random(num_edges) * width
    ).astype(np.int64)
    popularity = deg.astype(np.float64)
    popularity /= popularity.sum()
    hub_src = rng.choice(num_nodes, size=num_edges, p=popularity)
    src = np.where(
        rng.random(num_edges) < locality, comm_src, hub_src
    )
    src = np.where(src == dst, (src + 1) % num_nodes, src)
    order = np.lexsort((src, dst))
    return CSRGraph(indptr, src[order].astype(np.int32), name=name)


def clustered_graph(
    num_nodes: int,
    avg_degree: float,
    *,
    num_communities: int = 64,
    intra_prob: float = 0.9,
    seed: int = 0,
    name: str = "",
) -> CSRGraph:
    """Community-structured graph (a stochastic block model sampler).

    Each node belongs to one of ``num_communities`` contiguous communities;
    a fraction ``intra_prob`` of its neighbors come from its own community.
    Degrees are narrowly distributed (Poisson), matching protein's low
    relative degree variance and "already clustered" locality in the paper.
    """
    rng = np.random.default_rng(seed)
    comm = np.sort(rng.integers(0, num_communities, size=num_nodes))
    deg = np.maximum(rng.poisson(avg_degree, size=num_nodes), 1)
    dst = np.repeat(np.arange(num_nodes, dtype=np.int64), deg)
    # Community member lists (communities are contiguous after sort).
    bounds = np.searchsorted(comm, np.arange(num_communities + 1))
    dst_comm = comm[dst]
    lo = bounds[dst_comm]
    hi = bounds[dst_comm + 1]
    intra = rng.random(dst.shape[0]) < intra_prob
    width = np.maximum(hi - lo, 1)
    src = lo + (rng.random(dst.shape[0]) * width).astype(np.int64)
    rand_src = rng.integers(0, num_nodes, size=dst.shape[0])
    src = np.where(intra, src, rand_src)
    src, dst = _dedupe(src, dst)
    return coo_to_csr(src, dst, num_nodes, name=name)


def dense_graph(
    num_nodes: int,
    density: float,
    *,
    seed: int = 0,
    name: str = "",
) -> CSRGraph:
    """Dense Erdős–Rényi directed graph (the ddi signature).

    ``density`` is E / N^2.  Sampling is vectorized: we draw the number of
    edges from the Binomial mean and sample distinct (src, dst) pairs.
    """
    rng = np.random.default_rng(seed)
    target_e = int(density * num_nodes * num_nodes)
    # Oversample then dedupe; at density ~0.1 the collision rate is modest.
    draw = int(target_e * 1.3) + 16
    src = rng.integers(0, num_nodes, size=draw)
    dst = rng.integers(0, num_nodes, size=draw)
    src, dst = _dedupe(src, dst)
    if src.shape[0] > target_e:
        keep = rng.permutation(src.shape[0])[:target_e]
        keep.sort()
        src, dst = src[keep], dst[keep]
    return coo_to_csr(src, dst, num_nodes, name=name)
