"""Scaled synthetic equivalents of the paper's eight OGB datasets.

Table 3 of the paper lists node/edge counts, average/max degree, degree
variance and density for: collab, citation, arxiv (citation networks),
protein, ddi, ppa (biology networks), reddit (social) and products
(co-purchasing).  We regenerate each at reduced scale while preserving the
*relative* statistical signature that drives every per-dataset effect in
the paper:

* ``arxiv``   — extreme hubs: max degree ~1900x the average.
* ``collab``  — low-variance citation network.
* ``citation``— large N, low variance.
* ``ddi``     — tiny but extremely dense (density ~1e-1).
* ``protein`` — high average degree, community-clustered ("inherent
  clustered distributions" per the paper's Fig. 9 discussion).
* ``ppa``     — moderate hubs, medium density.
* ``reddit``  — high average degree and giant hubs.
* ``products``— large N with big hubs.

Scale factors (vs. the paper) are recorded in :data:`SCALE_NOTES`.
Datasets are cached per-process; construction is seeded and deterministic.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List

from .csr import CSRGraph
from .generators import clustered_graph, dense_graph, power_law_graph

__all__ = [
    "DATASETS",
    "DATASET_NAMES",
    "PAPER_STATS",
    "SCALE_NOTES",
    "load_dataset",
    "dataset_stats_row",
    "small_dataset",
]


@dataclasses.dataclass(frozen=True)
class DatasetRecipe:
    name: str
    domain: str
    build: Callable[[], CSRGraph]


def _arxiv() -> CSRGraph:
    return power_law_graph(
        17_000, 10.0, exponent=1.9, max_degree=2_600, seed=101, name="arxiv"
    )


def _collab() -> CSRGraph:
    return power_law_graph(
        23_600, 10.0, exponent=2.9, max_degree=70, seed=102, name="collab"
    )


def _citation() -> CSRGraph:
    return power_law_graph(
        100_000, 10.0, exponent=3.0, max_degree=170, seed=103, name="citation"
    )


def _ddi() -> CSRGraph:
    return dense_graph(1_300, 0.095, seed=104, name="ddi")


def _protein() -> CSRGraph:
    return clustered_graph(
        10_000, 280.0, num_communities=24, intra_prob=0.92, seed=105,
        name="protein",
    )


def _ppa() -> CSRGraph:
    return power_law_graph(
        14_400, 78.0, exponent=2.4, max_degree=1_700, seed=106, name="ppa"
    )


def _reddit() -> CSRGraph:
    return power_law_graph(
        11_600, 330.0, exponent=2.0, max_degree=5_500, seed=107,
        name="reddit",
    )


def _products() -> CSRGraph:
    return power_law_graph(
        60_000, 42.0, exponent=2.1, max_degree=4_400, seed=108,
        name="products",
    )


DATASETS: Dict[str, DatasetRecipe] = {
    "arxiv": DatasetRecipe("arxiv", "citation", _arxiv),
    "collab": DatasetRecipe("collab", "citation", _collab),
    "citation": DatasetRecipe("citation", "citation", _citation),
    "ddi": DatasetRecipe("ddi", "biology", _ddi),
    "protein": DatasetRecipe("protein", "biology", _protein),
    "ppa": DatasetRecipe("ppa", "biology", _ppa),
    "reddit": DatasetRecipe("reddit", "social", _reddit),
    "products": DatasetRecipe("products", "co-purchasing", _products),
}

#: The paper's canonical dataset order (Table 3 / all figures).
DATASET_NAMES: List[str] = [
    "arxiv", "collab", "citation", "ddi", "protein", "ppa",
    "reddit", "products",
]

#: Paper Table 3 values: (N, E, avg deg, max deg, degree variance, density).
PAPER_STATS = {
    "collab": (236_000, 2_400_000, 10, 671, 360, 4.2e-5),
    "citation": (2_900_000, 30_000_000, 10, 1_738, 221, 4.0e-6),
    "arxiv": (169_000, 1_200_000, 7, 13_155, 4_600, 4.1e-5),
    "protein": (133_000, 79_000_000, 597, 7_750, 386_000, 4.5e-3),
    "ddi": (4_000, 2_100_000, 501, 2_234, 177_000, 1.2e-1),
    "ppa": (576_000, 42_000_000, 74, 3_241, 9_900, 1.3e-4),
    "reddit": (233_000, 115_000_000, 492, 21_657, 640_000, 2.1e-3),
    "products": (2_400_000, 124_000_000, 51, 17_481, 9_100, 2.1e-5),
}

SCALE_NOTES = (
    "Node counts are scaled ~10-40x down and edge counts ~20-200x down from "
    "Table 3; average degree, relative degree variance, hub magnitude and "
    "density orderings are preserved per dataset (see DESIGN.md §2)."
)

_CACHE: Dict[str, CSRGraph] = {}


def load_dataset(name: str) -> CSRGraph:
    """Build (or fetch from the per-process cache) a dataset by name."""
    if name not in DATASETS:
        raise KeyError(
            f"unknown dataset {name!r}; available: {sorted(DATASETS)}"
        )
    if name not in _CACHE:
        _CACHE[name] = DATASETS[name].build()
    return _CACHE[name]


def small_dataset(seed: int = 7) -> CSRGraph:
    """A small power-law graph for tests and the quickstart example."""
    return power_law_graph(
        512, 8.0, exponent=2.1, max_degree=96, seed=seed, name="small"
    )


def dataset_stats_row(name: str) -> Dict[str, float]:
    """Statistics of the scaled dataset, in Table 3's column layout."""
    g = load_dataset(name)
    return {
        "name": name,
        "domain": DATASETS[name].domain,
        "N": g.num_nodes,
        "E": g.num_edges,
        "avg": g.avg_degree,
        "max": g.max_degree,
        "var": g.degree_variance,
        "density": g.density,
    }
