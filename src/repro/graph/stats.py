"""Graph statistics helpers used by datasets, the tuner and benchmarks."""

from __future__ import annotations

from typing import Dict

import numpy as np

from .csr import CSRGraph

__all__ = [
    "degree_histogram",
    "degree_cv",
    "neighbor_reuse_factor",
    "summary",
]


def degree_histogram(graph: CSRGraph, bins: int = 32) -> np.ndarray:
    """Histogram of in-degrees with log-spaced bins (``int64[bins]``)."""
    deg = graph.degrees
    if deg.size == 0:
        return np.zeros(bins, dtype=np.int64)
    hi = max(int(deg.max()), 1)
    edges = np.unique(
        np.round(np.logspace(0, np.log10(hi + 1), bins + 1)).astype(np.int64)
    )
    hist, _ = np.histogram(deg, bins=edges)
    out = np.zeros(bins, dtype=np.int64)
    out[: hist.shape[0]] = hist
    return out


def degree_cv(graph: CSRGraph) -> float:
    """Coefficient of variation of degrees — the load-imbalance driver."""
    deg = graph.degrees.astype(np.float64)
    mean = deg.mean() if deg.size else 0.0
    return float(deg.std() / mean) if mean > 0 else 0.0


def neighbor_reuse_factor(graph: CSRGraph) -> float:
    """Average number of times each *referenced* node appears as a neighbor.

    This is E / |unique sources| — the upper bound on feature-load reuse
    that Observation 1 of the paper says frameworks fail to exploit
    (E*Feat loaded vs N*Feat needed).
    """
    if graph.num_edges == 0:
        return 0.0
    uniq = np.unique(graph.indices).shape[0]
    return graph.num_edges / uniq


def summary(graph: CSRGraph) -> Dict[str, float]:
    """One-line statistical summary used in reports."""
    return {
        "N": graph.num_nodes,
        "E": graph.num_edges,
        "avg_degree": graph.avg_degree,
        "max_degree": graph.max_degree,
        "degree_var": graph.degree_variance,
        "degree_cv": degree_cv(graph),
        "density": graph.density,
        "reuse_factor": neighbor_reuse_factor(graph),
    }
