"""Graph sampling: minibatch neighborhoods and induced subgraphs.

The paper's §5.2 "online and offline improvement analysis" hinges on
sampling: when "the graph dynamically changes at every iteration when
graph sampling is applied", the offline analysis (locality-aware
scheduling) cannot be amortized and only the online optimizations
(neighbor grouping, adapter, sparse fetching) apply.  This module
provides the samplers that create those per-iteration graphs:

* :func:`khop_sampled_subgraph` — GraphSAGE-style fixed-fanout k-hop
  neighborhood expansion from a seed minibatch, returning the induced
  block graph (what one training iteration aggregates over);
* :func:`induced_subgraph` — the subgraph on an explicit node set
  (Cluster-GCN-style partition batches);
* :func:`random_edge_sample` — GraphSAINT-style edge sampling.

All samplers are seeded and return ordinary :class:`CSRGraph` objects
plus the node mapping back to the parent graph, so every optimization
and framework in the library runs on sampled graphs unchanged.
"""

from __future__ import annotations

import dataclasses
from typing import Tuple

import numpy as np

from .csr import CSRGraph, coo_to_csr

__all__ = [
    "SampledSubgraph",
    "khop_sampled_subgraph",
    "induced_subgraph",
    "random_edge_sample",
]


@dataclasses.dataclass(frozen=True)
class SampledSubgraph:
    """A sampled graph plus its mapping into the parent.

    ``node_map[i]`` is the parent node id of subgraph node ``i``; the
    first ``num_seeds`` subgraph nodes are the seed (output) nodes.
    """

    graph: CSRGraph
    node_map: np.ndarray
    num_seeds: int

    def lift_features(self, parent_feat: np.ndarray) -> np.ndarray:
        """Slice parent features for the subgraph's nodes."""
        return parent_feat[self.node_map]


def khop_sampled_subgraph(
    graph: CSRGraph,
    seeds: np.ndarray,
    fanouts: Tuple[int, ...],
    seed: int = 0,
) -> SampledSubgraph:
    """Fixed-fanout k-hop neighborhood sampling (GraphSAGE §3.1 style).

    Starting from ``seeds``, each hop samples at most ``fanouts[h]``
    in-neighbors per frontier node (without replacement when the degree
    allows).  Returns the subgraph induced on all visited nodes with
    only the sampled edges, destination-major like the parent.
    """
    rng = np.random.default_rng(seed)
    seeds = np.asarray(seeds, dtype=np.int64)
    visited = {int(v): i for i, v in enumerate(seeds)}
    order = list(seeds)
    src_list, dst_list = [], []
    frontier = seeds
    for fanout in fanouts:
        next_frontier = []
        for v in frontier:
            neigh = graph.neighbors(int(v))
            if neigh.shape[0] == 0:
                continue
            if neigh.shape[0] <= fanout:
                picked = neigh
            else:
                picked = rng.choice(neigh, size=fanout, replace=False)
            for u in picked:
                u = int(u)
                if u not in visited:
                    visited[u] = len(order)
                    order.append(u)
                    next_frontier.append(u)
                src_list.append(visited[u])
                dst_list.append(visited[int(v)])
        frontier = np.array(next_frontier, dtype=np.int64)
        if frontier.size == 0:
            break
    node_map = np.array(order, dtype=np.int64)
    sub = coo_to_csr(
        np.array(src_list, dtype=np.int64),
        np.array(dst_list, dtype=np.int64),
        node_map.shape[0],
        name=f"{graph.name}:khop",
    )
    return SampledSubgraph(sub, node_map, int(seeds.shape[0]))


def induced_subgraph(
    graph: CSRGraph, nodes: np.ndarray
) -> SampledSubgraph:
    """Subgraph induced on ``nodes`` (all parent edges between them)."""
    nodes = np.unique(np.asarray(nodes, dtype=np.int64))
    lookup = np.full(graph.num_nodes, -1, dtype=np.int64)
    lookup[nodes] = np.arange(nodes.shape[0])
    src, dst = [], []
    for new_v, v in enumerate(nodes):
        neigh = graph.neighbors(int(v))
        kept = neigh[lookup[neigh] >= 0]
        src.append(lookup[kept])
        dst.append(np.full(kept.shape[0], new_v, dtype=np.int64))
    sub = coo_to_csr(
        np.concatenate(src) if src else np.empty(0, np.int64),
        np.concatenate(dst) if dst else np.empty(0, np.int64),
        nodes.shape[0],
        name=f"{graph.name}:induced",
    )
    return SampledSubgraph(sub, nodes, int(nodes.shape[0]))


def random_edge_sample(
    graph: CSRGraph, num_edges: int, seed: int = 0
) -> SampledSubgraph:
    """GraphSAINT-style edge sampling: keep a uniform random edge set
    and the subgraph induced on their endpoints."""
    rng = np.random.default_rng(seed)
    e = graph.num_edges
    take = min(num_edges, e)
    picked = rng.choice(e, size=take, replace=False)
    picked.sort()
    src = graph.indices[picked].astype(np.int64)
    dst = graph.edge_dst()[picked].astype(np.int64)
    nodes = np.unique(np.concatenate([src, dst]))
    lookup = np.full(graph.num_nodes, -1, dtype=np.int64)
    lookup[nodes] = np.arange(nodes.shape[0])
    sub = coo_to_csr(
        lookup[src], lookup[dst], nodes.shape[0],
        name=f"{graph.name}:edges",
    )
    return SampledSubgraph(sub, nodes, int(nodes.shape[0]))
