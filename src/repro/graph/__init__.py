"""Graph substrate: CSR structure, synthetic generators, dataset registry."""

from .csr import CSRGraph, GraphValidationError, coo_to_csr, csr_to_coo
from .datasets import (
    DATASET_NAMES,
    DATASETS,
    PAPER_STATS,
    dataset_stats_row,
    load_dataset,
    small_dataset,
)
from .generators import (
    clustered_graph,
    dense_graph,
    ogb_scale_graph,
    power_law_graph,
)
from .sampling import (
    SampledSubgraph,
    induced_subgraph,
    khop_sampled_subgraph,
    random_edge_sample,
)
from .stats import degree_cv, degree_histogram, neighbor_reuse_factor, summary

__all__ = [
    "CSRGraph",
    "GraphValidationError",
    "coo_to_csr",
    "csr_to_coo",
    "DATASET_NAMES",
    "DATASETS",
    "PAPER_STATS",
    "dataset_stats_row",
    "load_dataset",
    "small_dataset",
    "clustered_graph",
    "SampledSubgraph",
    "induced_subgraph",
    "khop_sampled_subgraph",
    "random_edge_sample",
    "dense_graph",
    "ogb_scale_graph",
    "power_law_graph",
    "degree_cv",
    "degree_histogram",
    "neighbor_reuse_factor",
    "summary",
]
