"""Compressed Sparse Row graph structure.

This module provides the graph substrate every other part of the
reproduction builds on.  A :class:`CSRGraph` stores a directed graph in CSR
form oriented *destination-major*: for a center (destination) node ``v``,
``indices[indptr[v]:indptr[v+1]]`` are the source nodes of its incoming
edges.  This matches how DGL (and the paper's "center-neighbor" pattern)
lays out graph operations: one task per center node, iterating its
neighbors.

All arrays are numpy, contiguous, and never copied unless necessary
(`views, not copies` per the HPC guides).  Edge ids are positional: edge
``e`` of the CSR is ``(indices[e] -> row_of(e))``.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Optional, Tuple

import numpy as np

__all__ = [
    "CSRGraph",
    "coo_to_csr",
    "csr_to_coo",
    "GraphValidationError",
]


class GraphValidationError(ValueError):
    """Raised when a CSR structure is internally inconsistent."""


@dataclasses.dataclass(frozen=True)
class CSRGraph:
    """A directed graph in CSR (destination-major) form.

    Parameters
    ----------
    indptr:
        ``int64[num_nodes + 1]`` monotone row-pointer array.
    indices:
        ``int32[num_edges]`` source node for each incoming edge, grouped by
        destination node.
    num_nodes:
        Number of nodes.  Derived from ``indptr`` if omitted.
    edge_weight:
        Optional ``float32[num_edges]`` scalar edge data aligned with
        ``indices``.
    name:
        Optional human-readable dataset name.
    """

    indptr: np.ndarray
    indices: np.ndarray
    edge_weight: Optional[np.ndarray] = None
    name: str = ""

    def __post_init__(self) -> None:
        indptr = np.ascontiguousarray(self.indptr, dtype=np.int64)
        indices = np.ascontiguousarray(self.indices, dtype=np.int32)
        object.__setattr__(self, "indptr", indptr)
        object.__setattr__(self, "indices", indices)
        if self.edge_weight is not None:
            ew = np.ascontiguousarray(self.edge_weight, dtype=np.float32)
            object.__setattr__(self, "edge_weight", ew)
        self.validate()

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return int(self.indptr.shape[0] - 1)

    @property
    def num_edges(self) -> int:
        return int(self.indices.shape[0])

    @property
    def degrees(self) -> np.ndarray:
        """In-degree (number of neighbors) of each center node."""
        return np.diff(self.indptr)

    @property
    def avg_degree(self) -> float:
        n = self.num_nodes
        return self.num_edges / n if n else 0.0

    @property
    def max_degree(self) -> int:
        d = self.degrees
        return int(d.max()) if d.size else 0

    @property
    def degree_variance(self) -> float:
        d = self.degrees
        return float(d.var()) if d.size else 0.0

    @property
    def density(self) -> float:
        n = self.num_nodes
        return self.num_edges / (n * n) if n else 0.0

    @property
    def fingerprint(self) -> str:
        """Structural hash: changes iff the CSR structure changes.

        Computed lazily once per instance (the arrays are immutable by
        convention); used as the cache key for offline artifacts and
        in-process memo tables.
        """
        cached = self.__dict__.get("_fingerprint")
        if cached is None:
            h = hashlib.sha256()
            h.update(self.indptr.tobytes())
            h.update(self.indices.tobytes())
            cached = h.hexdigest()[:16]
            object.__setattr__(self, "_fingerprint", cached)
        return cached

    @property
    def indices64(self) -> np.ndarray:
        """``indices`` widened to int64, cached per instance.

        Kernel builders need 64-bit row ids; sharing one widened copy
        keeps repeated lowering cheap and lets content-digest caches key
        on a stable array identity.
        """
        cached = self.__dict__.get("_indices64")
        if cached is None:
            cached = self.indices.astype(np.int64)
            cached.setflags(write=False)
            object.__setattr__(self, "_indices64", cached)
        return cached

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def neighbors(self, v: int) -> np.ndarray:
        """Sources of edges into center node ``v`` (a view, not a copy)."""
        return self.indices[self.indptr[v] : self.indptr[v + 1]]

    def edge_range(self, v: int) -> Tuple[int, int]:
        """Half-open positional edge-id range of center node ``v``."""
        return int(self.indptr[v]), int(self.indptr[v + 1])

    def edge_dst(self) -> np.ndarray:
        """Destination node id for every positional edge (``int32[E]``)."""
        return np.repeat(
            np.arange(self.num_nodes, dtype=np.int32), self.degrees
        )

    def validate(self) -> None:
        """Check structural invariants, raising :class:`GraphValidationError`."""
        indptr, indices = self.indptr, self.indices
        if indptr.ndim != 1 or indptr.shape[0] < 1:
            raise GraphValidationError("indptr must be 1-D and non-empty")
        if indptr[0] != 0:
            raise GraphValidationError("indptr[0] must be 0")
        if np.any(np.diff(indptr) < 0):
            raise GraphValidationError("indptr must be non-decreasing")
        if indptr[-1] != indices.shape[0]:
            raise GraphValidationError(
                f"indptr[-1]={indptr[-1]} != num_edges={indices.shape[0]}"
            )
        n = self.num_nodes
        if indices.size and (indices.min() < 0 or indices.max() >= n):
            raise GraphValidationError("edge endpoints out of range")
        if self.edge_weight is not None and self.edge_weight.shape != (
            indices.shape[0],
        ):
            raise GraphValidationError("edge_weight misaligned with indices")

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def reverse(self) -> "CSRGraph":
        """Graph with all edges reversed (CSC of this graph, as CSR)."""
        src, dst = csr_to_coo(self)
        return coo_to_csr(
            dst, src, self.num_nodes, edge_weight=self.edge_weight,
            name=self.name + ":rev",
        )

    def permute_nodes(self, perm: np.ndarray) -> "CSRGraph":
        """Relabel nodes so that new node ``i`` is old node ``perm[i]``.

        ``perm`` must be a permutation of ``arange(num_nodes)``.  Both
        center rows and neighbor ids are relabelled; per-edge weights
        follow their edges.
        """
        perm = np.asarray(perm, dtype=np.int64)
        n = self.num_nodes
        if perm.shape != (n,) or not np.array_equal(
            np.sort(perm), np.arange(n)
        ):
            raise GraphValidationError("perm is not a permutation of nodes")
        inv = np.empty(n, dtype=np.int64)
        inv[perm] = np.arange(n)
        src, dst = csr_to_coo(self)
        return coo_to_csr(
            inv[src].astype(np.int32),
            inv[dst].astype(np.int32),
            n,
            edge_weight=self.edge_weight,
            name=self.name,
        )

    def with_weights(self, edge_weight: np.ndarray) -> "CSRGraph":
        return CSRGraph(self.indptr, self.indices, edge_weight, self.name)

    def row_slices(self) -> np.ndarray:
        """``int64[N, 2]`` array of (start, end) edge ranges per center."""
        return np.stack([self.indptr[:-1], self.indptr[1:]], axis=1)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CSRGraph(name={self.name!r}, N={self.num_nodes}, "
            f"E={self.num_edges}, avg_deg={self.avg_degree:.1f})"
        )


def coo_to_csr(
    src: np.ndarray,
    dst: np.ndarray,
    num_nodes: int,
    edge_weight: Optional[np.ndarray] = None,
    name: str = "",
    sort_neighbors: bool = True,
) -> CSRGraph:
    """Build a destination-major CSR from COO edge arrays.

    Edges are grouped by destination; within a row neighbors are sorted by
    source id when ``sort_neighbors`` (deterministic layout, required by the
    MinHash machinery which treats neighbor lists as sets).
    """
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    if src.shape != dst.shape:
        raise GraphValidationError("src/dst length mismatch")
    if src.size and (
        min(src.min(), dst.min()) < 0
        or max(src.max(), dst.max()) >= num_nodes
    ):
        raise GraphValidationError("edge endpoints out of range")
    if sort_neighbors:
        order = np.lexsort((src, dst))
    else:
        order = np.argsort(dst, kind="stable")
    src_sorted = src[order]
    dst_sorted = dst[order]
    counts = np.bincount(dst_sorted, minlength=num_nodes)
    indptr = np.zeros(num_nodes + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    ew = None
    if edge_weight is not None:
        ew = np.asarray(edge_weight, dtype=np.float32)[order]
    return CSRGraph(indptr, src_sorted.astype(np.int32), ew, name)


def csr_to_coo(graph: CSRGraph) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(src, dst)`` int64 COO arrays in positional edge order."""
    dst = np.repeat(np.arange(graph.num_nodes, dtype=np.int64), graph.degrees)
    return graph.indices.astype(np.int64), dst
