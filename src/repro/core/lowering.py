"""Lowering: from operator chains / layouts to simulator kernels.

This module is the single place where execution strategies become
:class:`~repro.gpusim.kernel.KernelSpec` objects.  Baseline frameworks
and our runtime all lower through these builders, so cost accounting is
identical and only the *strategies* differ:

* task layout — :class:`ExecLayout` carries the neighbor-grouping plan,
  the (optional) locality-aware center issue order, and the feature-lane
  mapping the tuner picks;
* fusion — a :class:`~repro.core.compgraph.FusionPlan` maps each fusion
  group to one kernel, charging intermediate tensors only at group
  boundaries (that is precisely what kernel fusion saves).

Cost conventions (DESIGN.md §5): feature-row reads are cacheable and
travel through the L2 model at ``row_bytes`` granularity (padded to
cache lines unless the layout packs rows); CSR structure, per-edge
scalars and writes are streaming DRAM traffic; atomics carry a per-op
charge.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

import numpy as np

from ..gpusim.config import GPUConfig
from ..gpusim.kernel import KernelDataflow, KernelSpec
from ..graph.csr import CSRGraph
from .adapter import postponable_into_aggregate
from .compgraph import FusionGroup, FusionPlan, OpKind
from .grouping import GroupingPlan, identity_grouping

__all__ = [
    "ExecLayout",
    "effective_row_bytes",
    "compute_waste",
    "aggregation_kernel",
    "edge_chain_kernel",
    "scalar_segment_reduce_kernel",
    "edge_gather_kernel",
    "gemm_kernel",
    "node_map_kernel",
    "edge_expansion_kernel",
    "scatter_reduce_kernel",
    "gather_rows_kernel",
    "lower_plan",
]


@dataclasses.dataclass(frozen=True)
class ExecLayout:
    """How graph-operation tasks map onto the machine.

    ``grouping`` is the neighbor-grouping plan (identity = one task per
    center, the DGL default).  ``center_order`` is the locality-aware
    issue order (None = natural order).  ``lanes`` is the number of
    threads mapped along the feature dimension; ``packed_rows`` marks the
    tuned access path that packs feature rows tightly instead of padding
    to cache lines.
    """

    grouping: GroupingPlan
    center_order: Optional[np.ndarray] = None
    lanes: int = 32
    packed_rows: bool = False

    @staticmethod
    def default(graph: CSRGraph) -> "ExecLayout":
        return ExecLayout(grouping=identity_grouping(graph))

    def block_permutation(self) -> Optional[np.ndarray]:
        """Permutation of group-blocks implied by the center order.

        Memoized per instance: lowering applies the same layout to
        every kernel of a pass, and a stable long-lived permutation
        array also lets the content-digest identity cache skip
        re-hashing it downstream.
        """
        if self.center_order is None:
            return None
        cached = self.__dict__.get("_block_perm")
        if cached is not None:
            return cached
        n = self.center_order.shape[0]
        rank = np.empty(n, dtype=np.int64)
        rank[self.center_order] = np.arange(n)
        perm = np.argsort(rank[self.grouping.group_center], kind="stable")
        object.__setattr__(self, "_block_perm", perm)
        return perm


def effective_row_bytes(
    feat_len: int, config: GPUConfig, packed: bool
) -> int:
    """Bytes actually moved per feature-row access.

    Unpacked rows round up to whole cache lines — the source of the
    sawtooth in Fig. 4 (a 48-float row moves two 128 B lines, wasting a
    third of the traffic).  The tuned path (Fig. 12) packs rows.
    """
    useful = feat_len * 4
    if packed:
        return useful
    line = config.line_bytes
    return int(-(-useful // line) * line)


def compute_waste(feat_len: int, lanes: int) -> float:
    """Warp-lane waste factor: idle lanes when F is not a multiple."""
    lanes = max(1, lanes)
    return (-(-feat_len // lanes) * lanes) / feat_len


def _apply_order(kernel: KernelSpec, layout: ExecLayout) -> KernelSpec:
    perm = layout.block_permutation()
    if perm is None:
        return kernel
    return kernel.reordered(perm)


def aggregation_kernel(
    graph: CSRGraph,
    feat_len: int,
    config: GPUConfig,
    layout: ExecLayout,
    *,
    name: str = "aggregate",
    tag: str = "graph",
    flops_per_edge_elem: float = 2.0,
    edge_stream_bytes_per_edge: float = 4.0,
    extra_flops_per_edge: float = 0.0,
    extra_block_flops: Optional[np.ndarray] = None,
    extra_block_stream: Optional[np.ndarray] = None,
    compute_scale: float = 1.0,
    uncoalesced: float = 1.0,
    counts_launch: bool = True,
) -> KernelSpec:
    """The center-neighbor feature aggregation kernel.

    One block per neighbor group; each block gathers its neighbors'
    feature rows (cacheable), streams the CSR slice and any per-edge
    scalars, and writes one partial/full output row.  Covers DGL's SpMM
    (identity layout), our NG/LAS variants, and fused GAT aggregation
    (via the ``extra_*`` hooks).  ``compute_scale`` models serialized
    hand-rolled kernels (DGL's non-cuSPARSE center-neighbor path maps a
    center to a thread loop rather than warp lanes).
    """
    g = layout.grouping
    sizes = g.group_sizes.astype(np.float64)
    waste = compute_waste(feat_len, layout.lanes) * compute_scale
    flops = sizes * feat_len * flops_per_edge_elem * waste
    flops += sizes * extra_flops_per_edge
    if extra_block_flops is not None:
        flops = flops + extra_block_flops
    structure = sizes * 4.0 + 16.0
    edge_scalars = sizes * edge_stream_bytes_per_edge
    writes = np.full(g.num_groups, feat_len * 4.0)
    stream = structure + edge_scalars + writes
    if extra_block_stream is not None:
        stream = stream + extra_block_stream
    atomics = np.where(
        g.needs_atomic, max(1, -(-feat_len // 4)), 0
    ).astype(np.int64)
    kernel = KernelSpec(
        name=name,
        block_flops=flops,
        row_ptr=g.group_ptr,
        row_ids=graph.indices64,
        row_bytes=int(
            effective_row_bytes(feat_len, config, layout.packed_rows)
            * uncoalesced
        ),
        stream_bytes=stream,
        atomics=atomics,
        counts_launch=counts_launch,
        tag=tag,
        block_center=g.group_center,
    )
    return _apply_order(kernel, layout)


def edge_chain_kernel(
    graph: CSRGraph,
    config: GPUConfig,
    *,
    name: str,
    reads_per_edge: float,
    writes_per_edge: float,
    flops_per_edge: float,
    seg_reduce: bool = False,
    counts_launch: bool = True,
) -> KernelSpec:
    """Edge-parallel elementwise kernel over per-edge scalars.

    Used for DGL's leaky_relu/exp/div passes and for our fused
    edge-weight chain (several ops, one pass).  ``seg_reduce`` adds the
    atomic partial-sum epilogue when a segment reduction is fused in.
    """
    e = graph.num_edges
    elems_per_block = config.threads_per_block * 4
    blocks = max(1, -(-e // elems_per_block))
    flops = np.full(blocks, flops_per_edge * e / blocks)
    stream = np.full(
        blocks, (reads_per_edge + writes_per_edge) * e / blocks
    )
    atomics = None
    if seg_reduce:
        stream = stream + 4.0 * e / blocks  # structure (dst ids)
        # One atomic per block-local segment tail; amortized ~1 per
        # distinct center in the block plus one remainder.
        per_block_centers = max(1.0, graph.num_nodes / blocks)
        atomics = np.full(blocks, int(per_block_centers) + 1, dtype=np.int64)
    return KernelSpec(
        name=name,
        block_flops=flops,
        stream_bytes=stream,
        atomics=atomics,
        counts_launch=counts_launch,
        tag="edge",
    )


def scalar_segment_reduce_kernel(
    graph: CSRGraph,
    config: GPUConfig,
    *,
    name: str = "seg_reduce",
    counts_launch: bool = True,
) -> KernelSpec:
    """Center-parallel scalar reduction (DGL's ``reduce_edge``).

    One block task per center node reading its per-edge scalars; this is
    the node-granularity layout, so it inherits the same long-tail
    imbalance as feature aggregation.
    """
    deg = graph.degrees.astype(np.float64)
    flops = deg  # one add per edge scalar
    stream = deg * 4.0 + 4.0 + 8.0  # edge scalars + write + row ptrs
    return KernelSpec(
        name=name,
        block_flops=flops,
        stream_bytes=stream,
        counts_launch=counts_launch,
        tag="graph",
        block_center=np.arange(graph.num_nodes, dtype=np.int64),
    )


def edge_gather_kernel(
    graph: CSRGraph,
    config: GPUConfig,
    *,
    name: str,
    node_values_read: int = 1,
    writes_per_edge: float = 4.0,
    flops_per_edge: float = 1.0,
    counts_launch: bool = True,
) -> KernelSpec:
    """Edge-parallel gather of per-node scalars (u_add_v / broadcast)."""
    e = graph.num_edges
    reads = 4.0 * node_values_read + 4.0  # gathered scalars + edge ids
    return edge_chain_kernel(
        graph,
        config,
        name=name,
        reads_per_edge=reads,
        writes_per_edge=writes_per_edge,
        flops_per_edge=flops_per_edge,
        counts_launch=counts_launch,
    )


def gemm_kernel(
    rows: int,
    f_in: int,
    f_out: int,
    config: GPUConfig,
    *,
    name: str = "gemm",
    counts_launch: bool = True,
) -> KernelSpec:
    """Dense transform ``[rows, f_in] @ [f_in, f_out]`` (cuBLAS-like)."""
    flops = 2.0 * rows * f_in * f_out
    bytes_moved = 4.0 * (rows * f_in + f_in * f_out + rows * f_out)
    tiles = max(1, -(-rows // 64)) * max(1, -(-f_out // 64))
    return KernelSpec.uniform_dense(
        name, flops, bytes_moved, tiles, counts_launch=counts_launch
    )


def node_map_kernel(
    num_nodes: int,
    feat_len: int,
    config: GPUConfig,
    *,
    name: str,
    flops_per_elem: float = 1.0,
    extra_reads_per_node: float = 4.0,
    counts_launch: bool = True,
) -> KernelSpec:
    """Elementwise map over node features (e.g. GCN's norm scaling)."""
    elems = num_nodes * feat_len
    bytes_moved = elems * 8.0 + num_nodes * extra_reads_per_node
    blocks = max(1, -(-elems // (config.threads_per_block * 4)))
    return KernelSpec.uniform_dense(
        name, flops_per_elem * elems, bytes_moved, blocks,
        counts_launch=counts_launch,
    )


def edge_expansion_kernel(
    graph: CSRGraph,
    feat_len: int,
    config: GPUConfig,
    *,
    name: str = "expand",
    counts_launch: bool = True,
) -> KernelSpec:
    """PyG's index-select: materialize ``[E, F]`` source features.

    Blocks chunk the edge list; each edge gathers one (cacheable) feature
    row and streams it back out — the duplication Observation 1 costs.
    """
    e = graph.num_edges
    edges_per_block = max(1, config.threads_per_block // min(feat_len, 32))
    blocks = max(1, -(-e // edges_per_block))
    row_ptr = np.minimum(
        np.arange(blocks + 1, dtype=np.int64) * edges_per_block, e
    )
    sizes = np.diff(row_ptr).astype(np.float64)
    stream = sizes * (feat_len * 4.0 + 4.0)  # expanded writes + indices
    return KernelSpec(
        name=name,
        block_flops=np.zeros(blocks),
        row_ptr=row_ptr,
        row_ids=graph.indices64,
        row_bytes=effective_row_bytes(feat_len, config, False),
        stream_bytes=stream,
        counts_launch=counts_launch,
        tag="graph",
    )


def scatter_reduce_kernel(
    graph: CSRGraph,
    feat_len: int,
    config: GPUConfig,
    *,
    name: str = "scatter_reduce",
    counts_launch: bool = True,
) -> KernelSpec:
    """PyG's scatter-add over the expanded ``[E, F]`` matrix.

    The expanded matrix is too large to hit in L2 (it is written then
    read once), so it is pure streaming traffic plus per-edge atomics.
    """
    e = graph.num_edges
    elems = e * feat_len
    elems_per_block = config.threads_per_block * 4
    blocks = max(1, -(-elems // elems_per_block))
    stream = np.full(blocks, (elems * 4.0 + e * 4.0) / blocks)
    atomics = np.full(
        blocks, max(1, (e * max(1, feat_len // 4)) // blocks), dtype=np.int64
    )
    # Atomic adds into one hub destination serialize across all of its
    # edges: the kernel's critical path carries max_degree x F/4 vector
    # atomics regardless of how edges are chunked.
    atomics[-1] += graph.max_degree * max(1, feat_len // 4)
    return KernelSpec(
        name=name,
        block_flops=np.full(blocks, 2.0 * elems / blocks),
        stream_bytes=stream,
        atomics=atomics,
        counts_launch=counts_launch,
        tag="edge",
    )


def gather_rows_kernel(
    row_ids: np.ndarray,
    feat_len: int,
    config: GPUConfig,
    *,
    name: str = "gather_rows",
    write_back: bool = True,
    counts_launch: bool = True,
) -> KernelSpec:
    """Gather arbitrary feature rows (SAGE-LSTM expansion / sparse fetch).

    ``row_ids`` is the flat gather index (e.g. ``neighbor_index[:, t]``
    or the full ``[N, k]`` flattened).  With ``write_back`` the gathered
    rows are materialized (expansion); without, they feed a fused
    consumer in registers (sparse fetching).
    """
    r = int(row_ids.shape[0])
    rows_per_block = max(1, config.threads_per_block // min(feat_len, 32))
    blocks = max(1, -(-r // rows_per_block))
    row_ptr = np.minimum(
        np.arange(blocks + 1, dtype=np.int64) * rows_per_block, r
    )
    sizes = np.diff(row_ptr).astype(np.float64)
    stream = sizes * 4.0  # index reads
    if write_back:
        stream = stream + sizes * feat_len * 4.0
    return KernelSpec(
        name=name,
        block_flops=np.zeros(blocks),
        row_ptr=row_ptr,
        row_ids=np.asarray(row_ids, dtype=np.int64),
        row_bytes=effective_row_bytes(feat_len, config, False),
        stream_bytes=stream,
        counts_launch=counts_launch,
        tag="graph",
    )


# ----------------------------------------------------------------------
# FusionPlan lowering (the GAT/GCN op chains)
# ----------------------------------------------------------------------

def _group_kinds(group: FusionGroup) -> set:
    return {op.kind for op in group.ops}


def _plan_dataflow(plan: FusionPlan, prefix: str) -> List[KernelDataflow]:
    """Logical cross-kernel dataflow of each fusion group's kernel.

    Walks the plan in execution order resolving every op's operands the
    same way the chain executes them (postponed ops run inside their
    host group, reading only their reduced/broadcast operand — their
    edge-aligned value is never materialized; they transform the
    aggregate's output in-kernel).  A buffer appears in the metadata
    only when it crosses a kernel boundary: produced in one group and
    consumed in a later one, or the chain's final output.  Buffer names
    are ``prefix + op.name`` — the per-layer prefixes keep them unique
    across a whole :class:`~repro.core.plan.CompiledPlan` stream.
    """
    num = len(plan.groups)
    reads: List[set] = [set() for _ in range(num)]
    consumers: dict = {}
    producer_group: dict = {}
    sync_names: set = set()
    # Producer trackers: (walk step, group index, buffer name).
    last_e1 = last_e1_nonbcast = last_bcast = last_reduce = last_nf = None

    def read(gi: int, src) -> None:
        if src is not None and src[1] != gi:
            reads[gi].add(src[2])
            consumers.setdefault(src[2], set()).add(gi)

    step = 0
    final_name = ""
    for gi, group in enumerate(plan.groups):
        entries = [(op, False) for op in group.ops] + [
            (op, True) for op in group.postponed
        ]
        group_reduced = False  # an in-group reduction precedes this op
        for op, postponed in entries:
            kind = op.kind
            if kind in (OpKind.EDGE_MAP, OpKind.SEG_REDUCE):
                if not postponed:
                    read(gi, last_e1)
            elif kind == OpKind.BCAST:
                read(gi, last_reduce)
            elif kind == OpKind.EDGE_DIV:
                if not postponed:
                    read(gi, last_e1_nonbcast)
                denom = last_bcast if (
                    last_bcast is not None
                    and (last_reduce is None
                         or last_bcast[0] > last_reduce[0])
                ) else last_reduce
                read(gi, denom)
            elif kind == OpKind.AGGREGATE:
                read(gi, last_e1)
                read(gi, last_nf)
            elif kind in (OpKind.NODE_MAP, OpKind.DENSE):
                read(gi, last_nf)
            if postponed:
                continue  # applied to the aggregate output in-kernel
            name = prefix + op.name
            producer_group[name] = gi
            final_name = name
            if kind in (OpKind.SEG_REDUCE, OpKind.AGGREGATE):
                group_reduced = True
            if group_reduced:
                # Reduced values — and any epilogue value derived from
                # them inside the same kernel — are complete only at the
                # kernel's completion sync (atomic partial merges).
                sync_names.add(name)
            src = (step, gi, name)
            step += 1
            out = op.out_shape
            if out in ("E1", "EF") and kind != OpKind.SEG_REDUCE:
                last_e1 = src
                if kind == OpKind.BCAST:
                    last_bcast = src
                else:
                    last_e1_nonbcast = src
            if out == "NF":
                last_nf = src
            if kind == OpKind.SEG_REDUCE:
                last_reduce = src

    flows: List[KernelDataflow] = []
    for gi, group in enumerate(plan.groups):
        writes = tuple(sorted(
            name for name, pg in producer_group.items()
            if pg == gi and (consumers.get(name) or name == final_name)
        ))
        flows.append(KernelDataflow(
            reads=tuple(sorted(reads[gi])),
            writes=writes,
            sync_writes=tuple(n for n in writes if n in sync_names),
            postponable=bool(group.ops) and not group.postponed and all(
                postponable_into_aggregate(op) for op in group.ops
            ),
            aggregate=OpKind.AGGREGATE in _group_kinds(group),
        ))
    return flows


def lower_plan(
    plan: FusionPlan,
    graph: CSRGraph,
    feat_len: int,
    config: GPUConfig,
    layout: ExecLayout,
    *,
    prefix: str = "",
    agg_compute_scale: float = 1.0,
    agg_uncoalesced: float = 1.0,
) -> List[KernelSpec]:
    """Lower a fusion plan for one layer's graph-side op chain.

    Each fusion group becomes one kernel.  Within a group, intermediate
    tensors stay in registers/shared memory (no traffic); only group
    inputs and outputs are charged.  Postponed (linear-property) ops are
    charged per *output* element instead of per edge.
    """
    kernels: List[KernelSpec] = []
    for group in plan.groups:
        kinds = _group_kinds(group)
        kname = prefix + "+".join(op.name for op in group.ops)
        edge_flops = sum(
            op.flops_per_elem
            for op in group.ops
            if op.out_shape in ("E1",)
        )
        if OpKind.AGGREGATE in kinds:
            # Feature aggregation, possibly with fused edge chain and
            # postponed linear ops.
            node_map_flops = sum(
                op.flops_per_elem * feat_len
                for op in group.ops
                if op.kind == OpKind.NODE_MAP
            )
            post_flops = sum(
                op.flops_per_elem for op in group.postponed
            )  # per output element (applied at group granularity)
            gsz = layout.grouping.num_groups
            extra_block_flops = np.full(
                gsz, post_flops * feat_len + node_map_flops
            )
            # Per-edge scalar weights are read when any edge-aligned
            # producer or the GAT weight stream feeds the aggregate.
            has_edge_weights = any(
                op.out_shape == "E1" for op in group.ops
            ) or bool(group.postponed)
            # Fused BCAST/EDGE_DIV ops gather their per-center operand
            # once per edge; the linear property postpones them, turning
            # that gather into once-per-output-row work instead.
            per_edge_gathers = sum(
                1
                for op in group.ops
                if op.kind in (OpKind.BCAST, OpKind.EDGE_DIV)
            )
            edge_stream = (4.0 if has_edge_weights else 0.0) + (
                4.0 * per_edge_gathers
            )
            kernels.append(
                aggregation_kernel(
                    graph,
                    feat_len,
                    config,
                    layout,
                    name=kname,
                    flops_per_edge_elem=2.0,
                    edge_stream_bytes_per_edge=edge_stream,
                    extra_flops_per_edge=edge_flops,
                    extra_block_flops=extra_block_flops,
                    compute_scale=agg_compute_scale,
                    uncoalesced=agg_uncoalesced,
                    tag="fused" if len(group.ops) > 1 else "graph",
                )
            )
        elif kinds == {OpKind.SEG_REDUCE}:
            kernels.append(
                scalar_segment_reduce_kernel(graph, config, name=kname)
            )
        elif OpKind.DENSE in kinds:
            kernels.append(
                gemm_kernel(graph.num_nodes, feat_len, feat_len, config,
                            name=kname)
            )
        elif kinds <= {OpKind.NODE_MAP}:
            kernels.append(
                node_map_kernel(
                    graph.num_nodes, feat_len, config, name=kname,
                    flops_per_elem=sum(
                        op.flops_per_elem for op in group.ops
                    ),
                )
            )
        else:
            # Edge-aligned chain (possibly with gathers and a fused
            # segment reduction).
            gathers = sum(
                2 if op.kind == OpKind.U_ADD_V else
                1 if op.kind in (OpKind.BCAST, OpKind.EDGE_DIV) else 0
                for op in group.ops
            )
            has_reduce = OpKind.SEG_REDUCE in kinds
            kernels.append(
                edge_chain_kernel(
                    graph,
                    config,
                    name=kname,
                    reads_per_edge=4.0 * max(1, gathers) + 4.0,
                    writes_per_edge=4.0,
                    flops_per_edge=max(edge_flops, 1.0),
                    seg_reduce=has_reduce,
                )
            )
    for kernel, flow in zip(kernels, _plan_dataflow(plan, prefix)):
        kernel.dataflow = flow
    return kernels
