"""Data visible range adapter: fusion planning over the computation graph.

The adapter (paper §4.2) fuses adjacent operations into one kernel when
the producer's data visible range can be *adapted* to the consumer's —
thread-local values are promoted to warp/block scope with shuffles and
shared memory instead of a round trip through global memory.  A consumer
that needs data at GLOBAL scope (e.g. reading a segment sum that other
blocks contribute to) forces a kernel boundary... unless the chain that
consumes the reduced value is *linear*, in which case those ops are
postponed past the next aggregation (the §4.2 K1/K2 normalization
example), dissolving the boundary.

Rules encoded here:

* per-element edge ops (EDGE_MAP, U_ADD_V, BCAST, EDGE_DIV) chain freely
  at THREAD scope;
* a SEG_REDUCE can fuse *into* its producing edge chain (order-
  insensitive reducers accumulate via adapter/shared-memory partials and
  atomics), but its output is complete only at kernel end, so any
  consumer starts a new kernel;
* an AGGREGATE can fuse with the edge chain feeding its edge weights;
* DENSE/NODE_MAP ops fuse with each other and with a following
  AGGREGATE's prologue (the norm-scale of GCN) when the adapter is on;
* with ``allow_linear``, BCAST+EDGE_DIV chains that separate a
  SEG_REDUCE from an AGGREGATE are postponed into the aggregate kernel.
"""

from __future__ import annotations

from typing import List

from .compgraph import (
    OP_EFFECTS,
    FusionGroup,
    FusionPlan,
    Op,
    OpKind,
    unfused_plan,
)

__all__ = ["plan_fusion", "postponable_into_aggregate"]

_EDGE_CHAIN = {
    OpKind.EDGE_MAP,
    OpKind.U_ADD_V,
    OpKind.BCAST,
    OpKind.EDGE_DIV,
}


def _consumes_reduced(op: Op) -> bool:
    """Does this op read the output of a preceding SEG_REDUCE?

    Answered from the op-kind effects table: BCAST gathers the reduced
    per-center scalar, and EDGE_DIV's denominator is the (broadcast)
    segment sum — DGL's ``e_div_v`` form reads it directly, with no
    materializing BCAST in between, so it must be covered too.
    """
    return OP_EFFECTS[op.kind].consumes_reduced


def postponable_into_aggregate(op: Op) -> bool:
    """Is this op individually eligible for linear-property postponement?

    A BCAST (the materialization of a reduced per-center scalar) or a
    linear op consuming reduced data can be moved past the next
    aggregation: the rewrite commutes with the sum.  This is the single
    definition both the planner's run-marking walk and the lowering's
    dataflow stamping consult.
    """
    if op.kind not in (OpKind.BCAST, OpKind.EDGE_DIV):
        return False
    return op.kind == OpKind.BCAST or (
        _consumes_reduced(op) and op.linear
    )


def _fusable_after(
    prev: Op, nxt: Op, grouped: bool, allow_linear: bool
) -> bool:
    """Can ``nxt`` start in the same kernel as ``prev``?"""
    if prev.kind == OpKind.AGGREGATE and nxt.kind == OpKind.NODE_MAP:
        # A linear node map after an aggregate fuses into the aggregate's
        # epilogue: scaling distributes over the (possibly atomic) sum.
        return allow_linear and nxt.linear
    # Anything after a completed reduction/aggregation needs its result:
    # global barrier.
    if prev.kind in (OpKind.SEG_REDUCE, OpKind.AGGREGATE, OpKind.DENSE):
        return False
    if prev.kind == OpKind.NODE_MAP:
        # Node-feature maps feed aggregates per-source-row: the adapter
        # folds the scale into the aggregate's gather (register scope).
        return nxt.kind in (OpKind.AGGREGATE, OpKind.NODE_MAP)
    if prev.kind in _EDGE_CHAIN:
        if nxt.kind in _EDGE_CHAIN:
            return True
        if nxt.kind == OpKind.SEG_REDUCE:
            # Adapter promotes thread partials to block scope; cross-block
            # remainders use atomics.  Fusable whether or not grouping
            # split the center.
            return True
        if nxt.kind == OpKind.AGGREGATE:
            return True
    return False


def plan_fusion(
    ops: List[Op],
    *,
    allow_adapter: bool = True,
    allow_linear: bool = False,
    grouped: bool = False,
    label: str = "",
) -> FusionPlan:
    """Partition an op chain into kernels.

    ``grouped`` records whether neighbor grouping may split one center's
    edges across blocks (it turns SEG_REDUCE scopes global; with the
    adapter the reduce still fuses by switching to atomic partials).
    """
    if not allow_adapter:
        return unfused_plan(ops)

    ops = list(ops)
    postponed_marks = [False] * len(ops)
    if allow_linear:
        # For each AGGREGATE, walk backwards over the maximal run of
        # postponable ops (BCAST, or a linear op consuming reduced data)
        # *immediately* before it; postpone the run iff a SEG_REDUCE
        # precedes it.  The run must be contiguous with the aggregate:
        # an op further upstream has a non-postponed consumer between
        # itself and the aggregate (a later EDGE_MAP, a second
        # normalization's SEG_REDUCE input, ...), and moving it past
        # that consumer would feed the consumer a stale value.
        for i, op in enumerate(ops):
            if op.kind != OpKind.AGGREGATE:
                continue
            run = []
            j = i - 1
            while j >= 0 and postponable_into_aggregate(ops[j]):
                run.append(j)
                j -= 1
            if run and any(
                o.kind == OpKind.SEG_REDUCE for o in ops[: run[-1]]
            ):
                for k in run:
                    postponed_marks[k] = True

    groups: List[FusionGroup] = []
    current = FusionGroup()
    pending_postponed: List[Op] = []
    prev_live: Op | None = None
    for i, op in enumerate(ops):
        if postponed_marks[i]:
            pending_postponed.append(op)
            continue
        if prev_live is None:
            current.ops.append(op)
        elif _fusable_after(prev_live, op, grouped, allow_linear):
            current.ops.append(op)
        else:
            groups.append(current)
            current = FusionGroup([op])
        if op.kind == OpKind.AGGREGATE and pending_postponed:
            current.postponed.extend(pending_postponed)
            pending_postponed = []
        prev_live = op
    if pending_postponed:
        # No aggregate followed; execute them as their own kernel after all.
        groups.append(current)
        current = FusionGroup(pending_postponed)
    if current.ops or current.postponed:
        groups.append(current)
    return FusionPlan(groups, label=label or ("linear" if allow_linear else "adapter"))
