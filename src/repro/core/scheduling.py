"""Locality-aware task scheduling (paper §4.1.1).

Three steps, exactly as the paper describes:

1. **Candidate pair selection** — MinHash + LSH over neighbor sets
   (:mod:`repro.core.minhash`) yields pairs of center nodes with high
   estimated Jaccard similarity.
2. **Pair merging** — a priority queue ordered by similarity merges
   pairs into clusters.  Every node starts as its own cluster's
   representative; dequeuing a pair of two representatives merges their
   clusters (larger cluster's representative wins); otherwise the two
   *representatives* are re-paired and re-enqueued.  Cluster size is
   bounded (32 in the paper's experiments) to keep low-similarity nodes
   from chaining into one blob.
3. **Task scheduling** — clusters are laid out contiguously in the block
   issue order, so their member nodes land on adjacent computing units
   and share L2 residency.

This is the paper's one *offline* optimization; :class:`ScheduleResult`
records the analysis cost so benchmarks can report it (§4.4 notes it is
amortized over hyper-parameter-tuning reruns).
"""

from __future__ import annotations

import dataclasses
import heapq
import time
from typing import List, Optional

import numpy as np

from ..graph.csr import CSRGraph
from ..gpusim import _native
from ..perf import fastpath_enabled
from .minhash import (
    MinHashSignature,
    lsh_candidate_pairs,
    minhash_signatures,
)

__all__ = ["ScheduleResult", "locality_aware_schedule", "cluster_sizes"]


@dataclasses.dataclass(frozen=True)
class ScheduleResult:
    """Output of locality-aware task scheduling.

    ``order`` is a permutation of center-node ids: position in ``order``
    is the block issue position.  ``cluster_id[v]`` identifies the cluster
    of node ``v`` (clusters are contiguous in ``order``).
    """

    order: np.ndarray
    cluster_id: np.ndarray
    num_clusters: int
    num_candidate_pairs: int
    analysis_seconds: float

    def validate(self, num_nodes: int) -> None:
        if not np.array_equal(np.sort(self.order), np.arange(num_nodes)):
            raise ValueError("schedule order is not a permutation")
        # Clusters must be contiguous runs in the order.
        cid = self.cluster_id[self.order]
        changes = np.flatnonzero(np.diff(cid) != 0).size + 1
        if changes != self.num_clusters:
            raise ValueError("clusters are not contiguous in the order")


class _DSU:
    """Disjoint sets with size bookkeeping; root is the representative."""

    __slots__ = ("parent", "size")

    def __init__(self, n: int) -> None:
        self.parent = list(range(n))
        self.size = [1] * n

    def find(self, x: int) -> int:
        parent = self.parent
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    def union(self, a: int, b: int) -> int:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        # Larger cluster's representative becomes the new representative.
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]
        return ra


def _merge_pairs(
    pairs: np.ndarray,
    sims: np.ndarray,
    num_nodes: int,
    max_cluster: int,
    sig: MinHashSignature,
    min_similarity: float,
) -> _DSU:
    """Priority-queue pair merging (paper step 2)."""
    dsu = _DSU(num_nodes)
    # Keep only pairs above the similarity floor, best-first, and cap the
    # heap at 16 pairs per node (the merge can use at most N-1 of them).
    keep = sims >= min_similarity
    pairs, sims = pairs[keep], sims[keep]
    cap = 16 * num_nodes
    if pairs.shape[0] > cap:
        top = np.argsort(-sims, kind="stable")[:cap]
        pairs, sims = pairs[top], sims[top]
    # The candidate pairs are static: instead of heapifying hundreds of
    # thousands of Python tuples, walk them in heap order — descending
    # similarity, ties by (u, v) — and keep a real heap only for the few
    # re-paired representatives pushed during the merge.  The combined
    # pop sequence is exactly the single-heap order.
    order = np.lexsort((pairs[:, 1], pairs[:, 0], -sims))
    # Scalar re-pair similarity: row-contiguous signature matrix makes the
    # per-pair compare two tiny slices instead of a full
    # signature_similarity call (same count/num_hashes float, bit for bit).
    sig_rows = np.ascontiguousarray(sig.matrix.T)
    empty = sig.empty
    num_hashes = sig_rows.shape[1]
    if fastpath_enabled() and _native.available():
        # The merge is a sequential pop-loop — the native port mirrors
        # it operation for operation (same double comparisons, same
        # count/num_hashes division), so the partition is identical.
        negs = np.ascontiguousarray(-sims[order])
        sorted_pairs = np.ascontiguousarray(pairs[order])
        parent = np.arange(num_nodes, dtype=np.int64)
        psize = np.ones(num_nodes, dtype=np.int64)
        ok = _native.merge_pairs(
            negs,
            np.ascontiguousarray(sorted_pairs[:, 0]),
            np.ascontiguousarray(sorted_pairs[:, 1]),
            sig_rows,
            np.ascontiguousarray(empty, dtype=np.uint8),
            max_cluster, min_similarity, parent, psize,
        )
        if ok:
            dsu = _DSU(0)
            dsu.parent = parent
            dsu.size = psize
            return dsu
    neg_sorted = (-sims[order]).tolist()
    uv_sorted = pairs[order].tolist()
    npairs = len(neg_sorted)
    pos = 0
    heap: List[tuple] = []
    seen = set()
    while heap or pos < npairs:
        if pos >= npairs:
            neg_s, u, v = heapq.heappop(heap)
        else:
            u, v = uv_sorted[pos]
            neg_s = neg_sorted[pos]
            if heap and heap[0] < (neg_s, u, v):
                neg_s, u, v = heapq.heappop(heap)
            else:
                pos += 1
        ru, rv = dsu.find(u), dsu.find(v)
        if ru == rv:
            continue
        if dsu.size[ru] + dsu.size[rv] > max_cluster:
            continue
        if ru == u and rv == v:
            dsu.union(u, v)
            continue
        # Not both representatives: re-pair the representatives, with a
        # freshly estimated similarity, as the paper prescribes.
        key = (min(ru, rv), max(ru, rv))
        if key in seen:
            continue
        seen.add(key)
        if empty[ru] and empty[rv]:
            s = 0.0
        else:
            s = np.count_nonzero(
                sig_rows[ru] == sig_rows[rv]) / num_hashes
        if s >= min_similarity:
            heapq.heappush(heap, (-s, key[0], key[1]))
    return dsu


def locality_aware_schedule(
    graph: CSRGraph,
    *,
    num_hashes: int = 32,
    bands: int = 16,
    max_cluster: int = 32,
    min_similarity: float = 0.1,
    pair_window: int = 4,
    seed: int = 0,
    signature: Optional[MinHashSignature] = None,
) -> ScheduleResult:
    """Compute the locality-aware center-node issue order for ``graph``."""
    t0 = time.perf_counter()
    n = graph.num_nodes
    sig = signature if signature is not None else minhash_signatures(
        graph, num_hashes=num_hashes, seed=seed
    )
    pairs, sims = lsh_candidate_pairs(
        sig, bands=bands, pair_window=pair_window, seed=seed + 1
    )
    dsu = _merge_pairs(pairs, sims, n, max_cluster, sig, min_similarity)
    # Resolve every node's root by iterated whole-array parent gathers
    # (pointer doubling) instead of N Python ``find`` calls; the fixpoint
    # is exactly the per-node root.
    roots = np.asarray(dsu.parent, dtype=np.int64)
    while True:
        grand = roots[roots]
        if np.array_equal(grand, roots):
            break
        roots = grand
    # Emit clusters contiguously; order clusters by their smallest member
    # (deterministic) and members by node id within a cluster.
    order = np.lexsort((np.arange(n), roots))
    # Re-label cluster ids densely in emission order.
    emitted_roots = roots[order]
    new_cluster = np.concatenate(
        [[True], emitted_roots[1:] != emitted_roots[:-1]]
    )
    dense_in_order = np.cumsum(new_cluster) - 1
    cluster_id = np.empty(n, dtype=np.int64)
    cluster_id[order] = dense_in_order
    elapsed = time.perf_counter() - t0
    return ScheduleResult(
        order=order.astype(np.int64),
        cluster_id=cluster_id,
        num_clusters=int(dense_in_order[-1]) + 1 if n else 0,
        num_candidate_pairs=int(pairs.shape[0]),
        analysis_seconds=elapsed,
    )


def cluster_sizes(result: ScheduleResult) -> np.ndarray:
    """Sizes of all clusters (``int64[num_clusters]``)."""
    return np.bincount(result.cluster_id, minlength=result.num_clusters)
