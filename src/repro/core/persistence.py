"""Persistence of offline analysis artifacts.

The paper's locality-aware scheduling is explicitly an *offline*
analysis: "It is done offline as we only need to do it once because the
graph structure stays invariant.  The results however can be used for
many runs of the GNN" (§4.4).  This module is that contract as code:
schedules (and tuning results) are saved next to the dataset and
reloaded in later processes, so the analysis cost is paid once per
graph, not once per run.

Artifacts are ``.npz`` files keyed by a structural fingerprint of the
graph; a stale artifact (graph changed) is detected and recomputed.
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import Optional

import numpy as np

from ..graph.csr import CSRGraph
from ..gpusim.metrics import KernelStats
from .scheduling import ScheduleResult, locality_aware_schedule
from .tuner import TuningResult

__all__ = [
    "graph_fingerprint",
    "save_schedule",
    "load_schedule",
    "schedule_with_cache",
    "save_tuning",
    "load_tuning",
    "save_kernel_stats",
    "load_kernel_stats",
]


def graph_fingerprint(graph: CSRGraph) -> str:
    """Structural hash: changes iff the CSR structure changes.

    Delegates to :attr:`CSRGraph.fingerprint`, which caches the digest
    per instance, so artifact lookups in hot loops cost one attribute
    read instead of re-hashing the edge arrays.
    """
    return graph.fingerprint


def save_schedule(
    path: str, graph: CSRGraph, schedule: ScheduleResult
) -> None:
    """Persist a schedule with its graph fingerprint."""
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    np.savez_compressed(
        path,
        order=schedule.order,
        cluster_id=schedule.cluster_id,
        meta=np.frombuffer(
            json.dumps({
                "fingerprint": graph_fingerprint(graph),
                "num_clusters": schedule.num_clusters,
                "num_candidate_pairs": schedule.num_candidate_pairs,
                "analysis_seconds": schedule.analysis_seconds,
            }).encode(),
            dtype=np.uint8,
        ),
    )


def load_schedule(
    path: str, graph: CSRGraph
) -> Optional[ScheduleResult]:
    """Load a schedule if present and still valid for ``graph``."""
    if not os.path.exists(path):
        return None
    with np.load(path) as data:
        meta = json.loads(bytes(data["meta"].tobytes()).decode())
        if meta["fingerprint"] != graph_fingerprint(graph):
            return None  # stale: graph structure changed
        return ScheduleResult(
            order=data["order"],
            cluster_id=data["cluster_id"],
            num_clusters=int(meta["num_clusters"]),
            num_candidate_pairs=int(meta["num_candidate_pairs"]),
            analysis_seconds=float(meta["analysis_seconds"]),
        )


def schedule_with_cache(
    graph: CSRGraph, cache_dir: str, **kwargs
) -> ScheduleResult:
    """Load-or-compute-and-save the offline schedule for ``graph``."""
    path = os.path.join(
        cache_dir, f"schedule_{graph.name or 'graph'}_"
        f"{graph_fingerprint(graph)}.npz",
    )
    cached = load_schedule(path, graph)
    if cached is not None:
        return cached
    schedule = locality_aware_schedule(graph, **kwargs)
    save_schedule(path, graph, schedule)
    return schedule


def save_tuning(path: str, graph: CSRGraph, feat_len: int,
                result: TuningResult) -> None:
    """Persist an online-tuning outcome (bound/lanes/launch)."""
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    payload = {
        "fingerprint": graph_fingerprint(graph),
        "feat_len": feat_len,
        "bound": result.bound,
        "lanes": result.lanes,
        "packed_rows": result.packed_rows,
        "rounds": result.rounds,
        "trace": {str(k): v for k, v in result.trace.items()},
        "baseline_seconds": result.baseline_seconds,
        "threads_per_block": result.launch.threads_per_block,
        "registers_per_thread": result.launch.registers_per_thread,
        "shared_per_block": result.launch.shared_per_block,
        "resident_blocks_per_sm": result.resident_blocks_per_sm,
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)


def load_tuning(
    path: str, graph: CSRGraph, feat_len: int
) -> Optional[TuningResult]:
    """Load a tuning result if present and valid for (graph, feat)."""
    if not os.path.exists(path):
        return None
    try:
        with open(path) as fh:
            payload = json.load(fh)
        if (
            payload["fingerprint"] != graph_fingerprint(graph)
            or payload["feat_len"] != feat_len
        ):
            return None
        from ..gpusim.occupancy import LaunchConfig

        return TuningResult(
            bound=payload["bound"],
            lanes=payload["lanes"],
            packed_rows=payload["packed_rows"],
            rounds=payload["rounds"],
            trace={int(k): v for k, v in payload["trace"].items()},
            baseline_seconds=payload["baseline_seconds"],
            launch=LaunchConfig(
                payload["threads_per_block"],
                payload["registers_per_thread"],
                payload["shared_per_block"],
            ),
            resident_blocks_per_sm=payload["resident_blocks_per_sm"],
        )
    except (KeyError, ValueError, TypeError):
        # Artifact written by an older/newer version (missing or
        # malformed keys): treat as a cache miss, not an error.
        return None


def save_kernel_stats(path: str, stats: KernelStats) -> None:
    """Persist one simulated :class:`KernelStats` (on-disk memo tier).

    Written atomically (rename) so concurrent suite processes sharing a
    cache directory never observe a torn file.
    """
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    payload = dataclasses.asdict(stats)
    # JSON object keys are strings; occupancy thresholds are floats.
    payload["occupancy"] = {
        str(k): v for k, v in stats.occupancy.items()
    }
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w") as fh:
        json.dump(payload, fh)
    os.replace(tmp, path)


def load_kernel_stats(path: str) -> Optional[KernelStats]:
    """Load a persisted :class:`KernelStats`, ``None`` if absent/invalid."""
    if not os.path.exists(path):
        return None
    try:
        with open(path) as fh:
            payload = json.load(fh)
        payload["occupancy"] = {
            float(k): float(v) for k, v in payload["occupancy"].items()
        }
        field_names = {f.name for f in dataclasses.fields(KernelStats)}
        if set(payload) != field_names:
            return None  # schema drift: recompute rather than guess
        return KernelStats(**payload)
    except (KeyError, ValueError, TypeError, json.JSONDecodeError):
        return None
