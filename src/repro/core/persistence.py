"""Persistence of offline analysis artifacts.

The paper's locality-aware scheduling is explicitly an *offline*
analysis: "It is done offline as we only need to do it once because the
graph structure stays invariant.  The results however can be used for
many runs of the GNN" (§4.4).  This module is that contract as code:
schedules (and tuning results) are saved next to the dataset and
reloaded in later processes, so the analysis cost is paid once per
graph, not once per run.

Artifacts are ``.npz`` files keyed by a structural fingerprint of the
graph; a stale artifact (graph changed) is detected and recomputed.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
import logging
import os
import uuid
from typing import Optional

import numpy as np

from ..graph.csr import CSRGraph
from ..gpusim.kernel import KernelDataflow, KernelSpec
from ..gpusim.metrics import KernelStats
from .scheduling import ScheduleResult, locality_aware_schedule
from .tuner import TuningResult

__all__ = [
    "graph_fingerprint",
    "save_schedule",
    "load_schedule",
    "schedule_with_cache",
    "save_tuning",
    "load_tuning",
    "save_kernel_stats",
    "load_kernel_stats",
    "save_plan",
    "load_plan",
]

logger = logging.getLogger(__name__)

#: Per-process counter for temp-file names.  The pid alone is not a
#: unique suffix: two threads of one process, or pid-recycled processes
#: on a shared cache directory (containers commonly restart at pid 1),
#: can collide mid-write.  pid + counter + a random token cannot.
_TMP_COUNTER = itertools.count()


def _tmp_path(path: str) -> str:
    return (
        f"{path}.tmp.{os.getpid()}."
        f"{next(_TMP_COUNTER)}.{uuid.uuid4().hex[:8]}"
    )


def graph_fingerprint(graph: CSRGraph) -> str:
    """Structural hash: changes iff the CSR structure changes.

    Delegates to :attr:`CSRGraph.fingerprint`, which caches the digest
    per instance, so artifact lookups in hot loops cost one attribute
    read instead of re-hashing the edge arrays.
    """
    return graph.fingerprint


def save_schedule(
    path: str, graph: CSRGraph, schedule: ScheduleResult
) -> None:
    """Persist a schedule with its graph fingerprint."""
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    np.savez_compressed(
        path,
        order=schedule.order,
        cluster_id=schedule.cluster_id,
        meta=np.frombuffer(
            json.dumps({
                "fingerprint": graph_fingerprint(graph),
                "num_clusters": schedule.num_clusters,
                "num_candidate_pairs": schedule.num_candidate_pairs,
                "analysis_seconds": schedule.analysis_seconds,
            }).encode(),
            dtype=np.uint8,
        ),
    )


def load_schedule(
    path: str, graph: CSRGraph
) -> Optional[ScheduleResult]:
    """Load a schedule if present and still valid for ``graph``.

    A missing file is a silent cache miss; a corrupt or stale artifact
    is a logged one — the caller recomputes either way, but a warning
    names the file so persistent staleness/corruption is visible.
    """
    if not os.path.exists(path):
        return None
    try:
        with np.load(path) as data:
            meta = json.loads(bytes(data["meta"].tobytes()).decode())
            if meta["fingerprint"] != graph_fingerprint(graph):
                logger.warning(
                    "stale schedule artifact %s: graph fingerprint %s != "
                    "expected %s; recomputing",
                    path, meta["fingerprint"], graph_fingerprint(graph),
                )
                return None
            return ScheduleResult(
                order=data["order"],
                cluster_id=data["cluster_id"],
                num_clusters=int(meta["num_clusters"]),
                num_candidate_pairs=int(meta["num_candidate_pairs"]),
                analysis_seconds=float(meta["analysis_seconds"]),
            )
    except (OSError, ValueError, KeyError, TypeError,
            json.JSONDecodeError) as exc:
        logger.warning(
            "corrupt schedule artifact %s (%s: %s); recomputing",
            path, type(exc).__name__, exc,
        )
        return None


def schedule_with_cache(
    graph: CSRGraph, cache_dir: str, **kwargs
) -> ScheduleResult:
    """Load-or-compute-and-save the offline schedule for ``graph``."""
    path = os.path.join(
        cache_dir, f"schedule_{graph.name or 'graph'}_"
        f"{graph_fingerprint(graph)}.npz",
    )
    cached = load_schedule(path, graph)
    if cached is not None:
        return cached
    schedule = locality_aware_schedule(graph, **kwargs)
    save_schedule(path, graph, schedule)
    return schedule


def save_tuning(path: str, graph: CSRGraph, feat_len: int,
                result: TuningResult) -> None:
    """Persist an online-tuning outcome (bound/lanes/launch)."""
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    payload = {
        "fingerprint": graph_fingerprint(graph),
        "feat_len": feat_len,
        "bound": result.bound,
        "lanes": result.lanes,
        "packed_rows": result.packed_rows,
        "rounds": result.rounds,
        "trace": {str(k): v for k, v in result.trace.items()},
        "baseline_seconds": result.baseline_seconds,
        "threads_per_block": result.launch.threads_per_block,
        "registers_per_thread": result.launch.registers_per_thread,
        "shared_per_block": result.launch.shared_per_block,
        "resident_blocks_per_sm": result.resident_blocks_per_sm,
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2)


def load_tuning(
    path: str, graph: CSRGraph, feat_len: int
) -> Optional[TuningResult]:
    """Load a tuning result if present and valid for (graph, feat)."""
    if not os.path.exists(path):
        return None
    try:
        with open(path) as fh:
            payload = json.load(fh)
        if (
            payload["fingerprint"] != graph_fingerprint(graph)
            or payload["feat_len"] != feat_len
        ):
            logger.warning(
                "stale tuning artifact %s: (fingerprint=%s, feat_len=%s) "
                "!= expected (%s, %s); retuning",
                path, payload.get("fingerprint"), payload.get("feat_len"),
                graph_fingerprint(graph), feat_len,
            )
            return None
        from ..gpusim.occupancy import LaunchConfig

        return TuningResult(
            bound=payload["bound"],
            lanes=payload["lanes"],
            packed_rows=payload["packed_rows"],
            rounds=payload["rounds"],
            trace={int(k): v for k, v in payload["trace"].items()},
            baseline_seconds=payload["baseline_seconds"],
            launch=LaunchConfig(
                payload["threads_per_block"],
                payload["registers_per_thread"],
                payload["shared_per_block"],
            ),
            resident_blocks_per_sm=payload["resident_blocks_per_sm"],
        )
    except (KeyError, ValueError, TypeError, json.JSONDecodeError) as exc:
        # Artifact written by an older/newer version (missing or
        # malformed keys): treat as a cache miss, not an error.
        logger.warning(
            "corrupt tuning artifact %s (%s: %s); retuning",
            path, type(exc).__name__, exc,
        )
        return None


def save_kernel_stats(path: str, stats: KernelStats) -> None:
    """Persist one simulated :class:`KernelStats` (on-disk memo tier).

    Written atomically (rename) so concurrent suite processes sharing a
    cache directory never observe a torn file.
    """
    payload = dataclasses.asdict(stats)
    # JSON object keys are strings; occupancy thresholds are floats.
    payload["occupancy"] = {
        str(k): v for k, v in stats.occupancy.items()
    }
    tmp = _tmp_path(path)
    try:
        os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
        with open(tmp, "w") as fh:
            json.dump(payload, fh)
        os.replace(tmp, path)
    except OSError as exc:
        # The disk tier is an optimization; a full or read-only cache
        # directory must not fail the simulation that produced the stats.
        logger.warning(
            "could not persist kernel stats to %s (%s: %s)",
            path, type(exc).__name__, exc,
        )
        if os.path.exists(tmp):
            try:
                os.remove(tmp)
            except OSError:
                pass


def load_kernel_stats(path: str) -> Optional[KernelStats]:
    """Load a persisted :class:`KernelStats`, ``None`` if absent/invalid."""
    if not os.path.exists(path):
        return None
    try:
        with open(path) as fh:
            payload = json.load(fh)
        payload["occupancy"] = {
            float(k): float(v) for k, v in payload["occupancy"].items()
        }
        field_names = {f.name for f in dataclasses.fields(KernelStats)}
        if set(payload) != field_names:
            # Schema drift: recompute rather than guess.
            logger.warning(
                "stale kernel-stats artifact %s: fields %s != schema %s; "
                "resimulating",
                path, sorted(set(payload)), sorted(field_names),
            )
            return None
        return KernelStats(**payload)
    except (OSError, KeyError, ValueError, TypeError,
            json.JSONDecodeError) as exc:
        logger.warning(
            "corrupt kernel-stats artifact %s (%s: %s); resimulating",
            path, type(exc).__name__, exc,
        )
        return None


# ----------------------------------------------------------------------
# CompiledPlan artifacts (the content-addressed plan cache's disk tier)
# ----------------------------------------------------------------------

def _op_to_dict(op) -> dict:
    return {
        "name": op.name,
        "kind": op.kind.value,
        "out_shape": op.out_shape,
        "flops_per_elem": op.flops_per_elem,
        "linear": op.linear,
    }


def _op_from_dict(d: dict):
    from .compgraph import Op, OpKind

    return Op(
        name=d["name"],
        kind=OpKind(d["kind"]),
        out_shape=d["out_shape"],
        flops_per_elem=float(d["flops_per_elem"]),
        linear=bool(d["linear"]),
    )


def _fusion_to_dict(plan) -> dict:
    return {
        "label": plan.label,
        "groups": [
            {
                "ops": [_op_to_dict(op) for op in g.ops],
                "postponed": [_op_to_dict(op) for op in g.postponed],
            }
            for g in plan.groups
        ],
    }


def _fusion_from_dict(d: dict):
    from .compgraph import FusionGroup, FusionPlan

    return FusionPlan(
        groups=[
            FusionGroup(
                ops=[_op_from_dict(o) for o in g["ops"]],
                postponed=[_op_from_dict(o) for o in g["postponed"]],
            )
            for g in d["groups"]
        ],
        label=d["label"],
    )


#: Optional per-kernel arrays: (meta key, KernelSpec attribute).
_KERNEL_ARRAYS = (
    ("row_ptr", "row_ptr"),
    ("row_ids", "row_ids"),
    ("stream_bytes", "stream_bytes"),
    ("atomics", "atomics"),
    ("block_center", "block_center"),
)

#: Optional per-layer arrays (the flattened ExecLayout).
_LAYER_ARRAYS = ("group_ptr", "group_center", "needs_atomic", "center_order")


def save_plan(path: str, plan) -> None:
    """Persist one :class:`~repro.core.plan.CompiledPlan` as ``.npz``.

    Kernel arrays round-trip byte-identically (dtypes are already
    normalized by ``KernelSpec.__post_init__``); everything scalar goes
    through one JSON meta blob.  Written atomically (rename) so
    concurrent processes sharing a plan-cache directory never observe a
    torn artifact.
    """
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    arrays = {}
    kernels_meta = []
    for i, k in enumerate(plan.kernels):
        arrays[f"k{i}_block_flops"] = k.block_flops
        present = []
        for key, attr in _KERNEL_ARRAYS:
            arr = getattr(k, attr)
            if arr is not None:
                arrays[f"k{i}_{key}"] = arr
                present.append(key)
        kernels_meta.append({
            "name": k.name,
            "row_bytes": k.row_bytes,
            "counts_launch": k.counts_launch,
            "tag": k.tag,
            "arrays": present,
            "dataflow": (
                k.dataflow.to_meta() if k.dataflow is not None else None
            ),
        })
    layers_meta = []
    for j, rec in enumerate(plan.layers):
        present = []
        for key in _LAYER_ARRAYS:
            arr = getattr(rec, key)
            if arr is not None:
                arrays[f"L{j}_{key}"] = arr
                present.append(key)
        layers_meta.append({
            "label": rec.label,
            "chain": rec.chain,
            "feat_len": rec.feat_len,
            "grouped": rec.grouped,
            "kernel_start": rec.kernel_start,
            "kernel_stop": rec.kernel_stop,
            "fusion": _fusion_to_dict(rec.fusion) if rec.fusion else None,
            "bound": rec.bound,
            "lanes": rec.lanes,
            "packed_rows": rec.packed_rows,
            "agg_compute_scale": rec.agg_compute_scale,
            "agg_uncoalesced": rec.agg_uncoalesced,
            "arrays": present,
        })
    extra = dict(plan.extra)
    phases = extra.pop("sage_phases", None)
    meta = {
        "version": plan.version,
        "plan_id": plan.plan_id,
        "framework": plan.framework,
        "model": plan.model,
        "graph_name": plan.graph_name,
        "graph_fingerprint": plan.graph_fingerprint,
        "model_config": plan.model_config,
        "options": plan.options,
        "gpu_config": dataclasses.asdict(plan.gpu_config),
        "dispatch_overhead": plan.dispatch_overhead,
        "label": plan.label,
        "peak_mem_bytes": plan.peak_mem_bytes,
        "stage_seconds": plan.stage_seconds,
        "extra": extra,
        "sage_phases": (
            [[p.kernel_index, p.phase] for p in phases]
            if phases is not None else None
        ),
        "kernels": kernels_meta,
        "layers": layers_meta,
    }
    arrays["meta"] = np.frombuffer(
        json.dumps(meta, default=str).encode(), dtype=np.uint8
    )
    tmp = _tmp_path(path)
    try:
        np.savez_compressed(tmp, **arrays)
        # np.savez appends .npz to paths without the suffix.
        tmp_written = tmp if os.path.exists(tmp) else f"{tmp}.npz"
        os.replace(tmp_written, path)
    finally:
        for leftover in (tmp, f"{tmp}.npz"):
            if os.path.exists(leftover):
                os.remove(leftover)


def load_plan(path: str, expect_id: Optional[str] = None):
    """Load a :class:`~repro.core.plan.CompiledPlan`, ``None`` if invalid.

    ``expect_id`` is the content address the caller derived from its own
    compilation inputs; a stored artifact whose ``plan_id`` disagrees is
    stale (e.g. hand-copied between cache dirs) and rejected with a
    warning naming both ids.
    """
    from .plan import PLAN_VERSION, CompiledPlan, LayerRecord
    from ..gpusim.config import GPUConfig
    from .sparse_fetch import SagePhase

    if not os.path.exists(path):
        return None
    try:
        with np.load(path, allow_pickle=False) as data:
            meta = json.loads(bytes(data["meta"].tobytes()).decode())
            if meta["version"] != PLAN_VERSION:
                logger.warning(
                    "stale plan artifact %s: version %s != current %s; "
                    "recompiling",
                    path, meta["version"], PLAN_VERSION,
                )
                return None
            if expect_id is not None and meta["plan_id"] != expect_id:
                logger.warning(
                    "mismatched plan artifact %s: stored plan_id %s != "
                    "expected %s; recompiling",
                    path, meta["plan_id"], expect_id,
                )
                return None
            kernels = []
            for i, km in enumerate(meta["kernels"]):
                kwargs = {
                    key: data[f"k{i}_{key}"] for key in km["arrays"]
                }
                kernels.append(KernelSpec(
                    name=km["name"],
                    block_flops=data[f"k{i}_block_flops"],
                    row_bytes=int(km["row_bytes"]),
                    counts_launch=bool(km["counts_launch"]),
                    tag=km["tag"],
                    dataflow=(
                        KernelDataflow.from_meta(km["dataflow"])
                        if km.get("dataflow") is not None else None
                    ),
                    **kwargs,
                ))
            layers = []
            for j, lm in enumerate(meta["layers"]):
                arrs = {
                    key: data[f"L{j}_{key}"] for key in lm["arrays"]
                }
                layers.append(LayerRecord(
                    label=lm["label"],
                    chain=lm["chain"],
                    feat_len=int(lm["feat_len"]),
                    grouped=bool(lm["grouped"]),
                    kernel_start=int(lm["kernel_start"]),
                    kernel_stop=int(lm["kernel_stop"]),
                    fusion=(
                        _fusion_from_dict(lm["fusion"])
                        if lm["fusion"] else None
                    ),
                    bound=int(lm["bound"]),
                    lanes=int(lm["lanes"]),
                    packed_rows=bool(lm["packed_rows"]),
                    agg_compute_scale=float(lm["agg_compute_scale"]),
                    agg_uncoalesced=float(lm["agg_uncoalesced"]),
                    **arrs,
                ))
            extra = dict(meta["extra"])
            if meta.get("sage_phases") is not None:
                extra["sage_phases"] = [
                    SagePhase(int(idx), phase)
                    for idx, phase in meta["sage_phases"]
                ]
            return CompiledPlan(
                plan_id=meta["plan_id"],
                version=int(meta["version"]),
                framework=meta["framework"],
                model=meta["model"],
                graph_name=meta["graph_name"],
                graph_fingerprint=meta["graph_fingerprint"],
                model_config=meta["model_config"],
                options=meta["options"],
                gpu_config=GPUConfig(**meta["gpu_config"]),
                dispatch_overhead=float(meta["dispatch_overhead"]),
                label=meta["label"],
                kernels=kernels,
                layers=layers,
                peak_mem_bytes=int(meta["peak_mem_bytes"]),
                stage_seconds={
                    k: float(v) for k, v in meta["stage_seconds"].items()
                },
                extra=extra,
            )
    except (OSError, ValueError, KeyError, TypeError,
            json.JSONDecodeError) as exc:
        logger.warning(
            "corrupt plan artifact %s (%s: %s); recompiling",
            path, type(exc).__name__, exc,
        )
        return None
