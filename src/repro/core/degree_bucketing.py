"""Degree bucketing: the classic alternative to neighbor grouping.

Before its kernel rewrites, DGL batched center nodes by degree: nodes
with the same (padded) degree form a bucket, each bucket runs as one
dense batched kernel over a ``[bucket_size, padded_degree]`` neighbor
tensor.  This fixes load imbalance *within* a bucket but pays

* padding waste (every node is processed as if it had the bucket's
  padded degree), and
* one kernel launch per bucket.

It is the natural ablation partner for neighbor grouping — same goal,
different trade-off — and is included as the extra design-choice
ablation DESIGN.md §6 calls for (`benchmarks/test_bucketing_ablation`).
"""

from __future__ import annotations

import dataclasses
from typing import List

import numpy as np

from ..gpusim.config import GPUConfig
from ..gpusim.kernel import KernelSpec
from ..graph.csr import CSRGraph
from .lowering import effective_row_bytes

__all__ = ["DegreeBuckets", "degree_buckets", "bucketed_aggregation_kernels"]


@dataclasses.dataclass(frozen=True)
class DegreeBuckets:
    """Bucket assignment: nodes sorted by degree, split at power-of-two
    padded degrees."""

    node_order: np.ndarray      # int64[N], sorted by degree
    bucket_ptr: np.ndarray      # int64[B+1] into node_order
    padded_degree: np.ndarray   # int64[B]

    @property
    def num_buckets(self) -> int:
        return int(self.padded_degree.shape[0])

    def padding_waste(self, graph: CSRGraph) -> float:
        """Padded work / real work — the bucketing overhead factor."""
        deg = graph.degrees
        padded = 0
        for b in range(self.num_buckets):
            members = self.node_order[
                self.bucket_ptr[b] : self.bucket_ptr[b + 1]
            ]
            padded += int(self.padded_degree[b]) * members.shape[0]
        real = max(int(deg.sum()), 1)
        return padded / real


def degree_buckets(graph: CSRGraph) -> DegreeBuckets:
    """Bucket nodes by degree, padding to the next power of two."""
    deg = graph.degrees
    order = np.argsort(deg, kind="stable").astype(np.int64)
    sorted_deg = deg[order]
    # Padded degree per node: next power of two (0 stays 0).
    padded = np.where(
        sorted_deg > 0,
        2 ** np.ceil(np.log2(np.maximum(sorted_deg, 1))).astype(np.int64),
        0,
    )
    boundaries = np.flatnonzero(
        np.concatenate([[True], padded[1:] != padded[:-1]])
    )
    bucket_ptr = np.concatenate(
        [boundaries, [graph.num_nodes]]
    ).astype(np.int64)
    return DegreeBuckets(
        node_order=order,
        bucket_ptr=bucket_ptr,
        padded_degree=padded[boundaries],
    )


def bucketed_aggregation_kernels(
    graph: CSRGraph,
    feat_len: int,
    config: GPUConfig,
    buckets: DegreeBuckets | None = None,
) -> List[KernelSpec]:
    """One aggregation kernel per degree bucket (DGL's old strategy).

    Within a bucket every node carries ``padded_degree`` units of work
    (real rows gathered, padding computed on zeros), so blocks are
    uniform — perfect balance — but the padding and per-bucket launches
    are charged in full.
    """
    buckets = buckets if buckets is not None else degree_buckets(graph)
    kernels: List[KernelSpec] = []
    row_bytes = effective_row_bytes(feat_len, config, packed=False)
    for b in range(buckets.num_buckets):
        members = buckets.node_order[
            buckets.bucket_ptr[b] : buckets.bucket_ptr[b + 1]
        ]
        pad = int(buckets.padded_degree[b])
        if pad == 0:
            continue  # isolated nodes produce no aggregation work
        # Row trace: the real neighbors of the bucket's members.
        lengths = graph.degrees[members]
        row_ptr = np.zeros(members.shape[0] + 1, dtype=np.int64)
        np.cumsum(lengths, out=row_ptr[1:])
        starts = graph.indptr[:-1][members]
        offsets = np.arange(int(row_ptr[-1]), dtype=np.int64) - np.repeat(
            row_ptr[:-1], lengths
        )
        row_ids = graph.indices[
            np.repeat(starts, lengths) + offsets
        ].astype(np.int64)
        # Compute charged at the PADDED degree; padding also streams
        # zeros from the padded neighbor tensor.
        flops = np.full(members.shape[0], 2.0 * pad * feat_len)
        pad_stream = (pad - lengths).astype(np.float64) * row_bytes
        stream = lengths * 4.0 + 16.0 + feat_len * 4.0 + pad_stream
        kernels.append(
            KernelSpec(
                name=f"bucket_deg{pad}",
                block_flops=flops,
                row_ptr=row_ptr,
                row_ids=row_ids,
                row_bytes=row_bytes,
                stream_bytes=stream,
                tag="graph",
            )
        )
    return kernels
