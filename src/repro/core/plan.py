"""The :class:`CompiledPlan` artifact: compile once, run many.

The paper's plan-time decisions (locality-aware scheduling, neighbor
grouping, visible-range fusion, tuning) are computed once per graph and
amortized over many executions (§4.4).  This module makes that contract
a first-class object: every framework's ``compile()`` produces one
frozen, content-addressed ``CompiledPlan`` holding everything execution
needs — the lowered kernel list, the per-layer fusion/layout records the
static analyses re-verify offline, per-stage timings and the
graph+model+config fingerprints that address it.

The address (:func:`plan_key`) is computed from the compilation *inputs*
(framework, model config, graph fingerprint, options, GPU config), so a
cache lookup costs one hash — no pipeline stage runs on a hit.  The
:class:`PlanCache` keeps an in-process tier plus an optional on-disk
tier (``REPRO_PLAN_CACHE_DIR``) backed by
:mod:`repro.core.persistence`, so a fresh process re-loads the identical
artifact instead of re-deriving it.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..gpusim.config import GPUConfig
from ..gpusim.kernel import KernelSpec
from ..gpusim.memo import _ALL_CACHES
from ..graph.csr import CSRGraph
from ..perf import PERF, memo_enabled
from .compgraph import FusionPlan
from .grouping import GroupingPlan
from .lowering import ExecLayout

__all__ = [
    "PLAN_VERSION",
    "STAGE_NAMES",
    "LayerRecord",
    "CompiledPlan",
    "plan_key",
    "plan_nbytes",
    "PlanCache",
    "PLAN_CACHE",
]

#: Bumped whenever the serialized schema changes; stale artifacts are
#: recompiled, never guessed at.  v2: per-kernel ``dataflow`` metadata
#: (happens-before analysis) joined the kernel meta blob.
PLAN_VERSION = 2

#: The staged pipeline, in order.  Every ``PlanBuilder.stage`` entry must
#: name one of these.  ``optimize`` is the opt-in post-compile stage
#: (``REPRO_OPTIMIZE_PLANS=1``): the footprint-guided plan search run by
#: :func:`repro.core.pipeline.optimize_stage`.
STAGE_NAMES = ("trace", "schedule", "group", "adapt", "lower", "tune",
               "optimize")


@dataclasses.dataclass
class LayerRecord:
    """One lintable layer inside a plan.

    Records the fusion plan and execution layout a slice of the plan's
    kernels was lowered with, so :func:`repro.analysis.lint_plan` can
    re-run the four static passes over the *artifact* without the live
    pipeline.  ``chain`` names an op-chain factory in
    :data:`repro.analysis.MODEL_CHAINS`; layers lowered outside the
    shared ``lower_plan`` path (dense GEMMs, baseline hand-rolled
    kernels) carry ``chain=None`` and are skipped by the linter.
    """

    label: str
    chain: Optional[str]            # "gat" | "gcn" | None
    feat_len: int
    grouped: bool
    kernel_start: int               # [start, stop) slice into plan.kernels
    kernel_stop: int
    fusion: Optional[FusionPlan] = None
    # Execution layout, flattened to plain arrays for serialization.
    bound: int = 0
    group_ptr: Optional[np.ndarray] = None
    group_center: Optional[np.ndarray] = None
    needs_atomic: Optional[np.ndarray] = None
    center_order: Optional[np.ndarray] = None
    lanes: int = 32
    packed_rows: bool = False
    agg_compute_scale: float = 1.0
    agg_uncoalesced: float = 1.0

    @classmethod
    def from_layout(
        cls,
        layout: ExecLayout,
        *,
        label: str,
        chain: Optional[str],
        feat_len: int,
        grouped: bool,
        kernel_start: int,
        kernel_stop: int,
        fusion: Optional[FusionPlan] = None,
        agg_compute_scale: float = 1.0,
        agg_uncoalesced: float = 1.0,
    ) -> "LayerRecord":
        g = layout.grouping
        return cls(
            label=label,
            chain=chain,
            feat_len=feat_len,
            grouped=grouped,
            kernel_start=kernel_start,
            kernel_stop=kernel_stop,
            fusion=fusion,
            bound=g.bound,
            group_ptr=g.group_ptr,
            group_center=g.group_center,
            needs_atomic=g.needs_atomic,
            center_order=layout.center_order,
            lanes=layout.lanes,
            packed_rows=layout.packed_rows,
            agg_compute_scale=agg_compute_scale,
            agg_uncoalesced=agg_uncoalesced,
        )

    def layout(self) -> ExecLayout:
        """Reconstruct the :class:`ExecLayout` this layer lowered with."""
        return ExecLayout(
            grouping=GroupingPlan(
                bound=self.bound,
                group_ptr=self.group_ptr,
                group_center=self.group_center,
                needs_atomic=self.needs_atomic,
            ),
            center_order=self.center_order,
            lanes=self.lanes,
            packed_rows=self.packed_rows,
        )


@dataclasses.dataclass
class CompiledPlan:
    """The frozen output of one staged compilation.

    Treated as immutable once built (the repo-wide array convention):
    the plan cache hands the same object to every execution of the same
    (framework, model, graph, config) key.
    """

    plan_id: str                    # content address (plan_key)
    version: int
    framework: str
    model: str                      # "gcn" | "gat" | "sage_lstm"
    graph_name: str
    graph_fingerprint: str
    model_config: Dict[str, object]
    options: Dict[str, object]
    gpu_config: GPUConfig
    dispatch_overhead: float
    label: str
    kernels: List[KernelSpec]
    layers: List[LayerRecord]
    peak_mem_bytes: int = 0
    stage_seconds: Dict[str, float] = dataclasses.field(default_factory=dict)
    extra: Dict[str, object] = dataclasses.field(default_factory=dict)

    @property
    def num_kernels(self) -> int:
        return len(self.kernels)

    @property
    def compile_seconds(self) -> float:
        return float(sum(self.stage_seconds.values()))

    def describe(self) -> str:
        """Human-readable schema summary (``repro plan show``)."""
        lines = [
            f"plan {self.plan_id}",
            f"  framework={self.framework} model={self.model} "
            f"graph={self.graph_name} ({self.graph_fingerprint[:12]})",
            f"  kernels={self.num_kernels} layers={len(self.layers)} "
            f"peak_mem={self.peak_mem_bytes:,} B",
            "  stages: " + " ".join(
                f"{s}={self.stage_seconds.get(s, 0.0) * 1e3:.1f}ms"
                for s in STAGE_NAMES if s in self.stage_seconds
            ),
        ]
        for rec in self.layers:
            fused = rec.fusion.describe() if rec.fusion else "-"
            lines.append(
                f"  layer {rec.label}: chain={rec.chain} F={rec.feat_len} "
                f"kernels=[{rec.kernel_start}:{rec.kernel_stop}) {fused}"
            )
        return "\n".join(lines)


def plan_key(
    framework: str,
    model: str,
    graph: CSRGraph,
    *,
    model_config: Dict[str, object],
    options: Dict[str, object],
    gpu_config: GPUConfig,
    dispatch_overhead: float,
) -> str:
    """Content address of a compilation, computed from its *inputs*.

    Stable across processes: everything is canonicalized through JSON
    (sorted keys, tuples and lists identical), so a fresh process
    derives the same key and finds the same on-disk artifact.
    """
    payload = json.dumps(
        {
            "version": PLAN_VERSION,
            "framework": framework,
            "model": model,
            "graph": graph.fingerprint,
            "model_config": model_config,
            "options": options,
            "gpu_config": dataclasses.asdict(gpu_config),
            "dispatch_overhead": dispatch_overhead,
        },
        sort_keys=True,
        default=str,
    )
    return hashlib.blake2b(payload.encode(), digest_size=16).hexdigest()


def plan_nbytes(plan: CompiledPlan) -> int:
    """Approximate in-memory footprint of a plan (size-aware eviction).

    Counts the array payloads — kernel pricing arrays and per-layer
    layout arrays — which dominate a plan's memory by orders of
    magnitude; the Python object overhead is folded into a small
    per-kernel constant.
    """
    total = 0
    for k in plan.kernels:
        for arr in (k.block_flops, k.row_ptr, k.row_ids,
                    k.stream_bytes, k.atomics, k.block_center):
            if arr is not None:
                total += arr.nbytes
        total += 512  # object + dataflow overhead
    for rec in plan.layers:
        for arr in (rec.group_ptr, rec.group_center,
                    rec.needs_atomic, rec.center_order):
            if arr is not None:
                total += arr.nbytes
    return total


def _env_int(name: str) -> Optional[int]:
    raw = os.environ.get(name)
    if raw in (None, ""):
        return None
    try:
        return int(raw)
    except ValueError:
        return None


class PlanCache:
    """Content-addressed plan store: in-process LRU + optional disk tier.

    The in-memory tier follows the global memoization switch
    (``REPRO_KERNEL_MEMO``); the disk tier activates when a directory is
    configured (``REPRO_PLAN_CACHE_DIR`` or :meth:`set_disk_dir`).
    Artifacts are one ``plan_<key>.npz`` file each, written atomically
    by :func:`repro.core.persistence.save_plan`.

    Admission/eviction policy: unbounded by default (exactly the
    historical behaviour), and LRU with size-aware eviction once a
    capacity is set — either per constructor / :meth:`set_capacity`, or
    via ``REPRO_PLAN_CACHE_ENTRIES`` / ``REPRO_PLAN_CACHE_BYTES``.  The
    byte budget uses :func:`plan_nbytes`; eviction drops
    least-recently-used plans until both budgets hold (always keeping
    the most recent plan, so a single oversized plan still caches).
    Hits, misses and evictions are counted in :data:`repro.perf.PERF`
    under ``plan_cache_*`` and summarized by :meth:`stats`.
    """

    def __init__(self, disk_dir: Optional[str] = None,
                 max_entries: Optional[int] = None,
                 max_bytes: Optional[int] = None) -> None:
        self._mem: "OrderedDict[str, Tuple[CompiledPlan, int]]" = (
            OrderedDict()
        )
        self._bytes = 0
        self._disk_dir = disk_dir
        self._max_entries = max_entries
        self._max_bytes = max_bytes
        _ALL_CACHES.append(self)

    @property
    def disk_dir(self) -> Optional[str]:
        return self._disk_dir or os.environ.get("REPRO_PLAN_CACHE_DIR")

    def set_disk_dir(self, path: Optional[str]) -> None:
        self._disk_dir = path

    def disk_path(self, key: str) -> str:
        return os.path.join(self.disk_dir, f"plan_{key}.npz")

    # ------------------------------------------------------------------
    # Capacity policy
    # ------------------------------------------------------------------
    @property
    def max_entries(self) -> Optional[int]:
        if self._max_entries is not None:
            return self._max_entries
        return _env_int("REPRO_PLAN_CACHE_ENTRIES")

    @property
    def max_bytes(self) -> Optional[int]:
        if self._max_bytes is not None:
            return self._max_bytes
        return _env_int("REPRO_PLAN_CACHE_BYTES")

    def set_capacity(self, max_entries: Optional[int] = None,
                     max_bytes: Optional[int] = None) -> None:
        """Bound the in-memory tier; ``None`` means unbounded."""
        self._max_entries = max_entries
        self._max_bytes = max_bytes
        self._evict()

    def _evict(self) -> None:
        max_entries, max_bytes = self.max_entries, self.max_bytes
        while len(self._mem) > 1 and (
            (max_entries is not None and len(self._mem) > max_entries)
            or (max_bytes is not None and self._bytes > max_bytes)
        ):
            _, (_, dropped) = self._mem.popitem(last=False)
            self._bytes -= dropped
            PERF.count("plan_cache_evict")
        if max_entries is not None and max_entries < 1 and self._mem:
            # A zero budget still admits nothing.
            _, (_, dropped) = self._mem.popitem(last=False)
            self._bytes -= dropped
            PERF.count("plan_cache_evict")

    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[CompiledPlan]:
        if not memo_enabled():
            return None
        entry = self._mem.get(key)
        if entry is not None:
            self._mem.move_to_end(key)
            PERF.count("plan_cache_hit")
            return entry[0]
        if self.disk_dir:
            from .persistence import load_plan

            plan = load_plan(self.disk_path(key), expect_id=key)
            if plan is not None:
                PERF.count("plan_cache_disk_hit")
                self._admit(plan)
                return plan
        PERF.count("plan_cache_miss")
        return None

    def contains(self, key: str) -> bool:
        """Peek at the in-memory tier without touching counters or LRU
        order (the serve layer's batch planner uses this to predict
        which batches compile cold)."""
        return key in self._mem

    def _admit(self, plan: CompiledPlan) -> None:
        nbytes = plan_nbytes(plan)
        if plan.plan_id in self._mem:
            self._bytes -= self._mem.pop(plan.plan_id)[1]
        self._mem[plan.plan_id] = (plan, nbytes)
        self._bytes += nbytes
        self._evict()

    def put(self, plan: CompiledPlan) -> None:
        if not memo_enabled():
            return
        self._admit(plan)
        if self.disk_dir:
            from .persistence import save_plan

            save_plan(self.disk_path(plan.plan_id), plan)

    def clear(self) -> None:
        """Drop the in-memory tier (disk artifacts stay)."""
        self._mem.clear()
        self._bytes = 0

    def __len__(self) -> int:
        return len(self._mem)

    @property
    def nbytes(self) -> int:
        return self._bytes

    def stats(self) -> Dict[str, object]:
        """Counters + occupancy for PERF surfacing and serve reports."""
        hits = PERF.counts.get("plan_cache_hit", 0)
        disk_hits = PERF.counts.get("plan_cache_disk_hit", 0)
        misses = PERF.counts.get("plan_cache_miss", 0)
        total = hits + disk_hits + misses
        return {
            "entries": len(self._mem),
            "nbytes": self._bytes,
            "max_entries": self.max_entries,
            "max_bytes": self.max_bytes,
            "hits": hits,
            "disk_hits": disk_hits,
            "misses": misses,
            "evictions": PERF.counts.get("plan_cache_evict", 0),
            "hit_rate": (hits + disk_hits) / total if total else 0.0,
        }


#: The process-wide plan cache every framework compiles through.
PLAN_CACHE = PlanCache()
