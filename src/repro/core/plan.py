"""The :class:`CompiledPlan` artifact: compile once, run many.

The paper's plan-time decisions (locality-aware scheduling, neighbor
grouping, visible-range fusion, tuning) are computed once per graph and
amortized over many executions (§4.4).  This module makes that contract
a first-class object: every framework's ``compile()`` produces one
frozen, content-addressed ``CompiledPlan`` holding everything execution
needs — the lowered kernel list, the per-layer fusion/layout records the
static analyses re-verify offline, per-stage timings and the
graph+model+config fingerprints that address it.

The address (:func:`plan_key`) is computed from the compilation *inputs*
(framework, model config, graph fingerprint, options, GPU config), so a
cache lookup costs one hash — no pipeline stage runs on a hit.  The
:class:`PlanCache` keeps an in-process tier plus an optional on-disk
tier (``REPRO_PLAN_CACHE_DIR``) backed by
:mod:`repro.core.persistence`, so a fresh process re-loads the identical
artifact instead of re-deriving it.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from typing import Dict, List, Optional

import numpy as np

from ..gpusim.config import GPUConfig
from ..gpusim.kernel import KernelSpec
from ..gpusim.memo import _ALL_CACHES
from ..graph.csr import CSRGraph
from ..perf import PERF, memo_enabled
from .compgraph import FusionPlan
from .grouping import GroupingPlan
from .lowering import ExecLayout

__all__ = [
    "PLAN_VERSION",
    "STAGE_NAMES",
    "LayerRecord",
    "CompiledPlan",
    "plan_key",
    "PlanCache",
    "PLAN_CACHE",
]

#: Bumped whenever the serialized schema changes; stale artifacts are
#: recompiled, never guessed at.  v2: per-kernel ``dataflow`` metadata
#: (happens-before analysis) joined the kernel meta blob.
PLAN_VERSION = 2

#: The staged pipeline, in order.  Every ``PlanBuilder.stage`` entry must
#: name one of these.  ``optimize`` is the opt-in post-compile stage
#: (``REPRO_OPTIMIZE_PLANS=1``): the footprint-guided plan search run by
#: :func:`repro.core.pipeline.optimize_stage`.
STAGE_NAMES = ("trace", "schedule", "group", "adapt", "lower", "tune",
               "optimize")


@dataclasses.dataclass
class LayerRecord:
    """One lintable layer inside a plan.

    Records the fusion plan and execution layout a slice of the plan's
    kernels was lowered with, so :func:`repro.analysis.lint_plan` can
    re-run the four static passes over the *artifact* without the live
    pipeline.  ``chain`` names an op-chain factory in
    :data:`repro.analysis.MODEL_CHAINS`; layers lowered outside the
    shared ``lower_plan`` path (dense GEMMs, baseline hand-rolled
    kernels) carry ``chain=None`` and are skipped by the linter.
    """

    label: str
    chain: Optional[str]            # "gat" | "gcn" | None
    feat_len: int
    grouped: bool
    kernel_start: int               # [start, stop) slice into plan.kernels
    kernel_stop: int
    fusion: Optional[FusionPlan] = None
    # Execution layout, flattened to plain arrays for serialization.
    bound: int = 0
    group_ptr: Optional[np.ndarray] = None
    group_center: Optional[np.ndarray] = None
    needs_atomic: Optional[np.ndarray] = None
    center_order: Optional[np.ndarray] = None
    lanes: int = 32
    packed_rows: bool = False
    agg_compute_scale: float = 1.0
    agg_uncoalesced: float = 1.0

    @classmethod
    def from_layout(
        cls,
        layout: ExecLayout,
        *,
        label: str,
        chain: Optional[str],
        feat_len: int,
        grouped: bool,
        kernel_start: int,
        kernel_stop: int,
        fusion: Optional[FusionPlan] = None,
        agg_compute_scale: float = 1.0,
        agg_uncoalesced: float = 1.0,
    ) -> "LayerRecord":
        g = layout.grouping
        return cls(
            label=label,
            chain=chain,
            feat_len=feat_len,
            grouped=grouped,
            kernel_start=kernel_start,
            kernel_stop=kernel_stop,
            fusion=fusion,
            bound=g.bound,
            group_ptr=g.group_ptr,
            group_center=g.group_center,
            needs_atomic=g.needs_atomic,
            center_order=layout.center_order,
            lanes=layout.lanes,
            packed_rows=layout.packed_rows,
            agg_compute_scale=agg_compute_scale,
            agg_uncoalesced=agg_uncoalesced,
        )

    def layout(self) -> ExecLayout:
        """Reconstruct the :class:`ExecLayout` this layer lowered with."""
        return ExecLayout(
            grouping=GroupingPlan(
                bound=self.bound,
                group_ptr=self.group_ptr,
                group_center=self.group_center,
                needs_atomic=self.needs_atomic,
            ),
            center_order=self.center_order,
            lanes=self.lanes,
            packed_rows=self.packed_rows,
        )


@dataclasses.dataclass
class CompiledPlan:
    """The frozen output of one staged compilation.

    Treated as immutable once built (the repo-wide array convention):
    the plan cache hands the same object to every execution of the same
    (framework, model, graph, config) key.
    """

    plan_id: str                    # content address (plan_key)
    version: int
    framework: str
    model: str                      # "gcn" | "gat" | "sage_lstm"
    graph_name: str
    graph_fingerprint: str
    model_config: Dict[str, object]
    options: Dict[str, object]
    gpu_config: GPUConfig
    dispatch_overhead: float
    label: str
    kernels: List[KernelSpec]
    layers: List[LayerRecord]
    peak_mem_bytes: int = 0
    stage_seconds: Dict[str, float] = dataclasses.field(default_factory=dict)
    extra: Dict[str, object] = dataclasses.field(default_factory=dict)

    @property
    def num_kernels(self) -> int:
        return len(self.kernels)

    @property
    def compile_seconds(self) -> float:
        return float(sum(self.stage_seconds.values()))

    def describe(self) -> str:
        """Human-readable schema summary (``repro plan show``)."""
        lines = [
            f"plan {self.plan_id}",
            f"  framework={self.framework} model={self.model} "
            f"graph={self.graph_name} ({self.graph_fingerprint[:12]})",
            f"  kernels={self.num_kernels} layers={len(self.layers)} "
            f"peak_mem={self.peak_mem_bytes:,} B",
            "  stages: " + " ".join(
                f"{s}={self.stage_seconds.get(s, 0.0) * 1e3:.1f}ms"
                for s in STAGE_NAMES if s in self.stage_seconds
            ),
        ]
        for rec in self.layers:
            fused = rec.fusion.describe() if rec.fusion else "-"
            lines.append(
                f"  layer {rec.label}: chain={rec.chain} F={rec.feat_len} "
                f"kernels=[{rec.kernel_start}:{rec.kernel_stop}) {fused}"
            )
        return "\n".join(lines)


def plan_key(
    framework: str,
    model: str,
    graph: CSRGraph,
    *,
    model_config: Dict[str, object],
    options: Dict[str, object],
    gpu_config: GPUConfig,
    dispatch_overhead: float,
) -> str:
    """Content address of a compilation, computed from its *inputs*.

    Stable across processes: everything is canonicalized through JSON
    (sorted keys, tuples and lists identical), so a fresh process
    derives the same key and finds the same on-disk artifact.
    """
    payload = json.dumps(
        {
            "version": PLAN_VERSION,
            "framework": framework,
            "model": model,
            "graph": graph.fingerprint,
            "model_config": model_config,
            "options": options,
            "gpu_config": dataclasses.asdict(gpu_config),
            "dispatch_overhead": dispatch_overhead,
        },
        sort_keys=True,
        default=str,
    )
    return hashlib.blake2b(payload.encode(), digest_size=16).hexdigest()


class PlanCache:
    """Content-addressed plan store: in-process dict + optional disk tier.

    The in-memory tier follows the global memoization switch
    (``REPRO_KERNEL_MEMO``); the disk tier activates when a directory is
    configured (``REPRO_PLAN_CACHE_DIR`` or :meth:`set_disk_dir`).
    Artifacts are one ``plan_<key>.npz`` file each, written atomically
    by :func:`repro.core.persistence.save_plan`.
    """

    def __init__(self, disk_dir: Optional[str] = None) -> None:
        self._mem: Dict[str, CompiledPlan] = {}
        self._disk_dir = disk_dir
        _ALL_CACHES.append(self)

    @property
    def disk_dir(self) -> Optional[str]:
        return self._disk_dir or os.environ.get("REPRO_PLAN_CACHE_DIR")

    def set_disk_dir(self, path: Optional[str]) -> None:
        self._disk_dir = path

    def disk_path(self, key: str) -> str:
        return os.path.join(self.disk_dir, f"plan_{key}.npz")

    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[CompiledPlan]:
        if not memo_enabled():
            return None
        plan = self._mem.get(key)
        if plan is not None:
            PERF.count("plan_cache_hit")
            return plan
        if self.disk_dir:
            from .persistence import load_plan

            plan = load_plan(self.disk_path(key), expect_id=key)
            if plan is not None:
                PERF.count("plan_cache_disk_hit")
                self._mem[key] = plan
                return plan
        PERF.count("plan_cache_miss")
        return None

    def put(self, plan: CompiledPlan) -> None:
        if not memo_enabled():
            return
        self._mem[plan.plan_id] = plan
        if self.disk_dir:
            from .persistence import save_plan

            save_plan(self.disk_path(plan.plan_id), plan)

    def clear(self) -> None:
        """Drop the in-memory tier (disk artifacts stay)."""
        self._mem.clear()

    def __len__(self) -> int:
        return len(self._mem)


#: The process-wide plan cache every framework compiles through.
PLAN_CACHE = PlanCache()
