"""Computation-graph IR with data-visible-range annotations.

The paper's Observation 3 is that frameworks execute a GNN layer as many
tiny kernels because every operation's output is given *global* data
visibility by default.  This module provides the small IR the adapter
(:mod:`repro.core.adapter`) analyzes: a linear chain of operations (GNN
layers lower to chains — Listing 1 is one) where each op declares

* its **kind** (what it reads/writes, at what granularity),
* whether a consumer can read its output at thread/warp/block scope or
  only after a global synchronization, and
* whether it is **linear** in its main operand (the property that lets a
  normalization be postponed past an aggregation — §4.2's K1/K2 example).

Shape classes: ``N1``/``NF`` node-aligned scalars/features, ``E1``/``EF``
edge-aligned, ``S`` parameters.  Sizes are resolved against a graph +
feature length at lowering time.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Callable, Dict, List, Tuple

import numpy as np

__all__ = [
    "OpKind",
    "Op",
    "OpEffect",
    "OP_EFFECTS",
    "OP_NUMERIC",
    "VisibleRange",
    "gat_attention_ops",
    "gcn_layer_ops",
    "work_elems",
]


class VisibleRange(enum.IntEnum):
    """Scope of threads in which an op's output is visible without sync."""

    THREAD = 0
    WARP = 1
    BLOCK = 2
    GLOBAL = 3


class OpKind(enum.Enum):
    DENSE = "dense"            # GEMM on node features
    EDGE_MAP = "edge_map"      # elementwise on per-edge scalars
    U_ADD_V = "u_add_v"        # per-edge combine of two node scalars
    SEG_REDUCE = "seg_reduce"  # per-edge scalars -> per-center scalar
    BCAST = "bcast"            # per-center scalar -> per-edge scalar
    EDGE_DIV = "edge_div"      # e / e_acc (linear in e)
    AGGREGATE = "aggregate"    # weighted feature aggregation (u_mul_e+sum)
    NODE_MAP = "node_map"      # elementwise on node features


@dataclasses.dataclass(frozen=True)
class Op:
    """One operation in a layer's computation chain.

    ``flops_per_elem`` is per output element.  ``linear`` means the op is
    linear in its edge-aligned operand, so it commutes with sum
    aggregation (enables the linear-property postponement).
    """

    name: str
    kind: OpKind
    out_shape: str          # one of N1, NF, E1, EF
    flops_per_elem: float = 1.0
    linear: bool = False

    def natural_scope(self, grouped: bool) -> VisibleRange:
        """Visibility scope at which this op's output becomes complete.

        Per-element ops complete at THREAD scope.  A segment reduction
        completes at BLOCK scope when each center's edges live in one
        block, but at GLOBAL scope once neighbor grouping may split a
        center across SMs.
        """
        if self.kind == OpKind.SEG_REDUCE:
            return VisibleRange.GLOBAL if grouped else VisibleRange.BLOCK
        if self.kind in (OpKind.DENSE, OpKind.AGGREGATE, OpKind.NODE_MAP):
            return VisibleRange.GLOBAL  # complete only at kernel end
        return VisibleRange.THREAD


def elem_count(shape: str, num_nodes: int, num_edges: int, feat: int) -> int:
    """Resolve a shape class to an element count."""
    return {
        "N1": num_nodes,
        "NF": num_nodes * feat,
        "E1": num_edges,
        "EF": num_edges * feat,
    }[shape]


# ----------------------------------------------------------------------
# Op-kind semantics table
# ----------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class OpEffect:
    """Declarative read/write effects of an op kind.

    This table is the **single source of truth** for what each kind of
    operation touches; the adapter and the static analyses in
    :mod:`repro.analysis` both consult it instead of hard-coding per-kind
    special cases.

    ``reads`` are the shape classes of the operands consumed (in
    semantic order; ``E1`` is the main edge-aligned operand when
    present).  ``work_shape`` is the domain the op's FLOPs scale with —
    note it differs from the *output* shape for reductions and
    aggregations (an AGGREGATE writes ``NF`` but performs one
    multiply-add per **edge** x feature).  ``consumes_reduced`` marks
    ops whose ``N1`` operand is the output of the nearest preceding
    SEG_REDUCE in the chain — reading it requires that reduction to be
    *complete*, i.e. separated by a global synchronization (kernel
    boundary).  ``can_be_linear`` records whether instances of the kind
    are algebraically eligible for the ``linear`` flag (commuting with
    sum aggregation); a BCAST, for example, is constant in its edge
    operand and can never carry it.
    """

    reads: Tuple[str, ...]
    writes: str
    work_shape: str
    consumes_reduced: bool = False
    elementwise: bool = False
    can_be_linear: bool = False


OP_EFFECTS: Dict[OpKind, OpEffect] = {
    OpKind.DENSE: OpEffect(
        ("NF", "S"), "NF", "NF", elementwise=False, can_be_linear=True
    ),
    OpKind.EDGE_MAP: OpEffect(
        ("E1",), "E1", "E1", elementwise=True, can_be_linear=True
    ),
    OpKind.U_ADD_V: OpEffect(
        ("N1", "N1"), "E1", "E1", elementwise=True, can_be_linear=False
    ),
    OpKind.SEG_REDUCE: OpEffect(
        ("E1",), "N1", "E1", can_be_linear=False
    ),
    OpKind.BCAST: OpEffect(
        ("N1",), "E1", "E1", consumes_reduced=True, elementwise=True,
        can_be_linear=False,
    ),
    OpKind.EDGE_DIV: OpEffect(
        ("E1", "N1"), "E1", "E1", consumes_reduced=True, elementwise=True,
        can_be_linear=True,
    ),
    OpKind.AGGREGATE: OpEffect(
        ("NF", "E1"), "NF", "EF", can_be_linear=False
    ),
    OpKind.NODE_MAP: OpEffect(
        ("NF",), "NF", "NF", elementwise=True, can_be_linear=True
    ),
}


def work_elems(op: "Op", num_nodes: int, num_edges: int, feat: int) -> int:
    """Elements an op's FLOPs scale with (its work domain, not its
    output shape — see :class:`OpEffect`)."""
    return elem_count(
        OP_EFFECTS[op.kind].work_shape, num_nodes, num_edges, feat
    )


#: Numeric interpretation of the shipped ops, keyed by op *name*: a
#: callable ``f(x, aux) -> array`` where ``x`` is the main edge-aligned
#: operand and ``aux`` the secondary per-element operand (a per-center
#: constant broadcast along edges, e.g. EDGE_DIV's segment-sum
#: denominator or a norm scale).  The linear-property verifier probes
#: these for distributivity over sum aggregation; an op name absent here
#: cannot be numerically verified.
OP_NUMERIC: Dict[str, Callable] = {
    "exp": lambda x, aux: np.exp(x),
    "leaky_relu": lambda x, aux: np.where(x > 0.0, x, 0.2 * x),
    "relu": lambda x, aux: np.maximum(x, 0.0),
    "div": lambda x, aux: x / aux,
    "bcast": lambda x, aux: aux + 0.0 * x,
    "u_add_v": lambda x, aux: aux + 0.0 * x,
    "norm_src": lambda x, aux: x * aux,
    "norm_dst": lambda x, aux: x * aux,
    "scale": lambda x, aux: x * aux,
}


def gat_attention_ops() -> List[Op]:
    """The GAT attention chain of paper Listing 1 (after the dense
    projections): seven operations, exactly DGL's decomposition."""
    return [
        Op("u_add_v", OpKind.U_ADD_V, "E1", flops_per_elem=1),
        Op("leaky_relu", OpKind.EDGE_MAP, "E1", flops_per_elem=2),
        Op("exp", OpKind.EDGE_MAP, "E1", flops_per_elem=4),
        Op("seg_sum", OpKind.SEG_REDUCE, "N1", flops_per_elem=1),
        Op("bcast", OpKind.BCAST, "E1", flops_per_elem=0),
        Op("div", OpKind.EDGE_DIV, "E1", flops_per_elem=1, linear=True),
        Op("aggregate", OpKind.AGGREGATE, "NF", flops_per_elem=2),
    ]


def gcn_layer_ops() -> List[Op]:
    """DGL GraphConv's graph-side chain: scale by in-norm, SpMM
    aggregate, scale by out-norm (the dense GEMM is lowered separately)."""
    return [
        Op("norm_src", OpKind.NODE_MAP, "NF", flops_per_elem=1, linear=True),
        Op("aggregate", OpKind.AGGREGATE, "NF", flops_per_elem=2),
        Op("norm_dst", OpKind.NODE_MAP, "NF", flops_per_elem=1, linear=True),
    ]


@dataclasses.dataclass
class FusionGroup:
    """A set of consecutive ops executed as one kernel.

    ``postponed`` ops were moved *into* this group from an earlier
    position via the linear property (they execute on the aggregated
    output instead of per edge).
    """

    ops: List[Op] = dataclasses.field(default_factory=list)
    postponed: List[Op] = dataclasses.field(default_factory=list)

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(op.name for op in self.ops)


@dataclasses.dataclass
class FusionPlan:
    groups: List[FusionGroup]
    label: str = ""

    @property
    def num_kernels(self) -> int:
        return len(self.groups)

    def describe(self) -> str:
        parts = []
        for g in self.groups:
            names = "+".join(g.names)
            if g.postponed:
                names += "(+post:" + ",".join(o.name for o in g.postponed) + ")"
            parts.append("[" + names + "]")
        return " ".join(parts)


def unfused_plan(ops: List[Op]) -> FusionPlan:
    """One kernel per op — the DGL/PyG default the paper criticizes."""
    return FusionPlan([FusionGroup([op]) for op in ops], label="unfused")
