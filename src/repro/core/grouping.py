"""Neighbor grouping (paper §4.1.2).

Partitions every center node's neighbor list into groups of at most
``bound`` neighbors.  Each group becomes its own block task, so hub nodes
spread across many computing units — the fix for Observation 2's load
imbalance.  Groups of the same center may land on different SMs, so
centers with more than one group combine their partial results with
atomic updates (the paper notes sum/max/mean reducers tolerate arbitrary
order, so no cross-SM exchange is needed).

The whole computation is one vectorized pass over the CSR index — the
O(N) "iterates the index in CSR matrix once" cost the paper quotes for
its online analysis.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..graph.csr import CSRGraph

__all__ = ["GroupingPlan", "neighbor_grouping", "identity_grouping"]


@dataclasses.dataclass(frozen=True)
class GroupingPlan:
    """Block-task layout after neighbor grouping.

    ``group_ptr`` slices the CSR ``indices`` array: group ``g`` covers
    positional edges ``group_ptr[g]:group_ptr[g+1]``.  Groups of one
    center are consecutive.  ``group_center[g]`` is the owning center
    node, and ``needs_atomic[g]`` is True when the center has multiple
    groups (partial results merged via atomics).
    """

    bound: int
    group_ptr: np.ndarray     # int64[G+1]
    group_center: np.ndarray  # int64[G]
    needs_atomic: np.ndarray  # bool[G]

    @property
    def num_groups(self) -> int:
        return int(self.group_center.shape[0])

    @property
    def group_sizes(self) -> np.ndarray:
        return np.diff(self.group_ptr)

    def validate(self, graph: CSRGraph) -> None:
        sizes = self.group_sizes
        if sizes.size and int(sizes.max()) > self.bound:
            raise ValueError("a group exceeds the bound")
        if self.group_ptr[0] != 0 or self.group_ptr[-1] != graph.num_edges:
            raise ValueError("groups do not cover all edges")
        # Per-center coverage: summed group sizes must equal degrees.
        per_center = np.bincount(
            self.group_center, weights=sizes, minlength=graph.num_nodes
        )
        if not np.array_equal(
            per_center.astype(np.int64), graph.degrees
        ):
            raise ValueError("group sizes do not add up to degrees")


def neighbor_grouping(graph: CSRGraph, bound: int) -> GroupingPlan:
    """Split each center's neighbors into groups of at most ``bound``."""
    if bound < 1:
        raise ValueError("bound must be >= 1")
    deg = graph.degrees
    n = graph.num_nodes
    # ceil(deg / bound) groups per center; empty centers get one empty
    # group so every center still owns a block (it writes its zero/identity
    # output, as the real kernels do).
    groups_per_center = np.maximum(-(-deg // bound), 1)
    total = int(groups_per_center.sum())
    group_center = np.repeat(
        np.arange(n, dtype=np.int64), groups_per_center
    )
    # Sizes: all groups of a center are `bound` except the last, which
    # takes the remainder (or the whole degree when deg <= bound).
    first_group = np.concatenate(
        [[0], np.cumsum(groups_per_center)[:-1]]
    )
    idx_in_center = np.arange(total, dtype=np.int64) - first_group[
        group_center
    ]
    remainder = deg - (groups_per_center - 1) * bound
    sizes = np.where(
        idx_in_center == groups_per_center[group_center] - 1,
        remainder[group_center],
        bound,
    ).astype(np.int64)
    group_ptr = np.zeros(total + 1, dtype=np.int64)
    np.cumsum(sizes, out=group_ptr[1:])
    needs_atomic = (groups_per_center > 1)[group_center]
    return GroupingPlan(
        bound=int(bound),
        group_ptr=group_ptr,
        group_center=group_center,
        needs_atomic=needs_atomic,
    )


def identity_grouping(graph: CSRGraph) -> GroupingPlan:
    """One group per center — the ungrouped (DGL-style) task layout."""
    n = graph.num_nodes
    return GroupingPlan(
        bound=max(int(graph.max_degree), 1),
        group_ptr=graph.indptr.copy(),
        group_center=np.arange(n, dtype=np.int64),
        needs_atomic=np.zeros(n, dtype=bool),
    )
