"""The paper's contribution: scheduling, grouping, adapter, sparse
fetching/redundancy bypassing, and the tuner."""

from .adapter import plan_fusion
from .degree_bucketing import (
    DegreeBuckets,
    bucketed_aggregation_kernels,
    degree_buckets,
)
from .compgraph import (
    FusionGroup,
    FusionPlan,
    Op,
    OpKind,
    VisibleRange,
    gat_attention_ops,
    gcn_layer_ops,
    unfused_plan,
)
from .grouping import GroupingPlan, identity_grouping, neighbor_grouping
from .lowering import (
    ExecLayout,
    aggregation_kernel,
    compute_waste,
    edge_chain_kernel,
    edge_expansion_kernel,
    edge_gather_kernel,
    effective_row_bytes,
    gather_rows_kernel,
    gemm_kernel,
    lower_plan,
    node_map_kernel,
    scalar_segment_reduce_kernel,
    scatter_reduce_kernel,
)
from .persistence import (
    graph_fingerprint,
    load_schedule,
    load_tuning,
    save_schedule,
    save_tuning,
    schedule_with_cache,
)
from .minhash import (
    MinHashSignature,
    exact_jaccard,
    lsh_candidate_pairs,
    minhash_signatures,
    signature_similarity,
)
from .scheduling import ScheduleResult, cluster_sizes, locality_aware_schedule
from .sparse_fetch import (
    SageStrategy,
    lower_sage_lstm,
    run_sage_lstm_functional,
    sample_neighbors,
)
from .tuner import (
    TuningResult,
    candidate_bounds,
    pick_lanes,
    pick_launch_config,
    tune,
)

__all__ = [
    "DegreeBuckets",
    "bucketed_aggregation_kernels",
    "degree_buckets",
    "plan_fusion",
    "FusionGroup",
    "FusionPlan",
    "Op",
    "OpKind",
    "VisibleRange",
    "gat_attention_ops",
    "gcn_layer_ops",
    "unfused_plan",
    "GroupingPlan",
    "identity_grouping",
    "neighbor_grouping",
    "ExecLayout",
    "aggregation_kernel",
    "compute_waste",
    "edge_chain_kernel",
    "edge_expansion_kernel",
    "edge_gather_kernel",
    "effective_row_bytes",
    "gather_rows_kernel",
    "gemm_kernel",
    "lower_plan",
    "node_map_kernel",
    "scalar_segment_reduce_kernel",
    "scatter_reduce_kernel",
    "graph_fingerprint",
    "load_schedule",
    "load_tuning",
    "save_schedule",
    "save_tuning",
    "schedule_with_cache",
    "MinHashSignature",
    "exact_jaccard",
    "lsh_candidate_pairs",
    "minhash_signatures",
    "signature_similarity",
    "ScheduleResult",
    "cluster_sizes",
    "locality_aware_schedule",
    "SageStrategy",
    "lower_sage_lstm",
    "run_sage_lstm_functional",
    "sample_neighbors",
    "TuningResult",
    "candidate_bounds",
    "pick_lanes",
    "pick_launch_config",
    "tune",
]
