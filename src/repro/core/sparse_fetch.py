"""Sparse fetching and redundancy bypassing (paper §4.3).

For neural operations executed in the center-neighbor pattern (the
GraphSAGE-LSTM aggregator of Fig. 6), three execution strategies exist:

* ``BASE`` — expand neighbor features into a dense ``[N, k, F]`` tensor
  (a separate graph-operation kernel) and transform each cell's slice
  with the input weights inside the cell (DGL's approach; the expansion
  and transformation costs of Table 5).
* ``SPARSE_FETCH`` — no expansion kernel: each LSTM-cell kernel gathers
  the rows it needs through the neighbor index at its start, hiding the
  access under the heavy neural math that follows.
* ``REDUNDANCY_BYPASS`` — additionally hoist the input transformation
  out of the cells: transform the O(N) feature matrix once, then
  sparse-fetch *pre-transformed* rows per cell, reducing transformation
  work from O(E) to O(N).

:func:`run_sage_lstm` executes any strategy functionally (identical
outputs, test-enforced) and returns a phase-attributed kernel plan for
the simulator.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import List, Tuple

import numpy as np

from ..gpusim.config import GPUConfig
from ..gpusim.kernel import KernelSpec
from ..graph.csr import CSRGraph
from ..ops.lstm import (
    LSTMParams,
    lstm_cell_flops,
    lstm_over_expanded,
    lstm_pretransformed,
)
from .lowering import gather_rows_kernel, gemm_kernel

__all__ = [
    "SageStrategy",
    "sample_neighbors",
    "run_sage_lstm_functional",
    "lower_sage_lstm",
]


class SageStrategy(enum.Enum):
    BASE = "base"
    SPARSE_FETCH = "sparse_fetch"
    REDUNDANCY_BYPASS = "redundancy_bypass"


def sample_neighbors(
    graph: CSRGraph, k: int, seed: int = 0
) -> np.ndarray:
    """Sample ``k`` neighbors per center (with replacement; isolated
    centers sample themselves), as GraphSAGE's fixed-size sampling does.
    Deterministic given the seed; shared by all strategies/frameworks.
    """
    rng = np.random.default_rng(seed)
    n = graph.num_nodes
    deg = graph.degrees
    picks = (rng.random((n, k)) * np.maximum(deg, 1)[:, None]).astype(
        np.int64
    )
    starts = graph.indptr[:-1]
    idx = starts[:, None] + picks
    out = np.where(
        deg[:, None] > 0,
        graph.indices[np.minimum(idx, graph.num_edges - 1)],
        np.arange(n, dtype=np.int32)[:, None],
    )
    return out.astype(np.int64)


def run_sage_lstm_functional(
    graph: CSRGraph,
    feat: np.ndarray,
    params: LSTMParams,
    k: int = 16,
    strategy: SageStrategy = SageStrategy.BASE,
    seed: int = 0,
) -> np.ndarray:
    """Compute the LSTM aggregation under the given strategy.

    All strategies are mathematically identical; BASE materializes the
    expanded tensor, the others do not.
    """
    nbr = sample_neighbors(graph, k, seed=seed)
    if strategy == SageStrategy.BASE:
        expanded = feat[nbr]  # [N, k, F] — the footprint Table 5 measures
        return lstm_over_expanded(expanded, params)
    if strategy == SageStrategy.SPARSE_FETCH:
        # Same math as BASE but fetching rows per cell (no [N,k,F] buffer).
        from ..ops.lstm import lstm_cell

        n = nbr.shape[0]
        hidden = params.hidden_size
        h = np.zeros((n, hidden), dtype=np.float32)
        c = np.zeros((n, hidden), dtype=np.float32)
        for t in range(k):
            h, c = lstm_cell(feat[nbr[:, t]], h, c, params)
        return h
    if strategy == SageStrategy.REDUNDANCY_BYPASS:
        return lstm_pretransformed(feat, nbr, params)
    raise ValueError(f"unknown strategy {strategy}")


@dataclasses.dataclass(frozen=True)
class SagePhase:
    """Phase attribution for Table 5: which kernels are 'expansion',
    'transformation' or 'core' LSTM work."""

    kernel_index: int
    phase: str  # "expansion" | "transformation" | "core"


def lower_sage_lstm(
    graph: CSRGraph,
    feat_len: int,
    hidden: int,
    k: int,
    config: GPUConfig,
    strategy: SageStrategy,
    seed: int = 0,
) -> Tuple[List[KernelSpec], List[SagePhase]]:
    """Kernel plan + phase attribution for one SAGE-LSTM aggregation."""
    nbr = sample_neighbors(graph, k, seed=seed)
    n = graph.num_nodes
    kernels: List[KernelSpec] = []
    phases: List[SagePhase] = []

    def add(kernel: KernelSpec, phase: str) -> None:
        phases.append(SagePhase(len(kernels), phase))
        kernels.append(kernel)

    ew_flops = lstm_cell_flops(n, feat_len, hidden,
                               include_input_transform=False) \
        - 2 * n * hidden * 4 * hidden  # element-wise part only
    if strategy == SageStrategy.BASE:
        # One expansion kernel materializing [N, k, F].
        add(
            gather_rows_kernel(
                nbr.reshape(-1), feat_len, config, name="sage.expand",
                write_back=True,
            ),
            "expansion",
        )
        for t in range(k):
            add(
                gemm_kernel(n, feat_len, 4 * hidden, config,
                            name=f"sage.cell{t}.transform_x"),
                "transformation",
            )
            add(
                gemm_kernel(n, hidden, 4 * hidden, config,
                            name=f"sage.cell{t}.recurrent"),
                "core",
            )
            add(
                KernelSpec.uniform_dense(
                    f"sage.cell{t}.gates", ew_flops,
                    n * hidden * 4 * 6.0, max(1, n * hidden // 1024),
                ),
                "core",
            )
        return kernels, phases

    if strategy == SageStrategy.SPARSE_FETCH:
        # No expansion kernel; each cell's transform gathers its rows.
        for t in range(k):
            fetch = gather_rows_kernel(
                nbr[:, t], feat_len, config,
                name=f"sage.cell{t}.spfetch", write_back=False,
                counts_launch=False,
            )
            add(fetch, "core")
            add(
                gemm_kernel(n, feat_len, 4 * hidden, config,
                            name=f"sage.cell{t}.transform_x"),
                "transformation",
            )
            add(
                gemm_kernel(n, hidden, 4 * hidden, config,
                            name=f"sage.cell{t}.recurrent"),
                "core",
            )
            add(
                KernelSpec.uniform_dense(
                    f"sage.cell{t}.gates", ew_flops,
                    n * hidden * 4 * 6.0, max(1, n * hidden // 1024),
                ),
                "core",
            )
        return kernels, phases

    # REDUNDANCY_BYPASS: one O(N) pre-transform; cells fetch
    # pre-transformed rows (4*hidden wide) and skip the input GEMM.
    add(
        gemm_kernel(n, feat_len, 4 * hidden, config,
                    name="sage.pretransform"),
        "transformation",
    )
    for t in range(k):
        fetch = gather_rows_kernel(
            nbr[:, t], 4 * hidden, config,
            name=f"sage.cell{t}.spfetch", write_back=False,
            counts_launch=False,
        )
        add(fetch, "core")
        add(
            gemm_kernel(n, hidden, 4 * hidden, config,
                        name=f"sage.cell{t}.recurrent"),
            "core",
        )
        add(
            KernelSpec.uniform_dense(
                f"sage.cell{t}.gates", ew_flops,
                n * hidden * 4 * 6.0, max(1, n * hidden // 1024),
            ),
            "core",
        )
    return kernels, phases
