"""Staged compilation pipeline driver.

Every framework's ``compile_*`` builds its :class:`CompiledPlan` through
a :class:`PlanBuilder`, attributing its work to the explicit stages
``trace -> schedule -> group -> adapt -> lower -> tune``:

* **trace** — emit the layer's computation-graph op chain;
* **schedule** — the offline locality-aware analysis (center order);
* **group** — neighbor grouping / execution-layout construction;
* **adapt** — visible-range fusion (the adapter + linear property);
* **lower** — op groups and dense ops to :class:`KernelSpec` lists;
* **tune** — the online multi-round configuration search.

Stage entries are counted process-wide in :data:`PLAN_STAGE_COUNTS`
(and mirrored into :data:`repro.perf.PERF` as ``plan_stage_<name>``
counters), which is how the compile-once property is asserted: running
the same (framework, model, graph, config) twice must leave the
counters untouched on the second run — the plan cache answered.
"""

from __future__ import annotations

import contextlib
import time
from typing import Dict, Optional

from ..gpusim.config import GPUConfig
from ..gpusim.kernel import KernelSpec
from ..graph.csr import CSRGraph
from ..perf import PERF
from .compgraph import FusionPlan
from .lowering import ExecLayout
from .plan import STAGE_NAMES, CompiledPlan, LayerRecord, plan_key
from .scheduling import ScheduleResult, locality_aware_schedule

__all__ = [
    "PLAN_STAGE_COUNTS",
    "reset_stage_counts",
    "stage_counts",
    "PlanBuilder",
    "optimize_stage",
    "shared_schedule",
]

#: Process-wide count of pipeline-stage executions, keyed by stage name.
PLAN_STAGE_COUNTS: Dict[str, int] = {}


def reset_stage_counts() -> None:
    PLAN_STAGE_COUNTS.clear()


def stage_counts() -> Dict[str, int]:
    """Snapshot of the per-stage execution counters."""
    return dict(PLAN_STAGE_COUNTS)


class PlanBuilder:
    """Accumulates one staged compilation into a :class:`CompiledPlan`.

    The builder computes the plan's content address from the compilation
    inputs up front (:func:`repro.core.plan.plan_key`), so the framework
    base class can consult the plan cache with the same key *before*
    constructing a builder at all.
    """

    def __init__(
        self,
        framework: str,
        model: str,
        graph: CSRGraph,
        gpu_config: GPUConfig,
        *,
        model_config: Dict[str, object],
        options: Optional[Dict[str, object]] = None,
        dispatch_overhead: float = 0.0,
        label: str = "",
    ) -> None:
        self.framework = framework
        self.model = model
        self.graph = graph
        self.gpu_config = gpu_config
        self.model_config = dict(model_config)
        self.options = dict(options or {})
        self.dispatch_overhead = dispatch_overhead
        self.label = label
        self.kernels: list = []
        self.layers: list = []
        self.stage_seconds: Dict[str, float] = {}
        self.plan_id = plan_key(
            framework, model, graph,
            model_config=self.model_config,
            options=self.options,
            gpu_config=gpu_config,
            dispatch_overhead=dispatch_overhead,
        )

    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def stage(self, name: str):
        """Attribute a block of compile work to one pipeline stage."""
        if name not in STAGE_NAMES:
            raise ValueError(
                f"unknown pipeline stage {name!r}; one of {STAGE_NAMES}"
            )
        PLAN_STAGE_COUNTS[name] = PLAN_STAGE_COUNTS.get(name, 0) + 1
        PERF.count(f"plan_stage_{name}")
        t0 = time.perf_counter()
        try:
            yield
        finally:
            dt = time.perf_counter() - t0
            self.stage_seconds[name] = self.stage_seconds.get(name, 0.0) + dt

    # ------------------------------------------------------------------
    def add(self, *kernels: KernelSpec) -> None:
        """Append kernels that carry no lintable layer record (GEMMs,
        activations, transfer passes)."""
        self.kernels.extend(kernels)

    def add_layer(
        self,
        kernels,
        *,
        label: str,
        layout: ExecLayout,
        chain: Optional[str] = None,
        feat_len: int = 0,
        grouped: bool = False,
        fusion: Optional[FusionPlan] = None,
        agg_compute_scale: float = 1.0,
        agg_uncoalesced: float = 1.0,
    ) -> None:
        """Append one lowered layer (a ``lower_plan`` output) with the
        record the offline linter needs to re-verify it."""
        start = len(self.kernels)
        self.kernels.extend(kernels)
        self.layers.append(LayerRecord.from_layout(
            layout,
            label=label,
            chain=chain,
            feat_len=feat_len,
            grouped=grouped,
            kernel_start=start,
            kernel_stop=len(self.kernels),
            fusion=fusion,
            agg_compute_scale=agg_compute_scale,
            agg_uncoalesced=agg_uncoalesced,
        ))

    # ------------------------------------------------------------------
    def build(
        self,
        *,
        peak_mem_bytes: int = 0,
        extra: Optional[Dict[str, object]] = None,
    ) -> CompiledPlan:
        from .plan import PLAN_VERSION

        return CompiledPlan(
            plan_id=self.plan_id,
            version=PLAN_VERSION,
            framework=self.framework,
            model=self.model,
            graph_name=self.graph.name or "graph",
            graph_fingerprint=self.graph.fingerprint,
            model_config=self.model_config,
            options=self.options,
            gpu_config=self.gpu_config,
            dispatch_overhead=self.dispatch_overhead,
            label=self.label,
            kernels=self.kernels,
            layers=self.layers,
            peak_mem_bytes=peak_mem_bytes,
            stage_seconds=dict(self.stage_seconds),
            extra=dict(extra or {}),
        )


# ----------------------------------------------------------------------
# The opt-in optimize stage
# ----------------------------------------------------------------------

def optimize_stage(
    plan: CompiledPlan,
    graph: CSRGraph,
    *,
    beam_width: int = 4,
    max_nodes: int = 64,
    plan_id: Optional[str] = None,
) -> CompiledPlan:
    """Run the footprint-guided plan search as a pipeline stage.

    Wraps :func:`repro.analysis.search.optimize_plan` with the stage
    accounting every other pipeline stage gets (``PLAN_STAGE_COUNTS``,
    the ``plan_stage_optimize`` perf counter, ``stage_seconds``), so
    the compile-once assertions and the CI wall-time summary see the
    optimizer like any other stage.  The analysis package is imported
    lazily — core stays importable without it, and the analysis passes
    import core.
    """
    from ..analysis.search import optimize_plan

    PLAN_STAGE_COUNTS["optimize"] = (
        PLAN_STAGE_COUNTS.get("optimize", 0) + 1
    )
    PERF.count("plan_stage_optimize")
    t0 = time.perf_counter()
    out = optimize_plan(
        plan, graph, beam_width=beam_width, max_nodes=max_nodes,
        plan_id=plan_id,
    )
    dt = time.perf_counter() - t0
    PERF.add_seconds("plan_stage_optimize", dt)
    if out is not plan:
        out.stage_seconds = {**out.stage_seconds, "optimize": dt}
    return out


# ----------------------------------------------------------------------
# Shared offline-analysis cache
# ----------------------------------------------------------------------

_SCHEDULES: Dict[str, ScheduleResult] = {}


def shared_schedule(graph: CSRGraph) -> ScheduleResult:
    """Locality-aware schedule, computed once per graph per process.

    Content-keyed by the graph's structural fingerprint (``id()`` keys
    alias after garbage collection).  This is the process-wide analysis
    tier under the plan cache: every runtime, benchmark and CLI command
    resolves its offline schedule here, so a graph is MinHash-clustered
    at most once no matter how many plans are compiled on it.
    """
    key = graph.fingerprint
    if key not in _SCHEDULES:
        _SCHEDULES[key] = locality_aware_schedule(graph)
    return _SCHEDULES[key]


#: Safe to combine with the content-addressed plan cache: the result is
#: a pure function of the graph (see OursRuntime's ``schedule_fn`` hook).
shared_schedule.plan_cache_safe = True
