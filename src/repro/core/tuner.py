"""Tuning framework (paper §4.4).

Chooses running configurations from both the problem (graph statistics,
feature length) and the optimizations' characteristics:

* **neighbor-grouping bound** — multiples of 16, at most 10x the average
  degree, at most 20 rounds of online search (the paper's exact search
  space); each round simulates the representative aggregation kernel and
  keeps the fastest bound.
* **feature-lane mapping** — how many threads map along the feature
  dimension ("putting tasks of feature dimension to the same computing
  unit"); picking lanes that divide F removes the warp-lane and
  cache-line waste behind Fig. 4's sawtooth (Fig. 12 shows the tuned
  curve).

The offline part (locality-aware scheduling) is computed separately and
passed in — §4.4 stresses it is optional; :func:`tune` works with or
without it.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

import numpy as np

from ..gpusim.config import GPUConfig
from ..gpusim.executor import simulate_kernel
from ..gpusim.memo import LRUCache
from ..gpusim.occupancy import LaunchConfig, SMResources, blocks_per_sm
from ..graph.csr import CSRGraph
from ..perf import memo_enabled
from .grouping import identity_grouping, neighbor_grouping
from .lowering import ExecLayout, aggregation_kernel

__all__ = [
    "TuningResult",
    "candidate_bounds",
    "pick_lanes",
    "pick_launch_config",
    "tune",
]


@dataclasses.dataclass(frozen=True)
class TuningResult:
    """Chosen configuration plus the search trace."""

    bound: Optional[int]        # None = grouping not profitable
    lanes: int
    packed_rows: bool
    rounds: int
    trace: Dict[int, float]     # bound -> simulated kernel seconds
    baseline_seconds: float
    launch: LaunchConfig = LaunchConfig()
    resident_blocks_per_sm: int = 0

    def layout(
        self, graph: CSRGraph, center_order: Optional[np.ndarray] = None
    ) -> ExecLayout:
        grouping = (
            _cached_grouping(graph, self.bound)
            if self.bound is not None
            else identity_grouping(graph)
        )
        return ExecLayout(
            grouping=grouping,
            center_order=center_order,
            lanes=self.lanes,
            packed_rows=self.packed_rows,
        )


def candidate_bounds(graph: CSRGraph, max_rounds: int = 20) -> List[int]:
    """The paper's search space: multiples of 16 up to 10x avg degree,
    capped at ``max_rounds`` candidates."""
    cap = max(16, int(10 * max(graph.avg_degree, 1.0)))
    bounds = list(range(16, cap + 1, 16))
    if len(bounds) > max_rounds:
        # Keep coverage of the whole range with at most max_rounds probes.
        idx = np.linspace(0, len(bounds) - 1, max_rounds).round().astype(int)
        bounds = [bounds[i] for i in np.unique(idx)]
    return bounds


def pick_lanes(feat_len: int) -> int:
    """Largest lane count in {32, 16, 8, 4} that divides the feature
    length (falling back to 32 — full warps — when none divides)."""
    for lanes in (32, 16, 8, 4):
        if feat_len % lanes == 0:
            return lanes
    return 32


def pick_launch_config(
    feat_len: int,
    bound: int = 32,
    sm: Optional[SMResources] = None,
) -> LaunchConfig:
    """The tuner's first step (§4.4): exhaust GPU resources.

    Searches thread counts and shared-memory staging sizes for the
    launch configuration with the most resident warps, limiting shared
    memory usage (the per-block neighbor staging buffer is what competes
    for it) exactly as the paper describes.
    """
    sm = sm if sm is not None else SMResources()
    best = LaunchConfig()
    best_warps = -1
    for threads in (128, 256, 512):
        for stage_rows in (0, bound):
            launch = LaunchConfig(
                threads_per_block=threads,
                registers_per_thread=32,
                shared_per_block=stage_rows * feat_len * 4,
            )
            blocks = blocks_per_sm(launch, sm)
            warps = blocks * (-(-threads // sm.warp_size))
            # Prefer more resident warps; tie-break toward the staged
            # (shared-memory) variant which serves the adapter.
            if warps > best_warps or (
                warps == best_warps
                and launch.shared_per_block > best.shared_per_block
            ):
                best, best_warps = launch, warps
    return best


#: Grouping plans are pure functions of (graph structure, bound); the
#: sweep re-tunes the same graph at every feature length, so cache them
#: content-keyed across rounds and calls.
_GROUPING_CACHE = LRUCache(max_entries=256, name="grouping_cache")


def _cached_grouping(graph: CSRGraph, bound: int):
    if not memo_enabled():
        return neighbor_grouping(graph, bound)
    key = (graph.fingerprint, bound)
    plan = _GROUPING_CACHE.get(key)
    if plan is None:
        plan = neighbor_grouping(graph, bound)
        _GROUPING_CACHE.put(key, plan)
    return plan


def tune(
    graph: CSRGraph,
    feat_len: int,
    config: GPUConfig,
    *,
    center_order: Optional[np.ndarray] = None,
    max_rounds: int = 20,
) -> TuningResult:
    """Online multi-round search for the aggregation configuration."""
    lanes = pick_lanes(feat_len)
    base_layout = ExecLayout(
        grouping=identity_grouping(graph),
        center_order=center_order,
        lanes=lanes,
        packed_rows=True,
    )
    base = simulate_kernel(
        aggregation_kernel(graph, feat_len, config, base_layout), config
    )
    best_bound: Optional[int] = None
    best_time = base.time
    trace: Dict[int, float] = {}
    bounds = candidate_bounds(graph, max_rounds=max_rounds)
    for bound in bounds:
        layout = ExecLayout(
            grouping=_cached_grouping(graph, bound),
            center_order=center_order,
            lanes=lanes,
            packed_rows=True,
        )
        stats = simulate_kernel(
            aggregation_kernel(graph, feat_len, config, layout), config
        )
        trace[bound] = stats.time
        if stats.time < best_time:
            best_time = stats.time
            best_bound = bound
    launch = pick_launch_config(feat_len, bound=best_bound or 32)
    return TuningResult(
        bound=best_bound,
        lanes=lanes,
        packed_rows=True,
        rounds=len(bounds),
        trace=trace,
        baseline_seconds=base.time,
        launch=launch,
        resident_blocks_per_sm=blocks_per_sm(launch),
    )
