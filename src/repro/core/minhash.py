"""MinHash signatures and Locality-Sensitive Hashing over neighbor sets.

Locality-aware task scheduling (paper §4.1.1) must find pairs of center
nodes whose neighbor sets have high Jaccard similarity without comparing
all N² pairs.  Following the paper (which cites Mining of Massive
Datasets), we:

1. compute a MinHash *signature* per center node — ``num_hashes``
   universal-hash minima over its neighbor set; equal signature rows are
   an unbiased estimator of Jaccard similarity;
2. split signatures into ``bands`` of ``rows_per_band`` rows and hash
   each band; nodes colliding in any band become *candidate pairs*.

Everything is vectorized: hashes are evaluated over the CSR ``indices``
array once and reduced per-row with ``np.minimum.reduceat``.
"""

from __future__ import annotations

import dataclasses
from typing import Tuple

import numpy as np

from ..graph.csr import CSRGraph
from ..perf import fastpath_enabled

__all__ = [
    "MinHashSignature",
    "minhash_signatures",
    "lsh_candidate_pairs",
    "signature_similarity",
    "exact_jaccard",
]

_MERSENNE_P = (1 << 61) - 1


@dataclasses.dataclass(frozen=True)
class MinHashSignature:
    """``uint64[num_hashes, N]`` signature matrix plus the empty-row mask."""

    matrix: np.ndarray
    empty: np.ndarray  # bool[N]: centers with no neighbors

    @property
    def num_hashes(self) -> int:
        return int(self.matrix.shape[0])

    @property
    def num_nodes(self) -> int:
        return int(self.matrix.shape[1])


def minhash_signatures(
    graph: CSRGraph, num_hashes: int = 32, seed: int = 0
) -> MinHashSignature:
    """MinHash signature of every center node's neighbor set."""
    rng = np.random.default_rng(seed)
    a = rng.integers(1, _MERSENNE_P, size=num_hashes, dtype=np.int64)
    b = rng.integers(0, _MERSENNE_P, size=num_hashes, dtype=np.int64)
    n = graph.num_nodes
    out = np.full((num_hashes, n), np.iinfo(np.int64).max, dtype=np.int64)
    nonempty = graph.degrees > 0
    if graph.num_edges:
        neigh = graph.indices.astype(np.int64)
        starts = graph.indptr[:-1][nonempty]
        if not fastpath_enabled():
            for h in range(num_hashes):
                # Universal hash evaluated on every edge endpoint, then
                # min-reduced per center row (reference: loop over hashes).
                vals = (a[h] * neigh + b[h]) % _MERSENNE_P
                out[h, nonempty] = np.minimum.reduceat(vals, starts)
        else:
            out[:, nonempty] = _batched_minima(
                neigh, starts, n, a, b
            )
    return MinHashSignature(matrix=out, empty=~nonempty)


#: Reusable 2D scratch for :func:`_batched_minima` — gathers are sized by
#: the edge count, and re-faulting a fresh large buffer per call costs
#: more than the arithmetic it holds.
_GATHER_SCRATCH: list = [None]

#: Upper bound on scratch elements (rows x edges) per reduceat batch.
_BATCH_ELEMS = 1 << 23


def _batched_minima(
    neigh: np.ndarray,
    starts: np.ndarray,
    num_nodes: int,
    a: np.ndarray,
    b: np.ndarray,
) -> np.ndarray:
    """Per-row minima of every universal hash, batched.

    The hash value depends only on the node id, so each function is
    evaluated once per *node* (an ``[num_hashes, N]`` table, O(N·H)
    multiplies instead of the reference's O(E·H)), then gathered per edge
    endpoint and min-reduced for all batched rows in a single
    ``np.minimum.reduceat(..., axis=1)`` pass.  Values are the same
    int64 wraparound arithmetic as the reference, so signatures match
    bit for bit.
    """
    num_hashes = a.shape[0]
    edges = neigh.shape[0]
    ids = np.arange(num_nodes, dtype=np.int64)
    table = np.empty((num_hashes, num_nodes), dtype=np.int64)
    for h in range(num_hashes):
        row = table[h]
        np.multiply(ids, a[h], out=row)
        row += b[h]
        row %= _MERSENNE_P
    rows = max(1, min(num_hashes, _BATCH_ELEMS // max(edges, 1)))
    buf = _GATHER_SCRATCH[0]
    if buf is None or buf.shape[0] < rows or buf.shape[1] != edges:
        buf = np.empty((rows, edges), dtype=np.int64)
        _GATHER_SCRATCH[0] = buf
    out = np.empty((num_hashes, starts.shape[0]), dtype=np.int64)
    for h0 in range(0, num_hashes, rows):
        h1 = min(h0 + rows, num_hashes)
        r = h1 - h0
        for j in range(r):
            np.take(table[h0 + j], neigh, out=buf[j])
        out[h0:h1] = np.minimum.reduceat(buf[:r], starts, axis=1)
    return out


def signature_similarity(
    sig: MinHashSignature, u: np.ndarray, v: np.ndarray
) -> np.ndarray:
    """Estimated Jaccard similarity for node-id pairs (vectorized).

    Gathers rows of the transposed signature matrix — one contiguous
    ``num_hashes``-wide cache line run per node — instead of strided
    columns of the ``[H, N]`` layout; the compared values (and thus the
    match-count means) are identical either way.
    """
    u = np.asarray(u, dtype=np.int64)
    v = np.asarray(v, dtype=np.int64)
    rows = _rows_cache(sig)
    eq = rows[u] == rows[v]
    est = eq.mean(axis=1)
    # Two empty sets are defined as similarity 0 (nothing to co-schedule).
    both_empty = sig.empty[u] & sig.empty[v]
    return np.where(both_empty, 0.0, est)


def _rows_cache(sig: MinHashSignature) -> np.ndarray:
    """Row-major (``[N, H]``) view of a signature, cached per instance."""
    rows = getattr(sig, "_rows", None)
    if rows is None:
        rows = np.ascontiguousarray(sig.matrix.T)
        object.__setattr__(sig, "_rows", rows)
    return rows


def exact_jaccard(graph: CSRGraph, u: int, v: int) -> float:
    """Exact Jaccard similarity of two centers' neighbor sets (oracle)."""
    nu = set(graph.neighbors(u).tolist())
    nv = set(graph.neighbors(v).tolist())
    if not nu and not nv:
        return 0.0
    return len(nu & nv) / len(nu | nv)


def lsh_candidate_pairs(
    sig: MinHashSignature,
    bands: int = 16,
    pair_window: int = 4,
    seed: int = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Candidate similar pairs from LSH banding.

    Returns ``(pairs, sims)`` where ``pairs`` is ``int64[P, 2]`` with
    ``u < v`` unique rows and ``sims`` their signature-estimated Jaccard
    similarity.

    Within a bucket, every member is paired with its ``pair_window``
    bucket-sorted successors (full coverage for buckets up to
    ``pair_window + 1`` members, stride sampling for larger ones).  This
    caps worst-case pair counts at ``bands * pair_window * N`` — the LSH
    "search-space reduction" the paper needs for large graphs — and is
    fully vectorized (no per-bucket Python loop).  Truly similar nodes
    collide in several bands, so they get several pairing chances.
    """
    h, n = sig.matrix.shape
    bands = max(1, min(bands, h))
    rows = h // bands
    rng = np.random.default_rng(seed)
    lo_chunks, hi_chunks = [], []
    empty_count = int(sig.empty.sum())
    for b in range(bands):
        band = sig.matrix[b * rows : (b + 1) * rows, :]
        # Bucket key: collapse the band to one hashable int64 per node.
        mix = rng.integers(1, _MERSENNE_P, size=rows, dtype=np.int64)
        key = ((band * mix[:, None]) % _MERSENNE_P).sum(axis=0)
        if empty_count:
            key[sig.empty] = -1 - np.arange(empty_count)  # isolate
        order = np.argsort(key, kind="stable")
        sorted_key = key[order]
        for d in range(1, pair_window + 1):
            if d >= n:
                break
            same = sorted_key[d:] == sorted_key[:-d]
            if not same.any():
                continue
            a = order[:-d][same]
            c = order[d:][same]
            lo_chunks.append(np.minimum(a, c))
            hi_chunks.append(np.maximum(a, c))
    if not lo_chunks:
        return (
            np.empty((0, 2), dtype=np.int64),
            np.empty(0, dtype=np.float64),
        )
    lo = np.concatenate(lo_chunks)
    hi = np.concatenate(hi_chunks)
    packed = lo * np.int64(n) + hi
    uniq = np.unique(packed)
    pairs = np.stack([uniq // n, uniq % n], axis=1)
    sims = signature_similarity(sig, pairs[:, 0], pairs[:, 1])
    return pairs, sims
