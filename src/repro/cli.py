"""Command-line interface: run any paper experiment from the shell.

Examples::

    python -m repro datasets
    python -m repro compare --model gat --datasets arxiv ddi
    python -m repro fig3
    python -m repro table6 --datasets arxiv collab
    python -m repro tune --dataset products --feat 64
    python -m repro schedule --dataset citation
    python -m repro bench --quick
    python -m repro bench --check --tolerance 0.2
    python -m repro lint --model gat --dataset arxiv --fusion linear
    python -m repro lint --fix --dry-run
    python -m repro lint --explain
    python -m repro plan compile --dataset arxiv --out plans/
    python -m repro plan show plans/plan_<id>.npz
    python -m repro plan lint --dir plans/
    python -m repro plan optimize --dir plans/ --out plans-opt/
    python -m repro shard partition --dataset arxiv --parts 4
    python -m repro shard run --dataset arxiv --model gcn --parts 2
    python -m repro shard lint --dataset arxiv --model gcn --parts 2
    python -m repro shard lint --dataset ogb49m --parts 8 --no-plans
    python -m repro shard choose --dataset arxiv --model gcn
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys
from typing import List, Optional

from .bench import (
    bench_config,
    cached_schedule,
    fig3_l2_miss_rates,
    format_table,
    table4_occupancy,
    table5_expansion_transform,
    table6_gat_ablation,
)
from .core import cluster_sizes, tune
from .frameworks import NotSupported, all_frameworks
from .gpusim.memory import SimulatedOOM
from .graph import DATASET_NAMES, dataset_stats_row, load_dataset

__all__ = ["main", "build_parser"]


def _dataset_list(args) -> List[str]:
    names = args.datasets or DATASET_NAMES
    for n in names:
        if n not in DATASET_NAMES:
            raise SystemExit(
                f"unknown dataset {n!r}; choose from {DATASET_NAMES}"
            )
    return names


def cmd_datasets(args) -> int:
    rows = []
    for name in _dataset_list(args):
        r = dataset_stats_row(name)
        rows.append([r["name"], r["domain"], r["N"], r["E"],
                     round(r["avg"], 1), r["max"], f"{r['density']:.1e}"])
    print(format_table(
        "Scaled datasets (Table 3 signatures)",
        ["dataset", "domain", "N", "E", "avg", "max", "density"],
        rows,
    ))
    return 0


def cmd_compare(args) -> int:
    sim = bench_config()
    frameworks = all_frameworks()
    if args.frameworks:
        frameworks = {
            k: v for k, v in frameworks.items() if k in args.frameworks
        }
    rows = []
    for name in _dataset_list(args):
        g = load_dataset(name)
        row = [name]
        for fw in frameworks.values():
            try:
                row.append(fw.run_model(args.model, g, sim).time_ms)
            except NotSupported:
                row.append("X")
            except SimulatedOOM:
                row.append(None)
        rows.append(row)
    print(format_table(
        f"{args.model} forward time (ms)",
        ["dataset"] + list(frameworks),
        rows,
    ))
    return 0


def cmd_fig3(args) -> int:
    res = fig3_l2_miss_rates(_dataset_list(args))
    rows = [[n, 100 * res[n][0]] for n in res]
    print(format_table(
        "Fig. 3 — DGL GCN graph-op L2 miss rate (%)",
        ["dataset", "miss%"], rows,
    ))
    return 0


def cmd_table4(args) -> int:
    res = table4_occupancy(_dataset_list(args))
    rows = [[n, res[n][1.0], res[n][0.5], res[n][0.1]] for n in res]
    print(format_table(
        "Table 4 — % time active blocks below thresholds (DGL GAT)",
        ["dataset", "<100%", "<50%", "<10%"], rows,
    ))
    return 0


def cmd_table5(args) -> int:
    res = table5_expansion_transform(_dataset_list(args))
    rows = [[n, res[n][0], res[n][1]] for n in res]
    print(format_table(
        "Table 5 — expansion / transformation % (DGL SAGE-LSTM)",
        ["dataset", "expand%", "transf%"], rows,
    ))
    return 0


def cmd_table6(args) -> int:
    res = table6_gat_ablation(_dataset_list(args))
    rows = [
        [n, res[n]["adp"], res[n]["adp_ng"], res[n]["adp_ng_las"]]
        for n in res
    ]
    print(format_table(
        "Table 6 — GAT-layer ablation speedups",
        ["dataset", "Adp", "Adp+NG", "+LAS"], rows,
    ))
    return 0


def cmd_tune(args) -> int:
    g = load_dataset(args.dataset)
    result = tune(g, args.feat, bench_config())
    print(f"dataset {args.dataset}, F={args.feat}: "
          f"bound={result.bound} lanes={result.lanes} "
          f"({result.rounds} rounds)")
    for bound, t in sorted(result.trace.items()):
        mark = " *" if bound == result.bound else ""
        print(f"  bound {bound:4d}: {t * 1e6:9.1f} us{mark}")
    print(f"  ungrouped: {result.baseline_seconds * 1e6:9.1f} us")
    return 0


def _write_sarif(path: str, report) -> None:
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(report.to_sarif(), fh, indent=2)
        fh.write("\n")


def cmd_lint(args) -> int:
    from .analysis import (
        CODES,
        FIXABLE_CODES,
        FUSION_CONFIGS,
        MODEL_CHAINS,
        autofix_shipped,
        explain_code,
        lint_shipped,
        load_baseline,
    )
    from .analysis.findings import prune_baseline, unused_baseline_entries

    if args.explain is not None:
        if args.explain == "":
            # Bare --explain: the full finding-code catalogue.
            for code in sorted(CODES):
                fc = CODES[code]
                print(f"{code}  [{fc.severity:7s}] {fc.pass_name}: "
                      f"{fc.summary}")
            return 0
        text = explain_code(args.explain)
        if text is None:
            raise SystemExit(
                f"unknown finding code {args.explain!r}; known codes: "
                f"{', '.join(sorted(CODES))}"
            )
        print(text)
        return 0
    if args.dry_run and not args.fix:
        raise SystemExit("--dry-run only makes sense with --fix")
    if args.prune_baseline and not args.baseline:
        raise SystemExit("--prune-baseline requires --baseline PATH")

    # --model/--dataset/--fusion are repeatable singular filters; the
    # legacy plural spellings (--models/--datasets) merge with them.
    models = (args.models or []) + (args.model or [])
    models = models or list(MODEL_CHAINS)
    for m in models:
        if m not in MODEL_CHAINS:
            raise SystemExit(
                f"unknown model {m!r}; choose from {list(MODEL_CHAINS)}"
            )
    args.datasets = (args.datasets or []) + (args.dataset or []) or None
    fusion_names = [name for name, _, _ in FUSION_CONFIGS]
    fusions = args.fusion or None
    for f in fusions or []:
        if f not in fusion_names:
            raise SystemExit(
                f"unknown fusion config {f!r}; choose from {fusion_names}"
            )
    datasets = _dataset_list(args)
    fixed_lines: List[str] = []
    if args.fix:
        sweep = autofix_shipped(datasets, models, fusions=fusions)
        fixed_lines = sweep.fixed_lines()
        report = sweep.remaining_report(label="lint --fix")
    else:
        report = lint_shipped(datasets, models, fusions=fusions)
    entries = []
    suppressed = 0
    if args.baseline:
        try:
            entries = load_baseline(args.baseline)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"cannot load baseline: {exc}") from exc
    all_findings = list(report.findings)  # pre-suppression, for hygiene
    unused = unused_baseline_entries(entries, all_findings)
    if entries:
        report, suppressed = report.apply_baseline(entries)
    if args.sarif:
        _write_sarif(args.sarif, report)
    if args.json:
        print(report.to_json())
    else:
        for line in fixed_lines:
            print(line)
        print(report.format(verbose=args.verbose))
        if suppressed:
            print(f"({suppressed} baselined finding(s) suppressed)")
        if args.fix:
            mode = "dry run; " if args.dry_run else ""
            print(f"({mode}{len(fixed_lines)} finding(s) auto-fixed on "
                  f"verified in-memory plans; "
                  f"stats={sweep.stats.to_dict()})")
        for entry in unused:
            print(f"[STALE  ] baseline entry matches no finding: "
                  f"{json.dumps(entry, sort_keys=True)}")
    if unused and args.prune_baseline:
        removed = prune_baseline(args.baseline, all_findings)
        print(f"pruned {removed} stale entr"
              f"{'y' if removed == 1 else 'ies'} from {args.baseline}")
    if unused and args.fail_stale:
        # Baseline hygiene gate: a suppression matching nothing is debt
        # that silently weakens the gate — fail instead of drifting.
        print(f"{len(unused)} stale baseline entr"
              f"{'y' if len(unused) == 1 else 'ies'}; prune with "
              f"--prune-baseline")
        return 1
    # Exit-code contract: errors always gate; warnings only under
    # --fail-on warning; info findings never gate — except under --fix,
    # where an auto-fixable advisory the engine could not discharge (and
    # no baseline covers) fails the run: that is the CI autofix-clean
    # gate.
    status = 0 if report.gate(args.fail_on) else 1
    if args.fix and any(f.code in FIXABLE_CODES for f in report.findings):
        unfixed = [f for f in report.findings if f.code in FIXABLE_CODES]
        print(f"{len(unfixed)} auto-fixable finding(s) remain unfixed "
              f"and un-baselined:")
        for f in unfixed:
            print(f"  {f.format()}")
        status = 1
    return status


# ----------------------------------------------------------------------
# repro plan — compile/show/lint CompiledPlan artifacts
# ----------------------------------------------------------------------

def _plan_paths(args) -> List[str]:
    paths = list(args.paths or [])
    if getattr(args, "dir", None):
        paths.extend(sorted(glob.glob(os.path.join(args.dir, "*.npz"))))
    if not paths:
        raise SystemExit("no plan artifacts given (PATHS or --dir)")
    return paths


def cmd_plan_compile(args) -> int:
    """Compile shipped pipelines to on-disk CompiledPlan artifacts."""
    from .core.persistence import save_plan

    sim = bench_config()
    frameworks = all_frameworks()
    if args.frameworks:
        for f in args.frameworks:
            if f not in frameworks:
                raise SystemExit(
                    f"unknown framework {f!r}; choose from "
                    f"{list(frameworks)}"
                )
        frameworks = {
            k: v for k, v in frameworks.items() if k in args.frameworks
        }
    models = args.models or ["gcn", "gat", "sage_lstm"]
    os.makedirs(args.out, exist_ok=True)
    written = 0
    for name in _dataset_list(args):
        g = load_dataset(name)
        for fname, fw in frameworks.items():
            for model in models:
                try:
                    plan = fw.compile(model, g, sim)
                except NotSupported:
                    continue
                except SimulatedOOM as exc:
                    print(f"SKIP {fname}:{model}:{name} (OOM: {exc})")
                    continue
                path = os.path.join(args.out, f"plan_{plan.plan_id}.npz")
                save_plan(path, plan)
                written += 1
                print(f"{fname}:{model}:{name} -> {path} "
                      f"({plan.num_kernels} kernels)")
    print(f"{written} plan artifact(s) written to {args.out}")
    return 0


def cmd_plan_show(args) -> int:
    """Print the schema summary of saved plan artifacts."""
    from .core.persistence import load_plan

    status = 0
    for path in _plan_paths(args):
        plan = load_plan(path)
        if plan is None:
            print(f"{path}: unreadable or stale plan artifact")
            status = 1
            continue
        print(plan.describe())
    return status


def cmd_plan_lint(args) -> int:
    """Run the static analysis passes over saved plan artifacts."""
    from .analysis import INFO, AnalysisReport, lint_plan, load_baseline
    from .core.persistence import load_plan

    ok = True
    merged = AnalysisReport(label="plan-lint")
    entries = []
    if args.baseline:
        try:
            entries = load_baseline(args.baseline)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"cannot load baseline: {exc}") from exc
    for path in _plan_paths(args):
        plan = load_plan(path)
        if plan is None:
            print(f"{path}: unreadable or stale plan artifact")
            ok = False
            continue
        report = lint_plan(plan)
        if entries:
            report, _ = report.apply_baseline(entries)
        merged.merge(report)
        for f in report.findings:
            if args.verbose or f.severity != INFO:
                print(f"{path}: {f.format()}")
    if args.sarif:
        _write_sarif(args.sarif, merged)
    if not merged.gate(args.fail_on):
        ok = False
    print(f"plan lint: {merged.checked} layer lowering(s) checked, "
          f"{'ok' if ok else 'FINDINGS'}")
    return 0 if ok else 1


def cmd_plan_optimize(args) -> int:
    """Search-optimize saved plan artifacts (footprint-guided)."""
    from .analysis.search import optimize_plan
    from .core.persistence import load_plan, save_plan
    from .graph import DATASET_NAMES as SHIPPED

    status = 0
    for path in _plan_paths(args):
        plan = load_plan(path)
        if plan is None:
            print(f"{path}: unreadable or stale plan artifact")
            status = 1
            continue
        if plan.graph_name not in SHIPPED:
            print(f"{path}: graph {plan.graph_name!r} is not a shipped "
                  f"dataset; cannot optimize")
            status = 1
            continue
        graph = load_dataset(plan.graph_name)
        out = optimize_plan(
            plan, graph, beam_width=args.beam_width,
            max_nodes=args.max_nodes,
        )
        if out is plan:
            print(f"{path}: no verified improvement "
                  f"({plan.num_kernels} kernels)")
            continue
        meta = out.extra.get("optimize", {})
        print(f"{path}: {plan.num_kernels} -> {out.num_kernels} kernels "
              f"({meta.get('layers_improved', 0)} layer(s) improved, "
              f"{meta.get('nodes_expanded', 0)} search nodes, "
              f"{meta.get('accepts', 0)} accepted / "
              f"{meta.get('rejects', 0)} rejected rewrites)")
        for label, scores in meta.get("scores", {}).items():
            before, after = scores["before"], scores["after"]
            print(f"  layer {label}: peak {before['peak_bytes']:,.0f} B "
                  f"-> {after['peak_bytes']:,.0f} B, kernels "
                  f"{before['num_kernels']} -> {after['num_kernels']}")
        if args.out:
            os.makedirs(args.out, exist_ok=True)
            opath = os.path.join(args.out, f"plan_{out.plan_id}.npz")
            save_plan(opath, out)
            print(f"  -> {opath}")
    return status


def cmd_plan(args) -> int:
    return args.plan_func(args)


def cmd_bench(args) -> int:
    # The harness lives in benchmarks/ (it is an artifact producer, not
    # library code); locate it relative to the source checkout and run
    # its main() with the forwarded flags.
    import importlib.util

    root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    path = os.path.join(root, "benchmarks", "bench_speed.py")
    if not os.path.exists(path):
        raise SystemExit(
            f"bench harness not found at {path}; 'repro bench' requires "
            "a source checkout (benchmarks/ is not installed)"
        )
    spec = importlib.util.spec_from_file_location("bench_speed", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    forwarded = []
    if args.quick:
        forwarded.append("--quick")
    if args.check:
        forwarded.append("--check")
    if args.workers:
        forwarded.extend(["--workers", str(args.workers)])
    if args.tolerance is not None:
        forwarded.extend(["--tolerance", str(args.tolerance)])
    if getattr(args, "warm_plans", False):
        forwarded.append("--warm-plans")
    old_argv = sys.argv
    sys.argv = [path] + forwarded
    try:
        module.main()
    finally:
        sys.argv = old_argv
    return 0


# ----------------------------------------------------------------------
# repro shard — multi-device partition + run
# ----------------------------------------------------------------------

def _load_shard_graph(name: str):
    """Dataset loader that also knows the full-scale OOM-regime graph.

    ``ogb49m`` is the ~49M-edge :func:`~repro.graph.ogb_scale_graph`
    whose monolithic plan exceeds the simulated device budget — the
    regime the SH001 static verdict exists for.  It is generated, not
    shipped, so it lives outside the scaled ``DATASET_NAMES`` table.
    """
    if name == "ogb49m":
        from .graph import ogb_scale_graph

        return ogb_scale_graph()
    return load_dataset(name)


def cmd_shard_partition(args) -> int:
    from .shard import partition_graph, save_shard_plan

    g = _load_shard_graph(args.dataset)
    plan = partition_graph(g, args.parts, args.method)
    print(plan.describe())
    if args.out:
        path = save_shard_plan(args.out, plan)
        print(f"wrote {path}")
    if getattr(args, "no_lint", False):
        return 0
    # Symbolic shard lint (SH001/SH003/SH004): zero compiles, zero
    # simulation — a partitioning that cannot run is caught here.
    from .analysis.shardlint import lint_shard
    from .shard import DeviceConfig

    report = lint_shard(
        plan, model_name=args.model,
        device=DeviceConfig.from_gpu(bench_config()),
    )
    print(report.format())
    return 0 if report.gate() else 1


def cmd_shard_run(args) -> int:
    from .analysis.findings import AnalysisReport
    from .shard import LinkConfig, run_sharded

    frameworks = all_frameworks()
    if args.framework not in frameworks:
        raise SystemExit(
            f"unknown framework {args.framework!r}; choose from "
            f"{list(frameworks)}"
        )
    fw = frameworks[args.framework]
    g = load_dataset(args.dataset)
    sim = bench_config()
    link = LinkConfig(
        bandwidth=args.link_bandwidth, latency=args.link_latency
    )
    lint = not args.no_lint
    try:
        res = run_sharded(
            fw, args.model, g, sim, num_parts=args.parts,
            method=args.method, link=link, lint=lint,
        )
    except SimulatedOOM as exc:
        print(f"simulated OOM on {args.parts} device(s): {exc}")
        return 1
    except NotSupported:
        raise SystemExit(
            f"{args.framework} does not support {args.model}"
        )
    sh = res.report.extra["perf"]["shard"]
    rows = [
        [
            d["device"], d["owned_nodes"], d["local_edges"],
            d["halo_nodes"], d["mirror_nodes"],
            round(d["compute_seconds"] * 1e3, 3),
            round(d["transfer_seconds"] * 1e3, 3),
            round(d["finish_seconds"] * 1e3, 3),
        ]
        for d in sh["devices"]
    ]
    print(format_table(
        f"{args.framework}:{args.model}:{args.dataset} on "
        f"{args.parts} device(s), {args.method}",
        ["dev", "owned", "edges", "halo", "mirror",
         "compute_ms", "transfer_ms", "finish_ms"],
        rows,
    ))
    cross = sh["cross_device"]
    print(
        f"wall {sh['wall_seconds'] * 1e3:.3f} ms | serial-equivalent "
        f"{sh['serial_seconds'] * 1e3:.3f} ms | transfers "
        f"{cross['transfer_bytes'] / 1e6:.2f} MB over "
        f"{cross['num_transfers']} kernel(s) "
        f"({100 * cross['transfer_fraction']:.1f}% of device time)"
    )
    report = AnalysisReport(
        findings=list(res.findings),
        checked=args.parts,
        label=(
            f"shard:{args.framework}:{args.model}:{args.dataset}:"
            f"{args.method}{args.parts}"
        ),
    )
    if lint:
        print(report.format())
    if args.sarif:
        _write_sarif(args.sarif, report)
    return 0 if report.gate(args.fail_on) else 1


def cmd_shard_lint(args) -> int:
    from .analysis.findings import load_baseline
    from .analysis.shardlint import lint_shard
    from .shard import DeviceConfig, LinkConfig, partition_graph

    g = _load_shard_graph(args.dataset)
    shard = partition_graph(g, args.parts, args.method)
    sim = bench_config()
    device = (
        DeviceConfig(mem_bytes=int(args.device_mem))
        if args.device_mem else DeviceConfig.from_gpu(sim)
    )
    plans = streams = None
    note = None
    if not args.no_plans:
        from .gpusim.multidev import build_shard_streams

        frameworks = all_frameworks()
        if args.framework not in frameworks:
            raise SystemExit(
                f"unknown framework {args.framework!r}; choose from "
                f"{list(frameworks)}"
            )
        fw = frameworks[args.framework]
        try:
            plans = [
                fw.compile(
                    args.model, part.local_graph, sim,
                    shard_options=shard.options_blob(part.part_id),
                )
                for part in shard.parts
            ]
            streams = build_shard_streams(shard, plans, LinkConfig())
        except SimulatedOOM as exc:
            plans = streams = None
            note = (
                f"per-partition compile raised SimulatedOOM ({exc}); "
                f"flow checks skipped — the symbolic verdict below is "
                f"the static form of that failure"
            )
        except NotSupported:
            raise SystemExit(
                f"{args.framework} does not support {args.model}"
            )
    report = lint_shard(
        shard, model_name=args.model, device=device,
        plans=plans, streams=streams,
        imbalance_threshold=args.imbalance_threshold,
        blowup_threshold=args.blowup_threshold,
    )
    suppressed = 0
    if args.baseline:
        try:
            entries = load_baseline(args.baseline)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"cannot load baseline: {exc}") from exc
        report, suppressed = report.apply_baseline(entries)
    if args.sarif:
        _write_sarif(args.sarif, report)
    if args.json:
        print(report.to_json())
    else:
        if note:
            print(f"note: {note}")
        print(report.format(verbose=args.verbose))
        if suppressed:
            print(f"({suppressed} baselined finding(s) suppressed)")
    return 0 if report.gate(args.fail_on) else 1


def cmd_shard_choose(args) -> int:
    from .analysis.search import choose_partitioning
    from .shard import DeviceConfig

    g = _load_shard_graph(args.dataset)
    device = (
        DeviceConfig(mem_bytes=int(args.device_mem))
        if args.device_mem else DeviceConfig.from_gpu(bench_config())
    )
    choices = choose_partitioning(
        g, args.model, device=device,
        methods=tuple(args.methods) if args.methods else None,
        parts=tuple(args.parts),
    )
    rows = [
        [
            c.method, c.num_parts,
            "yes" if c.feasible else "no",
            round(c.score.peak_bytes / 1e6, 2),
            round(c.score.transfer_bytes / 1e6, 2),
            len(c.report.findings),
        ]
        for c in choices
    ]
    print(format_table(
        f"partitioning candidates for {args.model}:{args.dataset} "
        f"(device {device.mem_bytes / 2**20:.0f} MiB)",
        ["method", "P", "fits", "peak_MB", "transfer_MB", "findings"],
        rows,
    ))
    best = choices[0]
    if best.feasible:
        print(
            f"recommended: {best.method} x{best.num_parts} "
            f"(peak {best.score.peak_bytes / 1e6:.2f} MB, "
            f"transfers {best.score.transfer_bytes / 1e6:.2f} MB)"
        )
        return 0
    print(
        f"no candidate fits the {device.mem_bytes:,}-byte device "
        f"budget (least-infeasible: {best.method} x{best.num_parts})"
    )
    return 1


def cmd_shard(args) -> int:
    return args.shard_func(args)


# ----------------------------------------------------------------------
# repro serve — batched multi-tenant plan serving
# ----------------------------------------------------------------------

def cmd_serve_replay(args) -> int:
    from .analysis import INFO, AnalysisReport, lint_plan
    from .serve import (
        AdmissionPolicy,
        PlanServer,
        TraceSpec,
        replay,
        synthetic_trace,
    )

    frameworks = all_frameworks()
    tenant_fws = args.frameworks or ["dgl", "ours", "pyg"]
    for f in tenant_fws:
        if f not in frameworks:
            raise SystemExit(
                f"unknown framework {f!r}; choose from {list(frameworks)}"
            )
    tenants = tuple(
        (f"tenant-{chr(ord('a') + i)}", tenant_fws[i % len(tenant_fws)])
        for i in range(args.tenants)
    )
    spec = TraceSpec(
        num_requests=args.requests,
        datasets=tuple(_dataset_list(args)),
        models=tuple(args.models or ["gcn", "gat"]),
        tenants=tenants,
        pool_per_dataset=args.pool,
        seed=args.seed,
    )
    print(f"trace: {spec.describe()}")
    policy = AdmissionPolicy(
        max_nodes=args.max_nodes, max_edges=args.max_edges
    )
    server = PlanServer(
        frameworks=frameworks, sim=bench_config(), policy=policy
    )
    trace = synthetic_trace(spec)
    summaries = replay(server, trace, window=args.window)
    stats = server.stats()
    rows = []
    for tenant, summary in stats["tenants"].items():
        rows.append([
            tenant, summary["count"],
            round(summary["p50"] * 1e3, 3),
            round(summary["p95"] * 1e3, 3),
            round(summary["p99"] * 1e3, 3),
            round(summary["max"] * 1e3, 3),
        ])
    print(format_table(
        "per-tenant serving latency (host ms)",
        ["tenant", "requests", "p50", "p95", "p99", "max"],
        rows,
    ))
    rejected = [s for s in summaries if s["status"] != "ok"]
    print(
        f"served {stats['served']}/{stats['submitted']} request(s) in "
        f"{stats['batches']} batch(es) (max batch {stats['max_batch']}, "
        f"{100 * stats['batch_dedup_rate']:.1f}% fanned out, "
        f"plan-cache hit rate "
        f"{100 * stats['plan_cache_hit_rate']:.1f}%), "
        f"{len(rejected)} rejected"
    )
    if args.json:
        print(json.dumps(
            {"stats": stats, "spec": spec.describe()}, indent=2,
            default=str,
        ))
    status = 0
    if not args.no_lint:
        merged = AnalysisReport(label="serve-replay")
        for _, (fw_name, plan, graph) in sorted(
            server.served_plans.items()
        ):
            report = lint_plan(plan, graph=graph)
            merged.merge(report)
            for f in report.findings:
                if f.severity != INFO:
                    print(f"{fw_name}:{plan.label}: {f.format()}")
        infos = sum(1 for f in merged.findings if f.severity == INFO)
        print(
            f"served-plan lint: {len(server.served_plans)} plan(s), "
            f"{len(merged.findings)} finding(s) "
            f"({infos} info, {len(merged.findings) - infos} gating)"
        )
        if args.sarif:
            _write_sarif(args.sarif, merged)
        if not merged.gate(args.fail_on):
            status = 1
    return status


def cmd_serve(args) -> int:
    return args.serve_func(args)


def cmd_schedule(args) -> int:
    g = load_dataset(args.dataset)
    sched = cached_schedule(g)
    sizes = cluster_sizes(sched)
    print(f"dataset {args.dataset}: {sched.num_clusters:,} clusters, "
          f"max size {sizes.max()}, "
          f"{(sizes > 1).sum():,} non-trivial, "
          f"{sched.num_candidate_pairs:,} candidate pairs, "
          f"analysis {sched.analysis_seconds * 1e3:.0f} ms")
    return 0


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="PPoPP'21 GNN performance-gap reproduction",
    )
    sub = p.add_subparsers(dest="command", required=True)

    def add_datasets_arg(sp):
        sp.add_argument("--datasets", nargs="*", default=None,
                        help="subset of datasets (default: all eight)")

    sp = sub.add_parser("datasets", help="print Table 3 statistics")
    add_datasets_arg(sp)
    sp.set_defaults(func=cmd_datasets)

    sp = sub.add_parser("compare", help="Fig. 7-style comparison")
    sp.add_argument("--model", choices=["gcn", "gat", "sage_lstm"],
                    default="gcn")
    sp.add_argument("--frameworks", nargs="*", default=None)
    add_datasets_arg(sp)
    sp.set_defaults(func=cmd_compare)

    for name, fn, help_ in (
        ("fig3", cmd_fig3, "DGL GCN L2 miss rates"),
        ("table4", cmd_table4, "active-block starvation"),
        ("table5", cmd_table5, "SAGE-LSTM expansion/transform shares"),
        ("table6", cmd_table6, "GAT-layer ablation"),
    ):
        sp = sub.add_parser(name, help=help_)
        add_datasets_arg(sp)
        sp.set_defaults(func=fn)

    sp = sub.add_parser("tune", help="run the online tuner")
    sp.add_argument("--dataset", choices=DATASET_NAMES, required=True)
    sp.add_argument("--feat", type=int, default=32)
    sp.set_defaults(func=cmd_tune)

    sp = sub.add_parser("schedule", help="run locality-aware scheduling")
    sp.add_argument("--dataset", choices=DATASET_NAMES, required=True)
    sp.set_defaults(func=cmd_schedule)

    sp = sub.add_parser(
        "bench",
        help="run the perf-trajectory harness (benchmarks/bench_speed.py)",
    )
    sp.add_argument("--quick", action="store_true",
                    help="small workload for smoke runs")
    sp.add_argument("--check", action="store_true",
                    help="CI perf gate against BENCH_speed.json")
    sp.add_argument("--workers", type=int, default=0,
                    help="REPRO_WORKERS for the measured runs")
    sp.add_argument("--warm-plans", action="store_true",
                    dest="warm_plans",
                    help="also measure the warm plan-cache path")
    sp.add_argument("--tolerance", type=float, default=None,
                    help="allowed fractional regression for --check")
    sp.set_defaults(func=cmd_bench)

    sp = sub.add_parser(
        "lint",
        help="statically verify every shipped fusion plan and lowering",
    )
    add_datasets_arg(sp)
    sp.add_argument("--models", nargs="*", default=None,
                    help="subset of model chains (default: all)")
    sp.add_argument("--model", action="append", default=None,
                    help="filter to one model chain (repeatable)")
    sp.add_argument("--dataset", action="append", default=None,
                    help="filter to one dataset (repeatable)")
    sp.add_argument("--fusion", action="append", default=None,
                    help="filter to one fusion config: unfused, adapter "
                         "or linear (repeatable)")
    sp.add_argument("--json", action="store_true",
                    help="machine-readable report")
    sp.add_argument("--verbose", action="store_true",
                    help="include info-level findings")
    sp.add_argument("--explain", metavar="CODE", nargs="?", default=None,
                    const="",
                    help="print the documentation of a finding code "
                         "(e.g. HB001) and exit; with no CODE, list "
                         "every registered code with its summary")
    sp.add_argument("--fix", action="store_true",
                    help="run the verified auto-fix engine over each "
                         "linted pipeline and gate on what remains")
    sp.add_argument("--dry-run", action="store_true", dest="dry_run",
                    help="with --fix: report what the engine fixes "
                         "(fixes are in-memory either way; this makes "
                         "the report-only intent explicit)")
    sp.add_argument("--prune-baseline", action="store_true",
                    dest="prune_baseline",
                    help="rewrite --baseline without entries that "
                         "suppress nothing")
    sp.add_argument("--fail-stale", action="store_true",
                    dest="fail_stale",
                    help="exit 1 when --baseline holds entries that "
                         "suppress nothing (CI baseline hygiene)")
    sp.add_argument("--fail-on", choices=["error", "warning"],
                    default="error", dest="fail_on",
                    help="severity that flips the exit code to 1 "
                         "(default: error; info findings never gate)")
    sp.add_argument("--baseline", default=None, metavar="PATH",
                    help="JSON suppression file of known findings "
                         "(see lint_baseline.json)")
    sp.add_argument("--sarif", default=None, metavar="PATH",
                    help="write the report as SARIF 2.1.0 JSON")
    sp.set_defaults(func=cmd_lint)

    sp = sub.add_parser(
        "plan",
        help="compile, inspect and lint CompiledPlan artifacts",
    )
    plan_sub = sp.add_subparsers(dest="plan_command", required=True)

    psp = plan_sub.add_parser(
        "compile", help="compile shipped pipelines to plan artifacts"
    )
    add_datasets_arg(psp)
    psp.add_argument("--frameworks", nargs="*", default=None,
                     help="subset of frameworks (default: all five)")
    psp.add_argument("--models", nargs="*", default=None,
                     choices=["gcn", "gat", "sage_lstm"],
                     help="subset of models (default: all three)")
    psp.add_argument("--out", default="benchmarks/out/plans",
                     help="output directory for plan_<id>.npz artifacts")
    psp.set_defaults(func=cmd_plan, plan_func=cmd_plan_compile)

    psp = plan_sub.add_parser(
        "show", help="print the schema summary of plan artifacts"
    )
    psp.add_argument("paths", nargs="*", help="plan_<id>.npz files")
    psp.add_argument("--dir", default=None,
                     help="read every *.npz artifact in a directory")
    psp.set_defaults(func=cmd_plan, plan_func=cmd_plan_show)

    psp = plan_sub.add_parser(
        "lint", help="run the static analysis passes over saved artifacts"
    )
    psp.add_argument("paths", nargs="*", help="plan_<id>.npz files")
    psp.add_argument("--dir", default=None,
                     help="read every *.npz artifact in a directory")
    psp.add_argument("--verbose", action="store_true",
                     help="include info-level findings")
    psp.add_argument("--fail-on", choices=["error", "warning"],
                     default="error", dest="fail_on",
                     help="severity that flips the exit code to 1")
    psp.add_argument("--baseline", default=None, metavar="PATH",
                     help="JSON suppression file of known findings")
    psp.add_argument("--sarif", default=None, metavar="PATH",
                     help="write the merged report as SARIF 2.1.0 JSON")
    psp.set_defaults(func=cmd_plan, plan_func=cmd_plan_lint)

    psp = plan_sub.add_parser(
        "optimize",
        help="footprint-guided search over saved plan artifacts",
    )
    psp.add_argument("paths", nargs="*", help="plan_<id>.npz files")
    psp.add_argument("--dir", default=None,
                     help="read every *.npz artifact in a directory")
    psp.add_argument("--beam-width", type=int, default=4,
                     dest="beam_width",
                     help="beam width of the plan search (default: 4)")
    psp.add_argument("--max-nodes", type=int, default=64,
                     dest="max_nodes",
                     help="search-node budget per layer (default: 64)")
    psp.add_argument("--out", default=None,
                     help="directory to save optimized artifacts into")
    psp.set_defaults(func=cmd_plan, plan_func=cmd_plan_optimize)

    sp = sub.add_parser(
        "shard",
        help="multi-device sharded execution (partition + run)",
    )
    shard_sub = sp.add_subparsers(dest="shard_command", required=True)

    def add_shard_args(ssp):
        ssp.add_argument("--dataset",
                         choices=list(DATASET_NAMES) + ["ogb49m"],
                         required=True,
                         help="scaled dataset, or ogb49m (the generated "
                              "full-scale OOM-regime graph)")
        ssp.add_argument("--parts", type=int, default=2,
                         help="number of simulated devices (default: 2)")
        ssp.add_argument("--method", choices=["edge_cut", "vertex_cut"],
                         default="edge_cut",
                         help="partitioning method (default: edge_cut)")

    ssp = shard_sub.add_parser(
        "partition",
        help="partition a dataset and print / save the shard plan",
    )
    add_shard_args(ssp)
    ssp.add_argument("--out", default=None, metavar="DIR",
                     help="save the content-addressed shard artifact")
    ssp.add_argument("--model", choices=["gcn", "gat", "sage_lstm"],
                     default="gcn",
                     help="model for the symbolic shard lint "
                          "(default: gcn)")
    ssp.add_argument("--no-lint", action="store_true", dest="no_lint",
                     help="skip the symbolic shard lint (SH001/3/4)")
    ssp.set_defaults(func=cmd_shard, shard_func=cmd_shard_partition)

    ssp = shard_sub.add_parser(
        "run",
        help="partition, compile per device, and run multi-device",
    )
    add_shard_args(ssp)
    ssp.add_argument("--model", choices=["gcn", "gat", "sage_lstm"],
                     default="gcn")
    ssp.add_argument("--framework", default="dgl",
                     help="execution strategy (default: dgl)")
    ssp.add_argument("--link-bandwidth", type=float, default=50e9,
                     dest="link_bandwidth",
                     help="inter-device bytes/s (default: 50e9)")
    ssp.add_argument("--link-latency", type=float, default=5e-6,
                     dest="link_latency",
                     help="per-message seconds (default: 5e-6)")
    ssp.add_argument("--no-lint", action="store_true", dest="no_lint",
                     help="skip the cross-device happens-before pass")
    ssp.add_argument("--fail-on", choices=["error", "warning"],
                     default="error", dest="fail_on",
                     help="findings severity that fails the run")
    ssp.add_argument("--sarif", default=None, metavar="PATH",
                     help="write HB findings as SARIF 2.1.0 JSON")
    ssp.set_defaults(func=cmd_shard, shard_func=cmd_shard_run)

    ssp = shard_sub.add_parser(
        "lint",
        help="statically verify one partitioning (SH001-SH005): "
             "symbolic memory, transfer conservation, exchange liveness",
    )
    add_shard_args(ssp)
    ssp.add_argument("--model", choices=["gcn", "gat", "sage_lstm"],
                     default="gcn")
    ssp.add_argument("--framework", default="dgl",
                     help="framework for per-partition plans "
                          "(default: dgl)")
    ssp.add_argument("--no-plans", action="store_true", dest="no_plans",
                     help="symbolic-only: skip compiling per-partition "
                          "plans (SH002/SH005 need plans; SH001/3/4 "
                          "never do)")
    ssp.add_argument("--device-mem", type=float, default=None,
                     dest="device_mem", metavar="BYTES",
                     help="declared per-device capacity (default: the "
                          "bench GPU's budget)")
    ssp.add_argument("--imbalance-threshold", type=float, default=1.25,
                     dest="imbalance_threshold",
                     help="SH003 max/mean flops ratio (default: 1.25)")
    ssp.add_argument("--blowup-threshold", type=float, default=None,
                     dest="blowup_threshold",
                     help="SH004 total/monolithic memory ratio "
                          "(default: P)")
    ssp.add_argument("--json", action="store_true",
                     help="machine-readable report")
    ssp.add_argument("--verbose", action="store_true",
                     help="include info-level findings")
    ssp.add_argument("--fail-on", choices=["error", "warning"],
                     default="error", dest="fail_on",
                     help="severity that flips the exit code to 1")
    ssp.add_argument("--baseline", default=None, metavar="PATH",
                     help="JSON suppression file of known findings")
    ssp.add_argument("--sarif", default=None, metavar="PATH",
                     help="write the report as SARIF 2.1.0 JSON")
    ssp.set_defaults(func=cmd_shard, shard_func=cmd_shard_lint)

    ssp = shard_sub.add_parser(
        "choose",
        help="rank (method x P) partitionings by the static ShardScore",
    )
    ssp.add_argument("--dataset",
                     choices=list(DATASET_NAMES) + ["ogb49m"],
                     required=True)
    ssp.add_argument("--model", choices=["gcn", "gat", "sage_lstm"],
                     default="gcn")
    ssp.add_argument("--methods", nargs="*", default=None,
                     choices=["edge_cut", "vertex_cut"],
                     help="candidate methods (default: both)")
    ssp.add_argument("--parts", type=int, nargs="*", default=[1, 2, 4, 8],
                     help="candidate device counts (default: 1 2 4 8)")
    ssp.add_argument("--device-mem", type=float, default=None,
                     dest="device_mem", metavar="BYTES",
                     help="declared per-device capacity (default: the "
                          "bench GPU's budget)")
    ssp.set_defaults(func=cmd_shard, shard_func=cmd_shard_choose)

    sp = sub.add_parser(
        "serve",
        help="batched multi-tenant plan serving (PlanServer)",
    )
    serve_sub = sp.add_subparsers(dest="serve_command", required=True)

    vsp = serve_sub.add_parser(
        "replay",
        help="replay a synthetic multi-tenant trace through PlanServer",
    )
    vsp.add_argument("--requests", type=int, default=200,
                     help="trace length (default: 200)")
    vsp.add_argument("--tenants", type=int, default=3,
                     help="number of tenants (default: 3)")
    vsp.add_argument("--frameworks", nargs="+", default=None,
                     help="frameworks cycled across tenants "
                          "(default: dgl ours pyg)")
    vsp.add_argument("--datasets", nargs="+", default=["arxiv", "ddi"],
                     help="datasets sampled for request subgraphs")
    vsp.add_argument("--models", nargs="+", default=None,
                     choices=["gcn", "gat", "sage_lstm"],
                     help="model mix (default: gcn gat)")
    vsp.add_argument("--pool", type=int, default=4,
                     help="sampled shapes per dataset (default: 4)")
    vsp.add_argument("--window", type=int, default=64,
                     help="batching window in requests (default: 64)")
    vsp.add_argument("--seed", type=int, default=0,
                     help="trace seed (default: 0)")
    vsp.add_argument("--max-nodes", type=int, default=None,
                     dest="max_nodes",
                     help="admission cap on request nodes")
    vsp.add_argument("--max-edges", type=int, default=None,
                     dest="max_edges",
                     help="admission cap on request edges")
    vsp.add_argument("--json", action="store_true",
                     help="print full server stats as JSON")
    vsp.add_argument("--no-lint", action="store_true", dest="no_lint",
                     help="skip linting the served plans")
    vsp.add_argument("--fail-on", choices=["error", "warning"],
                     default="error", dest="fail_on",
                     help="findings severity that fails the replay")
    vsp.add_argument("--sarif", default=None, metavar="PATH",
                     help="write served-plan findings as SARIF 2.1.0")
    vsp.set_defaults(func=cmd_serve, serve_func=cmd_serve_replay)
    return p


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
