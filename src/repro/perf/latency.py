"""Latency accounting for the serving layer: exact percentile math.

Ad-hoc percentile computations tend to multiply across benchmarks, each
with its own off-by-one convention.  This module is the single source:
a :class:`LatencyHistogram` accumulates per-request latencies (seconds)
and reports nearest-rank percentiles, and :func:`percentile` exposes
the same convention over any value sequence.

Nearest-rank (the classic definition): the p-th percentile of ``n``
sorted samples is the value at 1-based rank ``ceil(p/100 * n)``.  It
always returns an observed sample — no interpolation — so p99 of a
latency trace is a latency some request actually saw.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence

__all__ = ["percentile", "LatencyHistogram"]


def percentile(values: Sequence[float], p: float) -> float:
    """Nearest-rank percentile of ``values`` (``0 < p <= 100``).

    ``p=50`` is the median sample, ``p=100`` the maximum.  ``p=0`` is
    defined as the minimum for convenience.  Raises ``ValueError`` on an
    empty sequence — an empty trace has no percentiles, and silently
    returning 0.0 would fabricate a latency record.
    """
    n = len(values)
    if n == 0:
        raise ValueError("percentile of an empty sequence")
    if not 0.0 <= p <= 100.0:
        raise ValueError(f"percentile p must be in [0, 100], got {p}")
    ordered = sorted(values)
    if p == 0.0:
        return float(ordered[0])
    rank = math.ceil(p / 100.0 * n)
    return float(ordered[rank - 1])


class LatencyHistogram:
    """Accumulating latency samples with percentile summaries.

    Samples are kept exactly (a float per request) and sorted lazily,
    once per summary — recording stays O(1) on the serving hot path.
    ``unit`` only labels the summary keys' documentation; values are
    stored in whatever unit the caller records (the serve layer records
    seconds).
    """

    def __init__(self, name: str = "latency") -> None:
        self.name = name
        self._values: List[float] = []
        self._sorted: Optional[List[float]] = None

    # ------------------------------------------------------------------
    def record(self, value: float) -> None:
        """Add one sample (e.g. one request's latency in seconds)."""
        self._values.append(float(value))
        self._sorted = None

    def record_many(self, values: Iterable[float]) -> None:
        for v in values:
            self._values.append(float(v))
        self._sorted = None

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold another histogram's samples into this one."""
        self._values.extend(other._values)
        self._sorted = None

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def total(self) -> float:
        return float(sum(self._values))

    @property
    def mean(self) -> float:
        return self.total / self.count if self._values else 0.0

    def _ordered(self) -> List[float]:
        if self._sorted is None:
            self._sorted = sorted(self._values)
        return self._sorted

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile of the recorded samples."""
        ordered = self._ordered()
        if not ordered:
            raise ValueError(f"histogram {self.name!r} is empty")
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile p must be in [0, 100], got {p}")
        if p == 0.0:
            return ordered[0]
        rank = math.ceil(p / 100.0 * len(ordered))
        return ordered[rank - 1]

    def summary(self) -> Dict[str, float]:
        """The serving layer's standard latency record.

        Keys: ``count``, ``mean``, ``p50``, ``p95``, ``p99``, ``max``
        (same unit as the recorded samples).  An empty histogram
        summarizes to all-zero so replay records stay well-formed when a
        tenant sent nothing.
        """
        if not self._values:
            return {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0,
                    "p99": 0.0, "max": 0.0}
        ordered = self._ordered()
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "max": ordered[-1],
        }
