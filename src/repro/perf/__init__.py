"""Lightweight performance instrumentation for the simulator itself.

The paper's thesis is that GNN runtimes lose their time to
interpreter-granularity work; this package is the reproduction's guard
against the same disease one level up.  It provides:

* :data:`PERF` — a process-wide registry of stage timers (cache-model
  seconds, schedule seconds, ...) and counters (memo hits/misses).  The
  executor reports a per-:class:`~repro.gpusim.metrics.RunReport` delta
  under ``report.extra["perf"]``.
* fast-path / memoization switches — every vectorized hot path keeps its
  reference implementation; :func:`configure` (or the ``REPRO_FASTPATH``
  / ``REPRO_KERNEL_MEMO`` environment variables) selects between them.
  ``benchmarks/bench_speed.py`` uses the reference mode as its live
  baseline, and the equivalence tests assert both modes are
  bit-identical.
"""

from __future__ import annotations

import contextlib
import os
import time
from typing import Dict, Optional

from .latency import LatencyHistogram, percentile

__all__ = [
    "PerfRegistry",
    "PERF",
    "configure",
    "fastpath_enabled",
    "memo_enabled",
    "cache_model_mode",
    "optimize_enabled",
    "workers",
    "LatencyHistogram",
    "percentile",
]


def _env_flag(name: str, default: bool = True) -> bool:
    raw = os.environ.get(name)
    if raw is None:
        return default
    return raw.strip().lower() not in ("0", "false", "no", "off", "")


#: Module state for the switches (None = follow the environment).
_FASTPATH: Optional[bool] = None
_MEMO: Optional[bool] = None
_CACHE_MODEL_MODE: Optional[str] = None
_WORKERS: Optional[int] = None
_OPTIMIZE: Optional[bool] = None


def fastpath_enabled() -> bool:
    """Whether vectorized fast paths replace reference implementations."""
    if _FASTPATH is not None:
        return _FASTPATH
    return _env_flag("REPRO_FASTPATH")


def memo_enabled() -> bool:
    """Whether content-addressed kernel/stream memoization is active."""
    if _MEMO is not None:
        return _MEMO
    return _env_flag("REPRO_KERNEL_MEMO")


def cache_model_mode() -> str:
    """``"exact"`` (default) or ``"approx"`` — the L2 cache-model tier.

    ``approx`` (``REPRO_CACHE_MODEL=approx``) swaps exact reuse-distance
    machinery for the sampled set-window estimator; it changes simulated
    numbers within a documented error bound and is therefore strictly
    opt-in.
    """
    if _CACHE_MODEL_MODE is not None:
        return _CACHE_MODEL_MODE
    raw = os.environ.get("REPRO_CACHE_MODEL", "exact").strip().lower()
    return "approx" if raw == "approx" else "exact"


def optimize_enabled() -> bool:
    """Whether the footprint-guided plan optimizer runs after compile.

    Off by default (``REPRO_OPTIMIZE_PLANS=1`` opts in): the optimizer
    adds an ``optimize`` pipeline stage and gives plans a distinct
    content address, so the default path's plan ids — and therefore the
    benchmark hashes — are untouched unless explicitly requested.
    """
    if _OPTIMIZE is not None:
        return _OPTIMIZE
    return _env_flag("REPRO_OPTIMIZE_PLANS", default=False)


def workers() -> int:
    """Worker-process count for parallel kernel simulation.

    ``1`` (the default, or any non-positive / unparsable value of
    ``REPRO_WORKERS``) means in-process serial execution.
    """
    if _WORKERS is not None:
        return _WORKERS
    raw = os.environ.get("REPRO_WORKERS")
    if raw is None:
        return 1
    try:
        return max(1, int(raw))
    except ValueError:
        return 1


def configure(
    fastpath: Optional[bool] = None,
    memo: Optional[bool] = None,
    cache_model: Optional[str] = None,
    workers: Optional[int] = None,
    optimize: Optional[bool] = None,
) -> None:
    """Override the performance switches at runtime.

    ``None`` leaves a switch unchanged; to return a switch to
    environment control pass the string ``"env"``.  ``cache_model``
    accepts ``"exact"``/``"approx"``; ``workers`` a positive int.
    """
    global _FASTPATH, _MEMO, _CACHE_MODEL_MODE, _WORKERS, _OPTIMIZE
    if fastpath is not None:
        _FASTPATH = None if fastpath == "env" else bool(fastpath)
    if memo is not None:
        _MEMO = None if memo == "env" else bool(memo)
    if cache_model is not None:
        if cache_model == "env":
            _CACHE_MODEL_MODE = None
        elif cache_model in ("exact", "approx"):
            _CACHE_MODEL_MODE = cache_model
        else:
            raise ValueError(
                f"cache_model must be 'exact' or 'approx', "
                f"got {cache_model!r}"
            )
    if workers is not None:
        _WORKERS = None if workers == "env" else max(1, int(workers))
    if optimize is not None:
        _OPTIMIZE = None if optimize == "env" else bool(optimize)


class PerfRegistry:
    """Accumulating stage timers and event counters.

    Cheap enough to stay always-on: one ``perf_counter`` pair per stage
    entry and dictionary adds.  ``snapshot``/``delta_since`` let callers
    attribute costs to a region (e.g. one ``simulate_kernels`` run).
    """

    def __init__(self) -> None:
        self.seconds: Dict[str, float] = {}
        self.calls: Dict[str, int] = {}
        self.counts: Dict[str, int] = {}

    @contextlib.contextmanager
    def stage(self, name: str):
        """Time a block of work under ``name`` (re-entrant, accumulating)."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            dt = time.perf_counter() - t0
            self.seconds[name] = self.seconds.get(name, 0.0) + dt
            self.calls[name] = self.calls.get(name, 0) + 1

    def add_seconds(self, name: str, dt: float) -> None:
        self.seconds[name] = self.seconds.get(name, 0.0) + dt
        self.calls[name] = self.calls.get(name, 0) + 1

    def count(self, name: str, n: int = 1) -> None:
        self.counts[name] = self.counts.get(name, 0) + n

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict[str, float]]:
        return {
            "seconds": dict(self.seconds),
            "calls": dict(self.calls),
            "counts": dict(self.counts),
        }

    def delta_since(
        self, snap: Dict[str, Dict[str, float]]
    ) -> Dict[str, Dict[str, float]]:
        """Difference between now and an earlier :meth:`snapshot`."""
        out: Dict[str, Dict[str, float]] = {}
        for section, current in (
            ("seconds", self.seconds),
            ("calls", self.calls),
            ("counts", self.counts),
        ):
            base = snap.get(section, {})
            delta = {
                k: v - base.get(k, 0)
                for k, v in current.items()
                if v != base.get(k, 0)
            }
            out[section] = delta
        return out

    def reset(self) -> None:
        self.seconds.clear()
        self.calls.clear()
        self.counts.clear()

    # ------------------------------------------------------------------
    def memo_hit_rate(self, kind: str = "kernel_memo") -> float:
        """Hit rate of a memo tier from its ``*_hit``/``*_miss`` counters."""
        hits = self.counts.get(f"{kind}_hit", 0)
        misses = self.counts.get(f"{kind}_miss", 0)
        total = hits + misses
        return hits / total if total else 0.0


#: The process-wide registry.
PERF = PerfRegistry()
