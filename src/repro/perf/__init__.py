"""Lightweight performance instrumentation for the simulator itself.

The paper's thesis is that GNN runtimes lose their time to
interpreter-granularity work; this package is the reproduction's guard
against the same disease one level up.  It provides:

* :data:`PERF` — a process-wide registry of stage timers (cache-model
  seconds, schedule seconds, ...) and counters (memo hits/misses).  The
  executor reports a per-:class:`~repro.gpusim.metrics.RunReport` delta
  under ``report.extra["perf"]``.
* fast-path / memoization switches — every vectorized hot path keeps its
  reference implementation; :func:`configure` (or the ``REPRO_FASTPATH``
  / ``REPRO_KERNEL_MEMO`` environment variables) selects between them.
  ``benchmarks/bench_speed.py`` uses the reference mode as its live
  baseline, and the equivalence tests assert both modes are
  bit-identical.
"""

from __future__ import annotations

import contextlib
import os
import time
from typing import Dict, Optional

__all__ = [
    "PerfRegistry",
    "PERF",
    "configure",
    "fastpath_enabled",
    "memo_enabled",
]


def _env_flag(name: str, default: bool = True) -> bool:
    raw = os.environ.get(name)
    if raw is None:
        return default
    return raw.strip().lower() not in ("0", "false", "no", "off", "")


#: Module state for the switches (None = follow the environment).
_FASTPATH: Optional[bool] = None
_MEMO: Optional[bool] = None


def fastpath_enabled() -> bool:
    """Whether vectorized fast paths replace reference implementations."""
    if _FASTPATH is not None:
        return _FASTPATH
    return _env_flag("REPRO_FASTPATH")


def memo_enabled() -> bool:
    """Whether content-addressed kernel/stream memoization is active."""
    if _MEMO is not None:
        return _MEMO
    return _env_flag("REPRO_KERNEL_MEMO")


def configure(
    fastpath: Optional[bool] = None, memo: Optional[bool] = None
) -> None:
    """Override the fast-path / memoization switches at runtime.

    ``None`` leaves a switch unchanged; to return a switch to
    environment control pass the string ``"env"``.
    """
    global _FASTPATH, _MEMO
    if fastpath is not None:
        _FASTPATH = None if fastpath == "env" else bool(fastpath)
    if memo is not None:
        _MEMO = None if memo == "env" else bool(memo)


class PerfRegistry:
    """Accumulating stage timers and event counters.

    Cheap enough to stay always-on: one ``perf_counter`` pair per stage
    entry and dictionary adds.  ``snapshot``/``delta_since`` let callers
    attribute costs to a region (e.g. one ``simulate_kernels`` run).
    """

    def __init__(self) -> None:
        self.seconds: Dict[str, float] = {}
        self.calls: Dict[str, int] = {}
        self.counts: Dict[str, int] = {}

    @contextlib.contextmanager
    def stage(self, name: str):
        """Time a block of work under ``name`` (re-entrant, accumulating)."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            dt = time.perf_counter() - t0
            self.seconds[name] = self.seconds.get(name, 0.0) + dt
            self.calls[name] = self.calls.get(name, 0) + 1

    def add_seconds(self, name: str, dt: float) -> None:
        self.seconds[name] = self.seconds.get(name, 0.0) + dt
        self.calls[name] = self.calls.get(name, 0) + 1

    def count(self, name: str, n: int = 1) -> None:
        self.counts[name] = self.counts.get(name, 0) + n

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict[str, float]]:
        return {
            "seconds": dict(self.seconds),
            "calls": dict(self.calls),
            "counts": dict(self.counts),
        }

    def delta_since(
        self, snap: Dict[str, Dict[str, float]]
    ) -> Dict[str, Dict[str, float]]:
        """Difference between now and an earlier :meth:`snapshot`."""
        out: Dict[str, Dict[str, float]] = {}
        for section, current in (
            ("seconds", self.seconds),
            ("calls", self.calls),
            ("counts", self.counts),
        ):
            base = snap.get(section, {})
            delta = {
                k: v - base.get(k, 0)
                for k, v in current.items()
                if v != base.get(k, 0)
            }
            out[section] = delta
        return out

    def reset(self) -> None:
        self.seconds.clear()
        self.calls.clear()
        self.counts.clear()

    # ------------------------------------------------------------------
    def memo_hit_rate(self, kind: str = "kernel_memo") -> float:
        """Hit rate of a memo tier from its ``*_hit``/``*_miss`` counters."""
        hits = self.counts.get(f"{kind}_hit", 0)
        misses = self.counts.get(f"{kind}_miss", 0)
        total = hits + misses
        return hits / total if total else 0.0


#: The process-wide registry.
PERF = PerfRegistry()
