"""Functional graph operators (the semantics layer).

Every framework model in :mod:`repro.frameworks` computes its outputs with
these operators, so outputs are bit-comparable across DGL-like, PyG-like
and our runtime — mirroring the paper's statement that the optimizations
"do not alter the semantics of the models".

Conventions: graphs are destination-major CSR (:class:`repro.graph.CSRGraph`);
``feat`` matrices are ``float32[N, F]``; per-edge tensors are aligned with
positional CSR edge ids.  All operators are vectorized numpy.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph

__all__ = [
    "gather_src",
    "segment_sum",
    "segment_max",
    "segment_mean",
    "segment_softmax",
    "copy_u_sum",
    "u_add_v",
    "u_mul_e_sum",
    "edge_softmax",
    "broadcast_dst_to_edges",
]


def _segments(graph: CSRGraph) -> np.ndarray:
    """Destination id of each positional edge."""
    return np.repeat(
        np.arange(graph.num_nodes, dtype=np.int64), graph.degrees
    )


def gather_src(graph: CSRGraph, feat: np.ndarray) -> np.ndarray:
    """Expand source features along edges: ``out[e] = feat[indices[e]]``.

    This is PyG's "index select by source index" (Fig. 2, step 1) — the
    [E, F] expansion whose footprint Observation 1 criticizes.
    """
    return feat[graph.indices]


def broadcast_dst_to_edges(graph: CSRGraph, per_node: np.ndarray) -> np.ndarray:
    """``out[e] = per_node[dst(e)]`` (DGL's ``broadcast_edge``)."""
    return np.repeat(per_node, graph.degrees, axis=0)


def segment_sum(
    graph: CSRGraph, edge_vals: np.ndarray, num_segments: int | None = None
) -> np.ndarray:
    """Sum per-edge values into their destination nodes.

    ``edge_vals`` is ``[E]`` or ``[E, F]``; the result is ``[N]`` or
    ``[N, F]`` (zeros for isolated nodes).
    """
    n = num_segments if num_segments is not None else graph.num_nodes
    seg = _segments(graph)
    if edge_vals.ndim == 1:
        out = np.zeros(n, dtype=edge_vals.dtype)
        np.add.at(out, seg, edge_vals)
        return out
    out = np.zeros((n,) + edge_vals.shape[1:], dtype=edge_vals.dtype)
    np.add.at(out, seg, edge_vals)
    return out


def segment_max(graph: CSRGraph, edge_vals: np.ndarray) -> np.ndarray:
    """Max-reduce per-edge values into destinations.

    Isolated nodes get ``-inf`` (callers mask them), matching DGL's
    behaviour of leaving untouched rows at the identity of the reducer.
    """
    n = graph.num_nodes
    shape = (n,) + edge_vals.shape[1:]
    out = np.full(shape, -np.inf, dtype=edge_vals.dtype)
    np.maximum.at(out, _segments(graph), edge_vals)
    return out


def segment_mean(graph: CSRGraph, edge_vals: np.ndarray) -> np.ndarray:
    """Mean-reduce per-edge values into destinations (0 for isolated)."""
    total = segment_sum(graph, edge_vals)
    deg = graph.degrees.astype(edge_vals.dtype)
    deg = np.maximum(deg, 1)
    if edge_vals.ndim == 1:
        return total / deg
    return total / deg[:, None]


def copy_u_sum(graph: CSRGraph, feat: np.ndarray) -> np.ndarray:
    """``out[v] = sum_{u->v} feat[u]`` — the SpMM with all-ones weights.

    Implemented row-contiguously with ``np.add.reduceat`` over the gathered
    edge features, which is the numpy analogue of cuSPARSE's row-major
    csrmm traversal.
    """
    if graph.num_edges == 0:
        return np.zeros((graph.num_nodes,) + feat.shape[1:], feat.dtype)
    edge_feat = feat[graph.indices]
    return _reduceat_rows(graph, edge_feat)


def _reduceat_rows(graph: CSRGraph, edge_vals: np.ndarray) -> np.ndarray:
    """Row-wise sum of positional edge values using reduceat semantics."""
    starts = graph.indptr[:-1]
    nonempty = graph.degrees > 0
    out = np.zeros((graph.num_nodes,) + edge_vals.shape[1:], edge_vals.dtype)
    if not nonempty.any():
        return out
    # reduceat needs strictly valid start offsets; compute on non-empty rows
    # and scatter back.  Empty rows keep the 0 identity.
    red = np.add.reduceat(edge_vals, starts[nonempty], axis=0)
    out[nonempty] = red
    return out


def u_add_v(
    graph: CSRGraph, u_vals: np.ndarray, v_vals: np.ndarray
) -> np.ndarray:
    """Per-edge ``u_vals[src(e)] + v_vals[dst(e)]`` (DGL's ``u_add_v``)."""
    return u_vals[graph.indices] + np.repeat(v_vals, graph.degrees, axis=0)


def u_mul_e_sum(
    graph: CSRGraph, feat: np.ndarray, edge_weight: np.ndarray
) -> np.ndarray:
    """Weighted aggregation ``out[v] = sum_{u->v} w_e * feat[u]``.

    This is the generalized SpMM at the heart of GCN/GAT aggregation.
    ``edge_weight`` is ``[E]`` or ``[E, 1]``.
    """
    w = edge_weight.reshape(-1, *([1] * (feat.ndim - 1)))
    edge_feat = feat[graph.indices] * w
    return _reduceat_rows(graph, edge_feat)


def segment_softmax(graph: CSRGraph, edge_vals: np.ndarray) -> np.ndarray:
    """Numerically-stable softmax of per-edge scalars over each dst segment.

    The classic three-pass edge softmax (max, exp-sum, divide) that DGL's
    GAT uses (Listing 1 lines 6–9; DGL omits the max pass, we keep it for
    stability — it does not change which kernels exist, only constants).
    """
    seg_max = segment_max(graph, edge_vals)
    seg_max = np.where(np.isneginf(seg_max), 0.0, seg_max)
    shifted = edge_vals - np.repeat(seg_max, graph.degrees, axis=0)
    exp = np.exp(shifted)
    denom = segment_sum(graph, exp)
    denom = np.where(denom == 0.0, 1.0, denom)
    return exp / np.repeat(denom, graph.degrees, axis=0)


# Alias matching the paper's terminology.
edge_softmax = segment_softmax
