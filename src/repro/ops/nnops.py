"""Dense neural operators (numpy, float32).

These are the "neural operation" half of GNN layers: linear transforms,
activations and row softmax.  They are deliberately thin wrappers so the
framework models can attribute FLOPs/bytes to them uniformly.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "linear",
    "relu",
    "leaky_relu",
    "sigmoid",
    "tanh",
    "row_softmax",
    "linear_flops",
]


def linear(x: np.ndarray, weight: np.ndarray, bias: np.ndarray | None = None) -> np.ndarray:
    """``x @ weight (+ bias)`` with ``weight`` shaped ``[F_in, F_out]``."""
    out = x @ weight
    if bias is not None:
        out = out + bias
    return out


def linear_flops(rows: int, f_in: int, f_out: int) -> int:
    """FLOPs of a dense ``[rows, f_in] @ [f_in, f_out]`` multiply-add."""
    return 2 * rows * f_in * f_out


def relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def leaky_relu(x: np.ndarray, negative_slope: float = 0.2) -> np.ndarray:
    return np.where(x >= 0.0, x, negative_slope * x)


def sigmoid(x: np.ndarray) -> np.ndarray:
    # Stable piecewise formulation avoids overflow warnings on float32.
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def tanh(x: np.ndarray) -> np.ndarray:
    return np.tanh(x)


def row_softmax(x: np.ndarray) -> np.ndarray:
    """Softmax along the last axis (numerically stable)."""
    shifted = x - x.max(axis=-1, keepdims=True)
    ex = np.exp(shifted)
    return ex / ex.sum(axis=-1, keepdims=True)
