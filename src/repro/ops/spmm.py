"""Reference CSR sparse-matrix × dense-matrix products.

The SUM-reduction path of DGL lowers to cuSPARSE's csrmm (paper §3,
Observation 1).  These functions are the numerical references; the
framework models attach cost/trace information separately.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from ..graph.csr import CSRGraph

__all__ = ["spmm_sum", "spmm_scipy", "spmm_flops", "spmm_bytes"]


def spmm_sum(
    graph: CSRGraph, feat: np.ndarray, edge_weight: np.ndarray | None = None
) -> np.ndarray:
    """``out[v] = sum_{u->v} w_e * feat[u]`` via row-contiguous reduceat."""
    from .graphops import copy_u_sum, u_mul_e_sum

    if edge_weight is None:
        return copy_u_sum(graph, feat)
    return u_mul_e_sum(graph, feat, edge_weight)


def spmm_scipy(
    graph: CSRGraph, feat: np.ndarray, edge_weight: np.ndarray | None = None
) -> np.ndarray:
    """Same product via :mod:`scipy.sparse` (cross-validation oracle)."""
    data = (
        np.ones(graph.num_edges, dtype=np.float64)
        if edge_weight is None
        else edge_weight.astype(np.float64)
    )
    mat = sp.csr_matrix(
        (data, graph.indices.astype(np.int64), graph.indptr),
        shape=(graph.num_nodes, graph.num_nodes),
    )
    return (mat @ feat.astype(np.float64)).astype(feat.dtype)


def spmm_flops(num_edges: int, feat_len: int, weighted: bool = True) -> int:
    """FLOPs of the weighted aggregation (mul + add per edge element)."""
    per_edge = 2 if weighted else 1
    return per_edge * num_edges * feat_len


def spmm_bytes(
    num_nodes: int, num_edges: int, feat_len: int, itemsize: int = 4
) -> int:
    """Minimum bytes moved with perfect reuse: N*F in + N*F out + structure."""
    return 2 * num_nodes * feat_len * itemsize + num_edges * 4
