"""Vector-Jacobian products (backward passes) for the functional ops.

The paper evaluates forward passes, but any adoptable GNN library must
train; these VJPs give the reproduction full forward+backward support
for GCN and GAT (``repro.models.training``).  Every function takes the
forward inputs (and cached forward values where cheaper) plus the output
cotangent, and returns input cotangents.  All are vectorized and
finite-difference-checked in tests.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..graph.csr import CSRGraph
from .graphops import broadcast_dst_to_edges, segment_sum

__all__ = [
    "linear_vjp",
    "relu_vjp",
    "leaky_relu_vjp",
    "gather_src_vjp",
    "segment_sum_vjp",
    "copy_u_sum_vjp",
    "u_mul_e_sum_vjp",
    "u_add_v_vjp",
    "segment_softmax_vjp",
]


def linear_vjp(
    x: np.ndarray, weight: np.ndarray, g_out: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Backward of ``x @ weight``: returns (g_x, g_weight)."""
    return g_out @ weight.T, x.T @ g_out


def relu_vjp(x: np.ndarray, g_out: np.ndarray) -> np.ndarray:
    return g_out * (x > 0)


def leaky_relu_vjp(
    x: np.ndarray, g_out: np.ndarray, negative_slope: float = 0.2
) -> np.ndarray:
    return g_out * np.where(x >= 0, 1.0, negative_slope)


def gather_src_vjp(graph: CSRGraph, g_out: np.ndarray) -> np.ndarray:
    """Backward of ``feat[indices]``: scatter-add cotangents to sources."""
    g_feat = np.zeros(
        (graph.num_nodes,) + g_out.shape[1:], dtype=g_out.dtype
    )
    np.add.at(g_feat, graph.indices, g_out)
    return g_feat


def segment_sum_vjp(graph: CSRGraph, g_out: np.ndarray) -> np.ndarray:
    """Backward of the per-destination sum: broadcast to edges."""
    return np.repeat(g_out, graph.degrees, axis=0)


def copy_u_sum_vjp(graph: CSRGraph, g_out: np.ndarray) -> np.ndarray:
    """Backward of ``sum_{u->v} feat[u]`` w.r.t. ``feat``.

    The adjoint of aggregation over a graph is aggregation over the
    reversed graph: ``g_feat[u] = sum_{u->v} g_out[v]``.
    """
    g_feat = np.zeros(
        (graph.num_nodes,) + g_out.shape[1:], dtype=g_out.dtype
    )
    np.add.at(g_feat, graph.indices, g_out[graph.edge_dst()])
    return g_feat


def u_mul_e_sum_vjp(
    graph: CSRGraph,
    feat: np.ndarray,
    edge_weight: np.ndarray,
    g_out: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Backward of ``out[v] = sum_{u->v} w_e * feat[u]``.

    Returns ``(g_feat, g_edge_weight)``:
    ``g_feat[u] = sum_{e: u->v} w_e * g_out[v]`` and
    ``g_w_e = <feat[u], g_out[v]>``.
    """
    dst = graph.edge_dst()
    g_out_e = g_out[dst]                        # [E, F]
    w = edge_weight.reshape(-1, *([1] * (feat.ndim - 1)))
    g_feat = np.zeros_like(feat)
    np.add.at(g_feat, graph.indices, (w * g_out_e).astype(feat.dtype))
    feat_e = feat[graph.indices].astype(np.float64)
    prod = feat_e * g_out_e.astype(np.float64)
    g_w = prod.reshape(prod.shape[0], -1).sum(axis=1).astype(
        edge_weight.dtype
    )
    return g_feat, g_w


def u_add_v_vjp(
    graph: CSRGraph, g_out: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Backward of ``u_vals[src] + v_vals[dst]``: returns per-node sums
    (g_u_vals, g_v_vals)."""
    n = graph.num_nodes
    g_u = np.zeros((n,) + g_out.shape[1:], dtype=g_out.dtype)
    np.add.at(g_u, graph.indices, g_out)
    g_v = segment_sum(graph, g_out)
    return g_u, g_v


def segment_softmax_vjp(
    graph: CSRGraph, alpha: np.ndarray, g_alpha: np.ndarray
) -> np.ndarray:
    """Backward of the per-destination softmax.

    Standard softmax Jacobian applied segment-wise:
    ``g_e = alpha_e * (g_alpha_e - sum_seg(alpha * g_alpha))``.
    """
    inner = segment_sum(graph, alpha * g_alpha)
    return alpha * (g_alpha - broadcast_dst_to_edges(graph, inner))
