"""Functional operators: graph ops, dense neural ops, LSTM, SpMM."""

from .graphops import (
    broadcast_dst_to_edges,
    copy_u_sum,
    edge_softmax,
    gather_src,
    segment_max,
    segment_mean,
    segment_softmax,
    segment_sum,
    u_add_v,
    u_mul_e_sum,
)
from .lstm import (
    LSTMParams,
    lstm_cell,
    lstm_cell_flops,
    lstm_cell_pre,
    lstm_over_expanded,
    lstm_pretransformed,
)
from .nnops import (
    leaky_relu,
    linear,
    linear_flops,
    relu,
    row_softmax,
    sigmoid,
    tanh,
)
from .spmm import spmm_bytes, spmm_flops, spmm_scipy, spmm_sum

__all__ = [
    "broadcast_dst_to_edges",
    "copy_u_sum",
    "edge_softmax",
    "gather_src",
    "segment_max",
    "segment_mean",
    "segment_softmax",
    "segment_sum",
    "u_add_v",
    "u_mul_e_sum",
    "LSTMParams",
    "lstm_cell",
    "lstm_cell_flops",
    "lstm_cell_pre",
    "lstm_over_expanded",
    "lstm_pretransformed",
    "leaky_relu",
    "linear",
    "linear_flops",
    "relu",
    "row_softmax",
    "sigmoid",
    "tanh",
    "spmm_bytes",
    "spmm_flops",
    "spmm_scipy",
    "spmm_sum",
]
