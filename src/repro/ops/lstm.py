"""LSTM cell and neighbor-sequence LSTM for GraphSAGE-LSTM.

GraphSAGE's LSTM aggregator (Table 1, Hamilton et al. 2017) runs an LSTM
over the (sampled) neighbor features of every center node and uses the
final hidden state as the aggregated neighborhood representation.

Two mathematically-identical execution strategies live here:

* :func:`lstm_over_expanded` — the *base* strategy (DGL, paper Fig. 6
  yellow box): first expand neighbor features to a dense ``[N, k, F]``
  tensor (the *expansion* step of Table 5), then run the input-side
  transformation ``x_t @ W`` inside every cell (the *transformation* step).
* :func:`lstm_pretransformed` — the paper's optimized strategy (Fig. 6 red
  box): transform the ``[N, F]`` feature matrix once (*redundancy
  bypassing*), then *sparse-fetch* per-cell rows via the neighbor index.

Both return identical outputs; tests enforce it.  The gate layout is
``[i, f, z(g), o]`` concatenated along the output dimension.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from .nnops import sigmoid, tanh

__all__ = [
    "LSTMParams",
    "lstm_cell",
    "lstm_cell_pre",
    "lstm_over_expanded",
    "lstm_pretransformed",
    "lstm_cell_flops",
]


@dataclasses.dataclass(frozen=True)
class LSTMParams:
    """Weights of one LSTM layer.

    ``w_ih``: ``[F_in, 4H]`` input transformation (the paper's
    ``Wf/Wo/Wz/Wi`` stacked); ``w_hh``: ``[H, 4H]`` recurrent
    transformation (``Rf/Ro/Rz/Ri``); ``bias``: ``[4H]``.
    """

    w_ih: np.ndarray
    w_hh: np.ndarray
    bias: np.ndarray

    @property
    def hidden_size(self) -> int:
        return self.w_hh.shape[0]

    @staticmethod
    def init(f_in: int, hidden: int, seed: int = 0) -> "LSTMParams":
        rng = np.random.default_rng(seed)
        scale = 1.0 / np.sqrt(max(hidden, 1))
        return LSTMParams(
            w_ih=(rng.standard_normal((f_in, 4 * hidden)) * scale).astype(
                np.float32
            ),
            w_hh=(rng.standard_normal((hidden, 4 * hidden)) * scale).astype(
                np.float32
            ),
            bias=np.zeros(4 * hidden, dtype=np.float32),
        )


def _gates(pre: np.ndarray, h_prev: np.ndarray, c_prev: np.ndarray,
           params: LSTMParams):
    """Shared element-wise tail of the cell given pre-activation inputs."""
    hidden = params.hidden_size
    z = pre + h_prev @ params.w_hh + params.bias
    i = sigmoid(z[:, :hidden])
    f = sigmoid(z[:, hidden : 2 * hidden])
    g = tanh(z[:, 2 * hidden : 3 * hidden])
    o = sigmoid(z[:, 3 * hidden :])
    c = f * c_prev + i * g
    h = o * tanh(c)
    return h.astype(np.float32), c.astype(np.float32)


def lstm_cell(x, h_prev, c_prev, params: LSTMParams):
    """One LSTM step: transform ``x`` then apply the gate equations."""
    return _gates(x @ params.w_ih, h_prev, c_prev, params)


def lstm_cell_pre(x_pre, h_prev, c_prev, params: LSTMParams):
    """One LSTM step on *pre-transformed* input (``x @ w_ih`` done ahead)."""
    return _gates(x_pre, h_prev, c_prev, params)


def lstm_over_expanded(
    neighbor_feat: np.ndarray, params: LSTMParams
) -> np.ndarray:
    """Run the LSTM over an expanded ``[N, k, F]`` neighbor tensor.

    Every cell ``t`` transforms ``neighbor_feat[:, t, :]`` with ``w_ih`` —
    the O(E)-transformation redundancy the paper's Observation 4 measures.
    Returns the final hidden state ``[N, H]``.
    """
    n, k, _ = neighbor_feat.shape
    hidden = params.hidden_size
    h = np.zeros((n, hidden), dtype=np.float32)
    c = np.zeros((n, hidden), dtype=np.float32)
    for t in range(k):
        h, c = lstm_cell(neighbor_feat[:, t, :], h, c, params)
    return h


def lstm_pretransformed(
    feat: np.ndarray, neighbor_index: np.ndarray, params: LSTMParams
) -> np.ndarray:
    """Sparse-fetching + redundancy-bypassing execution (paper §4.3).

    ``feat`` is the ``[N, F]`` node feature matrix, ``neighbor_index`` is
    ``int[N, k]`` (the sampled neighbors of each center).  The input
    transformation is applied **once** to the O(N) feature matrix; each
    cell then gathers (sparse-fetches) the pre-transformed rows it needs.
    """
    pre = (feat @ params.w_ih).astype(np.float32)
    n, k = neighbor_index.shape
    hidden = params.hidden_size
    h = np.zeros((n, hidden), dtype=np.float32)
    c = np.zeros((n, hidden), dtype=np.float32)
    for t in range(k):
        h, c = lstm_cell_pre(pre[neighbor_index[:, t]], h, c, params)
    return h


def lstm_cell_flops(rows: int, f_in: int, hidden: int,
                    include_input_transform: bool = True) -> int:
    """FLOPs of one LSTM cell over ``rows`` sequences."""
    flops = 2 * rows * hidden * 4 * hidden  # recurrent matmul
    if include_input_transform:
        flops += 2 * rows * f_in * 4 * hidden
    flops += rows * hidden * 9  # element-wise gate math
    return flops
