"""Our optimized runtime: all four optimizations of the paper assembled.

* **Neighbor grouping** (online) — bounded-size neighbor partitions with
  atomic partial reductions; the bound comes from the tuner's multi-round
  online search (§4.4) unless overridden.
* **Locality-aware task scheduling** (offline, optional) — MinHash+LSH
  clustering reorders block issue so similar centers run adjacently.
* **Data visible range adapter** (+ linear property) — fuses each
  layer's op chain into the minimal kernel set.
* **Sparse fetching + redundancy bypassing** — GraphSAGE-LSTM runs
  without expansion, with the input transformation hoisted to O(N).
* **Tuning** — feature-lane selection and packed row accesses adapt the
  mapping to the feature length (Fig. 12).

Every switch is independently controllable through :class:`OursOptions`
so the ablation benchmarks (Figs. 8–11, Table 6) can toggle exactly one
mechanism at a time.  Offline analyses (scheduling) and online analyses
(grouping/tuning) are cached per graph, mirroring the paper's
amortization argument.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..analysis.driver import verify_lowering
from ..core.adapter import plan_fusion
from ..core.compgraph import gat_attention_ops, gcn_layer_ops
from ..core.grouping import identity_grouping, neighbor_grouping
from ..core.lowering import (
    ExecLayout,
    gemm_kernel,
    lower_plan,
    node_map_kernel,
)
from ..core.scheduling import locality_aware_schedule
from ..core.sparse_fetch import SageStrategy, lower_sage_lstm
from ..core.tuner import _cached_grouping, pick_lanes, tune
from ..gpusim.config import GPUConfig
from ..gpusim.executor import simulate_kernels
from ..gpusim.kernel import KernelSpec
from ..gpusim.memory import DeviceMemory
from ..graph.csr import CSRGraph
from ..models.gat import GATConfig, gat_reference_forward
from ..models.gcn import GCNConfig, gcn_reference_forward
from ..models.sage_lstm import SageLSTMConfig, sage_lstm_reference_forward
from .base import ForwardResult, Framework, make_features

__all__ = ["OursOptions", "OursRuntime"]


@dataclasses.dataclass(frozen=True)
class OursOptions:
    """Feature switches for ablations; all on by default."""

    neighbor_grouping: bool = True
    locality_scheduling: bool = True
    adapter: bool = True
    linear_property: bool = True
    sparse_fetch: bool = True
    redundancy_bypass: bool = True
    tuned: bool = True
    ng_bound: Optional[int] = None  # fixed bound instead of tuning
    #: Opt-in static verification: run the four analysis passes
    #: (legality, linearity, atomics, conservation) over every plan this
    #: runtime lowers and raise :class:`PlanVerificationError` on any
    #: error finding.  Off by default — verification is pure overhead on
    #: a known-good pipeline; the benchmark harness enables it under
    #: ``REPRO_VERIFY_PLANS=1``.
    verify_plans: bool = False

    @property
    def sage_strategy(self) -> SageStrategy:
        if self.redundancy_bypass:
            return SageStrategy.REDUNDANCY_BYPASS
        if self.sparse_fetch:
            return SageStrategy.SPARSE_FETCH
        return SageStrategy.BASE


class OursRuntime(Framework):
    """Our runtime is wrapped in PyTorch (paper §5): each kernel pays the
    same per-op dispatch as the baselines — the win comes from launching
    *fewer*, fused kernels, not cheaper launches."""

    name = "ours"

    def __init__(
        self,
        options: OursOptions = OursOptions(),
        schedule_fn=None,
    ) -> None:
        """``schedule_fn(graph) -> ScheduleResult`` overrides how the
        offline analysis is computed (benchmarks inject a process-wide
        cache through this hook)."""
        self.options = options
        self._schedule_fn = schedule_fn or locality_aware_schedule
        self._schedule_cache: Dict[str, np.ndarray] = {}
        self._tune_cache: Dict[Tuple[str, int], Optional[int]] = {}

    # ------------------------------------------------------------------
    # Analysis caches
    # ------------------------------------------------------------------
    def center_order(self, graph: CSRGraph) -> Optional[np.ndarray]:
        """Offline locality-aware order, cached per graph."""
        if not self.options.locality_scheduling:
            return None
        key = graph.fingerprint
        if key not in self._schedule_cache:
            self._schedule_cache[key] = self._schedule_fn(graph).order
        return self._schedule_cache[key]

    def ng_bound(
        self, graph: CSRGraph, feat_len: int, sim: GPUConfig
    ) -> Optional[int]:
        """Online-tuned grouping bound, cached per (graph, feat_len)."""
        if not self.options.neighbor_grouping:
            return None
        if self.options.ng_bound is not None:
            return self.options.ng_bound
        if not self.options.tuned:
            # Untuned default: one warp's worth of neighbors.
            return 32
        key = (graph.fingerprint, feat_len)
        if key not in self._tune_cache:
            # May be None: the tuner found grouping unprofitable (e.g. on
            # low-variance graphs like protein, where Fig. 8 shows NG
            # overhead outweighing its benefit).
            self._tune_cache[key] = tune(graph, feat_len, sim).bound
        return self._tune_cache[key]

    def layout(
        self, graph: CSRGraph, feat_len: int, sim: GPUConfig
    ) -> ExecLayout:
        bound = self.ng_bound(graph, feat_len, sim)
        grouping = (
            _cached_grouping(graph, bound)
            if bound is not None
            else identity_grouping(graph)
        )
        return ExecLayout(
            grouping=grouping,
            center_order=self.center_order(graph),
            lanes=pick_lanes(feat_len) if self.options.tuned else 32,
            packed_rows=self.options.tuned,
        )

    # ------------------------------------------------------------------
    # GCN
    # ------------------------------------------------------------------
    def run_gcn(self, graph, model: GCNConfig, sim: GPUConfig, *,
                compute=False, feat=None, seed=0) -> ForwardResult:
        opts = self.options
        mem = DeviceMemory(sim.device_mem_bytes)
        dims = model.dims
        n = graph.num_nodes
        mem.alloc_tensor("graph", graph.num_edges + n)
        mem.alloc_tensor("h0", n, dims[0])
        kernels: List[KernelSpec] = []
        for li in range(model.num_layers):
            f_in, f_out = dims[li], dims[li + 1]
            layout = self.layout(graph, f_out, sim)
            grouped = bool(layout.grouping.needs_atomic.any())
            ops = gcn_layer_ops()
            plan = plan_fusion(
                ops,
                allow_adapter=opts.adapter,
                allow_linear=opts.linear_property,
                grouped=grouped,
            )
            mem.alloc_tensor(f"hw{li}", n, f_out)
            kernels.append(
                gemm_kernel(n, f_in, f_out, sim, name=f"gcn{li}.gemm")
            )
            mem.alloc_tensor(f"h{li + 1}", n, f_out)
            layer_kernels = lower_plan(plan, graph, f_out, sim, layout,
                                       prefix=f"gcn{li}.")
            if opts.verify_plans:
                verify_lowering(
                    ops, plan, layer_kernels, graph, f_out, sim, layout,
                    grouped=grouped, label=f"ours:gcn{li}:{graph.name}",
                    check_linearity=(li == 0),
                ).raise_on_errors()
            kernels.extend(layer_kernels)
            if li < model.num_layers - 1:
                kernels.append(
                    node_map_kernel(n, f_out, sim, name=f"gcn{li}.relu")
                )
            mem.free(f"hw{li}")
            mem.free(f"h{li}" if li else "h0")
        report = simulate_kernels(
            kernels, sim, dispatch_overhead=self.dispatch_overhead,
            label=f"{self.name}:gcn:{graph.name}",
            peak_mem_bytes=mem.peak,
        )
        output = None
        if compute:
            feat = feat if feat is not None else make_features(
                graph, dims[0], seed
            )
            output = gcn_reference_forward(graph, feat, model.params(seed))
        return ForwardResult(report, output)

    # ------------------------------------------------------------------
    # GAT
    # ------------------------------------------------------------------
    def run_gat(self, graph, model: GATConfig, sim: GPUConfig, *,
                compute=False, feat=None, seed=0) -> ForwardResult:
        opts = self.options
        mem = DeviceMemory(sim.device_mem_bytes)
        dims = model.dims
        n, e = graph.num_nodes, graph.num_edges
        mem.alloc_tensor("graph", e + n)
        mem.alloc_tensor("h0", n, dims[0])
        kernels: List[KernelSpec] = []
        for li in range(model.num_layers):
            f_in, f_out = dims[li], dims[li + 1]
            layout = self.layout(graph, f_out, sim)
            grouped = bool(layout.grouping.needs_atomic.any())
            ops = gat_attention_ops()
            plan = plan_fusion(
                ops,
                allow_adapter=opts.adapter,
                allow_linear=opts.linear_property,
                grouped=grouped,
            )
            mem.alloc_tensor(f"hw{li}", n, f_out)
            mem.alloc_tensor(f"att{li}", n, 2)
            # One per-edge scratch tensor survives fusion (the unnormalized
            # exp weights), vs. DGL's three.
            mem.alloc_tensor(f"edge{li}", e, 1)
            kernels.append(
                gemm_kernel(n, f_in, f_out, sim, name=f"gat{li}.gemm_w")
            )
            kernels.append(
                gemm_kernel(n, f_out, 2, sim, name=f"gat{li}.gemm_att")
            )
            mem.alloc_tensor(f"h{li + 1}", n, f_out)
            layer_kernels = lower_plan(plan, graph, f_out, sim, layout,
                                       prefix=f"gat{li}.")
            if opts.verify_plans:
                verify_lowering(
                    ops, plan, layer_kernels, graph, f_out, sim, layout,
                    grouped=grouped, label=f"ours:gat{li}:{graph.name}",
                    check_linearity=(li == 0),
                ).raise_on_errors()
            kernels.extend(layer_kernels)
            if li < model.num_layers - 1:
                kernels.append(
                    node_map_kernel(n, f_out, sim, name=f"gat{li}.relu")
                )
            for t in (f"hw{li}", f"att{li}", f"edge{li}"):
                mem.free(t)
            mem.free(f"h{li}" if li else "h0")
        report = simulate_kernels(
            kernels, sim, dispatch_overhead=self.dispatch_overhead,
            label=f"{self.name}:gat:{graph.name}",
            peak_mem_bytes=mem.peak,
        )
        output = None
        if compute:
            feat = feat if feat is not None else make_features(
                graph, dims[0], seed
            )
            output = gat_reference_forward(
                graph, feat, model.params(seed), model.negative_slope
            )
        return ForwardResult(report, output)

    # ------------------------------------------------------------------
    # GraphSAGE-LSTM
    # ------------------------------------------------------------------
    def run_sage_lstm(self, graph, model: SageLSTMConfig, sim: GPUConfig, *,
                      compute=False, feat=None, seed=0) -> ForwardResult:
        opts = self.options
        strategy = opts.sage_strategy
        mem = DeviceMemory(sim.device_mem_bytes)
        n = graph.num_nodes
        mem.alloc_tensor("graph", graph.num_edges + n)
        mem.alloc_tensor("h0", n, model.f_in)
        if strategy == SageStrategy.BASE:
            mem.alloc_tensor("expanded", n, model.num_neighbors, model.f_in)
        elif strategy == SageStrategy.REDUNDANCY_BYPASS:
            mem.alloc_tensor("pretransformed", n, 4 * model.hidden)
        mem.alloc_tensor("state", n, 2 * model.hidden)
        kernels, phases = lower_sage_lstm(
            graph, model.f_in, model.hidden, model.num_neighbors, sim,
            strategy, seed=model.sample_seed,
        )
        kernels = list(kernels)
        mem.alloc_tensor("out", n, model.f_out)
        kernels.append(
            gemm_kernel(n, model.f_in + model.hidden, model.f_out, sim,
                        name="sage.project")
        )
        report = simulate_kernels(
            kernels, sim, dispatch_overhead=self.dispatch_overhead,
            label=f"{self.name}:sage_lstm:{graph.name}",
            peak_mem_bytes=mem.peak,
        )
        report.extra["sage_phases"] = phases
        output = None
        if compute:
            feat = feat if feat is not None else make_features(
                graph, model.f_in, seed
            )
            output = sage_lstm_reference_forward(
                graph, feat, model.params(seed), model, strategy=strategy
            )
        return ForwardResult(report, output)
