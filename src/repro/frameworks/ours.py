"""Our optimized runtime: all four optimizations of the paper assembled.

* **Neighbor grouping** (online) — bounded-size neighbor partitions with
  atomic partial reductions; the bound comes from the tuner's multi-round
  online search (§4.4) unless overridden.
* **Locality-aware task scheduling** (offline, optional) — MinHash+LSH
  clustering reorders block issue so similar centers run adjacently.
* **Data visible range adapter** (+ linear property) — fuses each
  layer's op chain into the minimal kernel set.
* **Sparse fetching + redundancy bypassing** — GraphSAGE-LSTM runs
  without expansion, with the input transformation hoisted to O(N).
* **Tuning** — feature-lane selection and packed row accesses adapt the
  mapping to the feature length (Fig. 12).

Every switch is independently controllable through :class:`OursOptions`
so the ablation benchmarks (Figs. 8–11, Table 6) can toggle exactly one
mechanism at a time.  Compilation runs through the staged pipeline
(``trace -> schedule -> group -> adapt -> lower -> tune``) into a
content-addressed :class:`~repro.core.plan.CompiledPlan`; offline
analyses (scheduling) and online analyses (grouping/tuning) are
additionally cached per graph, mirroring the paper's amortization
argument.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

import numpy as np

from ..analysis.driver import verify_lowering
from ..core.adapter import plan_fusion
from ..core.compgraph import gat_attention_ops, gcn_layer_ops
from ..core.grouping import identity_grouping
from ..core.lowering import (
    ExecLayout,
    gemm_kernel,
    lower_plan,
    node_map_kernel,
)
from ..core.plan import CompiledPlan
from ..core.scheduling import locality_aware_schedule
from ..core.sparse_fetch import SageStrategy, lower_sage_lstm
from ..core.tuner import _cached_grouping, pick_lanes, tune
from ..gpusim.config import GPUConfig
from ..gpusim.memory import DeviceMemory
from ..graph.csr import CSRGraph
from ..models.gat import GATConfig
from ..models.gcn import GCNConfig
from ..models.sage_lstm import SageLSTMConfig
from .base import Framework

__all__ = ["OursOptions", "OursRuntime"]


@dataclasses.dataclass(frozen=True)
class OursOptions:
    """Feature switches for ablations; all on by default."""

    neighbor_grouping: bool = True
    locality_scheduling: bool = True
    adapter: bool = True
    linear_property: bool = True
    sparse_fetch: bool = True
    redundancy_bypass: bool = True
    tuned: bool = True
    ng_bound: Optional[int] = None  # fixed bound instead of tuning
    #: Opt-in static verification: run the four analysis passes
    #: (legality, linearity, atomics, conservation) over every plan this
    #: runtime lowers and raise :class:`PlanVerificationError` on any
    #: error finding.  Off by default — verification is pure overhead on
    #: a known-good pipeline; the benchmark harness enables it under
    #: ``REPRO_VERIFY_PLANS=1``.
    verify_plans: bool = False

    @property
    def sage_strategy(self) -> SageStrategy:
        if self.redundancy_bypass:
            return SageStrategy.REDUNDANCY_BYPASS
        if self.sparse_fetch:
            return SageStrategy.SPARSE_FETCH
        return SageStrategy.BASE


class OursRuntime(Framework):
    """Our runtime is wrapped in PyTorch (paper §5): each kernel pays the
    same per-op dispatch as the baselines — the win comes from launching
    *fewer*, fused kernels, not cheaper launches."""

    name = "ours"

    def __init__(
        self,
        options: Optional[OursOptions] = None,
        schedule_fn=None,
    ) -> None:
        """``schedule_fn(graph) -> ScheduleResult`` overrides how the
        offline analysis is computed (benchmarks inject a process-wide
        cache through this hook).  An injected function must declare
        ``plan_cache_safe = True`` to keep this instance's plans in the
        global content-addressed cache; otherwise the cache is bypassed,
        since the plan key cannot see the custom behaviour."""
        self.options = options if options is not None else OursOptions()
        self._schedule_fn = schedule_fn or locality_aware_schedule
        self._plan_cache_safe = schedule_fn is None or bool(
            getattr(schedule_fn, "plan_cache_safe", False)
        )
        self._schedule_cache: Dict[str, np.ndarray] = {}
        self._tune_cache: Dict[Tuple[str, int], Optional[int]] = {}

    # ------------------------------------------------------------------
    # Plan-cache plumbing
    # ------------------------------------------------------------------
    def plan_options(self) -> Dict[str, object]:
        return dataclasses.asdict(self.options)

    def plan_cache_enabled(self) -> bool:
        return self._plan_cache_safe

    def sage_strategy(self) -> SageStrategy:
        return self.options.sage_strategy

    # ------------------------------------------------------------------
    # Analysis caches
    # ------------------------------------------------------------------
    def center_order(self, graph: CSRGraph) -> Optional[np.ndarray]:
        """Offline locality-aware order, cached per graph."""
        if not self.options.locality_scheduling:
            return None
        key = graph.fingerprint
        if key not in self._schedule_cache:
            self._schedule_cache[key] = self._schedule_fn(graph).order
        return self._schedule_cache[key]

    def ng_bound(
        self, graph: CSRGraph, feat_len: int, sim: GPUConfig
    ) -> Optional[int]:
        """Online-tuned grouping bound, cached per (graph, feat_len)."""
        if not self.options.neighbor_grouping:
            return None
        if self.options.ng_bound is not None:
            return self.options.ng_bound
        if not self.options.tuned:
            # Untuned default: one warp's worth of neighbors.
            return 32
        key = (graph.fingerprint, feat_len)
        if key not in self._tune_cache:
            # May be None: the tuner found grouping unprofitable (e.g. on
            # low-variance graphs like protein, where Fig. 8 shows NG
            # overhead outweighing its benefit).
            self._tune_cache[key] = tune(graph, feat_len, sim).bound
        return self._tune_cache[key]

    def layout(
        self, graph: CSRGraph, feat_len: int, sim: GPUConfig
    ) -> ExecLayout:
        bound = self.ng_bound(graph, feat_len, sim)
        grouping = (
            _cached_grouping(graph, bound)
            if bound is not None
            else identity_grouping(graph)
        )
        return ExecLayout(
            grouping=grouping,
            center_order=self.center_order(graph),
            lanes=pick_lanes(feat_len) if self.options.tuned else 32,
            packed_rows=self.options.tuned,
        )

    # ------------------------------------------------------------------
    # GCN
    # ------------------------------------------------------------------
    def compile_gcn(self, graph, model: GCNConfig,
                    sim: GPUConfig) -> CompiledPlan:
        opts = self.options
        b = self.builder("gcn", graph, model, sim)
        mem = DeviceMemory(sim.device_mem_bytes)
        dims = model.dims
        n = graph.num_nodes
        mem.alloc_tensor("graph", graph.num_edges + n)
        mem.alloc_tensor("h0", n, dims[0])
        for li in range(model.num_layers):
            f_in, f_out = dims[li], dims[li + 1]
            with b.stage("schedule"):
                self.center_order(graph)
            with b.stage("tune"):
                self.ng_bound(graph, f_out, sim)
            with b.stage("group"):
                layout = self.layout(graph, f_out, sim)
                grouped = bool(layout.grouping.needs_atomic.any())
            with b.stage("trace"):
                ops = gcn_layer_ops()
            with b.stage("adapt"):
                plan = plan_fusion(
                    ops,
                    allow_adapter=opts.adapter,
                    allow_linear=opts.linear_property,
                    grouped=grouped,
                )
            mem.alloc_tensor(f"hw{li}", n, f_out)
            mem.alloc_tensor(f"h{li + 1}", n, f_out)
            with b.stage("lower"):
                gemm = gemm_kernel(n, f_in, f_out, sim,
                                   name=f"gcn{li}.gemm")
                layer_kernels = lower_plan(plan, graph, f_out, sim, layout,
                                           prefix=f"gcn{li}.")
            if opts.verify_plans:
                verify_lowering(
                    ops, plan, layer_kernels, graph, f_out, sim, layout,
                    grouped=grouped, label=f"ours:gcn{li}:{graph.name}",
                    check_linearity=(li == 0),
                ).raise_on_errors()
            b.add(gemm)
            b.add_layer(
                layer_kernels, label=f"gcn{li}", chain="gcn",
                feat_len=f_out, layout=layout, grouped=grouped, fusion=plan,
            )
            if li < model.num_layers - 1:
                b.add(node_map_kernel(n, f_out, sim, name=f"gcn{li}.relu"))
            mem.free(f"hw{li}")
            mem.free(f"h{li}" if li else "h0")
        return b.build(peak_mem_bytes=mem.peak)

    # ------------------------------------------------------------------
    # GAT
    # ------------------------------------------------------------------
    def compile_gat(self, graph, model: GATConfig,
                    sim: GPUConfig) -> CompiledPlan:
        opts = self.options
        b = self.builder("gat", graph, model, sim)
        mem = DeviceMemory(sim.device_mem_bytes)
        dims = model.dims
        n, e = graph.num_nodes, graph.num_edges
        mem.alloc_tensor("graph", e + n)
        mem.alloc_tensor("h0", n, dims[0])
        for li in range(model.num_layers):
            f_in, f_out = dims[li], dims[li + 1]
            with b.stage("schedule"):
                self.center_order(graph)
            with b.stage("tune"):
                self.ng_bound(graph, f_out, sim)
            with b.stage("group"):
                layout = self.layout(graph, f_out, sim)
                grouped = bool(layout.grouping.needs_atomic.any())
            with b.stage("trace"):
                ops = gat_attention_ops()
            with b.stage("adapt"):
                plan = plan_fusion(
                    ops,
                    allow_adapter=opts.adapter,
                    allow_linear=opts.linear_property,
                    grouped=grouped,
                )
            mem.alloc_tensor(f"hw{li}", n, f_out)
            mem.alloc_tensor(f"att{li}", n, 2)
            # One per-edge scratch tensor survives fusion (the unnormalized
            # exp weights), vs. DGL's three.
            mem.alloc_tensor(f"edge{li}", e, 1)
            mem.alloc_tensor(f"h{li + 1}", n, f_out)
            with b.stage("lower"):
                gemm_w = gemm_kernel(n, f_in, f_out, sim,
                                     name=f"gat{li}.gemm_w")
                gemm_att = gemm_kernel(n, f_out, 2, sim,
                                       name=f"gat{li}.gemm_att")
                layer_kernels = lower_plan(plan, graph, f_out, sim, layout,
                                           prefix=f"gat{li}.")
            if opts.verify_plans:
                verify_lowering(
                    ops, plan, layer_kernels, graph, f_out, sim, layout,
                    grouped=grouped, label=f"ours:gat{li}:{graph.name}",
                    check_linearity=(li == 0),
                ).raise_on_errors()
            b.add(gemm_w, gemm_att)
            b.add_layer(
                layer_kernels, label=f"gat{li}", chain="gat",
                feat_len=f_out, layout=layout, grouped=grouped, fusion=plan,
            )
            if li < model.num_layers - 1:
                b.add(node_map_kernel(n, f_out, sim, name=f"gat{li}.relu"))
            for t in (f"hw{li}", f"att{li}", f"edge{li}"):
                mem.free(t)
            mem.free(f"h{li}" if li else "h0")
        return b.build(peak_mem_bytes=mem.peak)

    # ------------------------------------------------------------------
    # GraphSAGE-LSTM
    # ------------------------------------------------------------------
    def compile_sage_lstm(self, graph, model: SageLSTMConfig,
                          sim: GPUConfig) -> CompiledPlan:
        strategy = self.options.sage_strategy
        b = self.builder("sage_lstm", graph, model, sim)
        mem = DeviceMemory(sim.device_mem_bytes)
        n = graph.num_nodes
        mem.alloc_tensor("graph", graph.num_edges + n)
        mem.alloc_tensor("h0", n, model.f_in)
        if strategy == SageStrategy.BASE:
            mem.alloc_tensor("expanded", n, model.num_neighbors, model.f_in)
        elif strategy == SageStrategy.REDUNDANCY_BYPASS:
            mem.alloc_tensor("pretransformed", n, 4 * model.hidden)
        mem.alloc_tensor("state", n, 2 * model.hidden)
        with b.stage("trace"):
            pass  # the SAGE chain is fixed; sampling happens in lowering
        with b.stage("lower"):
            kernels, phases = lower_sage_lstm(
                graph, model.f_in, model.hidden, model.num_neighbors, sim,
                strategy, seed=model.sample_seed,
            )
            b.add(*kernels)
            mem.alloc_tensor("out", n, model.f_out)
            b.add(gemm_kernel(n, model.f_in + model.hidden, model.f_out,
                              sim, name="sage.project"))
        return b.build(
            peak_mem_bytes=mem.peak, extra={"sage_phases": phases}
        )
