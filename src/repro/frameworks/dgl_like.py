"""DGL-style execution (the paper's primary baseline).

Lowering strategy, per the paper's §3 analysis:

* **node-wise parallelization** — one task per center node over CSR
  (Fig. 2 bottom); cuSPARSE handles SUM reductions (Fig. 3's
  "w/ cuSPARSE" marks), everything else is a hand-rolled
  center-neighbor kernel.  Tasks are issued in node order — no locality
  scheduling, no grouping (Observations 1 and 2).
* **one kernel per computation-graph operation** — a GAT layer runs the
  seven kernels of Listing 1 (Observation 3).
* **expand-then-transform** for center-neighbor neural ops — the
  GraphSAGE-LSTM expansion + per-cell transformation of Table 5
  (Observation 4).
* **no feature-length adaptation** (Observation 5): fixed warp-per-row
  mapping, rows padded to cache lines.
"""

from __future__ import annotations

from ..core.compgraph import gat_attention_ops, gcn_layer_ops, unfused_plan
from ..core.lowering import (
    ExecLayout,
    gemm_kernel,
    lower_plan,
    node_map_kernel,
)
from ..core.plan import CompiledPlan
from ..core.sparse_fetch import SageStrategy, lower_sage_lstm
from ..gpusim.config import GPUConfig
from ..gpusim.memory import DeviceMemory
from ..models.gat import GATConfig
from ..models.gcn import GCNConfig
from ..models.sage_lstm import SageLSTMConfig
from .base import Framework

__all__ = ["DGLLike"]


#: DGL 0.4.3's u_mul_e aggregation is a hand-rolled center-neighbor
#: kernel (not cuSPARSE): a center's deg x F element loop runs on far
#: fewer lanes than the tuned SUM path, serializing most of the work —
#: this is what makes the paper's DGL-GAT times on high-degree datasets
#: (protein/reddit) 20x+ worse than GCN's cuSPARSE path.
_GAT_AGG_SERIALIZATION = 64.0
#: The same per-element loop loads each 4 B feature element as its own
#: 32 B memory sector: an 8x traffic inflation vs. coalesced warp loads.
_GAT_AGG_UNCOALESCED = 8.0


class DGLLike(Framework):
    name = "dgl"

    # ------------------------------------------------------------------
    # GCN
    # ------------------------------------------------------------------
    def compile_gcn(self, graph, model: GCNConfig,
                    sim: GPUConfig) -> CompiledPlan:
        b = self.builder("gcn", graph, model, sim)
        mem = DeviceMemory(sim.device_mem_bytes)
        dims = model.dims
        n = graph.num_nodes
        mem.alloc_tensor("graph", graph.num_edges + n)  # CSR (int32/64)
        mem.alloc_tensor("h0", n, dims[0])
        with b.stage("group"):
            layout = ExecLayout.default(graph)
        with b.stage("trace"):
            ops = gcn_layer_ops()
        with b.stage("adapt"):
            plan = unfused_plan(ops)  # one kernel per op (Observation 3)
        for li in range(model.num_layers):
            f_in, f_out = dims[li], dims[li + 1]
            mem.alloc_tensor(f"hw{li}", n, f_out)
            mem.alloc_tensor(f"h{li + 1}", n, f_out)
            with b.stage("lower"):
                b.add(
                    gemm_kernel(n, f_in, f_out, sim, name=f"gcn{li}.gemm"),
                )
                layer_kernels = lower_plan(
                    plan, graph, f_out, sim, layout, prefix=f"gcn{li}.",
                )
                for k in layer_kernels:
                    if k.name.endswith(".aggregate"):
                        k.tag = "cusparse"  # SUM reducer path
            b.add_layer(
                layer_kernels, label=f"gcn{li}", chain="gcn",
                feat_len=f_out, layout=layout, grouped=False, fusion=plan,
            )
            with b.stage("lower"):
                if li < model.num_layers - 1:
                    b.add(node_map_kernel(n, f_out, sim,
                                          name=f"gcn{li}.relu"))
            mem.free(f"hw{li}")
            mem.free(f"h{li}" if li else "h0")
        return b.build(peak_mem_bytes=mem.peak)

    # ------------------------------------------------------------------
    # GAT — the seven kernels of Listing 1, per layer
    # ------------------------------------------------------------------
    def compile_gat(self, graph, model: GATConfig,
                    sim: GPUConfig) -> CompiledPlan:
        b = self.builder("gat", graph, model, sim)
        mem = DeviceMemory(sim.device_mem_bytes)
        dims = model.dims
        n, e = graph.num_nodes, graph.num_edges
        mem.alloc_tensor("graph", e + n)
        mem.alloc_tensor("h0", n, dims[0])
        with b.stage("group"):
            layout = ExecLayout.default(graph)
        with b.stage("trace"):
            ops = gat_attention_ops()
        with b.stage("adapt"):
            plan = unfused_plan(ops)  # no fusion: one kernel per op
        for li in range(model.num_layers):
            f_in, f_out = dims[li], dims[li + 1]
            mem.alloc_tensor(f"hw{li}", n, f_out)
            mem.alloc_tensor(f"att{li}", n, 2)
            # Per-edge attention scratch: DGL materializes e, exp(e) and
            # the normalized weights as separate [E, 1] tensors.
            mem.alloc_tensor(f"edge{li}", e, 3)
            mem.alloc_tensor(f"h{li + 1}", n, f_out)
            with b.stage("lower"):
                b.add(
                    gemm_kernel(n, f_in, f_out, sim,
                                name=f"gat{li}.gemm_w"),
                    gemm_kernel(n, f_out, 2, sim,
                                name=f"gat{li}.gemm_att"),
                )
                layer_kernels = lower_plan(
                    plan, graph, f_out, sim, layout, prefix=f"gat{li}.",
                    agg_compute_scale=_GAT_AGG_SERIALIZATION,
                    agg_uncoalesced=_GAT_AGG_UNCOALESCED,
                )
            b.add_layer(
                layer_kernels, label=f"gat{li}", chain="gat",
                feat_len=f_out, layout=layout, grouped=False, fusion=plan,
                agg_compute_scale=_GAT_AGG_SERIALIZATION,
                agg_uncoalesced=_GAT_AGG_UNCOALESCED,
            )
            if li < model.num_layers - 1:
                b.add(node_map_kernel(n, f_out, sim, name=f"gat{li}.relu"))
            mem.free(f"hw{li}")
            mem.free(f"att{li}")
            mem.free(f"edge{li}")
            mem.free(f"h{li}" if li else "h0")
        return b.build(peak_mem_bytes=mem.peak)

    # ------------------------------------------------------------------
    # GraphSAGE-LSTM — expansion then per-cell transformation
    # ------------------------------------------------------------------
    def compile_sage_lstm(self, graph, model: SageLSTMConfig,
                          sim: GPUConfig) -> CompiledPlan:
        b = self.builder("sage_lstm", graph, model, sim)
        mem = DeviceMemory(sim.device_mem_bytes)
        n = graph.num_nodes
        mem.alloc_tensor("graph", graph.num_edges + n)
        mem.alloc_tensor("h0", n, model.f_in)
        # The [N, k, F] expanded neighbor tensor (Observation 4).
        mem.alloc_tensor("expanded", n, model.num_neighbors, model.f_in)
        mem.alloc_tensor("state", n, 2 * model.hidden)
        with b.stage("lower"):
            kernels, phases = lower_sage_lstm(
                graph, model.f_in, model.hidden, model.num_neighbors, sim,
                SageStrategy.BASE, seed=model.sample_seed,
            )
            b.add(*kernels)
            mem.alloc_tensor("out", n, model.f_out)
            b.add(gemm_kernel(n, model.f_in + model.hidden, model.f_out,
                              sim, name="sage.project"))
        return b.build(
            peak_mem_bytes=mem.peak, extra={"sage_phases": phases}
        )
