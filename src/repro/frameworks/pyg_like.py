"""PyTorch-Geometric-style execution (edge-wise parallelization).

Per the paper's §3 analysis of PyG 1.5:

* graph operations run **edge-wise** over an edge list (Fig. 2 top):
  step 1 *index-selects* source features into a dense ``[E, F]`` message
  matrix, step 2 scatter-reduces it into centers — two kernels, with
  memory consumption linear in E (the OOM cells of Fig. 7);
* load balance is good (edge granularity) but the duplication cost and
  expanded-intermediate traffic dominate (Observation 1);
* GAT keeps both the expanded source features and the scaled messages
  alive (plus per-edge attention scratch), roughly doubling the
  E-proportional footprint — which is why PyG OOMs on more datasets for
  GAT than for GCN in Fig. 7;
* GraphSAGE-LSTM is not implemented (the '×' cells of Fig. 7c).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.lowering import (
    edge_chain_kernel,
    edge_expansion_kernel,
    edge_gather_kernel,
    gemm_kernel,
    node_map_kernel,
    scalar_segment_reduce_kernel,
    scatter_reduce_kernel,
)
from ..core.plan import CompiledPlan
from ..gpusim.config import GPUConfig
from ..gpusim.memory import DeviceMemory
from ..graph.csr import CSRGraph
from ..models.gat import GATConfig
from ..models.gcn import GCNConfig, gcn_norms
from ..models.sage_lstm import SageLSTMConfig
from ..ops.graphops import gather_src, segment_softmax, segment_sum
from ..ops.nnops import leaky_relu, relu
from .base import Framework, NotSupported, make_features

__all__ = ["PyGLike"]


class PyGLike(Framework):
    name = "pyg"

    # ------------------------------------------------------------------
    def compile_gcn(self, graph, model: GCNConfig,
                    sim: GPUConfig) -> CompiledPlan:
        b = self.builder("gcn", graph, model, sim)
        mem = DeviceMemory(sim.device_mem_bytes)
        dims = model.dims
        n, e = graph.num_nodes, graph.num_edges
        mem.alloc_tensor("edge_index", 2 * e)  # COO edge list
        mem.alloc_tensor("h0", n, dims[0])
        for li in range(model.num_layers):
            f_in, f_out = dims[li], dims[li + 1]
            mem.alloc_tensor(f"hw{li}", n, f_out)
            with b.stage("lower"):
                b.add(gemm_kernel(n, f_in, f_out, sim,
                                  name=f"gcn{li}.gemm"))
                # Step 1: expansion — THE footprint (freed post-scatter).
                mem.alloc_tensor(f"msg{li}", e, f_out)
                b.add(edge_expansion_kernel(
                    graph, f_out, sim, name=f"gcn{li}.expand"
                ))
                # Per-edge norm multiply over the expanded matrix.
                b.add(edge_chain_kernel(
                    graph, sim, name=f"gcn{li}.edge_norm",
                    reads_per_edge=4.0 * f_out + 4.0,
                    writes_per_edge=4.0 * f_out,
                    flops_per_edge=float(f_out),
                ))
                # Step 2: scatter reduction.
                mem.alloc_tensor(f"h{li + 1}", n, f_out)
                b.add(scatter_reduce_kernel(
                    graph, f_out, sim, name=f"gcn{li}.scatter"
                ))
                if li < model.num_layers - 1:
                    b.add(node_map_kernel(n, f_out, sim,
                                          name=f"gcn{li}.relu"))
            mem.free(f"msg{li}")
            mem.free(f"hw{li}")
            mem.free(f"h{li}" if li else "h0")
        return b.build(peak_mem_bytes=mem.peak)

    # ------------------------------------------------------------------
    def compile_gat(self, graph, model: GATConfig,
                    sim: GPUConfig) -> CompiledPlan:
        b = self.builder("gat", graph, model, sim)
        mem = DeviceMemory(sim.device_mem_bytes)
        dims = model.dims
        n, e = graph.num_nodes, graph.num_edges
        mem.alloc_tensor("edge_index", 2 * e)
        mem.alloc_tensor("h0", n, dims[0])
        for li in range(model.num_layers):
            f_in, f_out = dims[li], dims[li + 1]
            mem.alloc_tensor(f"hw{li}", n, f_out)
            with b.stage("lower"):
                b.add(
                    gemm_kernel(n, f_in, f_out, sim,
                                name=f"gat{li}.gemm_w"),
                    gemm_kernel(n, f_out, 2, sim,
                                name=f"gat{li}.gemm_att"),
                )
                # PyG 1.5's GATConv gathers BOTH endpoints' features to
                # compute attention: an [E, 2F] expansion on top of the
                # message expansion (why GAT OOMs on more datasets,
                # Fig. 7b).
                mem.alloc_tensor(f"att_in{li}", e, 2 * f_out)
                b.add(edge_expansion_kernel(graph, 2 * f_out, sim,
                                            name=f"gat{li}.att_expand"))
                mem.alloc_tensor(f"alpha{li}", e, 4)
                b.add(
                    edge_chain_kernel(
                        graph, sim, name=f"gat{li}.att_score",
                        reads_per_edge=8.0 * f_out,
                        writes_per_edge=4.0,
                        flops_per_edge=4.0 * f_out,
                    ),
                    edge_chain_kernel(
                        graph, sim, name=f"gat{li}.leaky_exp",
                        reads_per_edge=4.0, writes_per_edge=4.0,
                        flops_per_edge=6.0,
                    ),
                    scalar_segment_reduce_kernel(
                        graph, sim, name=f"gat{li}.softmax_sum"
                    ),
                    edge_gather_kernel(
                        graph, sim, name=f"gat{li}.softmax_div",
                        node_values_read=1,
                    ),
                )
                # Expanded source features AND scaled messages both live.
                mem.alloc_tensor(f"x_j{li}", e, f_out)
                b.add(edge_expansion_kernel(graph, f_out, sim,
                                            name=f"gat{li}.expand"))
                mem.alloc_tensor(f"msg{li}", e, f_out)
                b.add(edge_chain_kernel(
                    graph, sim, name=f"gat{li}.scale",
                    reads_per_edge=4.0 * f_out + 4.0,
                    writes_per_edge=4.0 * f_out,
                    flops_per_edge=float(f_out),
                ))
                mem.alloc_tensor(f"h{li + 1}", n, f_out)
                b.add(scatter_reduce_kernel(graph, f_out, sim,
                                            name=f"gat{li}.scatter"))
                if li < model.num_layers - 1:
                    b.add(node_map_kernel(n, f_out, sim,
                                          name=f"gat{li}.relu"))
            for t in (f"x_j{li}", f"msg{li}", f"alpha{li}",
                      f"att_in{li}", f"hw{li}"):
                mem.free(t)
            mem.free(f"h{li}" if li else "h0")
        return b.build(peak_mem_bytes=mem.peak)

    # ------------------------------------------------------------------
    def compile_sage_lstm(self, graph, model: SageLSTMConfig,
                          sim: GPUConfig) -> CompiledPlan:
        raise NotSupported(
            "PyG (1.5, as studied by the paper) does not implement the "
            "GraphSAGE-LSTM aggregator"
        )

    # ------------------------------------------------------------------
    # Functional reference: PyG's own gather/scatter composition (same
    # math as DGL; kept separate so the numeric-equivalence tests compare
    # genuinely independent implementations).
    # ------------------------------------------------------------------
    def reference_output(
        self,
        model_name: str,
        graph: CSRGraph,
        model,
        *,
        feat: Optional[np.ndarray] = None,
        seed: int = 0,
    ) -> np.ndarray:
        if model_name == "gcn":
            feat = feat if feat is not None else make_features(
                graph, model.dims[0], seed
            )
            return self._gcn_functional(graph, feat, model, seed)
        if model_name == "gat":
            feat = feat if feat is not None else make_features(
                graph, model.dims[0], seed
            )
            return self._gat_functional(graph, feat, model, seed)
        return super().reference_output(
            model_name, graph, model, feat=feat, seed=seed
        )

    @staticmethod
    def _gcn_functional(graph, feat, model: GCNConfig, seed) -> np.ndarray:
        """PyG's gather→scale→scatter composition (same math as DGL)."""
        params = model.params(seed)
        norm_src, norm_dst = gcn_norms(graph)
        dst = graph.edge_dst()
        h = feat
        for li, w in enumerate(params.weights):
            hw = (h @ w).astype(np.float32)
            msg = gather_src(graph, hw)                       # [E, F]
            ew = (norm_src[graph.indices] * norm_dst[dst])    # [E]
            msg = msg * ew[:, None]
            h = segment_sum(graph, msg)
            if li < len(params.weights) - 1:
                h = relu(h)
        return h.astype(np.float32)

    @staticmethod
    def _gat_functional(graph, feat, model: GATConfig, seed) -> np.ndarray:
        params = model.params(seed)
        dst = graph.edge_dst()
        h = feat
        last = params.num_layers - 1
        for li in range(params.num_layers):
            hw = (h @ params.weights[li]).astype(np.float32)
            att_src = hw @ params.att_left[li]
            att_dst = hw @ params.att_right[li]
            ev = leaky_relu(
                att_src[graph.indices] + att_dst[dst],
                model.negative_slope,
            )
            alpha = segment_softmax(graph, ev)
            msg = gather_src(graph, hw) * alpha[:, None]      # [E, F]
            h = segment_sum(graph, msg)
            if li < last:
                h = relu(h)
        return h.astype(np.float32)
