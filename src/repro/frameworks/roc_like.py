"""ROC-style execution (Jia et al., MLSys 2020).

ROC targets multi-GPU/out-of-core training via graph partitioning; its
single-GPU graph operations are node-parallel like DGL's (the paper
notes "the single-GPU versions of ROC and NeuGraph also implement graph
operations in this way").  What distinguishes it on one GPU, per the
paper's Fig. 7a measurements, is:

* partition management overhead — every layer moves partition/halo
  buffers (an extra streaming pass over features and edges) and does not
  use cuSPARSE's tuned SUM path, leaving it consistently slower than
  DGL on GCN;
* partition + halo replication of node features, whose footprint grows
  with both N and E — which is why ROC runs out of memory on the
  largest datasets (citation, reddit, products in Fig. 7a);
* only GCN is provided (the '×' GAT/SAGE cells of Fig. 7).
"""

from __future__ import annotations

from ..core.lowering import (
    ExecLayout,
    aggregation_kernel,
    gemm_kernel,
    node_map_kernel,
)
from ..core.plan import CompiledPlan
from ..gpusim.config import GPUConfig
from ..gpusim.kernel import KernelSpec
from ..gpusim.memory import DeviceMemory
from ..models.gcn import GCNConfig
from .base import Framework, NotSupported

__all__ = ["ROCLike"]

#: Replication factor of node features across partitions (halo copies).
_NODE_REPLICATION = 10
#: Fraction of edges whose source row is replicated into a halo buffer
#: at aggregation width.
_HALO_EDGE_FRACTION = 0.7


class ROCLike(Framework):
    name = "roc"

    def compile_gcn(self, graph, model: GCNConfig,
                    sim: GPUConfig) -> CompiledPlan:
        b = self.builder("gcn", graph, model, sim)
        mem = DeviceMemory(sim.device_mem_bytes)
        dims = model.dims
        n, e = graph.num_nodes, graph.num_edges
        mem.alloc_tensor("graph", e + n)
        mem.alloc_tensor("h0", n, dims[0])
        # Partition replicas of the input features and per-partition halo
        # rows at the aggregation width — the footprint that OOMs on the
        # largest datasets.
        mem.alloc_tensor("replicas", _NODE_REPLICATION * n, dims[0])
        halo_rows = int(_HALO_EDGE_FRACTION * e)
        mem.alloc_tensor("halo", halo_rows, dims[1])
        with b.stage("group"):
            layout = ExecLayout.default(graph)
        for li in range(model.num_layers):
            f_in, f_out = dims[li], dims[li + 1]
            mem.alloc_tensor(f"hw{li}", n, f_out)
            mem.alloc_tensor(f"h{li + 1}", n, f_out)
            with b.stage("lower"):
                # Partition/halo transfer pass for this layer.
                b.add(
                    KernelSpec.uniform_dense(
                        f"roc{li}.partition_xfer",
                        flops=0.0,
                        bytes_moved=2.0 * n * f_in * 4 + e * 8.0,
                        num_blocks=max(1, (n * f_in) // 4096),
                        tag="edge",
                    ),
                    gemm_kernel(n, f_in, f_out, sim, name=f"roc{li}.gemm"),
                    node_map_kernel(n, f_out, sim,
                                    name=f"roc{li}.norm_src"),
                    # ROC's own aggregation kernel: node-parallel, no
                    # cuSPARSE, per-edge weights materialized.
                    aggregation_kernel(
                        graph, f_out, sim, layout,
                        name=f"roc{li}.aggregate",
                        edge_stream_bytes_per_edge=4.0,
                        compute_scale=4.0,  # own kernel, no cuSPARSE
                        tag="graph",
                    ),
                    node_map_kernel(n, f_out, sim,
                                    name=f"roc{li}.norm_dst"),
                )
                if li < model.num_layers - 1:
                    b.add(node_map_kernel(n, f_out, sim,
                                          name=f"roc{li}.relu"))
            mem.free(f"hw{li}")
            mem.free(f"h{li}" if li else "h0")
        return b.build(peak_mem_bytes=mem.peak)

    def compile_gat(self, graph, model, sim) -> CompiledPlan:
        raise NotSupported("ROC does not implement GAT (Fig. 7b '×')")

    def compile_sage_lstm(self, graph, model, sim) -> CompiledPlan:
        raise NotSupported(
            "ROC does not implement GraphSAGE-LSTM (Fig. 7c '×')"
        )
