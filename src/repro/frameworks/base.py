"""Framework interface.

A *framework* here is an execution strategy: how GNN layers lower to
kernels and device allocations.  All frameworks share the functional
operators (outputs are numerically identical where supported — the
paper's "semantics unchanged" property, enforced by tests) and the same
simulator cost model; they differ exactly in the strategies the paper
analyzes: task granularity, kernel decomposition, expansion vs. fused
access, and memory behaviour.
"""

from __future__ import annotations

import abc
import dataclasses
from typing import Optional

import numpy as np

from ..gpusim.config import GPUConfig
from ..gpusim.metrics import RunReport
from ..graph.csr import CSRGraph
from ..models.gat import GATConfig
from ..models.gcn import GCNConfig
from ..models.sage_lstm import SageLSTMConfig

__all__ = [
    "Framework",
    "ForwardResult",
    "NotSupported",
    "make_features",
    "BASELINE_DISPATCH",
    "FUSED_DISPATCH",
]

#: Per-operator host dispatch cost in the baseline frameworks: every
#: computation-graph op goes through Python bindings + the framework
#: scheduler before its kernel launches (Observation 3's "intensive
#: function calls with large overhead of kernel launch and framework
#: scheduling").  25 us is a typical DGL/PyG-on-PyTorch figure.
BASELINE_DISPATCH = 25e-6

#: All frameworks (ours included — it is wrapped in PyTorch, §5) pay the
#: same per-op dispatch; fused runtimes win by launching fewer ops.
FUSED_DISPATCH = BASELINE_DISPATCH


class NotSupported(NotImplementedError):
    """The framework does not implement this model (the paper's '×')."""


@dataclasses.dataclass
class ForwardResult:
    """Simulated performance report plus (optionally) the real output."""

    report: RunReport
    output: Optional[np.ndarray] = None

    @property
    def time_ms(self) -> float:
        return self.report.total_time_ms


def make_features(
    graph: CSRGraph, feat_len: int, seed: int = 0
) -> np.ndarray:
    """Seeded input features shared across frameworks for comparisons."""
    rng = np.random.default_rng(seed)
    return rng.standard_normal((graph.num_nodes, feat_len)).astype(
        np.float32
    )


class Framework(abc.ABC):
    """Abstract execution strategy."""

    name: str = "abstract"
    #: Host-side per-operator dispatch overhead, seconds.
    dispatch_overhead: float = BASELINE_DISPATCH

    @abc.abstractmethod
    def run_gcn(
        self,
        graph: CSRGraph,
        model: GCNConfig,
        sim: GPUConfig,
        *,
        compute: bool = False,
        feat: Optional[np.ndarray] = None,
        seed: int = 0,
    ) -> ForwardResult:
        """One forward pass of the stacked GCN.

        Raises :class:`~repro.gpusim.memory.SimulatedOOM` when the
        strategy's footprint exceeds the simulated device memory, and
        :class:`NotSupported` when the framework lacks the model.
        """

    @abc.abstractmethod
    def run_gat(
        self,
        graph: CSRGraph,
        model: GATConfig,
        sim: GPUConfig,
        *,
        compute: bool = False,
        feat: Optional[np.ndarray] = None,
        seed: int = 0,
    ) -> ForwardResult:
        """One forward pass of the stacked GAT."""

    @abc.abstractmethod
    def run_sage_lstm(
        self,
        graph: CSRGraph,
        model: SageLSTMConfig,
        sim: GPUConfig,
        *,
        compute: bool = False,
        feat: Optional[np.ndarray] = None,
        seed: int = 0,
    ) -> ForwardResult:
        """One forward pass of GraphSAGE-LSTM."""

    def run_model(
        self, model_name: str, graph: CSRGraph, sim: GPUConfig, **kwargs
    ) -> ForwardResult:
        """Dispatch by model name ('gcn', 'gat', 'sage_lstm')."""
        if model_name == "gcn":
            return self.run_gcn(graph, GCNConfig(), sim, **kwargs)
        if model_name == "gat":
            return self.run_gat(graph, GATConfig(), sim, **kwargs)
        if model_name == "sage_lstm":
            return self.run_sage_lstm(graph, SageLSTMConfig(), sim, **kwargs)
        raise KeyError(f"unknown model {model_name!r}")
