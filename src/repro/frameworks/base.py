"""Framework interface: staged compilation + plan execution.

A *framework* here is an execution strategy: how GNN layers lower to
kernels and device allocations.  All frameworks share the functional
operators (outputs are numerically identical where supported — the
paper's "semantics unchanged" property, enforced by tests) and the same
simulator cost model; they differ exactly in the strategies the paper
analyzes: task granularity, kernel decomposition, expansion vs. fused
access, and memory behaviour.

Since the compile-once/run-many refactor, every framework is split into
two halves:

* ``compile_<model>(graph, model, sim) -> CompiledPlan`` — the staged
  pipeline (``trace -> schedule -> group -> adapt -> lower -> tune``)
  producing a frozen, content-addressed plan artifact;
* ``execute(plan, ...) -> ForwardResult`` — run a plan through the
  simulator (and optionally the functional reference operators).

The generic ``run_*`` entry points are provided here: they resolve the
plan through the process-wide content-addressed plan cache
(:data:`repro.core.plan.PLAN_CACHE`, with an optional on-disk tier), so
executing the same (graph, model, config) twice runs the plan-stage
pipeline exactly once.
"""

from __future__ import annotations

import abc
import dataclasses
import time
from typing import Dict, Optional

import numpy as np

from ..core.pipeline import PlanBuilder
from ..core.plan import PLAN_CACHE, CompiledPlan, plan_key
from ..core.sparse_fetch import SageStrategy
from ..gpusim.config import GPUConfig
from ..gpusim.executor import simulate_plan
from ..gpusim.metrics import RunReport
from ..graph.csr import CSRGraph
from ..models.gat import GATConfig, gat_reference_forward
from ..models.gcn import GCNConfig, gcn_reference_forward
from ..models.sage_lstm import SageLSTMConfig, sage_lstm_reference_forward
from ..perf import PERF, optimize_enabled

__all__ = [
    "Framework",
    "ForwardResult",
    "NotSupported",
    "make_features",
    "BASELINE_DISPATCH",
    "FUSED_DISPATCH",
]

#: Per-operator host dispatch cost in the baseline frameworks: every
#: computation-graph op goes through Python bindings + the framework
#: scheduler before its kernel launches (Observation 3's "intensive
#: function calls with large overhead of kernel launch and framework
#: scheduling").  25 us is a typical DGL/PyG-on-PyTorch figure.
BASELINE_DISPATCH = 25e-6

#: All frameworks (ours included — it is wrapped in PyTorch, §5) pay the
#: same per-op dispatch; fused runtimes win by launching fewer ops.
FUSED_DISPATCH = BASELINE_DISPATCH


class NotSupported(NotImplementedError):
    """The framework does not implement this model (the paper's '×')."""


@dataclasses.dataclass
class ForwardResult:
    """Simulated performance report plus (optionally) the real output."""

    report: RunReport
    output: Optional[np.ndarray] = None

    @property
    def time_ms(self) -> float:
        return self.report.total_time_ms


def make_features(
    graph: CSRGraph, feat_len: int, seed: int = 0
) -> np.ndarray:
    """Seeded input features shared across frameworks for comparisons."""
    rng = np.random.default_rng(seed)
    return rng.standard_normal((graph.num_nodes, feat_len)).astype(
        np.float32
    )


_DEFAULT_MODELS = {
    "gcn": GCNConfig,
    "gat": GATConfig,
    "sage_lstm": SageLSTMConfig,
}


class Framework(abc.ABC):
    """Abstract execution strategy: compile to a plan, execute the plan."""

    name: str = "abstract"
    #: Host-side per-operator dispatch overhead, seconds.
    dispatch_overhead: float = BASELINE_DISPATCH

    # ------------------------------------------------------------------
    # Compilation (the staged pipeline; one per supported model)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def compile_gcn(
        self, graph: CSRGraph, model: GCNConfig, sim: GPUConfig
    ) -> CompiledPlan:
        """Compile one forward pass of the stacked GCN into a plan.

        Raises :class:`~repro.gpusim.memory.SimulatedOOM` when the
        strategy's footprint exceeds the simulated device memory, and
        :class:`NotSupported` when the framework lacks the model.
        """

    @abc.abstractmethod
    def compile_gat(
        self, graph: CSRGraph, model: GATConfig, sim: GPUConfig
    ) -> CompiledPlan:
        """Compile one forward pass of the stacked GAT into a plan."""

    @abc.abstractmethod
    def compile_sage_lstm(
        self, graph: CSRGraph, model: SageLSTMConfig, sim: GPUConfig
    ) -> CompiledPlan:
        """Compile one forward pass of GraphSAGE-LSTM into a plan."""

    # ------------------------------------------------------------------
    # Plan-cache plumbing
    # ------------------------------------------------------------------
    def plan_options(self) -> Dict[str, object]:
        """Framework options that enter the plan's content address."""
        return {}

    def plan_cache_enabled(self) -> bool:
        """Whether this instance's plans are globally cacheable.

        Subclasses return False when carrying injected behaviour (e.g. a
        custom ``schedule_fn``) that the content address cannot see.
        """
        return True

    def builder(
        self, model_name: str, graph: CSRGraph, model, sim: GPUConfig
    ) -> PlanBuilder:
        """A stage-attributing builder for one compilation of ``model``."""
        return PlanBuilder(
            self.name, model_name, graph, sim,
            model_config=dataclasses.asdict(model),
            options=self.plan_options(),
            dispatch_overhead=self.dispatch_overhead,
            label=f"{self.name}:{model_name}:{graph.name}",
        )

    def plan_signature(
        self,
        model_name: str,
        graph: CSRGraph,
        sim: GPUConfig,
        model=None,
        shard_options: Optional[Dict[str, object]] = None,
    ):
        """The content address :meth:`compile` resolves — no compiling.

        Returns ``(key, model, cacheable)``.  The serve layer's batcher
        groups requests by this key: two requests with the same
        signature share one compilation and one simulated execution.
        The opt-in optimizer changes what the pipeline produces, so it
        must change the content address too: the flag enters the
        options blob of plan_key (never OursOptions — that would move
        every default-path plan id), keeping optimized and default
        artifacts distinct in both cache tiers.  Sharded compilation
        follows the same opt-in pattern: the partitioning blob
        (method/parts/part/shard fingerprint) joins the options only
        when present, so every single-device plan id stays put while
        per-partition plans get their own content addresses.
        """
        if model_name not in _DEFAULT_MODELS:
            raise KeyError(f"unknown model {model_name!r}")
        if model is None:
            model = _DEFAULT_MODELS[model_name]()
        options = self.plan_options()
        if optimize_enabled():
            options = {**options, "optimize": True}
        if shard_options:
            options = {**options, "shard": dict(shard_options)}
        key = plan_key(
            self.name, model_name, graph,
            model_config=dataclasses.asdict(model),
            options=options,
            gpu_config=sim,
            dispatch_overhead=self.dispatch_overhead,
        )
        return key, model, self.plan_cache_enabled()

    def compile(
        self,
        model_name: str,
        graph: CSRGraph,
        sim: GPUConfig,
        model=None,
        shard_options: Optional[Dict[str, object]] = None,
        signature=None,
    ) -> CompiledPlan:
        """Resolve a plan for (model, graph, sim): cache hit or compile.

        The content address is computed from the compilation inputs, so
        a hit skips the staged pipeline entirely — the compile-once half
        of the compile-once/run-many contract.  A caller that already
        holds this compilation's :meth:`plan_signature` result (the
        serve batcher computes one per request) passes it as
        ``signature`` to skip recomputing the content address.
        """
        if signature is not None:
            key, model, cacheable = signature
        else:
            key, model, cacheable = self.plan_signature(
                model_name, graph, sim, model=model,
                shard_options=shard_options,
            )
        optimizing = optimize_enabled()
        if cacheable:
            cached = PLAN_CACHE.get(key)
            if cached is not None:
                return cached
        compile_fn = getattr(self, f"compile_{model_name}")
        with PERF.stage("plan_compile"):
            plan = compile_fn(graph, model, sim)
        if shard_options and plan.plan_id != key:
            # The builder addresses the plan from its own options blob,
            # which never sees the partitioning metadata: fold it in so
            # sharded and monolithic compilations of byte-identical
            # graphs never share a content address.
            plan = dataclasses.replace(plan, plan_id=key)
        if optimizing:
            from ..core.pipeline import optimize_stage

            plan = optimize_stage(plan, graph, plan_id=key)
            if plan.plan_id != key:
                # Nothing improved: the compiled plan ships as-is, but
                # under the optimize-path address so the cache tiers
                # stay coherent with the lookup key above.
                plan = dataclasses.replace(plan, plan_id=key)
        if cacheable:
            PLAN_CACHE.put(plan)
        return plan

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(
        self,
        plan: CompiledPlan,
        sim: Optional[GPUConfig] = None,
        *,
        graph: Optional[CSRGraph] = None,
        model=None,
        compute: bool = False,
        feat: Optional[np.ndarray] = None,
        seed: int = 0,
    ) -> ForwardResult:
        """Run a compiled plan: simulate its kernels (memoized by plan
        hash) and, when ``compute`` is set, evaluate the functional
        reference operators for the real output."""
        t0 = time.perf_counter()
        with PERF.stage("plan_execute"):
            report = simulate_plan(plan, sim)
        for key, value in plan.extra.items():
            report.extra.setdefault(key, value)
        perf = report.extra.setdefault("perf", {})
        opt = plan.extra.get("optimize")
        if isinstance(opt, dict):
            perf["optimize"] = dict(opt)
        perf["plan"] = {
            "plan_id": plan.plan_id,
            "compile_seconds": plan.compile_seconds,
            "stage_seconds": dict(plan.stage_seconds),
            "execute_seconds": time.perf_counter() - t0,
        }
        output = None
        if compute:
            if graph is None:
                raise ValueError("compute=True requires the graph")
            if model is None:
                model = _DEFAULT_MODELS[plan.model]()
            output = self.reference_output(
                plan.model, graph, model, feat=feat, seed=seed
            )
        return ForwardResult(report, output)

    # ------------------------------------------------------------------
    # Functional reference semantics (shared; PyG overrides with its
    # gather/scatter composition, Ours overrides the SAGE strategy)
    # ------------------------------------------------------------------
    def sage_strategy(self) -> SageStrategy:
        return SageStrategy.BASE

    def reference_output(
        self,
        model_name: str,
        graph: CSRGraph,
        model,
        *,
        feat: Optional[np.ndarray] = None,
        seed: int = 0,
    ) -> np.ndarray:
        if model_name == "gcn":
            feat = feat if feat is not None else make_features(
                graph, model.dims[0], seed
            )
            return gcn_reference_forward(graph, feat, model.params(seed))
        if model_name == "gat":
            feat = feat if feat is not None else make_features(
                graph, model.dims[0], seed
            )
            return gat_reference_forward(
                graph, feat, model.params(seed), model.negative_slope
            )
        if model_name == "sage_lstm":
            feat = feat if feat is not None else make_features(
                graph, model.f_in, seed
            )
            return sage_lstm_reference_forward(
                graph, feat, model.params(seed), model,
                strategy=self.sage_strategy(),
            )
        raise KeyError(f"unknown model {model_name!r}")

    # ------------------------------------------------------------------
    # Generic run = one request through the serving pipeline
    # ------------------------------------------------------------------
    def _run(
        self, model_name: str, graph: CSRGraph, model, sim: GPUConfig,
        *, compute: bool, feat, seed: int,
    ) -> ForwardResult:
        # The run path *is* the single-request case of the serving
        # pipeline (admission -> plan resolution -> execution -> report);
        # routing it through repro.serve keeps one implementation of
        # plan-cache bookkeeping for interactive runs and PlanServer
        # batches alike.  Imported lazily: serve depends on this module.
        from ..serve import execute_one

        return execute_one(
            self, model_name, graph, sim, model=model,
            compute=compute, feat=feat, seed=seed,
        )

    def run_gcn(self, graph, model: GCNConfig, sim: GPUConfig, *,
                compute=False, feat=None, seed=0) -> ForwardResult:
        """One forward pass of the stacked GCN (compile-or-load + run)."""
        return self._run("gcn", graph, model, sim,
                         compute=compute, feat=feat, seed=seed)

    def run_gat(self, graph, model: GATConfig, sim: GPUConfig, *,
                compute=False, feat=None, seed=0) -> ForwardResult:
        """One forward pass of the stacked GAT."""
        return self._run("gat", graph, model, sim,
                         compute=compute, feat=feat, seed=seed)

    def run_sage_lstm(self, graph, model: SageLSTMConfig, sim: GPUConfig, *,
                      compute=False, feat=None, seed=0) -> ForwardResult:
        """One forward pass of GraphSAGE-LSTM."""
        return self._run("sage_lstm", graph, model, sim,
                         compute=compute, feat=feat, seed=seed)

    def run_model(
        self, model_name: str, graph: CSRGraph, sim: GPUConfig, **kwargs
    ) -> ForwardResult:
        """Dispatch by model name ('gcn', 'gat', 'sage_lstm')."""
        if model_name == "gcn":
            return self.run_gcn(graph, GCNConfig(), sim, **kwargs)
        if model_name == "gat":
            return self.run_gat(graph, GATConfig(), sim, **kwargs)
        if model_name == "sage_lstm":
            return self.run_sage_lstm(graph, SageLSTMConfig(), sim, **kwargs)
        raise KeyError(f"unknown model {model_name!r}")
