"""Execution-strategy models of the compared frameworks."""

from typing import Dict

from .base import ForwardResult, Framework, NotSupported, make_features
from .dgl_like import DGLLike
from .neugraph_like import NeuGraphLike
from .ours import OursOptions, OursRuntime
from .pyg_like import PyGLike
from .roc_like import ROCLike
from .training_epoch import gcn_epoch_report, lower_gcn_backward

__all__ = [
    "ForwardResult",
    "Framework",
    "NotSupported",
    "make_features",
    "DGLLike",
    "NeuGraphLike",
    "OursOptions",
    "OursRuntime",
    "PyGLike",
    "ROCLike",
    "gcn_epoch_report",
    "lower_gcn_backward",
    "default_frameworks",
    "all_frameworks",
]


def default_frameworks() -> Dict[str, Framework]:
    """The four frameworks of Fig. 7, in the paper's row order."""
    return {
        "dgl": DGLLike(),
        "pyg": PyGLike(),
        "roc": ROCLike(),
        "ours": OursRuntime(),
    }


def all_frameworks() -> Dict[str, Framework]:
    """Fig. 7's four plus the NeuGraph model the paper analyzes in §3."""
    fw = default_frameworks()
    fw["neugraph"] = NeuGraphLike()
    return fw
