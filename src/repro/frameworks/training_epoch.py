"""Training-epoch simulation: forward + backward kernel plans.

The paper times forward passes but motivates everything by *training*
("each run may involve thousands of epochs", §4.4).  This extension
lowers the GCN backward pass too, so a full epoch can be simulated:

* the adjoint of aggregation over G is aggregation over G-reversed
  (see :func:`repro.ops.grads.copy_u_sum_vjp`), so the backward graph
  kernel is the same center-neighbor aggregation on the reversed CSR —
  every forward optimization (grouping, scheduling, fusion) applies
  symmetrically;
* each layer adds two GEMMs (weight gradient, input gradient) and the
  activation/norm backward maps.

DGL-style lowering runs each backward op as its own kernel; our runtime
fuses the norm/activation maps into the reverse aggregation, mirroring
the forward plans.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.grouping import identity_grouping, neighbor_grouping
from ..core.lowering import (
    ExecLayout,
    aggregation_kernel,
    gemm_kernel,
    node_map_kernel,
)
from ..gpusim.config import GPUConfig
from ..gpusim.executor import simulate_kernels
from ..gpusim.kernel import KernelSpec
from ..gpusim.metrics import RunReport
from ..graph.csr import CSRGraph
from ..models.gcn import GCNConfig
from .base import Framework
from .ours import OursRuntime

__all__ = ["lower_gcn_backward", "gcn_epoch_report"]

_REVERSE_CACHE: Dict[str, CSRGraph] = {}


def _reversed(graph: CSRGraph) -> CSRGraph:
    key = graph.fingerprint
    if key not in _REVERSE_CACHE:
        _REVERSE_CACHE[key] = graph.reverse()
    return _REVERSE_CACHE[key]


def lower_gcn_backward(
    graph: CSRGraph,
    model: GCNConfig,
    sim: GPUConfig,
    *,
    fused: bool,
    layout_for: Optional[callable] = None,
) -> List[KernelSpec]:
    """Backward kernels of one GCN training step.

    ``fused`` selects our adapter-style lowering (norm/activation maps
    folded into the reverse aggregation) vs the per-op baseline.
    ``layout_for(graph, feat_len)`` supplies the task layout for the
    reverse aggregation (defaults to the ungrouped natural order).
    """
    rev = _reversed(graph)
    dims = model.dims
    n = graph.num_nodes
    kernels: List[KernelSpec] = []
    for li in reversed(range(model.num_layers)):
        f_in, f_out = dims[li], dims[li + 1]
        layout = (
            layout_for(rev, f_out)
            if layout_for is not None
            else ExecLayout.default(rev)
        )
        if not fused:
            if li < model.num_layers - 1:
                kernels.append(
                    node_map_kernel(n, f_out, sim,
                                    name=f"bwd{li}.relu_grad")
                )
            kernels.append(
                node_map_kernel(n, f_out, sim, name=f"bwd{li}.norm_dst")
            )
            kernels.append(
                aggregation_kernel(
                    rev, f_out, sim, layout,
                    name=f"bwd{li}.rev_aggregate",
                    edge_stream_bytes_per_edge=0.0,
                    tag="cusparse",
                )
            )
            kernels.append(
                node_map_kernel(n, f_out, sim, name=f"bwd{li}.norm_src")
            )
        else:
            # Fused: relu/norm epilogues ride the reverse aggregation.
            extra = np.full(
                layout.grouping.num_groups, 3.0 * f_out
            )
            kernels.append(
                aggregation_kernel(
                    rev, f_out, sim, layout,
                    name=f"bwd{li}.fused_rev_aggregate",
                    edge_stream_bytes_per_edge=0.0,
                    extra_block_flops=extra,
                    tag="fused",
                )
            )
        # Weight gradient [f_in, f_out] and input gradient [N, f_in].
        kernels.append(
            gemm_kernel(f_in, n, f_out, sim, name=f"bwd{li}.grad_w")
        )
        if li > 0:
            kernels.append(
                gemm_kernel(n, f_out, f_in, sim,
                            name=f"bwd{li}.grad_input")
            )
    return kernels


def gcn_epoch_report(
    framework: Framework,
    graph: CSRGraph,
    model: GCNConfig,
    sim: GPUConfig,
) -> Tuple[RunReport, RunReport]:
    """(forward report, backward report) of one training epoch under the
    given framework's strategy."""
    fwd = framework.run_gcn(graph, model, sim).report
    if isinstance(framework, OursRuntime):
        def layout_for(rev_graph, feat_len):
            bound = framework.ng_bound(rev_graph, feat_len, sim)
            grouping = (
                neighbor_grouping(rev_graph, bound)
                if bound is not None
                else identity_grouping(rev_graph)
            )
            return ExecLayout(
                grouping=grouping,
                center_order=framework.center_order(rev_graph),
                packed_rows=framework.options.tuned,
            )

        kernels = lower_gcn_backward(
            graph, model, sim, fused=framework.options.adapter,
            layout_for=layout_for,
        )
    else:
        kernels = lower_gcn_backward(graph, model, sim, fused=False)
    bwd = simulate_kernels(
        kernels, sim, dispatch_overhead=framework.dispatch_overhead,
        label=f"{framework.name}:gcn-backward:{graph.name}",
    )
    return fwd, bwd
