"""NeuGraph-style execution (Ma et al., ATC 2019).

NeuGraph is the fourth framework the paper analyzes (§3.1: "We also
analyze ROC and NeuGraph"; §3.2 Obs. 2 and the Fig. 2 discussion note
its single-GPU graph operations are node-parallel like DGL's).  It is
not a Fig. 7 row, so this model is an *extension* beyond the paper's
headline comparison, built from the paper's and NeuGraph's own
description:

* the SAGA-NN dataflow splits every layer into Scatter / ApplyEdge /
  Gather / ApplyVertex stages, each its own kernel — like DGL's per-op
  decomposition (Observation 3 applies);
* vertex data is 2-D-chunked and streamed between host and device per
  layer (NeuGraph targets graphs larger than device memory), which adds
  chunk-transfer passes but makes it the only baseline that *never*
  OOMs — it trades bandwidth for capacity;
* graph operations are node-parallel without cuSPARSE.
"""

from __future__ import annotations

from ..core.lowering import (
    ExecLayout,
    aggregation_kernel,
    edge_chain_kernel,
    gemm_kernel,
    node_map_kernel,
)
from ..core.plan import CompiledPlan
from ..gpusim.config import GPUConfig
from ..gpusim.kernel import KernelSpec
from ..gpusim.memory import DeviceMemory
from ..models.gcn import GCNConfig
from .base import Framework, NotSupported

__all__ = ["NeuGraphLike"]

#: Host<->device chunk streaming bandwidth (PCIe 3.0 x16 effective).
_PCIE_BANDWIDTH = 12e9
#: Fraction of transfer time left exposed after NeuGraph's chunk
#: pipelining overlaps streaming with computation.
_EXPOSED_TRANSFER = 0.25


class NeuGraphLike(Framework):
    name = "neugraph"

    def compile_gcn(self, graph, model: GCNConfig,
                    sim: GPUConfig) -> CompiledPlan:
        b = self.builder("gcn", graph, model, sim)
        mem = DeviceMemory(sim.device_mem_bytes)
        dims = model.dims
        n, e = graph.num_nodes, graph.num_edges
        mem.alloc_tensor("graph", e + n)
        # Chunked processing: only two vertex chunks + an edge chunk are
        # resident at a time (capacity traded for streaming).
        chunk_nodes = max(1, n // 4)
        mem.alloc_tensor("chunk_in", 2 * chunk_nodes, max(dims))
        mem.alloc_tensor("chunk_out", chunk_nodes, max(dims))
        with b.stage("group"):
            layout = ExecLayout.default(graph)
        for li in range(model.num_layers):
            f_in, f_out = dims[li], dims[li + 1]
            # Host<->device chunk streaming for this layer's vertex data.
            xfer_bytes = 2.0 * n * f_in * 4
            # Charged at DRAM rate, scaled so the kernel's duration
            # equals the *exposed* PCIe streaming time (chunk pipelining
            # hides the rest behind computation).
            effective = xfer_bytes * (
                sim.dram_bandwidth / _PCIE_BANDWIDTH
            ) * _EXPOSED_TRANSFER
            with b.stage("lower"):
                b.add(
                    KernelSpec.uniform_dense(
                        f"ng{li}.chunk_stream",
                        flops=0.0,
                        bytes_moved=effective,
                        num_blocks=max(
                            sim.total_block_slots, int(effective // 65536)
                        ),
                        tag="edge",
                    ),
                    # SAGA-NN stages: ApplyVertex (GEMM), Scatter,
                    # ApplyEdge, Gather (aggregate), plus the activation.
                    gemm_kernel(n, f_in, f_out, sim,
                                name=f"ng{li}.apply_vertex"),
                    edge_chain_kernel(
                        graph, sim, name=f"ng{li}.scatter",
                        reads_per_edge=8.0, writes_per_edge=4.0,
                        flops_per_edge=1.0,
                    ),
                    edge_chain_kernel(
                        graph, sim, name=f"ng{li}.apply_edge",
                        reads_per_edge=4.0, writes_per_edge=4.0,
                        flops_per_edge=1.0,
                    ),
                    aggregation_kernel(
                        graph, f_out, sim, layout,
                        name=f"ng{li}.gather",
                        edge_stream_bytes_per_edge=4.0,
                        compute_scale=4.0,  # own node-parallel kernel
                        tag="graph",
                    ),
                )
                if li < model.num_layers - 1:
                    b.add(node_map_kernel(n, f_out, sim,
                                          name=f"ng{li}.relu"))
        return b.build(peak_mem_bytes=mem.peak)

    def compile_gat(self, graph, model, sim) -> CompiledPlan:
        raise NotSupported(
            "NeuGraph's published system predates GAT support"
        )

    def compile_sage_lstm(self, graph, model, sim) -> CompiledPlan:
        raise NotSupported(
            "NeuGraph does not implement the LSTM aggregator"
        )
