"""Occupancy calculation: launch configuration → resident blocks per SM.

The paper's tuner (§4.4) first "exhausts GPU resources by scheduling
more warps and increases the maximum number of thread blocks by limiting
their resources such as shared memory usage".  This module provides the
CUDA-style occupancy arithmetic behind that step: given a kernel's
launch configuration (threads per block, registers per thread, shared
memory per block) and the SM's physical limits, how many blocks can be
resident concurrently — the ``blocks_per_sm`` the executor's slot count
derives from.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

__all__ = ["SMResources", "LaunchConfig", "blocks_per_sm", "occupancy"]


@dataclasses.dataclass(frozen=True)
class SMResources:
    """Physical per-SM limits (defaults: Volta V100 / CC 7.0)."""

    max_threads: int = 2048
    max_blocks: int = 32
    max_warps: int = 64
    registers: int = 65536
    shared_memory: int = 96 * 1024
    warp_size: int = 32
    register_allocation_unit: int = 256
    shared_allocation_unit: int = 256


@dataclasses.dataclass(frozen=True)
class LaunchConfig:
    """One kernel's per-block resource demands."""

    threads_per_block: int = 256
    registers_per_thread: int = 32
    shared_per_block: int = 0

    def __post_init__(self) -> None:
        if self.threads_per_block < 1:
            raise ValueError("threads_per_block must be positive")
        if self.registers_per_thread < 0 or self.shared_per_block < 0:
            raise ValueError("resource demands must be non-negative")


def _round_up(x: int, unit: int) -> int:
    return -(-x // unit) * unit


def blocks_per_sm(
    launch: LaunchConfig, sm: Optional[SMResources] = None
) -> int:
    """Maximum concurrently-resident blocks of this kernel per SM.

    The minimum over the four CUDA limits: block slots, warp slots,
    register file, shared memory.  Returns 0 when a single block does
    not fit (launch failure).
    """
    sm = sm if sm is not None else SMResources()
    warps = -(-launch.threads_per_block // sm.warp_size)
    if (
        launch.threads_per_block > sm.max_threads
        or warps > sm.max_warps
    ):
        return 0
    by_blocks = sm.max_blocks
    by_threads = sm.max_threads // launch.threads_per_block
    by_warps = sm.max_warps // warps
    regs_per_block = _round_up(
        launch.registers_per_thread * launch.threads_per_block,
        sm.register_allocation_unit,
    )
    by_regs = (
        sm.registers // regs_per_block if regs_per_block else sm.max_blocks
    )
    smem_per_block = _round_up(
        launch.shared_per_block, sm.shared_allocation_unit
    )
    by_smem = (
        sm.shared_memory // smem_per_block
        if smem_per_block
        else sm.max_blocks
    )
    return max(0, min(by_blocks, by_threads, by_warps, by_regs, by_smem))


def occupancy(
    launch: LaunchConfig, sm: Optional[SMResources] = None
) -> float:
    """Achieved occupancy: resident warps / warp slots (the nvprof
    metric the paper's Observation 2 instrumentation is built on)."""
    sm = sm if sm is not None else SMResources()
    blocks = blocks_per_sm(launch, sm)
    warps = -(-launch.threads_per_block // sm.warp_size)
    return blocks * warps / sm.max_warps
