"""Multi-device executor: per-partition kernel streams on shared timelines.

The single-device executor prices one launch-ordered kernel stream.
This module generalizes it to the execution model of the multi-GPU GNN
systems (ROC, NeuGraph): the graph is sharded
(:mod:`repro.shard.partition`), each simulated device runs its own
partition's compiled plan as a sequential stream, and the streams are
stitched together with first-class transfer kernels
(:mod:`repro.shard.cost`):

* before every aggregation round, a **halo exchange** pulls the ghost
  source rows this device reads from their owners' published features;
* for vertex-cut shards, a **mirror reduction** at each center's owner
  adds the partial aggregates spilled to peers back into the owner's
  output before anything downstream reads it.

Cross-device ordering is explicit: a dependency edge ``(d, i) <- (q, j)``
says stream ``d``'s kernel ``i`` may not start before stream ``q``'s
kernel ``j`` completes.  The same (streams, deps) structure drives both
the BSP timeline here and the generalized happens-before checker
(:func:`repro.analysis.hb.check_happens_before_multidev`), so a stream
the lint pass proves race-free is exactly the stream the timeline
executes.

Compute kernels are priced by the ordinary single-device machinery
(memoized, and fanned out over the :mod:`repro.gpusim.parallel` worker
pool when ``REPRO_WORKERS>1`` — one chunk per partition); transfer
kernels are priced by the :class:`~repro.shard.cost.LinkConfig` link
model.  The resulting :class:`~repro.gpusim.metrics.RunReport` carries
all device streams' kernels (``total_time`` is therefore aggregate
device-seconds); the multi-device *wall* clock and the per-device /
cross-device breakdown land in ``report.extra["perf"]["shard"]``.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from ..perf import PERF, workers
from ..shard.cost import (
    LinkConfig,
    ghost_buffer,
    halo_exchange_kernel,
    mirror_reduce_kernel,
    out_buffer,
    partial_buffer,
)
from ..shard.partition import ShardPlan
from .config import GPUConfig
from .kernel import KernelDataflow, KernelSpec
from .metrics import KernelStats, RunReport

__all__ = [
    "ShardStreams",
    "build_shard_streams",
    "run_multidev",
    "shard_peak_mem_bytes",
    "corrupt_stream_drop_exchange",
    "corrupt_stream_duplicate_exchange",
]

Node = Tuple[int, int]


@dataclasses.dataclass
class TransferInfo:
    """Link pricing of one transfer kernel."""

    kind: str                 # "halo_exchange" | "mirror_reduce"
    round_idx: int
    payload_bytes: float
    messages: int
    reduce_flops: float = 0.0


@dataclasses.dataclass
class ShardStreams:
    """Per-device kernel streams plus their cross-device ordering."""

    shard: ShardPlan
    streams: Dict[int, List[KernelSpec]]
    deps: Dict[Node, List[Node]]
    transfers: Dict[Node, TransferInfo]
    dispatch_overhead: float
    label: str

    @property
    def num_devices(self) -> int:
        return len(self.streams)

    def compute_nodes(self) -> List[Node]:
        return [
            (d, i)
            for d in sorted(self.streams)
            for i in range(len(self.streams[d]))
            if (d, i) not in self.transfers
        ]


def _prefixed(flow: Optional[KernelDataflow], device: int,
              ) -> Optional[KernelDataflow]:
    if flow is None:
        return None
    pre = f"d{device}/"
    return KernelDataflow(
        reads=tuple(pre + b for b in flow.reads),
        writes=tuple(pre + b for b in flow.writes),
        sync_writes=tuple(pre + b for b in flow.sync_writes),
        postponable=flow.postponable,
        aggregate=flow.aggregate,
    )


def _with_flow(kernel: KernelSpec, flow: Optional[KernelDataflow],
               ) -> KernelSpec:
    return dataclasses.replace(kernel, dataflow=flow)


def _agg_rounds(plan) -> List[int]:
    """Indices of the plan layers that aggregate over the graph."""
    rounds = []
    for li, rec in enumerate(plan.layers):
        seg = plan.kernels[rec.kernel_start : rec.kernel_stop]
        if any(k.row_ptr is not None for k in seg):
            rounds.append(li)
    return rounds


def build_shard_streams(
    shard: ShardPlan,
    plans: Sequence,
    link: LinkConfig = LinkConfig(),
) -> ShardStreams:
    """Stitch per-partition compiled plans into ordered device streams.

    ``plans[p]`` is the :class:`~repro.core.plan.CompiledPlan` compiled
    for partition ``p``'s local graph (same framework/model across
    partitions — their layer structure must line up).  Exchange payloads
    are sized from each partition's halo/mirror sets and the plan's
    per-layer feature lengths; publisher positions become the transfer
    dependency edges.
    """
    num = shard.num_parts
    if len(plans) != num:
        raise ValueError(
            f"{len(plans)} plans for {num} partitions"
        )
    rounds0 = _agg_rounds(plans[0])
    for p in range(1, num):
        if _agg_rounds(plans[p]) != rounds0:
            raise ValueError(
                "partition plans disagree on aggregation layers - all "
                "partitions must compile the same model"
            )
    # Who sends mirror partials to whom (vertex-cut spill).
    incoming: Dict[int, Dict[int, int]] = {p: {} for p in range(num)}
    for part in shard.parts:
        for owner, count in part.mirror_count_by_owner().items():
            incoming[owner][part.part_id] = count

    streams: Dict[int, List[KernelSpec]] = {}
    transfers: Dict[Node, TransferInfo] = {}
    # Positions needed for the dependency pass:
    pub_pos: Dict[int, Dict[int, Optional[int]]] = {}   # dev -> round -> pos
    exch_pos: Dict[int, Dict[int, int]] = {}
    reduce_pos: Dict[int, Dict[int, int]] = {}
    seg_last_pos: Dict[int, Dict[int, int]] = {}

    for p in range(num):
        plan = plans[p]
        part = shard.parts[p]
        halo_by_owner = part.halo_count_by_owner()
        outgoing = part.mirror_count_by_owner()
        has_halo = bool(halo_by_owner) and num > 1
        stream: List[KernelSpec] = []
        pub_pos[p] = {}
        exch_pos[p] = {}
        reduce_pos[p] = {}
        seg_last_pos[p] = {}
        round_of_start = {
            plan.layers[li].kernel_start: (r, li)
            for r, li in enumerate(rounds0)
        }
        seg_stop = -1
        round_feat = 0
        cur_round = -1
        for ki, kernel in enumerate(plan.kernels):
            hit = round_of_start.get(ki)
            if hit is not None and num > 1:
                r, li = hit
                rec = plan.layers[li]
                round_feat = rec.feat_len
                cur_round = r
                seg_stop = rec.kernel_stop
                # Publisher: the kernel just before this segment holds
                # the fully transformed features peers pull (ROC-style
                # ship-transformed-features); it publishes the round's
                # out buffer whether or not this device has halo of its
                # own — its peers read it through their exchanges.
                pub = len(stream) - 1 if stream else None
                pub_pos[p][r] = pub
                if pub is not None:
                    pk = stream[pub]
                    pf = pk.dataflow or KernelDataflow()
                    ob = (out_buffer(p, r),)
                    pf = dataclasses.replace(
                        pf,
                        writes=pf.writes + ob,
                        sync_writes=pf.sync_writes + ob,
                    )
                    stream[pub] = _with_flow(pk, pf)
                if has_halo:
                    upstream = r if pub is not None else None
                    xk = halo_exchange_kernel(
                        p, r, halo_by_owner, round_feat,
                        upstream_round=upstream,
                    )
                    exch_pos[p][r] = len(stream)
                    transfers[(p, len(stream))] = TransferInfo(
                        kind="halo_exchange",
                        round_idx=r,
                        payload_bytes=float(xk.stream_bytes.sum()),
                        messages=len(
                            [q for q in halo_by_owner if q != p]
                        ),
                    )
                    stream.append(xk)
            flow = _prefixed(kernel.dataflow, p)
            in_segment = cur_round >= 0 and ki < seg_stop
            if in_segment and kernel.row_ptr is not None and has_halo:
                # Aggregations gather ghost source rows: order them
                # after the exchange that delivers those rows.
                if flow is None:
                    flow = KernelDataflow()
                flow = dataclasses.replace(
                    flow,
                    reads=flow.reads + (ghost_buffer(p, cur_round),),
                )
            if (
                in_segment and ki == seg_stop - 1
                and outgoing and num > 1
            ):
                # Last segment kernel: its aggregate rows for mirrored
                # centers are partial sums bound for their owners.
                if flow is None:
                    flow = KernelDataflow()
                extra = tuple(
                    partial_buffer(p, cur_round, owner)
                    for owner in sorted(outgoing)
                )
                flow = dataclasses.replace(
                    flow,
                    writes=flow.writes + extra,
                    sync_writes=flow.sync_writes + extra,
                )
            stream.append(_with_flow(kernel, flow))
            if in_segment and ki == seg_stop - 1:
                seg_last_pos[p][cur_round] = len(stream) - 1
                if incoming[p] and num > 1:
                    publishes = (flow.writes if flow is not None
                                 else ())
                    rk = mirror_reduce_kernel(
                        p, cur_round, incoming[p], round_feat,
                        publishes=publishes,
                    )
                    reduce_pos[p][cur_round] = len(stream)
                    transfers[(p, len(stream))] = TransferInfo(
                        kind="mirror_reduce",
                        round_idx=cur_round,
                        payload_bytes=float(rk.stream_bytes.sum()),
                        messages=len(
                            [q for q in incoming[p] if q != p]
                        ),
                        reduce_flops=float(rk.block_flops.sum()),
                    )
                    stream.append(rk)
                cur_round = -1
        streams[p] = stream

    # Dependency pass: transfer edges across device streams.
    deps: Dict[Node, List[Node]] = {}
    for p in range(num):
        part = shard.parts[p]
        for r, pos in exch_pos[p].items():
            edges = []
            for q in sorted(part.halo_count_by_owner()):
                if q == p:
                    continue
                src = pub_pos.get(q, {}).get(r)
                if src is not None:
                    edges.append((q, src))
            if edges:
                deps[(p, pos)] = edges
        for r, pos in reduce_pos[p].items():
            edges = []
            for q in sorted(incoming[p]):
                if q == p:
                    continue
                src = seg_last_pos.get(q, {}).get(r)
                if src is not None:
                    edges.append((q, src))
            if edges:
                deps[(p, pos)] = edges

    return ShardStreams(
        shard=shard,
        streams=streams,
        deps=deps,
        transfers=transfers,
        dispatch_overhead=float(plans[0].dispatch_overhead),
        label=f"shard{num}x{shard.method}:{plans[0].label}",
    )


def shard_peak_mem_bytes(ss: ShardStreams, plans: Sequence) -> int:
    """Aggregate peak device memory of a sharded run.

    Each partition's compiled plan already accounts its resident
    buffers — including the ghost feature rows, because the local node
    space ``[centers..., halo...]`` is what it compiles against.  What
    the per-partition peak does *not* see is the transfer machinery:
    an arriving exchange/reduction payload lands in a staging buffer
    before it is applied, so a device's true high-water mark is its
    compile-time peak plus the largest payload it receives in any one
    round.  The old ``max(plan peaks)`` silently dropped that term.
    """
    by_round: Dict[int, Dict[int, float]] = {}
    for (d, _i), info in ss.transfers.items():
        by_round.setdefault(d, {})
        by_round[d][info.round_idx] = (
            by_round[d].get(info.round_idx, 0.0) + info.payload_bytes
        )
    peak = 0
    for d in sorted(ss.streams):
        staged = max(by_round.get(d, {}).values(), default=0.0)
        peak = max(peak, int(plans[d].peak_mem_bytes + staged))
    return peak


# ----------------------------------------------------------------------
# Timeline
# ----------------------------------------------------------------------

def _timeline(
    streams: Dict[int, List[KernelSpec]],
    deps: Dict[Node, List[Node]],
    durations: Dict[Node, float],
) -> Tuple[Dict[Node, float], Dict[Node, float]]:
    """Per-kernel (start, end) under sequential streams + dep edges."""
    starts: Dict[Node, float] = {}
    ends: Dict[Node, float] = {}
    pointer = dict.fromkeys(streams, 0)
    device_free = dict.fromkeys(streams, 0.0)
    remaining = sum(len(s) for s in streams.values())
    while remaining:
        progressed = False
        for d in sorted(streams):
            while pointer[d] < len(streams[d]):
                node = (d, pointer[d])
                blockers = deps.get(node, ())
                if any(b not in ends for b in blockers):
                    break
                ready = device_free[d]
                for b in blockers:
                    ready = max(ready, ends[b])
                starts[node] = ready
                ends[node] = ready + durations[node]
                device_free[d] = ends[node]
                pointer[d] += 1
                remaining -= 1
                progressed = True
        if not progressed:
            stuck = [
                (d, pointer[d]) for d in streams
                if pointer[d] < len(streams[d])
            ]
            raise RuntimeError(
                f"cyclic transfer dependencies; stuck at {stuck[:4]}"
            )
    return starts, ends


def _transfer_stats(
    kernel: KernelSpec,
    info: TransferInfo,
    seconds: float,
    config: GPUConfig,
) -> KernelStats:
    return KernelStats(
        name=kernel.name,
        tag=kernel.tag,
        makespan=seconds,
        launch_overhead=config.kernel_launch_overhead,
        flops=info.reduce_flops,
        bytes_dram=info.payload_bytes,
        bytes_l2=0.0,
        row_accesses=0,
        row_hits=0,
        num_blocks=max(info.messages, 1),
        balanced_time=seconds,
        occupancy={1.0: 0.0, 0.5: 0.0, 0.1: 0.0},
    )


def run_multidev(
    shard: ShardPlan,
    plans: Sequence,
    config: GPUConfig,
    link: LinkConfig = LinkConfig(),
    *,
    streams: Optional[ShardStreams] = None,
) -> RunReport:
    """Execute per-partition plans on simulated devices + links.

    Returns one :class:`RunReport` holding every device's kernels (its
    ``total_time`` is aggregate device-seconds); the multi-device wall
    clock, per-device compute/transfer split and cross-device traffic
    totals are in ``report.extra["perf"]["shard"]``.
    """
    ss = streams if streams is not None else build_shard_streams(
        shard, plans, link
    )
    snap = PERF.snapshot()
    num = ss.num_devices

    # Price compute kernels through the ordinary executor (memoized;
    # one pool chunk per partition when REPRO_WORKERS > 1).
    per_device_compute: Dict[int, List[int]] = {
        d: [
            i for i in range(len(ss.streams[d]))
            if (d, i) not in ss.transfers
        ]
        for d in ss.streams
    }
    compute_streams = [
        [ss.streams[d][i] for i in per_device_compute[d]]
        for d in sorted(ss.streams)
    ]
    from .parallel import simulate_partition_streams

    stats_by_device, parallel_info = simulate_partition_streams(
        compute_streams, config, ss.dispatch_overhead,
        n_workers=workers(),
    )

    stats: Dict[Node, KernelStats] = {}
    for d in sorted(ss.streams):
        for i, st in zip(per_device_compute[d], stats_by_device[d]):
            stats[(d, i)] = st

    # Price transfers on the link model.
    flops_per_second = config.peak_flops
    for node, info in ss.transfers.items():
        kernel = ss.streams[node[0]][node[1]]
        seconds = link.seconds(info.payload_bytes, info.messages)
        if info.reduce_flops:
            seconds += info.reduce_flops / flops_per_second
        stats[node] = _transfer_stats(kernel, info, seconds, config)

    durations = {node: st.time for node, st in stats.items()}
    starts, ends = _timeline(ss.streams, ss.deps, durations)
    wall = max(ends.values()) if ends else 0.0

    report = RunReport(
        label=ss.label,
        peak_mem_bytes=shard_peak_mem_bytes(ss, plans),
    )
    devices = []
    total_transfer_bytes = 0.0
    total_transfer_seconds = 0.0
    for d in sorted(ss.streams):
        compute_s = 0.0
        transfer_s = 0.0
        for i in range(len(ss.streams[d])):
            st = stats[(d, i)]
            report.add(st)
            if (d, i) in ss.transfers:
                transfer_s += st.time
            else:
                compute_s += st.time
        part = ss.shard.parts[d]
        finish = max(
            (ends[(d, i)] for i in range(len(ss.streams[d]))),
            default=0.0,
        )
        halo_bytes = sum(
            info.payload_bytes
            for node, info in ss.transfers.items()
            if node[0] == d and info.kind == "halo_exchange"
        )
        mirror_bytes = sum(
            info.payload_bytes
            for node, info in ss.transfers.items()
            if node[0] == d and info.kind == "mirror_reduce"
        )
        total_transfer_bytes += halo_bytes + mirror_bytes
        total_transfer_seconds += transfer_s
        # PERF counters: the validation cross-check hooks the shard
        # lint tests compare against the SH002 symbolic prediction.
        PERF.count("shard_halo_bytes", int(halo_bytes))
        PERF.count("shard_mirror_bytes", int(mirror_bytes))
        devices.append({
            "device": d,
            "kernels": len(ss.streams[d]),
            "compute_seconds": compute_s,
            "transfer_seconds": transfer_s,
            "finish_seconds": finish,
            "idle_seconds": finish - (compute_s + transfer_s),
            "owned_nodes": int(part.owned_centers.size),
            "local_edges": int(part.num_edges),
            "halo_nodes": int(part.halo.size),
            "halo_bytes": halo_bytes,
            "mirror_nodes": int(part.mirrors.size),
            "mirror_bytes": mirror_bytes,
        })
    serial_seconds = sum(
        d["compute_seconds"] + d["transfer_seconds"] for d in devices
    )
    delta = PERF.delta_since(snap)
    report.extra["perf"] = {
        "cache_model_seconds": delta["seconds"].get("cache_model", 0.0),
        "schedule_seconds": delta["seconds"].get("schedule", 0.0),
        "shard": {
            "method": ss.shard.method,
            "num_parts": num,
            "fingerprint": ss.shard.fingerprint,
            "wall_seconds": wall,
            "serial_seconds": serial_seconds,
            "parallel_efficiency": (
                serial_seconds / (num * wall) if wall > 0 else 0.0
            ),
            "devices": devices,
            "cross_device": {
                "transfer_bytes": total_transfer_bytes,
                "transfer_seconds": total_transfer_seconds,
                "num_transfers": len(ss.transfers),
                "transfer_fraction": (
                    total_transfer_seconds / serial_seconds
                    if serial_seconds > 0 else 0.0
                ),
                "link_bandwidth": link.bandwidth,
                "link_latency": link.latency,
            },
        },
    }
    if parallel_info is not None:
        report.extra["perf"]["parallel"] = parallel_info
    return report


def corrupt_stream_drop_exchange(
    ss: ShardStreams, device: int, round_idx: int = 0
) -> ShardStreams:
    """Testing hook: delete one device's halo exchange from its stream.

    The aggregation that follows still reads the ghost buffer the
    exchange would have written — exactly the cross-device stale-read
    bug class the generalized happens-before pass (HB004 via the
    missing producer path, or HB002 when nothing writes the ghost
    buffer at all) must catch.  Dependency edges and transfer records
    are re-indexed for the shortened stream.
    """
    stream = ss.streams[device]
    drop = None
    for i, kernel in enumerate(stream):
        info = ss.transfers.get((device, i))
        if (
            info is not None
            and info.kind == "halo_exchange"
            and info.round_idx == round_idx
        ):
            drop = i
            break
    if drop is None:
        raise ValueError(
            f"device {device} has no halo exchange for round {round_idx}"
        )

    def remap(node: Node) -> Optional[Node]:
        d, i = node
        if d != device:
            return node
        if i == drop:
            return None
        return (d, i - 1) if i > drop else node

    new_streams = dict(ss.streams)
    new_streams[device] = stream[:drop] + stream[drop + 1:]
    new_deps = {}
    for node, blockers in ss.deps.items():
        nn = remap(node)
        if nn is None:
            continue
        nb = [b for b in (remap(b) for b in blockers) if b is not None]
        if nb:
            new_deps[nn] = nb
    new_transfers = {}
    for node, info in ss.transfers.items():
        nn = remap(node)
        if nn is not None:
            new_transfers[nn] = info
    return ShardStreams(
        shard=ss.shard,
        streams=new_streams,
        deps=new_deps,
        transfers=new_transfers,
        dispatch_overhead=ss.dispatch_overhead,
        label=ss.label + ":corrupted",
    )


def corrupt_stream_duplicate_exchange(
    ss: ShardStreams, device: int, round_idx: int = 0
) -> ShardStreams:
    """Testing hook: re-issue one device's halo exchange immediately.

    The duplicate overwrites the ghost buffer before anything reads
    the first delivery, and doubles the priced transfer bytes past
    what the partition's halo sets predict — exactly the duplicated
    exchange (SH005) and transfer-conservation drift (SH002) the
    static shard-dataflow pass must catch.  Dependency edges and
    transfer records are re-indexed for the lengthened stream.
    """
    stream = ss.streams[device]
    dup = None
    for i in range(len(stream)):
        info = ss.transfers.get((device, i))
        if (
            info is not None
            and info.kind == "halo_exchange"
            and info.round_idx == round_idx
        ):
            dup = i
            break
    if dup is None:
        raise ValueError(
            f"device {device} has no halo exchange for round {round_idx}"
        )

    def remap(node: Node) -> Node:
        d, i = node
        if d != device or i <= dup:
            return node
        return (d, i + 1)

    new_streams = dict(ss.streams)
    new_streams[device] = (
        stream[: dup + 1] + [stream[dup]] + stream[dup + 1:]
    )
    new_deps = {
        remap(node): [remap(b) for b in blockers]
        for node, blockers in ss.deps.items()
    }
    # The duplicate waits on the same publishers as the original.
    if (device, dup) in new_deps:
        new_deps[(device, dup + 1)] = list(new_deps[(device, dup)])
    new_transfers = {
        remap(node): info for node, info in ss.transfers.items()
    }
    new_transfers[(device, dup + 1)] = dataclasses.replace(
        ss.transfers[(device, dup)]
    )
    return ShardStreams(
        shard=ss.shard,
        streams=new_streams,
        deps=new_deps,
        transfers=new_transfers,
        dispatch_overhead=ss.dispatch_overhead,
        label=ss.label + ":duplicated",
    )
