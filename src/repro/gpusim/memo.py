"""Content-addressed memoization for kernel simulation.

Ablation suites and the 20-round tuner simulate the *same* kernels over
and over: every variant shares its baseline kernels, every feature
length of a sweep shares its block streams, and dense kernels repeat
across layers.  This module fingerprints the content that determines a
simulation's outcome and caches two tiers of work:

* **stream analyses** (:data:`STREAM_CACHE`) — the interleaved issue
  permutation and previous-occurrence array of a kernel's feature-row
  access stream, keyed by ``(row_ptr, row_ids, slot count)`` content.
  These are the argsort-heavy inputs of the L2 cache model and depend
  only on the stream, not on pricing, so a tuner round re-run at a new
  feature length pays nothing.
* **kernel statistics** (:data:`KERNEL_MEMO`) — the full
  :class:`~repro.gpusim.metrics.KernelStats` of a simulated kernel,
  keyed by every pricing input plus the :class:`GPUConfig`.  An
  in-process LRU tier is always consulted; an optional on-disk tier
  (``REPRO_KERNEL_CACHE_DIR`` or :meth:`KernelMemo.set_disk_dir`)
  extends :mod:`repro.core.persistence` so suites can share cold starts
  across processes.

Array fingerprints use SHA-256 over the raw bytes (the fastest hash in
this interpreter on bulk input, ~1.8x BLAKE2b).  Arrays are treated
as immutable once simulated (the repo-wide convention); a weakref-guarded
identity cache makes re-hashing long-lived arrays (e.g. a graph's CSR
``indices``) free without ever trusting a recycled ``id()``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import weakref
from collections import OrderedDict
from typing import Dict, Optional, Tuple

import numpy as np

from ..perf import PERF, cache_model_mode
from .metrics import KernelStats

__all__ = [
    "array_digest",
    "LRUCache",
    "StreamPlan",
    "KernelMemo",
    "STREAM_CACHE",
    "KERNEL_MEMO",
    "PLAN_MEMO",
    "REORDER_CACHE",
    "clear_caches",
    "memo_stats",
]


# ----------------------------------------------------------------------
# Array fingerprints
# ----------------------------------------------------------------------

#: id(array) -> (weakref, digest).  The weakref proves the id has not
#: been recycled by the allocator (the aliasing trap ``id()``-keyed
#: caches fall into after garbage collection).
_DIGESTS: Dict[int, Tuple[weakref.ref, bytes]] = {}
_DIGEST_SWEEP_AT = 4096

#: id(config) -> (config, repr) — ``dataclasses.astuple`` walks the whole
#: frozen config on every call, which dominates fingerprinting of
#: memo-warm kernels.  Configs are tiny and few; the strong reference
#: keeps each id valid for the lifetime of its entry.
_CONFIG_REPRS: Dict[int, Tuple[object, str]] = {}


def _config_repr(config) -> str:
    key = id(config)
    entry = _CONFIG_REPRS.get(key)
    if entry is not None and entry[0] is config:
        return entry[1]
    text = repr(dataclasses.astuple(config))
    if len(_CONFIG_REPRS) > 64:
        _CONFIG_REPRS.clear()
    _CONFIG_REPRS[key] = (config, text)
    return text


def array_digest(arr: Optional[np.ndarray]) -> bytes:
    """16-byte SHA-256 content digest of an array (or ``None``)."""
    if arr is None:
        return b"\x00" * 16
    key = id(arr)
    entry = _DIGESTS.get(key)
    if entry is not None and entry[0]() is arr:
        return entry[1]
    a = np.ascontiguousarray(arr)
    h = hashlib.sha256()
    h.update(str(a.dtype).encode())
    h.update(np.asarray(a.shape, dtype=np.int64).tobytes())
    h.update(a.data)
    digest = h.digest()[:16]
    if len(_DIGESTS) >= _DIGEST_SWEEP_AT:
        dead = [k for k, (ref, _) in _DIGESTS.items() if ref() is None]
        for k in dead:
            del _DIGESTS[k]
    try:
        _DIGESTS[key] = (weakref.ref(arr), digest)
    except TypeError:  # non-weakref-able input (e.g. np.matrix subclass)
        pass
    return digest


# ----------------------------------------------------------------------
# Generic LRU with a byte budget
# ----------------------------------------------------------------------

#: Every LRUCache registers here so :func:`clear_caches` reaches tiers
#: owned by other modules (e.g. the tuner's grouping cache).
_ALL_CACHES: list = []


class LRUCache:
    """LRU keyed by hashable tuples, bounded by entries and bytes."""

    def __init__(self, max_entries: int = 1024,
                 max_bytes: Optional[int] = None,
                 name: str = "cache") -> None:
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.name = name
        self._data: "OrderedDict[object, Tuple[object, int]]" = OrderedDict()
        self._bytes = 0
        _ALL_CACHES.append(self)

    def get(self, key):
        entry = self._data.get(key)
        if entry is None:
            PERF.count(f"{self.name}_miss")
            return None
        self._data.move_to_end(key)
        PERF.count(f"{self.name}_hit")
        return entry[0]

    def put(self, key, value, nbytes: int = 0) -> None:
        if key in self._data:
            self._bytes -= self._data.pop(key)[1]
        self._data[key] = (value, nbytes)
        self._bytes += nbytes
        while len(self._data) > self.max_entries or (
            self.max_bytes is not None
            and self._bytes > self.max_bytes
            and len(self._data) > 1
        ):
            _, (_, dropped) = self._data.popitem(last=False)
            self._bytes -= dropped
            PERF.count(f"{self.name}_evict")

    def contains(self, key) -> bool:
        """Membership peek: no hit/miss counters, no LRU reordering."""
        return key in self._data

    def clear(self) -> None:
        self._data.clear()
        self._bytes = 0

    def __len__(self) -> int:
        return len(self._data)

    @property
    def nbytes(self) -> int:
        return self._bytes


# ----------------------------------------------------------------------
# Stream-analysis tier
# ----------------------------------------------------------------------

@dataclasses.dataclass
class StreamPlan:
    """Cached order-dependent analysis of one block access stream.

    ``perm`` is the interleaved (concurrent-execution) issue order and
    ``prev`` the previous-occurrence array of the permuted stream — the
    two argsort-heavy quantities every cache-model evaluation needs.
    ``windows`` memoizes the effective working-set window per cache
    capacity and ``lru_distances`` the exact stack distances (both are
    pure functions of ``prev``, so they attach here).
    """

    perm: np.ndarray
    prev: np.ndarray
    #: (capacity, cache-model mode) -> effective window.
    windows: Dict[Tuple[int, str], int] = dataclasses.field(
        default_factory=dict
    )
    lru_distances: Optional[np.ndarray] = None
    #: mode -> {window -> D(w) estimate}; shared across the capacities
    #: probed against the same stream (the full-stream probe dominates).
    distinct: Dict[str, Dict[int, float]] = dataclasses.field(
        default_factory=dict
    )
    #: Narrow copy of ``prev`` for the window-search probes (estimates
    #: are dtype-independent); built once per stream, not per search.
    prev32: Optional[np.ndarray] = None

    @property
    def nbytes(self) -> int:
        total = self.perm.nbytes + self.prev.nbytes
        if self.lru_distances is not None:
            total += self.lru_distances.nbytes
        return total


def _env_bytes(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError:
        return default


#: Stream analyses are large (two int64 arrays per stream), so the tier
#: is bounded by bytes; 512 MiB holds a full 20-round tuner sweep on the
#: largest scaled dataset.
STREAM_CACHE = LRUCache(
    max_entries=256,
    max_bytes=_env_bytes("REPRO_STREAM_CACHE_BYTES", 512 * 1024 * 1024),
    name="stream_cache",
)

#: Reordered ragged row streams, keyed by
#: ``(row_ptr, row_ids, permutation)`` content.  Locality-aware layouts
#: re-apply the same block permutation to the same stream once per
#: feature length / ablation variant; the gather is the single most
#: expensive lowering step on the large datasets.
REORDER_CACHE = LRUCache(
    max_entries=64,
    max_bytes=_env_bytes("REPRO_REORDER_CACHE_BYTES", 256 * 1024 * 1024),
    name="reorder_cache",
)

#: Issue permutations keyed by ``(row_ptr, num_slots)`` content only —
#: streams that differ in their rows but share a block layout (tuner
#: rounds at different feature lengths) reuse the argsort.  A separate
#: tier so the perm arrays never evict full stream analyses.
PERM_CACHE = LRUCache(
    max_entries=64,
    max_bytes=_env_bytes("REPRO_PERM_CACHE_BYTES", 128 * 1024 * 1024),
    name="perm_cache",
)


# ----------------------------------------------------------------------
# Kernel-statistics tier
# ----------------------------------------------------------------------

class KernelMemo:
    """Fingerprint -> :class:`KernelStats`, LRU in memory + optional disk.

    The fingerprint covers everything :func:`simulate_kernel` reads:
    block pricing arrays, the row stream, row bytes, launch accounting,
    the tag (it is echoed into the stats), the full ``GPUConfig`` and the
    dispatch overhead.  Kernel *names* are display-only and excluded;
    they are restored on every hit.
    """

    def __init__(self, max_entries: int = 4096,
                 disk_dir: Optional[str] = None) -> None:
        # The executor counts logical kernel_memo hits/misses (disk hits
        # included); the in-memory tier reports under its own name.
        self._mem = LRUCache(max_entries=max_entries, name="kernel_memo_mem")
        self.disk_dir = disk_dir or os.environ.get("REPRO_KERNEL_CACHE_DIR")

    def set_disk_dir(self, path: Optional[str]) -> None:
        """Enable (or disable, with ``None``) the on-disk tier."""
        self.disk_dir = path

    # ------------------------------------------------------------------
    @staticmethod
    def fingerprint(kernel, config, dispatch_overhead: float) -> str:
        h = hashlib.blake2b(digest_size=16)
        for arr in (
            kernel.block_flops,
            kernel.row_ptr,
            kernel.row_ids,
            kernel.stream_bytes,
            kernel.atomics,
        ):
            h.update(array_digest(arr))
        h.update(
            repr((
                kernel.row_bytes,
                kernel.counts_launch,
                kernel.tag,
                _config_repr(config),
                dispatch_overhead,
                # The cache-model tier changes simulated numbers, so
                # exact and approx results must never share an entry.
                cache_model_mode(),
            )).encode()
        )
        return h.hexdigest()

    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[KernelStats]:
        stats = self._mem.get(key)
        if stats is not None:
            return stats
        if self.disk_dir:
            from ..core.persistence import load_kernel_stats

            stats = load_kernel_stats(self._disk_path(key))
            if stats is not None:
                PERF.count("kernel_memo_disk_hit")
                self._mem.put(key, stats)
                return stats
        return None

    def put(self, key: str, stats: KernelStats) -> None:
        self._mem.put(key, stats)
        if self.disk_dir:
            from ..core.persistence import save_kernel_stats

            save_kernel_stats(self._disk_path(key), stats)

    def _disk_path(self, key: str) -> str:
        return os.path.join(self.disk_dir, f"kstats_{key}.json")

    def clear(self) -> None:
        self._mem.clear()

    def __len__(self) -> int:
        return len(self._mem)


KERNEL_MEMO = KernelMemo()


#: Plan-level memo: ``(plan_id, config, dispatch) -> tuple[KernelStats]``.
#: A :class:`~repro.core.plan.CompiledPlan` is content-addressed, so its
#: whole simulated kernel-stats sequence is reusable as one unit — the
#: run-many half of compile-once/run-many skips even the per-kernel memo
#: lookups.  Entry- and (optionally) byte-bounded: a long-lived serving
#: process replaying a churning request mix must not accumulate stats
#: tuples without bound.  Evictions count under ``plan_memo_evict``.
PLAN_MEMO = LRUCache(
    max_entries=max(1, _env_bytes("REPRO_PLAN_MEMO_ENTRIES", 512)),
    max_bytes=(
        _env_bytes("REPRO_PLAN_MEMO_BYTES", 0) or None
    ),
    name="plan_memo",
)


# ----------------------------------------------------------------------
def clear_caches() -> None:
    """Drop all in-process memo tiers (not the on-disk tier)."""
    for cache in _ALL_CACHES:
        cache.clear()
    _DIGESTS.clear()


def memo_stats() -> Dict[str, object]:
    """Counters for the perf harness / ``RunReport.extra``."""
    return {
        "kernel_memo_entries": len(KERNEL_MEMO),
        "kernel_memo_hit_rate": PERF.memo_hit_rate("kernel_memo"),
        "stream_cache_entries": len(STREAM_CACHE),
        "stream_cache_bytes": STREAM_CACHE.nbytes,
        "stream_cache_hit_rate": PERF.memo_hit_rate("stream_cache"),
        "perm_cache_entries": len(PERM_CACHE),
        "perm_cache_hit_rate": PERF.memo_hit_rate("perm_cache"),
    }
