"""L2 cache models over feature-row access streams.

Graph operations read node-feature *rows*; a row of ``Feat`` float32
values spans ``ceil(4*Feat/line)`` consecutive cache lines that are always
touched together, so the cache is modelled at row granularity with
capacity ``L2_bytes / row_footprint`` rows.

Two models:

* :func:`window_hits` — the default.  An access hits iff the number of
  accesses since the previous touch of the same row is at most the
  *effective window*: the access-count span whose expected working set
  (Denning's D(w), estimated by sampling) matches the cache capacity.
  This working-set approximation of LRU is near-linear time, fully
  vectorized, and order-sensitive — the property every scheduling
  experiment relies on.  Tests validate it against the exact model.

* :func:`lru_hits` — exact LRU via reuse (stack) distances computed with a
  Fenwick tree, O(n log n) in Python.  Used for validation and small runs
  (``GPUConfig.cache_model == "lru"``).

Both return a boolean hit mask aligned with the access stream; first
touches (compulsory misses) are always misses.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "previous_occurrence",
    "window_hits",
    "lru_hits",
    "reuse_distances",
    "hit_mask",
    "effective_window",
    "estimate_distinct_in_window",
]


def previous_occurrence(stream: np.ndarray) -> np.ndarray:
    """For each position, the index of the previous access to the same row.

    Returns ``int64[n]`` with ``-1`` where the access is a first touch.
    Vectorized: stable argsort groups accesses per row in stream order.
    """
    stream = np.asarray(stream)
    n = stream.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.int64)
    order = np.argsort(stream, kind="stable")
    sorted_rows = stream[order]
    prev = np.full(n, -1, dtype=np.int64)
    same = sorted_rows[1:] == sorted_rows[:-1]
    prev[order[1:]] = np.where(same, order[:-1], -1)
    return prev


def estimate_distinct_in_window(
    prev: np.ndarray, window: int, samples: int = 8,
    max_eval: int = 65536,
) -> float:
    """Expected number of distinct rows touched in a window of ``window``
    consecutive accesses.

    An access at position ``i`` is the *first* touch of its row within a
    window starting at ``t`` iff ``prev[i] < t``; counting those over
    sampled (and, for long windows, strided) positions estimates the
    working-set function D(w) of Denning's model.
    """
    n = prev.shape[0]
    window = min(window, n)
    if window <= 0:
        return 0.0
    starts = np.linspace(0, n - window, num=samples).astype(np.int64)
    stride = max(1, window // max_eval)
    total = 0.0
    for t in starts:
        seg = prev[t : t + window : stride]
        total += np.count_nonzero(seg < t) * stride
    return total / max(len(starts), 1)


def effective_window(
    stream: np.ndarray,
    capacity_rows: int,
    prev: np.ndarray | None = None,
) -> int:
    """Largest access-count window whose working set fits in the cache.

    Binary-searches w such that D(w) ~= capacity.  This converts the LRU
    capacity (distinct rows) into an access-count threshold that adapts
    to the stream's local duplication — hot-hub streams get modest
    windows, community-ordered streams get wide ones.
    """
    stream = np.asarray(stream)
    n = stream.shape[0]
    if n == 0:
        return 0
    if prev is None:
        prev = previous_occurrence(stream)
    if estimate_distinct_in_window(prev, n) <= capacity_rows:
        return n
    lo, hi = max(1, capacity_rows), n
    while hi - lo > max(16, lo // 8):
        mid = (lo + hi) // 2
        if estimate_distinct_in_window(prev, mid) <= capacity_rows:
            lo = mid
        else:
            hi = mid
    return lo


def window_hits(
    stream: np.ndarray, capacity_rows: int, window: int | None = None
) -> np.ndarray:
    """Working-set (windowed-LRU) hit mask for a row access stream.

    An access hits iff the number of accesses since the previous touch of
    the same row is at most the ``window`` — by default the
    :func:`effective_window` whose expected working set matches the
    cache capacity (Denning's working-set approximation of LRU).
    """
    stream = np.asarray(stream)
    n = stream.shape[0]
    if n == 0:
        return np.zeros(0, dtype=bool)
    prev = previous_occurrence(stream)
    if window is None:
        window = effective_window(stream, capacity_rows, prev=prev)
    gap = np.arange(n, dtype=np.int64) - prev
    return (prev >= 0) & (gap <= max(window, 1))


class _Fenwick:
    """Binary indexed tree over positions, for distinct-element counting."""

    __slots__ = ("tree", "n")

    def __init__(self, n: int) -> None:
        self.n = n
        self.tree = np.zeros(n + 1, dtype=np.int64)

    def add(self, i: int, delta: int) -> None:
        i += 1
        tree, n = self.tree, self.n
        while i <= n:
            tree[i] += delta
            i += i & (-i)

    def prefix(self, i: int) -> int:
        """Sum of [0, i]."""
        i += 1
        s = 0
        tree = self.tree
        while i > 0:
            s += tree[i]
            i -= i & (-i)
        return int(s)


def reuse_distances(stream: np.ndarray) -> np.ndarray:
    """Exact LRU stack distances (number of *distinct* rows touched since
    the previous access to the same row); ``-1`` marks first touches.

    Classic offline sweep: keep a Fenwick tree with a 1 at the most recent
    position of every distinct row; the stack distance at position ``i``
    for a row last seen at ``p`` is the number of ones in ``(p, i)``.
    """
    stream = np.asarray(stream)
    n = stream.shape[0]
    prev = previous_occurrence(stream)
    fen = _Fenwick(n)
    out = np.full(n, -1, dtype=np.int64)
    for i in range(n):
        p = prev[i]
        if p >= 0:
            # ones strictly inside (p, i): prefix(i-1) - prefix(p)
            out[i] = fen.prefix(i - 1) - fen.prefix(int(p))
            fen.add(int(p), -1)
        fen.add(i, 1)
    return out


def lru_hits(stream: np.ndarray, capacity_rows: int) -> np.ndarray:
    """Exact fully-associative LRU hit mask."""
    dist = reuse_distances(stream)
    return (dist >= 0) & (dist < capacity_rows)


def hit_mask(
    stream: np.ndarray, capacity_rows: int, model: str = "window"
) -> np.ndarray:
    """Dispatch between the window and exact LRU models."""
    if model == "window":
        return window_hits(stream, capacity_rows)
    if model == "lru":
        return lru_hits(stream, capacity_rows)
    raise ValueError(f"unknown cache model {model!r}")
