"""L2 cache models over feature-row access streams.

Graph operations read node-feature *rows*; a row of ``Feat`` float32
values spans ``ceil(4*Feat/line)`` consecutive cache lines that are always
touched together, so the cache is modelled at row granularity with
capacity ``L2_bytes / row_footprint`` rows.

Two models:

* :func:`window_hits` — the default.  An access hits iff the number of
  accesses since the previous touch of the same row is at most the
  *effective window*: the access-count span whose expected working set
  (Denning's D(w), estimated by sampling) matches the cache capacity.
  This working-set approximation of LRU is near-linear time, fully
  vectorized, and order-sensitive — the property every scheduling
  experiment relies on.  Tests validate it against the exact model.

* :func:`lru_hits` — exact LRU via reuse (stack) distances.  The default
  implementation batch-counts distinct rows per reuse window with a
  wavelet tree built level-by-level in numpy (O(n log n) work, ~log n
  vectorized passes); the original per-access Fenwick sweep is kept as
  :func:`_reuse_distances_reference` for validation and runs when
  fast paths are disabled (``repro.perf.configure(fastpath=False)``).

Both return a boolean hit mask aligned with the access stream; first
touches (compulsory misses) are always misses.

Everything downstream of :func:`previous_occurrence` is a pure function
of the ``prev`` array, so the executor caches ``prev`` per stream
content (:mod:`repro.gpusim.memo`) and calls the ``*_from_prev``
variants directly.
"""

from __future__ import annotations

import numpy as np

try:  # pragma: no cover - scipy is a declared dependency
    from scipy.sparse import _sparsetools as _sptools
except ImportError:  # pragma: no cover
    _sptools = None

from ..perf import fastpath_enabled

__all__ = [
    "previous_occurrence",
    "window_hits",
    "window_hits_from_prev",
    "lru_hits",
    "reuse_distances",
    "reuse_distances_from_prev",
    "hit_mask",
    "effective_window",
    "estimate_distinct_in_window",
]


def _group_by_value(stream: np.ndarray) -> "np.ndarray | None":
    """Stream positions grouped by row id, index-ascending within a group.

    Equivalent to ``np.argsort(stream, kind="stable")`` but O(n): row ids
    are small non-negative ints, so a counting sort (scipy's C coo->csr
    row-grouping pass, which is stable and does not merge duplicates)
    replaces the comparison sort.  Returns ``None`` when the
    preconditions don't hold and the caller must argsort.
    """
    if _sptools is None or stream.dtype.kind not in "iu":
        return None
    n = stream.shape[0]
    if n >= np.iinfo(np.int32).max:
        return None
    lo = int(stream.min())
    hi = int(stream.max())
    if lo < 0 or hi > 50_000_000:  # indptr stays small vs the stream
        return None
    nvals = hi + 1
    rows = stream.astype(np.int32, copy=False)
    cols = np.zeros(n, dtype=np.int32)
    indptr = np.zeros(nvals + 1, dtype=np.int32)
    indices = np.empty(n, dtype=np.int32)
    order = np.empty(n, dtype=np.int64)
    _sptools.coo_tocsr(
        nvals, 1, n, rows, cols, np.arange(n, dtype=np.int64),
        indptr, indices, order,
    )
    return order


def previous_occurrence(stream: np.ndarray) -> np.ndarray:
    """For each position, the index of the previous access to the same row.

    Returns ``int64[n]`` with ``-1`` where the access is a first touch.
    Vectorized: grouping accesses per row in stream order (stable argsort,
    or an O(n) counting sort when the fast path is on).
    """
    stream = np.asarray(stream)
    n = stream.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.int64)
    order = _group_by_value(stream) if fastpath_enabled() else None
    if order is None:
        order = np.argsort(stream, kind="stable")
    sorted_rows = stream[order]
    prev = np.full(n, -1, dtype=np.int64)
    same = sorted_rows[1:] == sorted_rows[:-1]
    prev[order[1:]] = np.where(same, order[:-1], -1)
    return prev


def estimate_distinct_in_window(
    prev: np.ndarray, window: int, samples: int = 8,
    max_eval: int = 65536,
) -> float:
    """Expected number of distinct rows touched in a window of ``window``
    consecutive accesses.

    An access at position ``i`` is the *first* touch of its row within a
    window starting at ``t`` iff ``prev[i] < t``; counting those over
    sampled (and, for long windows, strided) positions estimates the
    working-set function D(w) of Denning's model.
    """
    n = prev.shape[0]
    window = min(window, n)
    if window <= 0:
        return 0.0
    starts = np.linspace(0, n - window, num=samples).astype(np.int64)
    stride = max(1, window // max_eval)
    total = 0.0
    for t in starts:
        seg = prev[t : t + window : stride]
        total += np.count_nonzero(seg < t) * stride
    return total / max(len(starts), 1)


def effective_window(
    stream: np.ndarray,
    capacity_rows: int,
    prev: np.ndarray | None = None,
) -> int:
    """Largest access-count window whose working set fits in the cache.

    Binary-searches w such that D(w) ~= capacity.  This converts the LRU
    capacity (distinct rows) into an access-count threshold that adapts
    to the stream's local duplication — hot-hub streams get modest
    windows, community-ordered streams get wide ones.
    """
    if prev is None:
        prev = previous_occurrence(np.asarray(stream))
    n = prev.shape[0]
    if n == 0:
        return 0
    if estimate_distinct_in_window(prev, n) <= capacity_rows:
        return n
    lo, hi = max(1, capacity_rows), n
    while hi - lo > max(16, lo // 8):
        mid = (lo + hi) // 2
        if estimate_distinct_in_window(prev, mid) <= capacity_rows:
            lo = mid
        else:
            hi = mid
    return lo


def window_hits_from_prev(
    prev: np.ndarray, capacity_rows: int, window: int | None = None
) -> np.ndarray:
    """:func:`window_hits` given a precomputed previous-occurrence array."""
    n = prev.shape[0]
    if n == 0:
        return np.zeros(0, dtype=bool)
    if window is None:
        window = effective_window(None, capacity_rows, prev=prev)
    gap = np.arange(n, dtype=np.int64) - prev
    return (prev >= 0) & (gap <= max(window, 1))


def window_hits(
    stream: np.ndarray, capacity_rows: int, window: int | None = None
) -> np.ndarray:
    """Working-set (windowed-LRU) hit mask for a row access stream.

    An access hits iff the number of accesses since the previous touch of
    the same row is at most the ``window`` — by default the
    :func:`effective_window` whose expected working set matches the
    cache capacity (Denning's working-set approximation of LRU).
    """
    stream = np.asarray(stream)
    if stream.shape[0] == 0:
        return np.zeros(0, dtype=bool)
    prev = previous_occurrence(stream)
    return window_hits_from_prev(prev, capacity_rows, window=window)


class _Fenwick:
    """Binary indexed tree over positions, for distinct-element counting."""

    __slots__ = ("tree", "n")

    def __init__(self, n: int) -> None:
        self.n = n
        self.tree = np.zeros(n + 1, dtype=np.int64)

    def add(self, i: int, delta: int) -> None:
        i += 1
        tree, n = self.tree, self.n
        while i <= n:
            tree[i] += delta
            i += i & (-i)

    def prefix(self, i: int) -> int:
        """Sum of [0, i]."""
        i += 1
        s = 0
        tree = self.tree
        while i > 0:
            s += tree[i]
            i -= i & (-i)
        return int(s)


def _reuse_distances_reference(stream: np.ndarray) -> np.ndarray:
    """Per-access Fenwick sweep (the pre-vectorization reference).

    Classic offline algorithm: keep a Fenwick tree with a 1 at the most
    recent position of every distinct row; the stack distance at position
    ``i`` for a row last seen at ``p`` is the number of ones in
    ``(p, i)``.  O(n log n) with a Python-level loop over accesses.
    """
    stream = np.asarray(stream)
    n = stream.shape[0]
    prev = previous_occurrence(stream)
    fen = _Fenwick(n)
    out = np.full(n, -1, dtype=np.int64)
    for i in range(n):
        p = prev[i]
        if p >= 0:
            # ones strictly inside (p, i): prefix(i-1) - prefix(p)
            out[i] = fen.prefix(i - 1) - fen.prefix(int(p))
            fen.add(int(p), -1)
        fen.add(i, 1)
    return out


def _wavelet_rank_le(
    vals: np.ndarray, plen: np.ndarray, y: np.ndarray, upper: int
) -> np.ndarray:
    """Batched prefix rank: for each query ``k``, the number of positions
    ``j < plen[k]`` with ``vals[j] <= y[k]`` (``vals``/``y`` in
    ``[0, upper]``).

    A wavelet tree over ``vals`` answers all queries together: each bit
    level stably partitions the array by that bit (one vectorized pass)
    while every query walks down, accumulating the size of the left
    subtrees it skips.  Levels are built on the fly and discarded, so
    peak memory is O(n + q).
    """
    nbits = max(1, int(upper).bit_length())
    # Positions and values both fit int32 for any stream the simulator
    # produces; narrower lanes halve the gather traffic below.
    idx_t = np.int32 if vals.shape[0] < 2**31 - 1 else np.int64
    arr = np.asarray(vals, dtype=idx_t)
    y = np.asarray(y, dtype=idx_t)
    n = arr.shape[0]
    acc = np.zeros(plen.shape[0], dtype=np.int64)
    node_start = np.zeros(plen.shape[0], dtype=idx_t)
    node_end = np.full(plen.shape[0], n, dtype=idx_t)
    pos = np.asarray(plen, dtype=idx_t).copy()
    zp = np.empty(n + 1, dtype=idx_t)
    for level in range(nbits - 1, -1, -1):
        zeros = ((arr >> level) & 1) == 0
        zp[0] = 0
        np.cumsum(zeros, out=zp[1:])
        zn = zp[-1]
        zs, ze, zpos = zp[node_start], zp[node_end], zp[pos]
        go_right = ((y >> level) & 1) == 1
        # Left-subtree elements inside this node's prefix are all <= y
        # when y's bit is set; bank them and descend right.
        acc[go_right] += (zpos - zs)[go_right]
        node_start = np.where(go_right, zn + (node_start - zs), zs)
        node_end = np.where(go_right, zn + (node_end - ze), ze)
        pos = np.where(go_right, zn + (pos - zpos), zpos)
        arr = np.concatenate([arr[zeros], arr[~zeros]])
    # The final node holds elements equal to y; prefix members count.
    return acc + (pos - node_start)


def reuse_distances_from_prev(prev: np.ndarray) -> np.ndarray:
    """Exact LRU stack distances from a previous-occurrence array.

    The stack distance at ``i`` is the number of distinct rows touched in
    ``(prev[i], i)``; each such row contributes exactly one *first* touch
    ``j`` there, characterized by ``prev[j] <= prev[i]``.  With
    ``A(x, y) = #{j <= x : prev[j] <= y}`` this is
    ``A(i-1, p) - A(p, p)`` — a batch of prefix rank queries answered in
    ~log n vectorized passes by :func:`_wavelet_rank_le`.
    """
    prev = np.asarray(prev, dtype=np.int64)
    n = prev.shape[0]
    out = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return out
    q = np.nonzero(prev >= 0)[0]
    if q.size == 0:
        return out
    p = prev[q]
    vals = prev + 1  # shift first-touch marker into [0, n]
    plen = np.concatenate([q, p + 1])  # prefixes [0, i) and [0, p]
    y = np.concatenate([p + 1, p + 1])
    ranks = _wavelet_rank_le(vals, plen, y, upper=n)
    m = q.shape[0]
    out[q] = ranks[:m] - ranks[m:]
    return out


def reuse_distances(stream: np.ndarray) -> np.ndarray:
    """Exact LRU stack distances (number of *distinct* rows touched since
    the previous access to the same row); ``-1`` marks first touches.
    """
    stream = np.asarray(stream)
    if not fastpath_enabled():
        return _reuse_distances_reference(stream)
    if stream.shape[0] == 0:
        return np.full(0, -1, dtype=np.int64)
    return reuse_distances_from_prev(previous_occurrence(stream))


def lru_hits(stream: np.ndarray, capacity_rows: int) -> np.ndarray:
    """Exact fully-associative LRU hit mask."""
    dist = reuse_distances(stream)
    return (dist >= 0) & (dist < capacity_rows)


def hit_mask(
    stream: np.ndarray, capacity_rows: int, model: str = "window"
) -> np.ndarray:
    """Dispatch between the window and exact LRU models."""
    if model == "window":
        return window_hits(stream, capacity_rows)
    if model == "lru":
        return lru_hits(stream, capacity_rows)
    raise ValueError(f"unknown cache model {model!r}")
