"""L2 cache models over feature-row access streams.

Graph operations read node-feature *rows*; a row of ``Feat`` float32
values spans ``ceil(4*Feat/line)`` consecutive cache lines that are always
touched together, so the cache is modelled at row granularity with
capacity ``L2_bytes / row_footprint`` rows.

Two models:

* :func:`window_hits` — the default.  An access hits iff the number of
  accesses since the previous touch of the same row is at most the
  *effective window*: the access-count span whose expected working set
  (Denning's D(w), estimated by sampling) matches the cache capacity.
  This working-set approximation of LRU is near-linear time, fully
  vectorized, and order-sensitive — the property every scheduling
  experiment relies on.  Tests validate it against the exact model.

* :func:`lru_hits` — exact LRU via reuse (stack) distances.  The default
  implementation batch-counts distinct rows per reuse window with a
  wavelet tree built level-by-level in numpy (O(n log n) work, ~log n
  vectorized passes); the original per-access Fenwick sweep is kept as
  :func:`_reuse_distances_reference` for validation and runs when
  fast paths are disabled (``repro.perf.configure(fastpath=False)``).

Both return a boolean hit mask aligned with the access stream; first
touches (compulsory misses) are always misses.

Everything downstream of :func:`previous_occurrence` is a pure function
of the ``prev`` array, so the executor caches ``prev`` per stream
content (:mod:`repro.gpusim.memo`) and calls the ``*_from_prev``
variants directly.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

try:  # pragma: no cover - scipy is a declared dependency
    from scipy.sparse import _sparsetools as _sptools
except ImportError:  # pragma: no cover
    _sptools = None

from ..perf import cache_model_mode, fastpath_enabled
from . import _native

__all__ = [
    "previous_occurrence",
    "window_hits",
    "window_hits_from_prev",
    "approx_hits_from_prev",
    "lru_hits",
    "reuse_distances",
    "reuse_distances_from_prev",
    "hit_mask",
    "effective_window",
    "estimate_distinct_in_window",
]


def _group_by_value(
    stream: np.ndarray,
) -> "Tuple[np.ndarray, np.ndarray] | None":
    """Stream positions grouped by row id, index-ascending within a group.

    The grouped order is equivalent to ``np.argsort(stream,
    kind="stable")`` but O(n): row ids are small non-negative ints, so a
    counting sort (scipy's C coo->csr row-grouping pass, which is stable
    and does not merge duplicates) replaces the comparison sort.  Returns
    ``(order, indptr)`` where ``indptr[v]:indptr[v+1]`` delimits value
    ``v``'s group, or ``None`` when the preconditions don't hold and the
    caller must argsort.
    """
    if _sptools is None or stream.dtype.kind not in "iu":
        return None
    n = stream.shape[0]
    if n >= np.iinfo(np.int32).max:
        return None
    lo = int(stream.min())
    hi = int(stream.max())
    if lo < 0 or hi > 50_000_000:  # indptr stays small vs the stream
        return None
    nvals = hi + 1
    rows = stream.astype(np.int32, copy=False)
    cols = np.zeros(n, dtype=np.int32)
    indptr = np.zeros(nvals + 1, dtype=np.int32)
    indices = np.empty(n, dtype=np.int32)
    order = np.empty(n, dtype=np.int64)
    _sptools.coo_tocsr(
        nvals, 1, n, rows, cols, np.arange(n, dtype=np.int64),
        indptr, indices, order,
    )
    return order, indptr


#: Monotonically growing ``0..n`` ramp shared by the hot masks below —
#: re-materializing ``np.arange`` per call is measurable at stream scale.
_RAMP: list = [np.empty(0, dtype=np.int64)]


def index_ramp(n: int) -> np.ndarray:
    """Read-only ``arange(n, dtype=int64)`` backed by a reusable buffer."""
    buf = _RAMP[0]
    if buf.shape[0] < n:
        buf = np.arange(max(n, 2 * buf.shape[0]), dtype=np.int64)
        _RAMP[0] = buf
    return buf[:n]


def previous_occurrence(stream: np.ndarray) -> np.ndarray:
    """For each position, the index of the previous access to the same row.

    Returns ``int64[n]`` with ``-1`` where the access is a first touch.
    Vectorized: grouping accesses per row in stream order (stable argsort,
    or an O(n) counting sort when the fast path is on).
    """
    stream = np.asarray(stream)
    n = stream.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.int64)
    if fastpath_enabled() and stream.dtype.kind in "iu" and (
        _native.available()
    ):
        lo = int(stream.min())
        hi = int(stream.max())
        if lo >= 0 and hi <= 50_000_000:
            # Single last-seen-position pass (the textbook O(n)
            # algorithm, sequential by nature — see _native).  Values are
            # exact indices, so the output is identical by definition.
            s64 = np.ascontiguousarray(stream, dtype=np.int64)
            return _native.prev_occurrence(s64, hi + 1)
    grouped = _group_by_value(stream) if fastpath_enabled() else None
    if grouped is None:
        order = np.argsort(stream, kind="stable")
        sorted_rows = stream[order]
        prev = np.full(n, -1, dtype=np.int64)
        same = sorted_rows[1:] == sorted_rows[:-1]
        prev[order[1:]] = np.where(same, order[:-1], -1)
        return prev
    order, indptr = grouped
    # Positions ascend within a value group (the counting sort is
    # stable), so each grouped element's predecessor in ``order`` is its
    # previous occurrence — except at group starts, which are first
    # touches.  ``indptr`` gives the group starts directly, replacing the
    # gather-and-compare of adjacent sorted values.
    shifted = np.empty(n, dtype=np.int64)
    shifted[0] = -1
    shifted[1:] = order[:-1]
    group_starts = indptr[:-1]
    shifted[group_starts[group_starts < n]] = -1
    prev = np.empty(n, dtype=np.int64)
    prev[order] = shifted
    return prev


def estimate_distinct_in_window(
    prev: np.ndarray, window: int, samples: int = 8,
    max_eval: int = 65536,
) -> float:
    """Expected number of distinct rows touched in a window of ``window``
    consecutive accesses.

    An access at position ``i`` is the *first* touch of its row within a
    window starting at ``t`` iff ``prev[i] < t``; counting those over
    sampled (and, for long windows, strided) positions estimates the
    working-set function D(w) of Denning's model.
    """
    n = prev.shape[0]
    window = min(window, n)
    if window <= 0:
        return 0.0
    starts = np.linspace(0, n - window, num=samples).astype(np.int64)
    stride = max(1, window // max_eval)
    # ``prev`` may be any integer dtype wide enough for the stream's
    # positions: the probes only compare elements against window starts
    # and count, so a narrower dtype (half the memory traffic) produces
    # bit-identical estimates.  The loop is over ``samples`` (8) starts;
    # each probe is a strided view, never a materialized gather.  Counts
    # are exact integers either way, so the native probe is identical.
    if (
        fastpath_enabled()
        and prev.dtype == np.int32
        and prev.flags.c_contiguous
        and _native.available()
    ):
        # One foreign call covers every sampled start; the native side
        # performs the same count * stride double additions in the same
        # order, so the estimate matches the loop below bit for bit.
        # When the window spans the whole stream the linspace collapses
        # to identical starts: probe once and scale.  Every term is an
        # integer-valued double (sums < 2**53), so the regrouped
        # accumulation is exact and therefore still bit-identical.
        k = len(starts)
        if k > 1 and starts[0] == starts[-1]:
            one = _native.estimate_first_touch(
                prev, starts[:1], window, stride
            )
            return (one * k) / max(k, 1)
        total = _native.estimate_first_touch(prev, starts, window, stride)
        return total / max(k, 1)
    total = 0.0
    for t in starts:
        seg = prev[t : t + window : stride]
        total += np.count_nonzero(seg < t) * stride
    return total / max(len(starts), 1)


def effective_window(
    stream: np.ndarray,
    capacity_rows: int,
    prev: np.ndarray | None = None,
    samples: int = 8,
    max_eval: int = 65536,
    est_cache: "Dict[int, float] | None" = None,
) -> int:
    """Largest access-count window whose working set fits in the cache.

    Binary-searches w such that D(w) ~= capacity.  This converts the LRU
    capacity (distinct rows) into an access-count threshold that adapts
    to the stream's local duplication — hot-hub streams get modest
    windows, community-ordered streams get wide ones.

    ``est_cache`` optionally memoizes D(w) evaluations per window (the
    estimator is a pure function of ``prev``); callers searching the
    same stream at several capacities share the expensive full-stream
    probe.  ``samples``/``max_eval`` tune the estimator's sampling
    density (the approximate tier coarsens both).
    """
    if prev is None:
        prev = previous_occurrence(np.asarray(stream))
    n = prev.shape[0]
    if n == 0:
        return 0
    if fastpath_enabled() and n <= np.iinfo(np.int32).max:
        # Positions fit in int32: probe a narrow copy (comparisons and
        # counts are dtype-independent, so estimates are bit-identical),
        # half the memory traffic for both the numpy and native probes.
        # ``copy=False`` keeps callers' pre-narrowed arrays as-is.
        prev = prev.astype(np.int32, copy=False)

    def estimate(w: int) -> float:
        if est_cache is None:
            return estimate_distinct_in_window(prev, w, samples, max_eval)
        val = est_cache.get(w)
        if val is None:
            val = estimate_distinct_in_window(prev, w, samples, max_eval)
            est_cache[w] = val
        return val

    if estimate(n) <= capacity_rows:
        return n
    lo, hi = max(1, capacity_rows), n
    while hi - lo > max(16, lo // 8):
        mid = (lo + hi) // 2
        if estimate(mid) <= capacity_rows:
            lo = mid
        else:
            hi = mid
    return lo


def window_hits_from_prev(
    prev: np.ndarray, capacity_rows: int, window: int | None = None
) -> np.ndarray:
    """:func:`window_hits` given a precomputed previous-occurrence array."""
    n = prev.shape[0]
    if n == 0:
        return np.zeros(0, dtype=bool)
    if window is None:
        window = effective_window(None, capacity_rows, prev=prev)
    w = max(window, 1)
    if fastpath_enabled():
        # prev >= 0 and (i - prev) <= w  <=>  prev >= max(i - w, 0):
        # one comparison against a fused threshold ramp instead of four
        # stream-length temporaries (or a single native pass).
        if (
            prev.dtype == np.int64
            and prev.flags.c_contiguous
            and _native.available()
        ):
            return _native.window_mask(prev, int(w))
        thresh = index_ramp(n) - np.int64(w)
        np.maximum(thresh, 0, out=thresh)
        return prev >= thresh
    gap = np.arange(n, dtype=np.int64) - prev
    return (prev >= 0) & (gap <= w)


def window_hits(
    stream: np.ndarray, capacity_rows: int, window: int | None = None
) -> np.ndarray:
    """Working-set (windowed-LRU) hit mask for a row access stream.

    An access hits iff the number of accesses since the previous touch of
    the same row is at most the ``window`` — by default the
    :func:`effective_window` whose expected working set matches the
    cache capacity (Denning's working-set approximation of LRU).
    """
    stream = np.asarray(stream)
    if stream.shape[0] == 0:
        return np.zeros(0, dtype=bool)
    prev = previous_occurrence(stream)
    return window_hits_from_prev(prev, capacity_rows, window=window)


#: Sampling density of the approximate tier (``REPRO_CACHE_MODEL=approx``).
#: Fewer window samples and coarser strides than the exact-mode defaults
#: (8 / 65536); tests bound the resulting hit-rate error (see
#: DESIGN.md §12 — |approx − exact LRU| <= 0.12 absolute hit rate on
#: randomized streams, typically well under 0.05).
APPROX_SAMPLES = 4
APPROX_MAX_EVAL = 4096


def approx_hits_from_prev(
    prev: np.ndarray,
    capacity_rows: int,
    est_cache: "Dict[int, float] | None" = None,
) -> np.ndarray:
    """Sampled set-window estimate of the LRU hit mask (approximate tier).

    Replaces exact wavelet-tree stack distances with Denning's
    working-set inversion evaluated at reduced sampling density: find the
    access-count window whose estimated working set matches the cache
    capacity, then call every access with a same-row gap inside that
    window a hit.  Near-linear time, no O(n log n) passes; the error
    contract is validated in ``tests/test_cache_approx.py``.
    """
    window = effective_window(
        None,
        capacity_rows,
        prev=prev,
        samples=APPROX_SAMPLES,
        max_eval=APPROX_MAX_EVAL,
        est_cache=est_cache,
    )
    return window_hits_from_prev(prev, capacity_rows, window=window)


class _Fenwick:
    """Binary indexed tree over positions, for distinct-element counting."""

    __slots__ = ("tree", "n")

    def __init__(self, n: int) -> None:
        self.n = n
        self.tree = np.zeros(n + 1, dtype=np.int64)

    def add(self, i: int, delta: int) -> None:
        i += 1
        tree, n = self.tree, self.n
        while i <= n:
            tree[i] += delta
            i += i & (-i)

    def prefix(self, i: int) -> int:
        """Sum of [0, i]."""
        i += 1
        s = 0
        tree = self.tree
        while i > 0:
            s += tree[i]
            i -= i & (-i)
        return int(s)


def _reuse_distances_reference(stream: np.ndarray) -> np.ndarray:
    """Per-access Fenwick sweep (the pre-vectorization reference).

    Classic offline algorithm: keep a Fenwick tree with a 1 at the most
    recent position of every distinct row; the stack distance at position
    ``i`` for a row last seen at ``p`` is the number of ones in
    ``(p, i)``.  O(n log n) with a Python-level loop over accesses.
    """
    stream = np.asarray(stream)
    n = stream.shape[0]
    prev = previous_occurrence(stream)
    fen = _Fenwick(n)
    out = np.full(n, -1, dtype=np.int64)
    for i in range(n):
        p = prev[i]
        if p >= 0:
            # ones strictly inside (p, i): prefix(i-1) - prefix(p)
            out[i] = fen.prefix(i - 1) - fen.prefix(int(p))
            fen.add(int(p), -1)
        fen.add(i, 1)
    return out


def _wavelet_rank_le(
    vals: np.ndarray, plen: np.ndarray, y: np.ndarray, upper: int
) -> np.ndarray:
    """Batched prefix rank: for each query ``k``, the number of positions
    ``j < plen[k]`` with ``vals[j] <= y[k]`` (``vals``/``y`` in
    ``[0, upper]``).

    A wavelet tree over ``vals`` answers all queries together: each bit
    level stably partitions the array by that bit (one vectorized pass)
    while every query walks down, accumulating the size of the left
    subtrees it skips.  Levels are built on the fly and discarded, so
    peak memory is O(n + q).
    """
    nbits = max(1, int(upper).bit_length())
    # Positions and values both fit int32 for any stream the simulator
    # produces; narrower lanes halve the gather traffic below.
    idx_t = np.int32 if vals.shape[0] < 2**31 - 1 else np.int64
    arr = np.asarray(vals, dtype=idx_t)
    y = np.asarray(y, dtype=idx_t)
    n = arr.shape[0]
    acc = np.zeros(plen.shape[0], dtype=np.int64)
    node_start = np.zeros(plen.shape[0], dtype=idx_t)
    node_end = np.full(plen.shape[0], n, dtype=idx_t)
    pos = np.asarray(plen, dtype=idx_t).copy()
    zp = np.empty(n + 1, dtype=idx_t)
    for level in range(nbits - 1, -1, -1):
        zeros = ((arr >> level) & 1) == 0
        zp[0] = 0
        np.cumsum(zeros, out=zp[1:])
        zn = zp[-1]
        zs, ze, zpos = zp[node_start], zp[node_end], zp[pos]
        go_right = ((y >> level) & 1) == 1
        # Left-subtree elements inside this node's prefix are all <= y
        # when y's bit is set; bank them and descend right.
        acc[go_right] += (zpos - zs)[go_right]
        node_start = np.where(go_right, zn + (node_start - zs), zs)
        node_end = np.where(go_right, zn + (node_end - ze), ze)
        pos = np.where(go_right, zn + (pos - zpos), zpos)
        arr = np.concatenate([arr[zeros], arr[~zeros]])
    # The final node holds elements equal to y; prefix members count.
    return acc + (pos - node_start)


def reuse_distances_from_prev(prev: np.ndarray) -> np.ndarray:
    """Exact LRU stack distances from a previous-occurrence array.

    The stack distance at ``i`` is the number of distinct rows touched in
    ``(prev[i], i)``; each such row contributes exactly one *first* touch
    ``j`` there, characterized by ``prev[j] <= prev[i]``.  With
    ``A(x, y) = #{j <= x : prev[j] <= y}`` this is
    ``A(i-1, p) - A(p, p)`` — a batch of prefix rank queries answered in
    ~log n vectorized passes by :func:`_wavelet_rank_le`.
    """
    prev = np.asarray(prev, dtype=np.int64)
    n = prev.shape[0]
    out = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return out
    q = np.nonzero(prev >= 0)[0]
    if q.size == 0:
        return out
    p = prev[q]
    vals = prev + 1  # shift first-touch marker into [0, n]
    plen = np.concatenate([q, p + 1])  # prefixes [0, i) and [0, p]
    y = np.concatenate([p + 1, p + 1])
    ranks = _wavelet_rank_le(vals, plen, y, upper=n)
    m = q.shape[0]
    out[q] = ranks[:m] - ranks[m:]
    return out


def reuse_distances(stream: np.ndarray) -> np.ndarray:
    """Exact LRU stack distances (number of *distinct* rows touched since
    the previous access to the same row); ``-1`` marks first touches.
    """
    stream = np.asarray(stream)
    if not fastpath_enabled():
        return _reuse_distances_reference(stream)
    if stream.shape[0] == 0:
        return np.full(0, -1, dtype=np.int64)
    return reuse_distances_from_prev(previous_occurrence(stream))


def lru_hits(stream: np.ndarray, capacity_rows: int) -> np.ndarray:
    """Exact fully-associative LRU hit mask."""
    dist = reuse_distances(stream)
    return (dist >= 0) & (dist < capacity_rows)


def hit_mask(
    stream: np.ndarray, capacity_rows: int, model: str = "window"
) -> np.ndarray:
    """Dispatch between the window and exact LRU models.

    When the approximate tier is opted in
    (``REPRO_CACHE_MODEL=approx``), both models resolve to the sampled
    set-window estimator — ``exact`` stays the default, so results are
    bit-identical unless a caller explicitly switches modes.
    """
    if cache_model_mode() == "approx":
        stream = np.asarray(stream)
        if stream.shape[0] == 0:
            return np.zeros(0, dtype=bool)
        return approx_hits_from_prev(
            previous_occurrence(stream), capacity_rows
        )
    if model == "window":
        return window_hits(stream, capacity_rows)
    if model == "lru":
        return lru_hits(stream, capacity_rows)
    raise ValueError(f"unknown cache model {model!r}")
