"""Simulated device memory accounting.

Frameworks register every tensor they would materialize on the GPU; the
tracker raises :class:`SimulatedOOM` when the live footprint exceeds the
configured budget — *before* any host allocation happens, so PyG's [E, F]
expansion on large graphs reproduces the paper's "OOM" cells of Fig. 7
without actually exhausting host RAM.
"""

from __future__ import annotations

from typing import Dict

__all__ = ["SimulatedOOM", "DeviceMemory", "tensor_bytes"]


class SimulatedOOM(MemoryError):
    """The simulated device ran out of memory."""

    def __init__(self, requested: int, live: int, budget: int, what: str):
        self.requested = requested
        self.live = live
        self.budget = budget
        self.what = what
        super().__init__(
            f"simulated OOM allocating {requested / 2**20:.1f} MiB for "
            f"{what!r}: {live / 2**20:.1f} MiB live of "
            f"{budget / 2**20:.1f} MiB budget"
        )


def tensor_bytes(*shape: int, itemsize: int = 4) -> int:
    """Bytes of a dense tensor of the given shape."""
    n = itemsize
    for s in shape:
        n *= int(s)
    return n


class DeviceMemory:
    """Live-set + peak tracker with named allocations."""

    def __init__(self, budget_bytes: int) -> None:
        self.budget = int(budget_bytes)
        self.live = 0
        self.peak = 0
        self._allocs: Dict[str, int] = {}

    def alloc(self, name: str, nbytes: int) -> None:
        nbytes = int(nbytes)
        if self.live + nbytes > self.budget:
            raise SimulatedOOM(nbytes, self.live, self.budget, name)
        self._allocs[name] = self._allocs.get(name, 0) + nbytes
        self.live += nbytes
        self.peak = max(self.peak, self.live)

    def alloc_tensor(self, name: str, *shape: int, itemsize: int = 4) -> None:
        self.alloc(name, tensor_bytes(*shape, itemsize=itemsize))

    def free(self, name: str) -> None:
        nbytes = self._allocs.pop(name, 0)
        self.live -= nbytes

    def free_all(self) -> None:
        self._allocs.clear()
        self.live = 0

    def would_fit(self, nbytes: int) -> bool:
        return self.live + int(nbytes) <= self.budget
