"""Block-level list scheduler: the heart of the GPU simulator.

For each :class:`~repro.gpusim.kernel.KernelSpec` the executor:

1. feeds the kernel's feature-row access stream (in block *issue order* —
   the order locality-aware scheduling permutes) through the L2 cache
   model, obtaining per-block hit/miss counts;
2. prices every block: ``max(compute, memory)`` where the memory term
   splits row traffic into L2-bandwidth (hits) and DRAM-bandwidth
   (misses + streaming) shares, plus atomics and a fixed block cost;
3. greedily list-schedules blocks onto ``num_sms * blocks_per_sm`` slots
   (earliest-free-slot, issue order), yielding the makespan, the balanced
   lower bound (Fig. 8) and the active-block timeline (Table 4).

Issue order approximates hardware dispatch order: blocks adjacent in the
array run concurrently, which is exactly the contract the paper's task
scheduling relies on ("distribute tasks of nodes in the same cluster into
adjacent computing units").

Performance layer (see DESIGN.md "Performance architecture"):

* the list scheduler runs wave-by-wave in numpy, falling back to the
  reference binary heap only for the irregular tail of a wave;
* stream analyses (issue permutation + previous-occurrence array) and
  whole :class:`KernelStats` are memoized content-addressed in
  :mod:`repro.gpusim.memo`, so ablation variants and tuner rounds stop
  re-simulating shared kernels;
* the cache-model and scheduling stages report wall-clock into
  :data:`repro.perf.PERF`; ``simulate_kernels`` attaches the per-run
  delta to ``RunReport.extra["perf"]``.
"""

from __future__ import annotations

import dataclasses
import heapq
from typing import Iterable, Sequence, Tuple

import numpy as np

from ..perf import (
    PERF,
    cache_model_mode,
    fastpath_enabled,
    memo_enabled,
    workers,
)
from .cache import (
    approx_hits_from_prev,
    effective_window,
    hit_mask,
    index_ramp,
    previous_occurrence,
    reuse_distances_from_prev,
    window_hits_from_prev,
)
from . import _native
from .config import GPUConfig
from .kernel import KernelSpec
from .memo import (
    KERNEL_MEMO,
    PERM_CACHE,
    PLAN_MEMO,
    STREAM_CACHE,
    StreamPlan,
    array_digest,
    memo_stats,
)
from .metrics import KernelStats, RunReport, occupancy_below

__all__ = [
    "simulate_kernel",
    "simulate_kernels",
    "simulate_plan",
    "plan_memo_key",
    "block_durations",
    "interleaved_order",
]


def interleaved_order(
    row_ptr: np.ndarray, num_slots: int
) -> np.ndarray:
    """Permutation putting block row accesses in concurrent-execution order.

    Blocks run in *waves* of ``num_slots`` concurrently-resident blocks
    (issue order), and the accesses of a wave's blocks interleave
    round-robin — the stream L2 actually sees.  This is what lets
    neighbor grouping narrow the active working set (smaller blocks →
    shorter waves) and locality-aware scheduling exploit wave-mates'
    shared neighbors, exactly the synergy of paper §4.1.2.
    """
    lengths = np.diff(row_ptr)
    total = int(row_ptr[-1])
    # Time-aware interleave: each slot consumes one row per tick, blocks
    # claim the earliest-free slot in issue order (rows as the clock).  A
    # hub block therefore overlaps the *thousands* of short tasks that
    # stream past it — precisely the "huge active area" the paper
    # describes — while grouped/clustered layouts keep co-issued blocks
    # co-resident.
    starts, _ = _list_schedule(lengths.astype(np.float64), num_slots)
    if fastpath_enabled() and total < (1 << 30):
        # One radix argsort instead of a three-key lexsort.  ``tick`` is
        # integer-valued (sums of integer lengths) and < 2*total, so
        # ``(tick << 31) | offset`` fits int64 and orders by
        # (tick, offset); a *stable* sort breaks remaining ties by array
        # index, which within a fixed offset increases with block id —
        # exactly lexsort's (tick, offset, block) order.  Natively the
        # sort itself disappears: ticks and offsets are small ints, so
        # two stable counting passes produce the same permutation with
        # no comparison sort at all.
        if _native.available() and total:
            return _native.interleave_order(
                np.ascontiguousarray(row_ptr, dtype=np.int64), starts
            )
        block_of = np.repeat(
            np.arange(lengths.shape[0], dtype=np.int64), lengths
        )
        offset = row_ptr[:-1].astype(np.int64, copy=False)[block_of]
        np.subtract(index_ramp(total), offset, out=offset)
        tick = starts[block_of]
        tick += offset
        key = tick.astype(np.int64)
        key <<= 31
        key += offset
        return np.argsort(key, kind="stable")
    block_of = np.repeat(
        np.arange(lengths.shape[0], dtype=np.int64), lengths
    )
    offset = np.arange(total, dtype=np.int64) - row_ptr[:-1][block_of]
    tick = starts[block_of] + offset
    return np.lexsort((block_of, offset, tick))


# ----------------------------------------------------------------------
# Stream analysis (content-cached)
# ----------------------------------------------------------------------

def _stream_plan(
    row_ptr: np.ndarray,
    row_ids: np.ndarray,
    num_slots: int,
    key: tuple | None = None,
) -> StreamPlan:
    """Issue permutation + previous-occurrence array for one stream.

    Keyed by stream *content*, so every kernel sharing a block layout and
    row stream (tuner rounds at different feature lengths, ablation
    variants, repeated layers) reuses the argsort-heavy analysis.
    Callers holding long-lived parent arrays may pass a precomputed
    ``key`` so repeat lookups never re-hash sliced views.
    """
    if memo_enabled():
        if key is None:
            key = (array_digest(row_ptr), array_digest(row_ids), num_slots)
        plan = STREAM_CACHE.get(key)
        if plan is not None:
            return plan
        # The issue permutation depends only on the block layout, never
        # on the row stream, so streams that differ only in their rows
        # (tuner rounds reshaping features over one layout) share the
        # argsort under a second, layout-only key.
        perm_key = (array_digest(row_ptr), num_slots)
        perm = PERM_CACHE.get(perm_key)
        if perm is None:
            perm = interleaved_order(row_ptr, num_slots)
            PERM_CACHE.put(perm_key, perm, nbytes=perm.nbytes)
    else:
        key = None
        perm = interleaved_order(row_ptr, num_slots)
    prev = previous_occurrence(row_ids[perm])
    plan = StreamPlan(perm=perm, prev=prev)
    if key is not None:
        STREAM_CACHE.put(key, plan, nbytes=plan.nbytes)
    return plan


def _plan_hits(
    plan: StreamPlan, capacity: int, model: str
) -> np.ndarray:
    """Hit mask (in permuted order) from a cached stream analysis."""
    mode = cache_model_mode()
    if mode == "approx":
        return approx_hits_from_prev(
            plan.prev, capacity,
            est_cache=plan.distinct.setdefault("approx", {}),
        )
    if model == "window":
        window = plan.windows.get((capacity, mode))
        if window is None:
            prev = plan.prev
            if (
                fastpath_enabled()
                and prev.shape[0] <= np.iinfo(np.int32).max
            ):
                # The window searches at each probed capacity share one
                # narrow copy (estimates are dtype-independent).
                if plan.prev32 is None:
                    plan.prev32 = prev.astype(np.int32)
                prev = plan.prev32
            window = effective_window(
                None, capacity, prev=prev,
                est_cache=plan.distinct.setdefault(mode, {}),
            )
            plan.windows[(capacity, mode)] = window
        return window_hits_from_prev(plan.prev, capacity, window=window)
    if model == "lru":
        if plan.lru_distances is None:
            plan.lru_distances = reuse_distances_from_prev(plan.prev)
        dist = plan.lru_distances
        return (dist >= 0) & (dist < capacity)
    raise ValueError(f"unknown cache model {model!r}")


def _row_hit_counts(
    kernel: KernelSpec, config: GPUConfig
) -> Tuple[np.ndarray, float]:
    """Per-block row-hit counts and the overall hit rate."""
    b = kernel.num_blocks
    if kernel.row_ids is None or kernel.num_row_accesses == 0:
        return np.zeros(b, dtype=np.float64), 0.0
    capacity = config.cache_capacity_rows(max(kernel.row_bytes, 1))
    limit = config.cache_trace_limit
    row_ptr = kernel.row_ptr
    row_ids = kernel.row_ids
    slots = config.total_block_slots
    use_plan = fastpath_enabled() or memo_enabled()
    if row_ids.shape[0] > limit:
        # Sample a contiguous block prefix: hit *rates* are stationary in
        # block order, so a window estimates the full-stream rate
        # (DESIGN.md §5).
        cut_block = int(np.searchsorted(row_ptr, limit, side="right")) - 1
        cut_block = max(cut_block, 1)
        cut = int(row_ptr[cut_block])
        sub_ptr = row_ptr[: cut_block + 1]
        sub_ids = row_ids[:cut]
        if use_plan:
            # Key by the *parent* arrays (long-lived, so their digests
            # are identity-cached) plus the cut, not by the fresh prefix
            # views — repeat lookups then cost zero hashing.
            key = None
            if memo_enabled():
                key = (
                    "prefix",
                    array_digest(row_ptr),
                    array_digest(row_ids),
                    cut_block,
                    slots,
                )
            plan = _stream_plan(sub_ptr, sub_ids, slots, key=key)
            hits_win = _plan_hits(plan, capacity, config.cache_model)
        else:
            perm = interleaved_order(sub_ptr, slots)
            hits_win = hit_mask(sub_ids[perm], capacity, config.cache_model)
        rate = float(hits_win.mean()) if hits_win.size else 0.0
        per_block_rows = np.diff(row_ptr).astype(np.float64)
        return per_block_rows * rate, rate
    if use_plan:
        plan = _stream_plan(row_ptr, row_ids, slots)
        perm = plan.perm
        hits_sorted = _plan_hits(plan, capacity, config.cache_model)
    else:
        perm = interleaved_order(row_ptr, slots)
        hits_sorted = hit_mask(row_ids[perm], capacity, config.cache_model)
    hits = np.empty_like(hits_sorted)
    hits[perm] = hits_sorted
    if fastpath_enabled():
        # Per-block hit counts as prefix-sum differences: one cumsum
        # pass, empty blocks fall out as zero-width differences.  The
        # sums are exact integers, identical to the reduceat below.
        cs = np.zeros(hits.shape[0] + 1, dtype=np.int64)
        np.cumsum(hits, dtype=np.int64, out=cs[1:])
        counts = (cs[row_ptr[1:]] - cs[row_ptr[:-1]]).astype(np.float64)
    else:
        # Aggregate hits per block. reduceat needs non-empty rows
        # handled.
        counts = np.zeros(b, dtype=np.float64)
        lengths = np.diff(row_ptr)
        nonempty = lengths > 0
        if nonempty.any():
            red = np.add.reduceat(
                hits.astype(np.int64), row_ptr[:-1][nonempty]
            )
            counts[nonempty] = red
    rate = float(hits.mean()) if hits.size else 0.0
    return counts, rate


def block_durations(
    kernel: KernelSpec, config: GPUConfig
) -> Tuple[np.ndarray, np.ndarray, float]:
    """Price each block; returns (durations, row_hit_counts, hit_rate)."""
    with PERF.stage("cache_model"):
        hit_counts, hit_rate = _row_hit_counts(kernel, config)
    rows = (
        np.diff(kernel.row_ptr).astype(np.float64)
        if kernel.row_ptr is not None
        else np.zeros(kernel.num_blocks)
    )
    miss_counts = rows - hit_counts
    rb = float(kernel.row_bytes)
    dram_bytes = miss_counts * rb + kernel.stream_bytes
    l2_bytes = hit_counts * rb
    # Dense kernels run at discounted peak; trace-carrying (irregular)
    # kernels pay full per-slot rates.
    eff = config.dense_efficiency if kernel.tag == "dense" else 1.0
    compute_t = kernel.block_flops / (config.flops_per_slot * eff)
    mem_t = (
        dram_bytes / config.dram_bw_per_slot
        + l2_bytes / config.l2_bw_per_slot
    )
    dur = np.maximum(compute_t, mem_t)
    dur = dur + config.block_overhead
    dur = dur + kernel.atomics * config.atomic_cost
    return dur, hit_counts, hit_rate


# ----------------------------------------------------------------------
# List scheduling
# ----------------------------------------------------------------------

def _list_schedule_reference(
    durations: np.ndarray, slots: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Greedy earliest-free-slot schedule via a binary heap (reference)."""
    b = durations.shape[0]
    if b == 0:
        return np.zeros(0), np.zeros(0)
    if b <= slots:
        starts = np.zeros(b)
        return starts, durations.copy()
    heap = [(0.0, s) for s in range(slots)]
    heapq.heapify(heap)
    starts = np.empty(b)
    ends = np.empty(b)
    push, pop = heapq.heappush, heapq.heappop
    for i in range(b):
        free_at, slot = pop(heap)
        starts[i] = free_at
        end = free_at + durations[i]
        ends[i] = end
        push(heap, (end, slot))
    return starts, ends


def _const_run_schedule(
    free: np.ndarray,
    dstar: float,
    count: int,
    starts: np.ndarray,
    ends: np.ndarray,
    base: int,
) -> Tuple[np.ndarray, int]:
    """Greedy-schedule ``count`` blocks of equal duration, vectorized.

    With one duration ``dstar``, each slot's successive free times form a
    chain ``F[j], F[j]+d, (F[j]+d)+d, ...`` and the heap's pops are
    exactly the ``count`` smallest chain values, taken ascending: the pop
    sequence is nondecreasing, every push lands at ``pop + d`` >= the
    pop, and deeper chain values only grow — so the heap's frontier min
    is always the global min of the remaining chain multiset.  Chains
    are materialized with ``np.add.accumulate`` down the level axis,
    which performs the same left-associated float additions the heap
    would, so every start/end is bit-identical, not just equal.

    Fills ``starts``/``ends`` from ``base`` and returns the new sorted
    free multiset plus the number of blocks left unscheduled (non-zero
    only on the defensive no-progress bail).
    """
    k = free.shape[0]
    if dstar == 0.0:
        # Zero-length blocks: pop the min, push it straight back.
        v = free[0]
        starts[base : base + count] = v
        ends[base : base + count] = v
        return free, 0
    F = free
    pos = 0
    rem = count
    while rem > 0:
        chunk = min(rem, 32768)
        # Horizon heuristic: chains whose current head lies within the
        # batch's value reach participate; the rest stay frozen behind
        # the cap.  Only batch *sizing* depends on this — correctness
        # comes from the cap below.
        level0 = max(1, chunk // k)
        m = int(np.searchsorted(F, F[0] + (level0 + 1) * dstar, "right"))
        m = max(1, min(m, k))
        levels = max(1, chunk // m)
        M = np.empty((levels + 1, m))
        M[0] = F[:m]
        M[1:] = dstar
        np.add.accumulate(M, axis=0, out=M)
        # No value >= cap may be popped yet: frozen chains (>= F[m]) and
        # unbuilt levels (>= M[levels, 0], the smallest level-``levels``
        # value since float addition is monotone) could still undercut.
        cap = M[levels, 0] if m >= k else min(F[m], M[levels, 0])
        flat = M[:levels].reshape(-1)
        order = np.argsort(flat, kind="stable")
        vals = flat[order]
        p = min(int(np.searchsorted(vals, cap, "left")), rem)
        if p <= 0:  # cannot happen (F[0] < cap); guard the loop anyway
            break
        sl = slice(base + pos, base + pos + p)
        starts[sl] = vals[:p]
        np.add(vals[:p], dstar, out=ends[sl])
        # Popped cells form a prefix of each chain: advance each head to
        # its first unpopped level and re-sort the frontier.
        cnt = np.bincount(order[:p] % m, minlength=m)
        heads = M[cnt, np.arange(m)]
        if m < k:
            F = np.concatenate([heads, F[m:]])
            F.sort()
        else:
            F = np.sort(heads)
        pos += p
        rem -= p
    return F, rem


def _heap_run(
    durations: np.ndarray,
    starts: np.ndarray,
    ends: np.ndarray,
    lo: int,
    hi: int,
    free: np.ndarray,
) -> np.ndarray:
    """Greedy-schedule ``durations[lo:hi]`` through the heap.

    ``free`` is the live multiset of slot free times (any order, not
    mutated); the new multiset is returned sorted ascending.  Uses the
    compiled scheduler when available — a binary min-heap pops the same
    multiset minima whatever its internal layout, and the C loop runs
    the identical ``end = start + duration`` additions, so both lanes
    are bit-identical to :func:`_list_schedule_reference`.
    """
    if _native.available():
        heap = free.copy()
        _native.greedy_schedule(
            np.ascontiguousarray(durations[lo:hi]), heap,
            starts[lo:hi], ends[lo:hi],
        )
        return np.sort(heap)
    heap = free.tolist()
    heapq.heapify(heap)
    push, pop = heapq.heappush, heapq.heappop
    out_s = []
    out_e = []
    for d in durations[lo:hi].tolist():
        s = pop(heap)
        out_s.append(s)
        e = s + d
        out_e.append(e)
        push(heap, e)
    starts[lo:hi] = out_s
    ends[lo:hi] = out_e
    return np.sort(np.asarray(heap))


def _wave_schedule(
    durations: np.ndarray, slots: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Wave-decomposed greedy schedule, bit-identical to the heap.

    Maintain the sorted multiset of slot free times.  A wave of up to
    ``slots`` blocks can be assigned in one shot — block ``j`` to the
    ``j``-th earliest free slot — exactly when no block's freshly
    created end time undercuts a later block's claimed slot:
    ``free[j] <= min(ends of blocks < j in the wave)``.  The longest
    valid prefix of every wave is assigned vectorized; only the
    (rare) irregular remainder of a wave goes through the heap.  Every
    start/end is produced by the same float additions as the reference,
    so results are bit-identical, not just equal makespans.
    """
    b = durations.shape[0]
    starts = np.empty(b)
    ends = np.empty(b)
    free = np.zeros(slots)  # sorted ascending
    # Run map: GNN duration streams are dominated by long stretches of
    # one repeated value (degree-bound blocks sharing flop/byte/hit
    # counts), which the constant-duration lane schedules in bulk.
    run_min = 4 * slots
    bounds = np.flatnonzero(durations[1:] != durations[:-1]) + 1
    run_starts = np.concatenate(([0], bounds))
    run_ends = np.concatenate((bounds, [b]))
    big = run_ends - run_starts >= run_min
    big_starts = run_starts[big]
    big_ends = run_ends[big]
    nbig = big_starts.shape[0]
    bi = 0  # index of the first big run not fully behind ``i``
    i = 0
    # Windowed accept-rate statistics: duration streams routinely switch
    # regime (an irregular size-class mix up front, a near-uniform tail
    # behind it), so the decision to fall back to the heap must not be
    # sticky — a bounded heap burst clears the irregular region, then
    # the vectorized wave path gets a fresh chance.
    win_base = 0
    accepted = 0
    while i < b:
        while bi < nbig and big_ends[bi] <= i:
            bi += 1
        if (
            bi < nbig
            and big_starts[bi] <= i
            and big_ends[bi] - i >= run_min
        ):
            stop = int(big_ends[bi])
            free, left = _const_run_schedule(
                free, float(durations[i]), stop - i, starts, ends, i
            )
            i = stop - left
            win_base = i
            accepted = 0
            continue
        if i - win_base >= 8 * slots and accepted < (i - win_base) // 2:
            # Irregular duration mix: the vectorized prefix keeps
            # collapsing, so per-wave numpy overhead exceeds the heap's.
            # Burn through a bounded window with the heap — a wide one
            # when the compiled loop is carrying it.
            burst = (256 if _native.available() else 16) * slots
            stop = min(b, i + burst)
            if bi < nbig and big_starts[bi] > i:
                # Leave upcoming constant runs to the vectorized lane.
                stop = min(stop, int(big_starts[bi]))
            free = _heap_run(durations, starts, ends, i, stop, free)
            i = stop
            if i == b:
                return starts, ends
            win_base = i
            accepted = 0
            continue
        c = min(slots, b - i)
        d = durations[i : i + c]
        fc = free[:c]
        new_ends = fc + d
        cap = np.minimum.accumulate(new_ends)
        ok = fc[1:] <= cap[:-1]
        m = c if ok.all() else int(np.argmin(ok)) + 1
        starts[i : i + m] = fc[:m]
        ends[i : i + m] = new_ends[:m]
        accepted += m
        if m < c:
            # Irregular tail of this wave (e.g. a hub slot still busy):
            # finish it with the heap over the live multiset.
            live = np.concatenate([free[m:], new_ends[:m]])
            free = _heap_run(durations, starts, ends, i + m, i + c, live)
        elif c == slots:
            free = np.sort(new_ends)
        else:  # final partial wave: free times no longer needed
            free = np.sort(np.concatenate([free[c:], new_ends]))
        i += c
    return starts, ends


def _list_schedule(
    durations: np.ndarray, slots: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Greedy earliest-free-slot schedule; returns (starts, ends)."""
    b = durations.shape[0]
    if b == 0:
        return np.zeros(0), np.zeros(0)
    if b <= slots:
        starts = np.zeros(b)
        return starts, durations.copy()
    # Fast path: (near-)uniform durations schedule round-robin exactly.
    dmin, dmax = float(durations.min()), float(durations.max())
    if dmax - dmin <= 1e-12 * max(dmax, 1e-30):
        waves = np.arange(b, dtype=np.int64) // slots
        starts = waves * dmax
        return starts.astype(np.float64), starts + durations
    if not fastpath_enabled():
        return _list_schedule_reference(durations, slots)
    return _wave_schedule(durations, slots)


# ----------------------------------------------------------------------
# Kernel simulation
# ----------------------------------------------------------------------

def _simulate_kernel_cold(
    kernel: KernelSpec, config: GPUConfig, dispatch_overhead: float
) -> KernelStats:
    durations, hit_counts, _ = block_durations(kernel, config)
    slots = config.total_block_slots
    with PERF.stage("schedule"):
        starts, ends = _list_schedule(durations, slots)
    makespan = float(ends.max()) if ends.size else 0.0
    balanced = float(durations.sum()) / slots
    rows = kernel.num_row_accesses
    row_hits = float(hit_counts.sum())
    miss_bytes = (rows - row_hits) * kernel.row_bytes
    occ = occupancy_below(starts, ends, slots)
    return KernelStats(
        name=kernel.name,
        tag=kernel.tag,
        makespan=makespan,
        launch_overhead=(
            config.kernel_launch_overhead + dispatch_overhead
            if kernel.counts_launch
            else 0.0
        ),
        flops=kernel.total_flops,
        bytes_dram=float(miss_bytes + kernel.stream_bytes.sum()),
        bytes_l2=float(row_hits * kernel.row_bytes),
        row_accesses=rows,
        row_hits=int(round(row_hits)),
        num_blocks=kernel.num_blocks,
        balanced_time=balanced,
        occupancy=occ,
    )


def simulate_kernel(
    kernel: KernelSpec, config: GPUConfig, dispatch_overhead: float = 0.0
) -> KernelStats:
    """Run one kernel through the cache, pricing and scheduling models.

    ``dispatch_overhead`` is the per-operator host-side framework cost
    (Observation 3's "framework scheduling"); baselines dispatch every
    computation-graph op through the framework runtime, fused runtimes
    pay it once per fused kernel.

    Results are memoized content-addressed (see :mod:`repro.gpusim.memo`):
    two kernels with identical pricing inputs, row streams and config
    share one simulation, with the display name restored per caller.
    """
    if not memo_enabled():
        return _simulate_kernel_cold(kernel, config, dispatch_overhead)
    key = KERNEL_MEMO.fingerprint(kernel, config, dispatch_overhead)
    cached = KERNEL_MEMO.get(key)
    if cached is not None:
        PERF.count("kernel_memo_hit")
        return dataclasses.replace(
            cached, name=kernel.name, occupancy=dict(cached.occupancy)
        )
    PERF.count("kernel_memo_miss")
    stats = _simulate_kernel_cold(kernel, config, dispatch_overhead)
    KERNEL_MEMO.put(key, stats)
    return stats


def simulate_kernels(
    kernels: Sequence[KernelSpec] | Iterable[KernelSpec],
    config: GPUConfig,
    label: str = "",
    peak_mem_bytes: int = 0,
    dispatch_overhead: float = 0.0,
) -> RunReport:
    """Simulate a kernel sequence (one forward pass) into a RunReport.

    ``report.extra["perf"]`` carries the instrumentation delta for this
    run: cache-model/schedule seconds and memo hit counters.
    """
    snap = PERF.snapshot()
    report = RunReport(label=label, peak_mem_bytes=peak_mem_bytes)
    kernels = list(kernels)
    n_workers = workers()
    parallel_info = None
    if n_workers > 1 and len(kernels) > 1:
        from .parallel import simulate_kernels_parallel

        stats_list, parallel_info = simulate_kernels_parallel(
            kernels, config, dispatch_overhead, n_workers
        )
        for stats in stats_list:
            report.add(stats)
    else:
        for k in kernels:
            report.add(simulate_kernel(k, config, dispatch_overhead))
    delta = PERF.delta_since(snap)
    counts = delta.get("counts", {})
    hits = counts.get("kernel_memo_hit", 0)
    misses = counts.get("kernel_memo_miss", 0)
    report.extra["perf"] = {
        "cache_model_seconds": delta["seconds"].get("cache_model", 0.0),
        "schedule_seconds": delta["seconds"].get("schedule", 0.0),
        "kernel_memo_hits": hits,
        "kernel_memo_misses": misses,
        "kernel_memo_hit_rate": hits / (hits + misses)
        if hits + misses
        else 0.0,
        "stream_cache_hits": counts.get("stream_cache_hit", 0),
        "stream_cache_misses": counts.get("stream_cache_miss", 0),
        "memo": memo_stats(),
    }
    if parallel_info is not None:
        report.extra["perf"]["parallel"] = parallel_info
    return report


def plan_memo_key(plan, config: GPUConfig | None = None):
    """The :data:`PLAN_MEMO` address of one plan execution.

    Exposed so the serve layer can peek at which plans of a batching
    round will simulate cold (and push exactly those through the worker
    pool) without perturbing the memo's hit/miss counters.
    """
    cfg = config if config is not None else plan.gpu_config
    return (
        plan.plan_id,
        dataclasses.astuple(cfg),
        plan.dispatch_overhead,
        cache_model_mode(),
    )


def simulate_plan(plan, config: GPUConfig | None = None) -> RunReport:
    """Execute a :class:`~repro.core.plan.CompiledPlan`.

    The plan is content-addressed, so its whole simulated outcome is
    memoized under ``(plan_id, config, dispatch_overhead)`` — a repeat
    execution of the same plan rebuilds the :class:`RunReport` from the
    cached :class:`KernelStats` sequence without touching the cache
    model or the scheduler at all.  ``config`` defaults to the
    configuration the plan was compiled for.
    """
    cfg = config if config is not None else plan.gpu_config
    if not memo_enabled():
        return simulate_kernels(
            plan.kernels, cfg, label=plan.label,
            peak_mem_bytes=plan.peak_mem_bytes,
            dispatch_overhead=plan.dispatch_overhead,
        )
    key = plan_memo_key(plan, cfg)
    cached = PLAN_MEMO.get(key)
    if cached is not None:
        report = RunReport(
            label=plan.label, peak_mem_bytes=plan.peak_mem_bytes
        )
        for stats in cached:
            report.add(dataclasses.replace(
                stats, occupancy=dict(stats.occupancy)
            ))
        report.extra["perf"] = {
            "cache_model_seconds": 0.0,
            "schedule_seconds": 0.0,
            "kernel_memo_hits": 0,
            "kernel_memo_misses": 0,
            "kernel_memo_hit_rate": 0.0,
            "stream_cache_hits": 0,
            "stream_cache_misses": 0,
            "plan_memo_hit": True,
            "memo": memo_stats(),
        }
        return report
    report = simulate_kernels(
        plan.kernels, cfg, label=plan.label,
        peak_mem_bytes=plan.peak_mem_bytes,
        dispatch_overhead=plan.dispatch_overhead,
    )
    report.extra["perf"]["plan_memo_hit"] = False
    stats_tuple = tuple(report.kernels)
    # Rough per-entry footprint so PLAN_MEMO's optional byte budget is
    # meaningful: KernelStats is scalar fields plus an occupancy dict.
    nbytes = sum(256 + 64 * len(s.occupancy) for s in stats_tuple)
    PLAN_MEMO.put(key, stats_tuple, nbytes=nbytes)
    return report
