"""Block-level list scheduler: the heart of the GPU simulator.

For each :class:`~repro.gpusim.kernel.KernelSpec` the executor:

1. feeds the kernel's feature-row access stream (in block *issue order* —
   the order locality-aware scheduling permutes) through the L2 cache
   model, obtaining per-block hit/miss counts;
2. prices every block: ``max(compute, memory)`` where the memory term
   splits row traffic into L2-bandwidth (hits) and DRAM-bandwidth
   (misses + streaming) shares, plus atomics and a fixed block cost;
3. greedily list-schedules blocks onto ``num_sms * blocks_per_sm`` slots
   (earliest-free-slot, issue order), yielding the makespan, the balanced
   lower bound (Fig. 8) and the active-block timeline (Table 4).

Issue order approximates hardware dispatch order: blocks adjacent in the
array run concurrently, which is exactly the contract the paper's task
scheduling relies on ("distribute tasks of nodes in the same cluster into
adjacent computing units").

Performance layer (see DESIGN.md "Performance architecture"):

* the list scheduler runs wave-by-wave in numpy, falling back to the
  reference binary heap only for the irregular tail of a wave;
* stream analyses (issue permutation + previous-occurrence array) and
  whole :class:`KernelStats` are memoized content-addressed in
  :mod:`repro.gpusim.memo`, so ablation variants and tuner rounds stop
  re-simulating shared kernels;
* the cache-model and scheduling stages report wall-clock into
  :data:`repro.perf.PERF`; ``simulate_kernels`` attaches the per-run
  delta to ``RunReport.extra["perf"]``.
"""

from __future__ import annotations

import dataclasses
import heapq
from typing import Iterable, Sequence, Tuple

import numpy as np

from ..perf import PERF, fastpath_enabled, memo_enabled
from .cache import (
    effective_window,
    hit_mask,
    previous_occurrence,
    reuse_distances_from_prev,
    window_hits_from_prev,
)
from .config import GPUConfig
from .kernel import KernelSpec
from .memo import (
    KERNEL_MEMO,
    PLAN_MEMO,
    STREAM_CACHE,
    StreamPlan,
    array_digest,
    memo_stats,
)
from .metrics import KernelStats, RunReport, occupancy_below

__all__ = [
    "simulate_kernel",
    "simulate_kernels",
    "simulate_plan",
    "block_durations",
    "interleaved_order",
]


def interleaved_order(
    row_ptr: np.ndarray, num_slots: int
) -> np.ndarray:
    """Permutation putting block row accesses in concurrent-execution order.

    Blocks run in *waves* of ``num_slots`` concurrently-resident blocks
    (issue order), and the accesses of a wave's blocks interleave
    round-robin — the stream L2 actually sees.  This is what lets
    neighbor grouping narrow the active working set (smaller blocks →
    shorter waves) and locality-aware scheduling exploit wave-mates'
    shared neighbors, exactly the synergy of paper §4.1.2.
    """
    lengths = np.diff(row_ptr)
    total = int(row_ptr[-1])
    block_of = np.repeat(
        np.arange(lengths.shape[0], dtype=np.int64), lengths
    )
    offset = np.arange(total, dtype=np.int64) - row_ptr[:-1][block_of]
    # Time-aware interleave: each slot consumes one row per tick, blocks
    # claim the earliest-free slot in issue order (rows as the clock).  A
    # hub block therefore overlaps the *thousands* of short tasks that
    # stream past it — precisely the "huge active area" the paper
    # describes — while grouped/clustered layouts keep co-issued blocks
    # co-resident.
    starts, _ = _list_schedule(lengths.astype(np.float64), num_slots)
    tick = starts[block_of] + offset
    if fastpath_enabled() and total < (1 << 30):
        # One radix argsort instead of a three-key lexsort.  ``tick`` is
        # integer-valued (sums of integer lengths) and < 2*total, so
        # ``(tick << 31) | offset`` fits int64 and orders by
        # (tick, offset); a *stable* sort breaks remaining ties by array
        # index, which within a fixed offset increases with block id —
        # exactly lexsort's (tick, offset, block) order.
        key = (tick.astype(np.int64) << 31) + offset
        return np.argsort(key, kind="stable")
    return np.lexsort((block_of, offset, tick))


# ----------------------------------------------------------------------
# Stream analysis (content-cached)
# ----------------------------------------------------------------------

def _stream_plan(
    row_ptr: np.ndarray, row_ids: np.ndarray, num_slots: int
) -> StreamPlan:
    """Issue permutation + previous-occurrence array for one stream.

    Keyed by stream *content*, so every kernel sharing a block layout and
    row stream (tuner rounds at different feature lengths, ablation
    variants, repeated layers) reuses the argsort-heavy analysis.
    """
    key = None
    if memo_enabled():
        key = (array_digest(row_ptr), array_digest(row_ids), num_slots)
        plan = STREAM_CACHE.get(key)
        if plan is not None:
            return plan
    perm = interleaved_order(row_ptr, num_slots)
    prev = previous_occurrence(row_ids[perm])
    plan = StreamPlan(perm=perm, prev=prev)
    if key is not None:
        STREAM_CACHE.put(key, plan, nbytes=plan.nbytes)
    return plan


def _plan_hits(
    plan: StreamPlan, capacity: int, model: str
) -> np.ndarray:
    """Hit mask (in permuted order) from a cached stream analysis."""
    if model == "window":
        window = plan.windows.get(capacity)
        if window is None:
            window = effective_window(None, capacity, prev=plan.prev)
            plan.windows[capacity] = window
        return window_hits_from_prev(plan.prev, capacity, window=window)
    if model == "lru":
        if plan.lru_distances is None:
            plan.lru_distances = reuse_distances_from_prev(plan.prev)
        dist = plan.lru_distances
        return (dist >= 0) & (dist < capacity)
    raise ValueError(f"unknown cache model {model!r}")


def _row_hit_counts(
    kernel: KernelSpec, config: GPUConfig
) -> Tuple[np.ndarray, float]:
    """Per-block row-hit counts and the overall hit rate."""
    b = kernel.num_blocks
    if kernel.row_ids is None or kernel.num_row_accesses == 0:
        return np.zeros(b, dtype=np.float64), 0.0
    capacity = config.cache_capacity_rows(max(kernel.row_bytes, 1))
    limit = config.cache_trace_limit
    row_ptr = kernel.row_ptr
    row_ids = kernel.row_ids
    slots = config.total_block_slots
    use_plan = fastpath_enabled() or memo_enabled()
    if row_ids.shape[0] > limit:
        # Sample a contiguous block prefix: hit *rates* are stationary in
        # block order, so a window estimates the full-stream rate
        # (DESIGN.md §5).
        cut_block = int(np.searchsorted(row_ptr, limit, side="right")) - 1
        cut_block = max(cut_block, 1)
        cut = int(row_ptr[cut_block])
        sub_ptr = row_ptr[: cut_block + 1]
        sub_ids = row_ids[:cut]
        if use_plan:
            plan = _stream_plan(sub_ptr, sub_ids, slots)
            hits_win = _plan_hits(plan, capacity, config.cache_model)
        else:
            perm = interleaved_order(sub_ptr, slots)
            hits_win = hit_mask(sub_ids[perm], capacity, config.cache_model)
        rate = float(hits_win.mean()) if hits_win.size else 0.0
        per_block_rows = np.diff(row_ptr).astype(np.float64)
        return per_block_rows * rate, rate
    if use_plan:
        plan = _stream_plan(row_ptr, row_ids, slots)
        perm = plan.perm
        hits_sorted = _plan_hits(plan, capacity, config.cache_model)
    else:
        perm = interleaved_order(row_ptr, slots)
        hits_sorted = hit_mask(row_ids[perm], capacity, config.cache_model)
    hits = np.empty_like(hits_sorted)
    hits[perm] = hits_sorted
    # Aggregate hits per block. reduceat needs non-empty rows handled.
    counts = np.zeros(b, dtype=np.float64)
    lengths = np.diff(row_ptr)
    nonempty = lengths > 0
    if nonempty.any():
        red = np.add.reduceat(
            hits.astype(np.int64), row_ptr[:-1][nonempty]
        )
        counts[nonempty] = red
    rate = float(hits.mean()) if hits.size else 0.0
    return counts, rate


def block_durations(
    kernel: KernelSpec, config: GPUConfig
) -> Tuple[np.ndarray, np.ndarray, float]:
    """Price each block; returns (durations, row_hit_counts, hit_rate)."""
    with PERF.stage("cache_model"):
        hit_counts, hit_rate = _row_hit_counts(kernel, config)
    rows = (
        np.diff(kernel.row_ptr).astype(np.float64)
        if kernel.row_ptr is not None
        else np.zeros(kernel.num_blocks)
    )
    miss_counts = rows - hit_counts
    rb = float(kernel.row_bytes)
    dram_bytes = miss_counts * rb + kernel.stream_bytes
    l2_bytes = hit_counts * rb
    # Dense kernels run at discounted peak; trace-carrying (irregular)
    # kernels pay full per-slot rates.
    eff = config.dense_efficiency if kernel.tag == "dense" else 1.0
    compute_t = kernel.block_flops / (config.flops_per_slot * eff)
    mem_t = (
        dram_bytes / config.dram_bw_per_slot
        + l2_bytes / config.l2_bw_per_slot
    )
    dur = np.maximum(compute_t, mem_t)
    dur = dur + config.block_overhead
    dur = dur + kernel.atomics * config.atomic_cost
    return dur, hit_counts, hit_rate


# ----------------------------------------------------------------------
# List scheduling
# ----------------------------------------------------------------------

def _list_schedule_reference(
    durations: np.ndarray, slots: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Greedy earliest-free-slot schedule via a binary heap (reference)."""
    b = durations.shape[0]
    if b == 0:
        return np.zeros(0), np.zeros(0)
    if b <= slots:
        starts = np.zeros(b)
        return starts, durations.copy()
    heap = [(0.0, s) for s in range(slots)]
    heapq.heapify(heap)
    starts = np.empty(b)
    ends = np.empty(b)
    push, pop = heapq.heappush, heapq.heappop
    for i in range(b):
        free_at, slot = pop(heap)
        starts[i] = free_at
        end = free_at + durations[i]
        ends[i] = end
        push(heap, (end, slot))
    return starts, ends


def _wave_schedule(
    durations: np.ndarray, slots: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Wave-decomposed greedy schedule, bit-identical to the heap.

    Maintain the sorted multiset of slot free times.  A wave of up to
    ``slots`` blocks can be assigned in one shot — block ``j`` to the
    ``j``-th earliest free slot — exactly when no block's freshly
    created end time undercuts a later block's claimed slot:
    ``free[j] <= min(ends of blocks < j in the wave)``.  The longest
    valid prefix of every wave is assigned vectorized; only the
    (rare) irregular remainder of a wave goes through the heap.  Every
    start/end is produced by the same float additions as the reference,
    so results are bit-identical, not just equal makespans.
    """
    b = durations.shape[0]
    starts = np.empty(b)
    ends = np.empty(b)
    free = np.zeros(slots)  # sorted ascending
    i = 0
    accepted = 0
    while i < b:
        if i >= 8 * slots and accepted < i // 2:
            # Genuinely irregular duration mix: the vectorized prefix
            # keeps collapsing, so per-wave numpy overhead exceeds the
            # heap's.  Finish the whole remainder there (same float
            # additions, so still bit-identical).
            heap = free.tolist()
            heapq.heapify(heap)
            push, pop = heapq.heappush, heapq.heappop
            for j in range(i, b):
                s = pop(heap)
                starts[j] = s
                e = s + durations[j]
                ends[j] = e
                push(heap, e)
            return starts, ends
        c = min(slots, b - i)
        d = durations[i : i + c]
        fc = free[:c]
        new_ends = fc + d
        cap = np.minimum.accumulate(new_ends)
        ok = fc[1:] <= cap[:-1]
        m = c if ok.all() else int(np.argmin(ok)) + 1
        starts[i : i + m] = fc[:m]
        ends[i : i + m] = new_ends[:m]
        accepted += m
        if m < c:
            # Irregular tail of this wave (e.g. a hub slot still busy):
            # finish it with the reference heap over the live multiset.
            heap = np.concatenate([free[m:], new_ends[:m]]).tolist()
            heapq.heapify(heap)
            push, pop = heapq.heappush, heapq.heappop
            for j in range(i + m, i + c):
                s = pop(heap)
                starts[j] = s
                e = s + durations[j]
                ends[j] = e
                push(heap, e)
            free = np.sort(np.asarray(heap))
        elif c == slots:
            free = np.sort(new_ends)
        else:  # final partial wave: free times no longer needed
            free = np.sort(np.concatenate([free[c:], new_ends]))
        i += c
    return starts, ends


def _list_schedule(
    durations: np.ndarray, slots: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Greedy earliest-free-slot schedule; returns (starts, ends)."""
    b = durations.shape[0]
    if b == 0:
        return np.zeros(0), np.zeros(0)
    if b <= slots:
        starts = np.zeros(b)
        return starts, durations.copy()
    # Fast path: (near-)uniform durations schedule round-robin exactly.
    dmin, dmax = float(durations.min()), float(durations.max())
    if dmax - dmin <= 1e-12 * max(dmax, 1e-30):
        waves = np.arange(b, dtype=np.int64) // slots
        starts = waves * dmax
        return starts.astype(np.float64), starts + durations
    if not fastpath_enabled():
        return _list_schedule_reference(durations, slots)
    return _wave_schedule(durations, slots)


# ----------------------------------------------------------------------
# Kernel simulation
# ----------------------------------------------------------------------

def _simulate_kernel_cold(
    kernel: KernelSpec, config: GPUConfig, dispatch_overhead: float
) -> KernelStats:
    durations, hit_counts, _ = block_durations(kernel, config)
    slots = config.total_block_slots
    with PERF.stage("schedule"):
        starts, ends = _list_schedule(durations, slots)
    makespan = float(ends.max()) if ends.size else 0.0
    balanced = float(durations.sum()) / slots
    rows = kernel.num_row_accesses
    row_hits = float(hit_counts.sum())
    miss_bytes = (rows - row_hits) * kernel.row_bytes
    occ = occupancy_below(starts, ends, slots)
    return KernelStats(
        name=kernel.name,
        tag=kernel.tag,
        makespan=makespan,
        launch_overhead=(
            config.kernel_launch_overhead + dispatch_overhead
            if kernel.counts_launch
            else 0.0
        ),
        flops=kernel.total_flops,
        bytes_dram=float(miss_bytes + kernel.stream_bytes.sum()),
        bytes_l2=float(row_hits * kernel.row_bytes),
        row_accesses=rows,
        row_hits=int(round(row_hits)),
        num_blocks=kernel.num_blocks,
        balanced_time=balanced,
        occupancy=occ,
    )


def simulate_kernel(
    kernel: KernelSpec, config: GPUConfig, dispatch_overhead: float = 0.0
) -> KernelStats:
    """Run one kernel through the cache, pricing and scheduling models.

    ``dispatch_overhead`` is the per-operator host-side framework cost
    (Observation 3's "framework scheduling"); baselines dispatch every
    computation-graph op through the framework runtime, fused runtimes
    pay it once per fused kernel.

    Results are memoized content-addressed (see :mod:`repro.gpusim.memo`):
    two kernels with identical pricing inputs, row streams and config
    share one simulation, with the display name restored per caller.
    """
    if not memo_enabled():
        return _simulate_kernel_cold(kernel, config, dispatch_overhead)
    key = KERNEL_MEMO.fingerprint(kernel, config, dispatch_overhead)
    cached = KERNEL_MEMO.get(key)
    if cached is not None:
        PERF.count("kernel_memo_hit")
        return dataclasses.replace(
            cached, name=kernel.name, occupancy=dict(cached.occupancy)
        )
    PERF.count("kernel_memo_miss")
    stats = _simulate_kernel_cold(kernel, config, dispatch_overhead)
    KERNEL_MEMO.put(key, stats)
    return stats


def simulate_kernels(
    kernels: Sequence[KernelSpec] | Iterable[KernelSpec],
    config: GPUConfig,
    label: str = "",
    peak_mem_bytes: int = 0,
    dispatch_overhead: float = 0.0,
) -> RunReport:
    """Simulate a kernel sequence (one forward pass) into a RunReport.

    ``report.extra["perf"]`` carries the instrumentation delta for this
    run: cache-model/schedule seconds and memo hit counters.
    """
    snap = PERF.snapshot()
    report = RunReport(label=label, peak_mem_bytes=peak_mem_bytes)
    for k in kernels:
        report.add(simulate_kernel(k, config, dispatch_overhead))
    delta = PERF.delta_since(snap)
    counts = delta.get("counts", {})
    hits = counts.get("kernel_memo_hit", 0)
    misses = counts.get("kernel_memo_miss", 0)
    report.extra["perf"] = {
        "cache_model_seconds": delta["seconds"].get("cache_model", 0.0),
        "schedule_seconds": delta["seconds"].get("schedule", 0.0),
        "kernel_memo_hits": hits,
        "kernel_memo_misses": misses,
        "kernel_memo_hit_rate": hits / (hits + misses)
        if hits + misses
        else 0.0,
        "stream_cache_hits": counts.get("stream_cache_hit", 0),
        "stream_cache_misses": counts.get("stream_cache_miss", 0),
        "memo": memo_stats(),
    }
    return report


def simulate_plan(plan, config: GPUConfig | None = None) -> RunReport:
    """Execute a :class:`~repro.core.plan.CompiledPlan`.

    The plan is content-addressed, so its whole simulated outcome is
    memoized under ``(plan_id, config, dispatch_overhead)`` — a repeat
    execution of the same plan rebuilds the :class:`RunReport` from the
    cached :class:`KernelStats` sequence without touching the cache
    model or the scheduler at all.  ``config`` defaults to the
    configuration the plan was compiled for.
    """
    cfg = config if config is not None else plan.gpu_config
    if not memo_enabled():
        return simulate_kernels(
            plan.kernels, cfg, label=plan.label,
            peak_mem_bytes=plan.peak_mem_bytes,
            dispatch_overhead=plan.dispatch_overhead,
        )
    key = (plan.plan_id, dataclasses.astuple(cfg), plan.dispatch_overhead)
    cached = PLAN_MEMO.get(key)
    if cached is not None:
        report = RunReport(
            label=plan.label, peak_mem_bytes=plan.peak_mem_bytes
        )
        for stats in cached:
            report.add(dataclasses.replace(
                stats, occupancy=dict(stats.occupancy)
            ))
        report.extra["perf"] = {
            "cache_model_seconds": 0.0,
            "schedule_seconds": 0.0,
            "kernel_memo_hits": 0,
            "kernel_memo_misses": 0,
            "kernel_memo_hit_rate": 0.0,
            "stream_cache_hits": 0,
            "stream_cache_misses": 0,
            "plan_memo_hit": True,
            "memo": memo_stats(),
        }
        return report
    report = simulate_kernels(
        plan.kernels, cfg, label=plan.label,
        peak_mem_bytes=plan.peak_mem_bytes,
        dispatch_overhead=plan.dispatch_overhead,
    )
    report.extra["perf"]["plan_memo_hit"] = False
    PLAN_MEMO.put(key, tuple(report.kernels))
    return report
