"""Block-level list scheduler: the heart of the GPU simulator.

For each :class:`~repro.gpusim.kernel.KernelSpec` the executor:

1. feeds the kernel's feature-row access stream (in block *issue order* —
   the order locality-aware scheduling permutes) through the L2 cache
   model, obtaining per-block hit/miss counts;
2. prices every block: ``max(compute, memory)`` where the memory term
   splits row traffic into L2-bandwidth (hits) and DRAM-bandwidth
   (misses + streaming) shares, plus atomics and a fixed block cost;
3. greedily list-schedules blocks onto ``num_sms * blocks_per_sm`` slots
   (earliest-free-slot, issue order), yielding the makespan, the balanced
   lower bound (Fig. 8) and the active-block timeline (Table 4).

Issue order approximates hardware dispatch order: blocks adjacent in the
array run concurrently, which is exactly the contract the paper's task
scheduling relies on ("distribute tasks of nodes in the same cluster into
adjacent computing units").
"""

from __future__ import annotations

import heapq
from typing import Iterable, Sequence, Tuple

import numpy as np

from .cache import hit_mask
from .config import GPUConfig
from .kernel import KernelSpec
from .metrics import KernelStats, RunReport, occupancy_below

__all__ = [
    "simulate_kernel",
    "simulate_kernels",
    "block_durations",
    "interleaved_order",
]


def interleaved_order(
    row_ptr: np.ndarray, num_slots: int
) -> np.ndarray:
    """Permutation putting block row accesses in concurrent-execution order.

    Blocks run in *waves* of ``num_slots`` concurrently-resident blocks
    (issue order), and the accesses of a wave's blocks interleave
    round-robin — the stream L2 actually sees.  This is what lets
    neighbor grouping narrow the active working set (smaller blocks →
    shorter waves) and locality-aware scheduling exploit wave-mates'
    shared neighbors, exactly the synergy of paper §4.1.2.
    """
    lengths = np.diff(row_ptr)
    total = int(row_ptr[-1])
    block_of = np.repeat(
        np.arange(lengths.shape[0], dtype=np.int64), lengths
    )
    offset = np.arange(total, dtype=np.int64) - row_ptr[:-1][block_of]
    # Time-aware interleave: each slot consumes one row per tick, blocks
    # claim the earliest-free slot in issue order (rows as the clock).  A
    # hub block therefore overlaps the *thousands* of short tasks that
    # stream past it — precisely the "huge active area" the paper
    # describes — while grouped/clustered layouts keep co-issued blocks
    # co-resident.
    starts, _ = _list_schedule(lengths.astype(np.float64), num_slots)
    tick = starts[block_of] + offset
    return np.lexsort((block_of, offset, tick))


def _row_hit_counts(
    kernel: KernelSpec, config: GPUConfig
) -> Tuple[np.ndarray, float]:
    """Per-block row-hit counts and the overall hit rate."""
    b = kernel.num_blocks
    if kernel.row_ids is None or kernel.num_row_accesses == 0:
        return np.zeros(b, dtype=np.float64), 0.0
    capacity = config.cache_capacity_rows(max(kernel.row_bytes, 1))
    limit = config.cache_trace_limit
    row_ptr = kernel.row_ptr
    row_ids = kernel.row_ids
    if row_ids.shape[0] > limit:
        # Sample a contiguous block prefix: hit *rates* are stationary in
        # block order, so a window estimates the full-stream rate
        # (DESIGN.md §5).
        cut_block = int(np.searchsorted(row_ptr, limit, side="right")) - 1
        cut_block = max(cut_block, 1)
        cut = int(row_ptr[cut_block])
        sub_ptr = row_ptr[: cut_block + 1]
        perm = interleaved_order(sub_ptr, config.total_block_slots)
        hits_win = hit_mask(
            row_ids[:cut][perm], capacity, config.cache_model
        )
        rate = float(hits_win.mean()) if hits_win.size else 0.0
        per_block_rows = np.diff(row_ptr).astype(np.float64)
        return per_block_rows * rate, rate
    perm = interleaved_order(row_ptr, config.total_block_slots)
    hits_sorted = hit_mask(row_ids[perm], capacity, config.cache_model)
    hits = np.empty_like(hits_sorted)
    hits[perm] = hits_sorted
    # Aggregate hits per block. reduceat needs non-empty rows handled.
    counts = np.zeros(b, dtype=np.float64)
    lengths = np.diff(row_ptr)
    nonempty = lengths > 0
    if nonempty.any():
        red = np.add.reduceat(
            hits.astype(np.int64), row_ptr[:-1][nonempty]
        )
        counts[nonempty] = red
    rate = float(hits.mean()) if hits.size else 0.0
    return counts, rate


def block_durations(
    kernel: KernelSpec, config: GPUConfig
) -> Tuple[np.ndarray, np.ndarray, float]:
    """Price each block; returns (durations, row_hit_counts, hit_rate)."""
    hit_counts, hit_rate = _row_hit_counts(kernel, config)
    rows = (
        np.diff(kernel.row_ptr).astype(np.float64)
        if kernel.row_ptr is not None
        else np.zeros(kernel.num_blocks)
    )
    miss_counts = rows - hit_counts
    rb = float(kernel.row_bytes)
    dram_bytes = miss_counts * rb + kernel.stream_bytes
    l2_bytes = hit_counts * rb
    # Dense kernels run at discounted peak; trace-carrying (irregular)
    # kernels pay full per-slot rates.
    eff = config.dense_efficiency if kernel.tag == "dense" else 1.0
    compute_t = kernel.block_flops / (config.flops_per_slot * eff)
    mem_t = (
        dram_bytes / config.dram_bw_per_slot
        + l2_bytes / config.l2_bw_per_slot
    )
    dur = np.maximum(compute_t, mem_t)
    dur = dur + config.block_overhead
    dur = dur + kernel.atomics * config.atomic_cost
    return dur, hit_counts, hit_rate


def _list_schedule(
    durations: np.ndarray, slots: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Greedy earliest-free-slot schedule; returns (starts, ends)."""
    b = durations.shape[0]
    if b == 0:
        return np.zeros(0), np.zeros(0)
    if b <= slots:
        starts = np.zeros(b)
        return starts, durations.copy()
    # Fast path: (near-)uniform durations schedule round-robin exactly.
    dmin, dmax = float(durations.min()), float(durations.max())
    if dmax - dmin <= 1e-12 * max(dmax, 1e-30):
        waves, lane = np.divmod(np.arange(b, dtype=np.int64), slots)
        starts = waves * dmax
        del lane
        return starts.astype(np.float64), starts + durations
    # General path: binary heap of slot free times.
    heap = [(0.0, s) for s in range(slots)]
    heapq.heapify(heap)
    starts = np.empty(b)
    ends = np.empty(b)
    push, pop = heapq.heappush, heapq.heappop
    for i in range(b):
        free_at, slot = pop(heap)
        starts[i] = free_at
        end = free_at + durations[i]
        ends[i] = end
        push(heap, (end, slot))
    return starts, ends


def simulate_kernel(
    kernel: KernelSpec, config: GPUConfig, dispatch_overhead: float = 0.0
) -> KernelStats:
    """Run one kernel through the cache, pricing and scheduling models.

    ``dispatch_overhead`` is the per-operator host-side framework cost
    (Observation 3's "framework scheduling"); baselines dispatch every
    computation-graph op through the framework runtime, fused runtimes
    pay it once per fused kernel.
    """
    durations, hit_counts, _ = block_durations(kernel, config)
    slots = config.total_block_slots
    starts, ends = _list_schedule(durations, slots)
    makespan = float(ends.max()) if ends.size else 0.0
    balanced = float(durations.sum()) / slots
    rows = kernel.num_row_accesses
    row_hits = float(hit_counts.sum())
    miss_bytes = (rows - row_hits) * kernel.row_bytes
    occ = occupancy_below(starts, ends, slots)
    return KernelStats(
        name=kernel.name,
        tag=kernel.tag,
        makespan=makespan,
        launch_overhead=(
            config.kernel_launch_overhead + dispatch_overhead
            if kernel.counts_launch
            else 0.0
        ),
        flops=kernel.total_flops,
        bytes_dram=float(miss_bytes + kernel.stream_bytes.sum()),
        bytes_l2=float(row_hits * kernel.row_bytes),
        row_accesses=rows,
        row_hits=int(round(row_hits)),
        num_blocks=kernel.num_blocks,
        balanced_time=balanced,
        occupancy=occ,
    )


def simulate_kernels(
    kernels: Sequence[KernelSpec] | Iterable[KernelSpec],
    config: GPUConfig,
    label: str = "",
    peak_mem_bytes: int = 0,
    dispatch_overhead: float = 0.0,
) -> RunReport:
    """Simulate a kernel sequence (one forward pass) into a RunReport."""
    report = RunReport(label=label, peak_mem_bytes=peak_mem_bytes)
    for k in kernels:
        report.add(simulate_kernel(k, config, dispatch_overhead))
    return report
