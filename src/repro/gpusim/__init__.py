"""GPU execution-model simulator (the V100 substitute; DESIGN.md §5)."""

from .cache import (
    hit_mask,
    lru_hits,
    previous_occurrence,
    reuse_distances,
    window_hits,
)
from .config import V100, V100_SCALED, GPUConfig
from .executor import block_durations, simulate_kernel, simulate_kernels
from .kernel import KernelSpec
from .memo import KERNEL_MEMO, STREAM_CACHE, clear_caches, memo_stats
from .memory import DeviceMemory, SimulatedOOM, tensor_bytes
from .metrics import KernelStats, RunReport, occupancy_below
from .occupancy import LaunchConfig, SMResources, blocks_per_sm, occupancy

__all__ = [
    "hit_mask",
    "lru_hits",
    "previous_occurrence",
    "reuse_distances",
    "window_hits",
    "V100",
    "V100_SCALED",
    "GPUConfig",
    "block_durations",
    "simulate_kernel",
    "simulate_kernels",
    "KernelSpec",
    "KERNEL_MEMO",
    "STREAM_CACHE",
    "clear_caches",
    "memo_stats",
    "DeviceMemory",
    "SimulatedOOM",
    "tensor_bytes",
    "KernelStats",
    "RunReport",
    "occupancy_below",
    "LaunchConfig",
    "SMResources",
    "blocks_per_sm",
    "occupancy",
]
