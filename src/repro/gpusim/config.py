"""GPU execution-model configuration.

Defaults are anchored to the paper's platform, an NVIDIA Tesla V100
(80 SMs, 6 MiB L2, ~900 GB/s HBM2, 15.7 TFLOP/s fp32) with CUDA-typical
kernel-launch overhead.  The simulated device memory is scaled down
(default 1 GiB) in proportion to the scaled datasets so that out-of-memory
behaviour (PyG's expansion OOMs, Fig. 7) reproduces on the same relative
workloads.

Only first-order mechanisms are modelled — block scheduling, occupancy,
L2 reuse, bandwidth and launch overhead — because those are exactly the
mechanisms the paper's five observations and four optimizations operate
on (DESIGN.md §5).
"""

from __future__ import annotations

import dataclasses

__all__ = ["GPUConfig", "V100"]


@dataclasses.dataclass(frozen=True)
class GPUConfig:
    """Machine model parameters.

    Attributes
    ----------
    num_sms:
        Streaming multiprocessors.
    blocks_per_sm:
        Maximum concurrently-resident thread blocks per SM at the default
        launch configuration.  ``num_sms * blocks_per_sm`` is the number
        of block *slots* the list scheduler fills.
    threads_per_block / warp_size:
        Launch geometry used by the lowering code for sizing block tasks.
    l2_bytes / line_bytes:
        L2 capacity and cache-line size (the cache model works at
        feature-row granularity, derived from these).
    dram_bandwidth / l2_bandwidth:
        Aggregate device bandwidths in bytes/second.
    peak_flops:
        fp32 peak throughput; ``dense_efficiency`` discounts it for GEMM
        kernels (real GEMMs achieve 50–70%).
    kernel_launch_overhead:
        Fixed host-side cost per kernel launch, seconds.  This is the
        term the adapter's fusion removes (Observation 3).
    block_overhead:
        Fixed per-block scheduling cost, seconds.
    atomic_cost:
        Per-atomic-update cost, seconds (neighbor grouping's cross-SM
        reduction pays this).
    device_mem_bytes:
        Simulated device memory budget for OOM accounting.
    cache_model:
        ``"window"`` (vectorized working-set approximation, default) or
        ``"lru"`` (exact stack-distance, O(n log n), for validation).
    l2_feature_fraction:
        Share of L2 effectively available to feature rows; the rest is
        churned by structure reads, per-edge scalars and write-allocate
        traffic that stream through the cache.
    cache_trace_limit:
        Cap on the number of row accesses simulated per kernel; longer
        traces are sampled by a contiguous window (documented
        approximation — hit *rates* are stable under windowing).
    """

    num_sms: int = 80
    blocks_per_sm: int = 2
    threads_per_block: int = 256
    warp_size: int = 32
    l2_bytes: int = 6 * 1024 * 1024
    line_bytes: int = 128
    dram_bandwidth: float = 900e9
    l2_bandwidth: float = 2_700e9
    peak_flops: float = 15.7e12
    dense_efficiency: float = 0.55
    kernel_launch_overhead: float = 5e-6
    block_overhead: float = 0.04e-6
    atomic_cost: float = 4e-9
    device_mem_bytes: int = 1 * 1024 * 1024 * 1024
    l2_feature_fraction: float = 0.5
    cache_model: str = "window"
    cache_trace_limit: int = 2_000_000

    @property
    def total_block_slots(self) -> int:
        return self.num_sms * self.blocks_per_sm

    @property
    def flops_per_slot(self) -> float:
        return self.peak_flops / self.total_block_slots

    @property
    def dram_bw_per_slot(self) -> float:
        return self.dram_bandwidth / self.total_block_slots

    @property
    def l2_bw_per_slot(self) -> float:
        return self.l2_bandwidth / self.total_block_slots

    def cache_capacity_rows(self, row_bytes: int) -> int:
        """How many feature rows of ``row_bytes`` fit in (the feature
        share of) L2."""
        lines_per_row = max(
            1, -(-row_bytes // self.line_bytes)
        )  # ceil division
        avail = self.l2_bytes * self.l2_feature_fraction
        return max(1, int(avail // (lines_per_row * self.line_bytes)))

    def replace(self, **kwargs) -> "GPUConfig":
        """Functional update (configs are frozen)."""
        return dataclasses.replace(self, **kwargs)


#: The paper's evaluation platform.
V100 = GPUConfig()

#: The scaled platform used with the scaled datasets (DESIGN.md §2): L2 and
#: device memory shrink by roughly the same factor as the graphs, so cache
#: pressure and OOM behaviour match the paper's relative shapes.
V100_SCALED = GPUConfig(
    l2_bytes=384 * 1024,
    device_mem_bytes=1 * 1024 * 1024 * 1024,
    cache_trace_limit=1_200_000,
)
