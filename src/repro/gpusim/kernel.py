"""Kernel abstraction: a launch plus a set of block tasks.

A :class:`KernelSpec` describes one GPU kernel in array form (no
per-block Python objects — blocks can number in the hundreds of
thousands).  Each block carries:

* a FLOP count,
* a ragged list of *cacheable* feature-row reads (``row_ids`` sliced by
  ``row_ptr``), each read moving ``row_bytes`` bytes through L2/DRAM
  depending on the cache model's verdict,
* ``stream_bytes`` of traffic that never hits in L2 at this granularity
  (CSR structure, per-edge scalars, writes, dense-intermediate streaming),
* an atomic-update count (cross-SM reductions under neighbor grouping).

Dense kernels (GEMMs, element-wise maps) are built with
:meth:`KernelSpec.uniform_dense`, which splits an aggregate cost across
uniform blocks — their behaviour is bandwidth/compute-bound, not
locality-bound, so no row trace is needed.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Optional, Tuple

import numpy as np

from ..perf import memo_enabled
from .memo import REORDER_CACHE, array_digest

__all__ = ["KernelDataflow", "KernelSpec", "strict_mode"]


def strict_mode() -> bool:
    """Opt-in deep validation of kernel specs (``REPRO_STRICT=1``).

    Off by default: the checks scan every per-block array, which is real
    work on hot lowering paths that build thousands of kernels."""
    return os.environ.get("REPRO_STRICT", "") not in ("", "0")


@dataclasses.dataclass(frozen=True)
class KernelDataflow:
    """Cross-kernel dataflow of one lowered kernel (analysis metadata).

    Buffers are the logical chain-intermediate tensors that materialize
    at fusion-group boundaries, named ``<prefix><op.name>`` by the
    lowering walk; values that stay in registers inside one kernel never
    appear here.  Like ``block_center``, this never enters the cost
    model or the memo fingerprint — it exists so the happens-before pass
    can order reads against producing synchronizations without
    re-deriving the lowering.

    ``sync_writes`` is the subset of ``writes`` whose value is complete
    only at the kernel's *completion sync* (segment reductions and
    atomically-merged aggregations publish partial sums until then);
    under the gpusim scheduling model every kernel completion is a
    device-wide sync (null-stream semantics), so a reader launched after
    the producer is ordered after that sync.  ``postponable`` marks a
    kernel whose every op the linear-property adapter could have
    postponed into a downstream aggregate; ``aggregate`` marks the
    aggregation kernels such removable work would fold into.
    """

    reads: Tuple[str, ...] = ()
    writes: Tuple[str, ...] = ()
    sync_writes: Tuple[str, ...] = ()
    postponable: bool = False
    aggregate: bool = False

    def to_meta(self) -> dict:
        """JSON-serializable form (plan-artifact persistence)."""
        return {
            "reads": list(self.reads),
            "writes": list(self.writes),
            "sync_writes": list(self.sync_writes),
            "postponable": self.postponable,
            "aggregate": self.aggregate,
        }

    @classmethod
    def from_meta(cls, meta: dict) -> "KernelDataflow":
        return cls(
            reads=tuple(meta["reads"]),
            writes=tuple(meta["writes"]),
            sync_writes=tuple(meta["sync_writes"]),
            postponable=bool(meta["postponable"]),
            aggregate=bool(meta["aggregate"]),
        )


@dataclasses.dataclass
class KernelSpec:
    name: str
    block_flops: np.ndarray                 # float64[B]
    row_ptr: Optional[np.ndarray] = None    # int64[B+1] into row_ids
    row_ids: Optional[np.ndarray] = None    # int64[R]
    row_bytes: int = 0                      # bytes moved per row access
    stream_bytes: Optional[np.ndarray] = None  # float64[B]
    atomics: Optional[np.ndarray] = None    # int64[B]
    counts_launch: bool = True              # pay launch overhead?
    tag: str = ""                           # e.g. "cusparse", "fused"
    #: Owning center node per block for center-parallel kernels (None
    #: for edge-parallel / dense kernels).  Pure analysis metadata: the
    #: atomic-race detector uses it to find write-write conflicts; it
    #: never enters the cost model or the memo fingerprint.
    block_center: Optional[np.ndarray] = None  # int64[B]
    #: Logical buffer reads/writes and sync semantics for the
    #: happens-before pass (None for kernels lowered outside the shared
    #: ``lower_plan`` path).  Analysis-only, excluded from the memo
    #: fingerprint like ``block_center``.
    dataflow: Optional[KernelDataflow] = None

    def __post_init__(self) -> None:
        self.block_flops = np.asarray(self.block_flops, dtype=np.float64)
        b = self.num_blocks
        if self.stream_bytes is None:
            self.stream_bytes = np.zeros(b, dtype=np.float64)
        else:
            self.stream_bytes = np.asarray(self.stream_bytes, np.float64)
        if self.atomics is None:
            self.atomics = np.zeros(b, dtype=np.int64)
        else:
            self.atomics = np.asarray(self.atomics, dtype=np.int64)
        if self.row_ptr is not None:
            self.row_ptr = np.asarray(self.row_ptr, dtype=np.int64)
            self.row_ids = np.asarray(self.row_ids, dtype=np.int64)
            if self.row_ptr.shape[0] != b + 1:
                raise ValueError(
                    f"{self.name}: row_ptr has {self.row_ptr.shape[0]} "
                    f"entries for {b} blocks"
                )
            if self.row_ptr[-1] != self.row_ids.shape[0]:
                raise ValueError(f"{self.name}: row_ptr/row_ids mismatch")
        if self.stream_bytes.shape[0] != b or self.atomics.shape[0] != b:
            raise ValueError(f"{self.name}: per-block array length mismatch")
        if self.block_center is not None:
            self.block_center = np.asarray(self.block_center, dtype=np.int64)
            if self.block_center.shape[0] != b:
                raise ValueError(
                    f"{self.name}: block_center has "
                    f"{self.block_center.shape[0]} entries for {b} blocks"
                )
        if strict_mode():
            self.validate_strict()

    def validate_strict(self) -> None:
        """Deep structural validation (see :func:`strict_mode`)."""
        name = self.name
        if self.row_ptr is not None:
            if self.row_ptr[0] != 0:
                raise ValueError(f"{name}: row_ptr[0] must be 0, got "
                                 f"{self.row_ptr[0]}")
            if np.any(np.diff(self.row_ptr) < 0):
                bad = int(np.argmax(np.diff(self.row_ptr) < 0))
                raise ValueError(
                    f"{name}: row_ptr not monotonic at block {bad} "
                    f"({self.row_ptr[bad]} -> {self.row_ptr[bad + 1]})"
                )
            if self.row_ids.size and self.row_ids.min() < 0:
                raise ValueError(f"{name}: negative row id "
                                 f"{int(self.row_ids.min())}")
        for label, arr in (("block_flops", self.block_flops),
                           ("stream_bytes", self.stream_bytes)):
            if not np.all(np.isfinite(arr)):
                raise ValueError(f"{name}: non-finite {label}")
            if arr.size and arr.min() < 0:
                raise ValueError(
                    f"{name}: negative {label} ({float(arr.min())})"
                )
        if self.atomics.size and self.atomics.min() < 0:
            raise ValueError(
                f"{name}: negative atomics count "
                f"({int(self.atomics.min())})"
            )
        if self.row_bytes < 0:
            raise ValueError(f"{name}: negative row_bytes")

    # ------------------------------------------------------------------
    @property
    def num_blocks(self) -> int:
        return int(self.block_flops.shape[0])

    @property
    def total_flops(self) -> float:
        return float(self.block_flops.sum())

    @property
    def num_row_accesses(self) -> int:
        return 0 if self.row_ids is None else int(self.row_ids.shape[0])

    @property
    def total_bytes(self) -> float:
        """All traffic requested (rows at row_bytes + streaming)."""
        return float(
            self.num_row_accesses * self.row_bytes + self.stream_bytes.sum()
        )

    # ------------------------------------------------------------------
    @classmethod
    def uniform_dense(
        cls,
        name: str,
        flops: float,
        bytes_moved: float,
        num_blocks: int,
        counts_launch: bool = True,
        tag: str = "dense",
    ) -> "KernelSpec":
        """A dense kernel whose cost is spread evenly over its blocks."""
        num_blocks = max(1, int(num_blocks))
        return cls(
            name=name,
            block_flops=np.full(num_blocks, flops / num_blocks),
            stream_bytes=np.full(num_blocks, bytes_moved / num_blocks),
            counts_launch=counts_launch,
            tag=tag,
        )

    def reordered(self, block_perm: np.ndarray) -> "KernelSpec":
        """Return a copy with blocks issued in ``block_perm`` order.

        This is the hook locality-aware task scheduling uses: the executor
        issues blocks in array order, so permuting the arrays permutes
        both the schedule and the cache access stream.
        """
        block_perm = np.asarray(block_perm, dtype=np.int64)
        if self.row_ptr is None:
            row_ptr, row_ids = None, None
        else:
            row_ptr = row_ids = None
            key = None
            if memo_enabled():
                # The ragged gather below is the most expensive lowering
                # step on large graphs, and layouts re-apply the same
                # permutation to the same stream once per feature length
                # / ablation variant — cache it by content.
                key = (
                    array_digest(self.row_ptr),
                    array_digest(self.row_ids),
                    array_digest(block_perm),
                )
                cached = REORDER_CACHE.get(key)
                if cached is not None:
                    row_ptr, row_ids = cached
            if row_ptr is None:
                lengths = np.diff(self.row_ptr)[block_perm]
                row_ptr = np.zeros(self.num_blocks + 1, dtype=np.int64)
                np.cumsum(lengths, out=row_ptr[1:])
                total = int(row_ptr[-1])
                starts = self.row_ptr[:-1][block_perm]
                # Ragged gather: absolute source index of every row
                # entry, as one repeat of per-block shifts plus the
                # entry's own destination position.
                shift = np.repeat(starts - row_ptr[:-1], lengths)
                row_ids = self.row_ids[
                    shift + np.arange(total, dtype=np.int64)
                ]
                if key is not None:
                    REORDER_CACHE.put(
                        key, (row_ptr, row_ids),
                        nbytes=row_ptr.nbytes + row_ids.nbytes,
                    )
        return KernelSpec(
            name=self.name,
            block_flops=self.block_flops[block_perm],
            row_ptr=row_ptr,
            row_ids=row_ids,
            row_bytes=self.row_bytes,
            stream_bytes=self.stream_bytes[block_perm],
            atomics=self.atomics[block_perm],
            counts_launch=self.counts_launch,
            tag=self.tag,
            block_center=(
                None if self.block_center is None
                else self.block_center[block_perm]
            ),
            # Logical dataflow is per-kernel, not per-block: a block
            # permutation changes the issue order, not what the kernel
            # reads or publishes.
            dataflow=self.dataflow,
        )
