"""Measurement containers produced by the executor.

:class:`KernelStats` is the simulator's analogue of one nvprof kernel
record: duration, traffic split by where it was served (L2 hit vs DRAM),
the feature-row hit rate (the paper's Fig. 3 / Fig. 9 metric), and the
active-block timeline summaries (Table 4, Fig. 8).

:class:`RunReport` aggregates the kernels of one model forward pass.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

import numpy as np

from ..perf import fastpath_enabled

__all__ = ["KernelStats", "RunReport", "occupancy_below"]


def occupancy_below(
    starts: np.ndarray,
    ends: np.ndarray,
    max_active: int,
    fractions: Tuple[float, ...] = (1.0, 0.5, 0.1),
) -> Dict[float, float]:
    """Fraction of kernel time with active blocks < fraction * max_active.

    Computed from the block start/end events of the schedule — exactly the
    quantity Table 4 reports from profiling counters.
    """
    if starts.size == 0:
        return {f: 0.0 for f in fractions}
    if fastpath_enabled():
        # Scheduler starts are emitted (almost) sorted, so sorting the
        # two halves and scattering the end events into the merged
        # timeline beats a stable argsort of the 2n concatenation.
        # ``side="right"`` lands every end after the equal-time starts —
        # the same tie order the concatenated stable argsort produces
        # (all +1 deltas of a tie group before its -1s), so the active
        # profile matches bit for bit.
        n = starts.size
        if np.all(starts[1:] >= starts[:-1]):
            # Greedy pop-min schedules emit non-decreasing starts; a
            # stable sort of a sorted array is the identity.
            ss = starts
        else:
            ss = np.sort(starts, kind="stable")
        es = np.sort(ends)
        pos = np.searchsorted(ss, es, side="right")
        pos += np.arange(n, dtype=pos.dtype)
        times = np.empty(2 * n, dtype=np.float64)
        deltas = np.ones(2 * n, dtype=np.int64)
        is_end = np.zeros(2 * n, dtype=bool)
        is_end[pos] = True
        times[pos] = es
        times[~is_end] = ss
        deltas[pos] = -1
        active = np.cumsum(deltas)
    else:
        times = np.concatenate([starts, ends])
        deltas = np.concatenate(
            [np.ones(starts.size, np.int64), -np.ones(ends.size, np.int64)]
        )
        order = np.argsort(times, kind="stable")
        times, deltas = times[order], deltas[order]
        active = np.cumsum(deltas)
    span = np.diff(times, append=times[-1])
    total = float(span.sum())
    if total <= 0.0:
        return {f: 0.0 for f in fractions}
    out = {}
    for frac in fractions:
        thresh = frac * max_active
        below = float(span[active < thresh].sum())
        out[frac] = below / total
    return out


@dataclasses.dataclass
class KernelStats:
    """Per-kernel measurements from one simulated launch."""

    name: str
    tag: str
    makespan: float          # on-device busy span, seconds
    launch_overhead: float   # host launch cost charged to this kernel
    flops: float
    bytes_dram: float        # traffic served from DRAM (misses + streams)
    bytes_l2: float          # traffic served from L2 (row hits)
    row_accesses: int        # cacheable feature-row reads issued
    row_hits: int
    num_blocks: int
    balanced_time: float     # sum(block durations) / slot count  (Fig. 8)
    occupancy: Dict[float, float]  # fraction of time below 100/50/10%

    @property
    def time(self) -> float:
        return self.makespan + self.launch_overhead

    @property
    def l2_hit_rate(self) -> float:
        return self.row_hits / self.row_accesses if self.row_accesses else 0.0

    @property
    def l2_miss_rate(self) -> float:
        return 1.0 - self.l2_hit_rate

    @property
    def gflops(self) -> float:
        return self.flops / self.time / 1e9 if self.time > 0 else 0.0


@dataclasses.dataclass
class RunReport:
    """All kernels of one forward pass plus bookkeeping."""

    kernels: List[KernelStats] = dataclasses.field(default_factory=list)
    peak_mem_bytes: int = 0
    label: str = ""
    #: Free-form side data attached by lowerings (e.g. SAGE-LSTM phase
    #: attribution for Table 5, tuning traces).
    extra: Dict[str, object] = dataclasses.field(default_factory=dict)

    def add(self, stats: KernelStats) -> None:
        self.kernels.append(stats)

    def extend(self, other: "RunReport") -> None:
        self.kernels.extend(other.kernels)
        self.peak_mem_bytes = max(self.peak_mem_bytes, other.peak_mem_bytes)

    # ------------------------------------------------------------------
    @property
    def total_time(self) -> float:
        return sum(k.time for k in self.kernels)

    @property
    def total_time_ms(self) -> float:
        return self.total_time * 1e3

    @property
    def num_kernels(self) -> int:
        return len(self.kernels)

    @property
    def total_flops(self) -> float:
        return sum(k.flops for k in self.kernels)

    @property
    def total_launch_overhead(self) -> float:
        return sum(k.launch_overhead for k in self.kernels)

    @property
    def bytes_dram(self) -> float:
        return sum(k.bytes_dram for k in self.kernels)

    @property
    def bytes_l2(self) -> float:
        return sum(k.bytes_l2 for k in self.kernels)

    @property
    def gflops(self) -> float:
        t = self.total_time
        return self.total_flops / t / 1e9 if t > 0 else 0.0

    def l2_hit_rate(self, name_filter: str | None = None) -> float:
        """Row-access-weighted L2 hit rate over (filtered) kernels."""
        ks = [
            k
            for k in self.kernels
            if name_filter is None or name_filter in k.name
        ]
        acc = sum(k.row_accesses for k in ks)
        hit = sum(k.row_hits for k in ks)
        return hit / acc if acc else 0.0

    def occupancy_below(self, fraction: float) -> float:
        """Makespan-weighted fraction of time under the occupancy bar."""
        total = sum(k.makespan for k in self.kernels)
        if total <= 0:
            return 0.0
        acc = sum(
            k.occupancy.get(fraction, 0.0) * k.makespan for k in self.kernels
        )
        return acc / total

    def by_name(self, substring: str) -> List[KernelStats]:
        return [k for k in self.kernels if substring in k.name]

    def time_of(self, substring: str) -> float:
        return sum(k.time for k in self.by_name(substring))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RunReport(label={self.label!r}, kernels={self.num_kernels}, "
            f"time={self.total_time_ms:.3f}ms, gflops={self.gflops:.1f})"
        )
