"""Optional native accelerator for the greedy list scheduler.

The earliest-free-slot scheduler is a pop-min/push loop over a multiset
of slot free times — inherently sequential, and the one hot path numpy
cannot express.  This module compiles a ~30-line C implementation with
the system C compiler on first use (no third-party packages, no Python
headers — plain ``ctypes`` against a shared object) and caches the
artifact in the system temp directory keyed by source hash.

Bit-identity: the C loop performs exactly the reference arithmetic —
``end = start + duration`` one IEEE double addition per block, compiled
without any fast-math relaxation — and a binary min-heap always pops the
multiset minimum, so starts/ends match ``heapq`` to the last bit even
though the heap's internal layout differs.

Everything degrades gracefully: no compiler, a failed build, or
``REPRO_NATIVE=0`` simply leaves the pure-Python fallback in charge.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile

import numpy as np

__all__ = [
    "available",
    "count_first_touch",
    "estimate_first_touch",
    "greedy_schedule",
    "interleave_order",
    "merge_pairs",
    "prev_occurrence",
    "window_mask",
]

_SOURCE = r"""
#include <stdlib.h>

static void sift_down(double* h, long k, long i) {
    for (;;) {
        long l = 2 * i + 1;
        if (l >= k) break;
        long r = l + 1;
        long m = (r < k && h[r] < h[l]) ? r : l;
        if (h[m] < h[i]) {
            double t = h[i]; h[i] = h[m]; h[m] = t;
            i = m;
        } else break;
    }
}

void greedy_schedule(const double* dur, long n, double* heap, long k,
                     double* starts, double* ends) {
    long i;
    for (i = k / 2 - 1; i >= 0; --i) sift_down(heap, k, i);
    for (i = 0; i < n; ++i) {
        double s = heap[0];
        double e = s + dur[i];
        starts[i] = s;
        ends[i] = e;
        heap[0] = e;               /* replace-top == pop + push */
        sift_down(heap, k, 0);
    }
}

/* Previous occurrence of each value in a bounded-int stream: one pass
 * over a last-seen-position table.  The data dependency (last[v] is
 * read and rewritten at every step) is what numpy cannot express. */
void prev_occurrence(const long* stream, long n, long* last, long* prev) {
    long i;
    for (i = 0; i < n; ++i) {
        long v = stream[i];
        prev[i] = last[v];
        last[v] = i;
    }
}

/* Strided first-touch count: number of positions i in
 * {t, t+stride, ...} < t+window with prev[i] < t.  One probe of the
 * working-set estimator (an exact integer count, so the estimate it
 * feeds matches the numpy path bit for bit).  Strided probes are
 * memory-latency bound; prefetching a few iterations ahead hides it. */
long count_first_touch(const int* prev, long t, long window, long stride,
                       long n) {
    long end = t + window, i, c = 0;
    if (end > n) end = n;
    for (i = t; i < end; i += stride) {
#ifdef __GNUC__
        if (i + 16 * stride < end)
            __builtin_prefetch(&prev[i + 16 * stride]);
#endif
        c += (prev[i] < (int)t);
    }
    return c;
}

/* All sampled probes of one D(w) estimate in a single call: the
 * per-start counts are exact integers and the accumulation performs
 * the same ``total += c * stride`` IEEE double additions, in the same
 * order, as the per-start loop — so the estimate is bit-identical
 * while the foreign-call overhead is paid once instead of per start. */
double estimate_first_touch(const int* prev, const long* starts,
                            long nstarts, long window, long stride,
                            long n) {
    double total = 0.0;
    long s;
    for (s = 0; s < nstarts; ++s) {
        long t = starts[s];
        long c = count_first_touch(prev, t, window, stride, n);
        total += (double)(c * stride);
    }
    return total;
}

/* Interleave sort key, fused: one pass fills
 * key[p] = (tick << shift) + offset without materializing the
 * block-of / repeat / gather intermediates the numpy formulation
 * needs.  Any shift with 2^shift > max offset orders identically; the
 * caller picks the smallest, so keys usually fit int32 (the 32-bit
 * variant) and the stable radix argsort moves half the bytes.  The
 * sort itself stays np.argsort(key, kind="stable") — numpy's radix
 * beats a hand-rolled one here, and a stable sort's permutation is
 * unique, so the fast path matches the lexsort reference exactly. */
void interleave_key(const long* row_ptr, const double* starts, long nb,
                    long shift, long* key) {
    long b, j, p = 0;
    for (b = 0; b < nb; ++b) {
        long len = row_ptr[b + 1] - row_ptr[b];
        long s = (long)starts[b];
        for (j = 0; j < len; ++j) {
            key[p++] = ((s + j) << shift) + j;
        }
    }
}

void interleave_key32(const long* row_ptr, const double* starts, long nb,
                      long shift, int* key) {
    long b, j, p = 0;
    for (b = 0; b < nb; ++b) {
        long len = row_ptr[b + 1] - row_ptr[b];
        long s = (long)starts[b];
        for (j = 0; j < len; ++j) {
            key[p++] = (int)(((s + j) << shift) + j);
        }
    }
}

/* Windowed-LRU hit mask: hit iff prev[i] >= max(i - w, 0). */
void window_mask(const long* prev, long n, long w, unsigned char* out) {
    long i;
    for (i = 0; i < n; ++i) {
        long t = i - w;
        if (t < 0) t = 0;
        out[i] = prev[i] >= t;
    }
}

/* ---- Priority-queue pair merging (locality-aware scheduling) ----
 *
 * Same algorithm as repro.core.scheduling._merge_pairs, operand for
 * operand: walk the statically sorted candidate pairs merged with an
 * overflow heap of re-paired representatives; union-find with
 * path-halving and size-weighted unions; re-pair similarity is
 * (#equal signature rows) / num_hashes, one IEEE double division.
 * Every comparison and arithmetic op mirrors the Python loop, so the
 * resulting partition is identical. */

typedef struct { double s; long u; long v; } mp_item;

static int mp_less(const mp_item* a, const mp_item* b) {
    if (a->s != b->s) return a->s < b->s;
    if (a->u != b->u) return a->u < b->u;
    return a->v < b->v;
}

static void mp_push(mp_item* h, long* len, mp_item it) {
    long i = (*len)++;
    h[i] = it;
    while (i > 0) {
        long p = (i - 1) / 2;
        if (mp_less(&h[i], &h[p])) {
            mp_item t = h[p]; h[p] = h[i]; h[i] = t;
            i = p;
        } else break;
    }
}

static mp_item mp_pop(mp_item* h, long* len) {
    mp_item top = h[0];
    h[0] = h[--(*len)];
    long i = 0;
    for (;;) {
        long l = 2 * i + 1, r = l + 1, m = i;
        if (l < *len && mp_less(&h[l], &h[m])) m = l;
        if (r < *len && mp_less(&h[r], &h[m])) m = r;
        if (m == i) break;
        mp_item t = h[m]; h[m] = h[i]; h[i] = t;
        i = m;
    }
    return top;
}

static long mp_find(long* parent, long x) {
    long root = x;
    while (parent[root] != root) root = parent[root];
    while (parent[x] != root) {
        long nx = parent[x];
        parent[x] = root;
        x = nx;
    }
    return root;
}

/* Open-addressing set of already re-paired (ru, rv) keys. */
static int seen_add(long** tab, long* cap, long* count, long key) {
    long mask = *cap - 1, i;
    i = (long)(((unsigned long)key * 11400714819323198485UL) >> 17) & mask;
    while ((*tab)[i] != -1) {
        if ((*tab)[i] == key) return 0;
        i = (i + 1) & mask;
    }
    (*tab)[i] = key;
    if (++(*count) * 2 > *cap) {          /* grow at 50% load */
        long ncap = *cap * 2, j;
        long* nt = malloc(ncap * sizeof(long));
        for (j = 0; j < ncap; ++j) nt[j] = -1;
        for (j = 0; j < *cap; ++j) {
            long k = (*tab)[j];
            if (k != -1) {
                long m2 = ncap - 1, p =
                    (long)(((unsigned long)k * 11400714819323198485UL)
                           >> 17) & m2;
                while (nt[p] != -1) p = (p + 1) & m2;
                nt[p] = k;
            }
        }
        free(*tab);
        *tab = nt;
        *cap = ncap;
    }
    return 1;
}

int merge_pairs(const double* negs, const long* us, const long* vs,
                long npairs, const long* sig_rows, long num_hashes,
                const unsigned char* empty, long n, long max_cluster,
                double min_similarity, long* parent, long* size) {
    long pos = 0, heap_len = 0, heap_cap = 1024;
    long seen_cap = 1024, seen_count = 0, j;
    mp_item* heap = malloc(heap_cap * sizeof(mp_item));
    long* seen = malloc(seen_cap * sizeof(long));
    if (!heap || !seen) { free(heap); free(seen); return -1; }
    for (j = 0; j < seen_cap; ++j) seen[j] = -1;
    while (heap_len > 0 || pos < npairs) {
        mp_item cur;
        if (pos >= npairs) {
            cur = mp_pop(heap, &heap_len);
        } else {
            cur.s = negs[pos]; cur.u = us[pos]; cur.v = vs[pos];
            if (heap_len > 0 && mp_less(&heap[0], &cur))
                cur = mp_pop(heap, &heap_len);
            else
                ++pos;
        }
        {
            long ru = mp_find(parent, cur.u);
            long rv = mp_find(parent, cur.v);
            if (ru == rv) continue;
            if (size[ru] + size[rv] > max_cluster) continue;
            if (ru == cur.u && rv == cur.v) {
                /* Larger cluster's representative wins the union. */
                if (size[ru] < size[rv]) { long t = ru; ru = rv; rv = t; }
                parent[rv] = ru;
                size[ru] += size[rv];
                continue;
            }
            {
                long k0 = ru < rv ? ru : rv;
                long k1 = ru < rv ? rv : ru;
                double s;
                if (!seen_add(&seen, &seen_cap, &seen_count, k0 * n + k1))
                    continue;
                if (empty[k0] && empty[k1]) {
                    s = 0.0;
                } else {
                    const long* a = sig_rows + k0 * num_hashes;
                    const long* b = sig_rows + k1 * num_hashes;
                    long c = 0, h;
                    for (h = 0; h < num_hashes; ++h) c += (a[h] == b[h]);
                    s = (double)c / (double)num_hashes;
                }
                if (s >= min_similarity) {
                    if (heap_len == heap_cap) {
                        heap_cap *= 2;
                        mp_item* nh =
                            realloc(heap, heap_cap * sizeof(mp_item));
                        if (!nh) { free(heap); free(seen); return -1; }
                        heap = nh;
                    }
                    mp_item it; it.s = -s; it.u = k0; it.v = k1;
                    mp_push(heap, &heap_len, it);
                }
            }
        }
    }
    free(heap);
    free(seen);
    return 0;
}
"""

_LIB = None
_TRIED = False


def _build() -> "ctypes.CDLL | None":
    tag = hashlib.sha256(_SOURCE.encode()).hexdigest()[:16]
    cache = os.path.join(
        tempfile.gettempdir(), f"repro_native_{tag}.so"
    )
    if not os.path.exists(cache):
        cc = os.environ.get("CC", "cc")
        src = cache + f".{os.getpid()}.c"
        tmp = cache + f".{os.getpid()}.so"
        with open(src, "w") as f:
            f.write(_SOURCE)
        try:
            subprocess.run(
                [cc, "-O2", "-shared", "-fPIC", src, "-o", tmp],
                check=True,
                capture_output=True,
                timeout=60,
            )
            os.replace(tmp, cache)  # atomic under concurrent builds
        finally:
            for leftover in (src, tmp):
                try:
                    os.unlink(leftover)
                except OSError:
                    pass
    lib = ctypes.CDLL(cache)
    # Hottest entry point (one call per scheduling wave): raw-address
    # arguments skip ctypes pointer-object construction per call.
    fn = lib.greedy_schedule
    fn.restype = None
    fn.argtypes = [
        ctypes.c_void_p, ctypes.c_long,
        ctypes.c_void_p, ctypes.c_long,
        ctypes.c_void_p, ctypes.c_void_p,
    ]
    fn = lib.prev_occurrence
    fn.restype = None
    fn.argtypes = [
        ctypes.POINTER(ctypes.c_long), ctypes.c_long,
        ctypes.POINTER(ctypes.c_long), ctypes.POINTER(ctypes.c_long),
    ]
    fn = lib.count_first_touch
    fn.restype = ctypes.c_long
    fn.argtypes = [
        ctypes.POINTER(ctypes.c_int), ctypes.c_long, ctypes.c_long,
        ctypes.c_long, ctypes.c_long,
    ]
    fn = lib.estimate_first_touch
    fn.restype = ctypes.c_double
    fn.argtypes = [
        ctypes.POINTER(ctypes.c_int), ctypes.POINTER(ctypes.c_long),
        ctypes.c_long, ctypes.c_long, ctypes.c_long, ctypes.c_long,
    ]
    fn = lib.interleave_key
    fn.restype = None
    fn.argtypes = [
        ctypes.POINTER(ctypes.c_long), ctypes.POINTER(ctypes.c_double),
        ctypes.c_long, ctypes.c_long, ctypes.POINTER(ctypes.c_long),
    ]
    fn = lib.interleave_key32
    fn.restype = None
    fn.argtypes = [
        ctypes.POINTER(ctypes.c_long), ctypes.POINTER(ctypes.c_double),
        ctypes.c_long, ctypes.c_long, ctypes.POINTER(ctypes.c_int),
    ]
    fn = lib.window_mask
    fn.restype = None
    fn.argtypes = [
        ctypes.POINTER(ctypes.c_long), ctypes.c_long, ctypes.c_long,
        ctypes.POINTER(ctypes.c_ubyte),
    ]
    fn = lib.merge_pairs
    fn.restype = ctypes.c_int
    fn.argtypes = [
        ctypes.POINTER(ctypes.c_double), ctypes.POINTER(ctypes.c_long),
        ctypes.POINTER(ctypes.c_long), ctypes.c_long,
        ctypes.POINTER(ctypes.c_long), ctypes.c_long,
        ctypes.POINTER(ctypes.c_ubyte), ctypes.c_long, ctypes.c_long,
        ctypes.c_double,
        ctypes.POINTER(ctypes.c_long), ctypes.POINTER(ctypes.c_long),
    ]
    return lib


def _load() -> "ctypes.CDLL | None":
    global _LIB, _TRIED
    if _TRIED:
        return _LIB
    _TRIED = True
    if os.environ.get("REPRO_NATIVE", "1") in ("", "0"):
        return None
    try:
        _LIB = _build()
    except Exception:
        _LIB = None
    return _LIB


def available() -> bool:
    """True when the compiled scheduler is importable on this host."""
    return _load() is not None


def greedy_schedule(
    durations: np.ndarray,
    heap: np.ndarray,
    starts: np.ndarray,
    ends: np.ndarray,
) -> None:
    """Run the greedy earliest-free-slot loop natively, in place.

    ``heap`` holds the slot free times on entry (any order) and the
    final free multiset on exit (heap order — sort before treating it as
    ascending).  ``starts``/``ends`` must be contiguous float64 views of
    ``durations``'s length.
    """
    lib = _load()
    lib.greedy_schedule(
        durations.ctypes.data, durations.shape[0],
        heap.ctypes.data, heap.shape[0],
        starts.ctypes.data, ends.ctypes.data,
    )


def interleave_order(
    row_ptr: np.ndarray, starts: np.ndarray
) -> np.ndarray:
    """Stable (tick, offset, index) issue permutation.

    Builds the packed ``(tick << shift) + offset`` key in one fused C
    pass, then argsorts it with numpy's stable sort; a stable sort's
    permutation is unique and any ``2**shift`` > max offset orders
    (tick, offset) identically, so this equals the lexsort reference
    exactly.  The smallest shift keeps keys in int32 for typical
    streams — half the radix-sort traffic.  ``row_ptr`` contiguous
    int64, ``starts`` contiguous float64 (integer-valued block start
    ticks).
    """
    lib = _load()
    nb = row_ptr.shape[0] - 1
    n = int(row_ptr[-1])
    max_len = int(np.max(np.diff(row_ptr))) if nb else 0
    shift = max(max_len.bit_length(), 1)
    # Safe overestimate of the largest key: every tick is below the
    # largest block start plus the longest block's length.
    max_start = int(starts.max()) if nb else 0
    bound = ((max_start + max_len) << shift) + max_len
    if bound < np.iinfo(np.int32).max:
        key = np.empty(n, dtype=np.int32)
        lib.interleave_key32(
            row_ptr.ctypes.data_as(ctypes.POINTER(ctypes.c_long)),
            starts.ctypes.data_as(ctypes.POINTER(ctypes.c_double)),
            nb, shift,
            key.ctypes.data_as(ctypes.POINTER(ctypes.c_int)),
        )
    else:
        key = np.empty(n, dtype=np.int64)
        lib.interleave_key(
            row_ptr.ctypes.data_as(ctypes.POINTER(ctypes.c_long)),
            starts.ctypes.data_as(ctypes.POINTER(ctypes.c_double)),
            nb, shift,
            key.ctypes.data_as(ctypes.POINTER(ctypes.c_long)),
        )
    return np.argsort(key, kind="stable")


def count_first_touch(
    prev: np.ndarray, t: int, window: int, stride: int
) -> int:
    """``np.count_nonzero(prev[t:t+window:stride] < t)`` in one C pass.

    ``prev`` must be contiguous int32.
    """
    lib = _load()
    return lib.count_first_touch(
        prev.ctypes.data_as(ctypes.POINTER(ctypes.c_int)),
        t, window, stride, prev.shape[0],
    )


def estimate_first_touch(
    prev: np.ndarray, starts: np.ndarray, window: int, stride: int
) -> float:
    """Sum of ``count_first_touch(prev, t, window, stride) * stride``
    over all ``t`` in ``starts``, accumulated in the reference order.

    ``prev`` must be contiguous int32, ``starts`` contiguous int64.
    """
    lib = _load()
    return lib.estimate_first_touch(
        prev.ctypes.data_as(ctypes.POINTER(ctypes.c_int)),
        starts.ctypes.data_as(ctypes.POINTER(ctypes.c_long)),
        starts.shape[0], window, stride, prev.shape[0],
    )


def window_mask(prev: np.ndarray, w: int) -> np.ndarray:
    """Boolean hit mask ``prev >= maximum(arange(n) - w, 0)``."""
    lib = _load()
    n = prev.shape[0]
    out = np.empty(n, dtype=bool)
    lib.window_mask(
        prev.ctypes.data_as(ctypes.POINTER(ctypes.c_long)), n, w,
        out.ctypes.data_as(ctypes.POINTER(ctypes.c_ubyte)),
    )
    return out


def merge_pairs(
    negs: np.ndarray,
    us: np.ndarray,
    vs: np.ndarray,
    sig_rows: np.ndarray,
    empty: np.ndarray,
    max_cluster: int,
    min_similarity: float,
    parent: np.ndarray,
    size: np.ndarray,
) -> bool:
    """Native priority-queue pair merge; mutates ``parent``/``size``.

    Inputs must be contiguous: ``negs`` float64 (negated similarities in
    heap order), ``us``/``vs``/``parent``/``size`` int64, ``sig_rows``
    int64 ``[N, H]`` row-major, ``empty`` uint8/bool per node.  Returns
    False if the native side could not run (allocation failure).
    """
    lib = _load()
    lp = ctypes.POINTER(ctypes.c_long)
    dp = ctypes.POINTER(ctypes.c_double)
    rc = lib.merge_pairs(
        negs.ctypes.data_as(dp),
        us.ctypes.data_as(lp), vs.ctypes.data_as(lp), negs.shape[0],
        sig_rows.ctypes.data_as(lp), sig_rows.shape[1],
        empty.ctypes.data_as(ctypes.POINTER(ctypes.c_ubyte)),
        parent.shape[0], max_cluster, min_similarity,
        parent.ctypes.data_as(lp), size.ctypes.data_as(lp),
    )
    return rc == 0


def prev_occurrence(
    stream: np.ndarray, nvals: int
) -> np.ndarray:
    """Previous-occurrence index per position (``-1`` for first touches).

    ``stream`` must be contiguous int64 with values in ``[0, nvals)``
    (the caller validates bounds — out-of-range values would index the
    scratch table out of bounds).
    """
    lib = _load()
    n = stream.shape[0]
    last = np.full(nvals, -1, dtype=np.int64)
    prev = np.empty(n, dtype=np.int64)
    lp = ctypes.POINTER(ctypes.c_long)
    lib.prev_occurrence(
        stream.ctypes.data_as(lp), n,
        last.ctypes.data_as(lp), prev.ctypes.data_as(lp),
    )
    return prev
