"""Process-parallel kernel-stream simulation (``REPRO_WORKERS=N``).

A kernel simulation is a pure function of content: the kernel's pricing
arrays and row stream, the :class:`~repro.gpusim.config.GPUConfig`, the
dispatch overhead and the cache-model tier.  That makes the cold
simulations of one :func:`~repro.gpusim.executor.simulate_kernels` call
embarrassingly parallel:

1. the parent resolves memo hits and deduplicates cold kernels by
   fingerprint (tuner rounds and ablation variants share kernels);
2. unique cold kernels are sharded round-robin across a persistent
   ``fork`` process pool;
3. results are merged **in submission order** — worker completion order
   never influences the output — and written back into the parent's
   :data:`~repro.gpusim.memo.KERNEL_MEMO`, so a parallel run leaves the
   process in the same memo state as a serial one.

Every worker runs exactly the same float arithmetic the serial path
runs, so ``REPRO_WORKERS=4`` is bit-identical to ``REPRO_WORKERS=1``
(asserted by ``tests/test_parallel.py``).  Workers receive the
performance switches explicitly with each task — a long-lived forked
child must not trust state snapshotted at pool creation.

The pool is created lazily, reused across calls, and torn down at
interpreter exit.  On platforms without ``fork`` the engine degrades to
serial execution.
"""

from __future__ import annotations

import atexit
import dataclasses
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..perf import PERF, cache_model_mode, fastpath_enabled, memo_enabled
from .config import GPUConfig
from .kernel import KernelSpec
from .metrics import KernelStats

__all__ = [
    "simulate_kernels_parallel",
    "simulate_partition_streams",
    "presimulate_plans",
    "shutdown_pool",
]


_POOL = None
_POOL_WORKERS = 0


def _get_pool(n_workers: int):
    """Persistent fork-based pool, rebuilt when the size changes."""
    global _POOL, _POOL_WORKERS
    if _POOL is not None and _POOL_WORKERS == n_workers:
        return _POOL
    shutdown_pool()
    try:
        from concurrent.futures import ProcessPoolExecutor
        from multiprocessing import get_context

        ctx = get_context("fork")
        _POOL = ProcessPoolExecutor(max_workers=n_workers, mp_context=ctx)
        _POOL_WORKERS = n_workers
    except (ValueError, OSError):  # no fork on this platform
        _POOL = None
        _POOL_WORKERS = 0
    return _POOL


def shutdown_pool() -> None:
    """Tear down the worker pool (idempotent)."""
    global _POOL, _POOL_WORKERS
    if _POOL is not None:
        _POOL.shutdown(wait=True, cancel_futures=True)
        _POOL = None
        _POOL_WORKERS = 0


atexit.register(shutdown_pool)


def _simulate_chunk(payload):
    """Worker entry: simulate a chunk of cold kernels.

    Runs in a forked child.  The performance switches travel with the
    payload so a pool outliving a ``configure()`` call stays coherent
    with its parent.
    """
    (indices, kernels, config, dispatch_overhead,
     fastpath, memo, mode) = payload
    from ..perf import PERF as WORKER_PERF
    from ..perf import configure
    from .executor import _simulate_kernel_cold

    configure(fastpath=fastpath, memo=memo, cache_model=mode)
    snap = WORKER_PERF.snapshot()
    t0 = time.perf_counter()
    stats = [
        (i, _simulate_kernel_cold(k, config, dispatch_overhead))
        for i, k in zip(indices, kernels)
    ]
    busy = time.perf_counter() - t0
    delta = WORKER_PERF.delta_since(snap)["seconds"]
    return stats, {
        "busy_seconds": busy,
        "cache_model_seconds": delta.get("cache_model", 0.0),
        "schedule_seconds": delta.get("schedule", 0.0),
        "kernels": len(stats),
    }


def _restore(stats: KernelStats, kernel: KernelSpec) -> KernelStats:
    """Per-caller copy with the display name restored (memo contract)."""
    return dataclasses.replace(
        stats, name=kernel.name, occupancy=dict(stats.occupancy)
    )


def simulate_kernels_parallel(
    kernels: Sequence[KernelSpec],
    config: GPUConfig,
    dispatch_overhead: float,
    n_workers: int,
) -> Tuple[List[KernelStats], Dict[str, object]]:
    """Simulate ``kernels`` across ``n_workers`` processes.

    Returns the per-kernel stats in input order plus an observability
    dict for ``RunReport.extra["perf"]["parallel"]``.  Falls back to the
    serial path when the pool is unavailable.
    """
    from .executor import simulate_kernel
    from .memo import KERNEL_MEMO

    kernels = list(kernels)
    results: List[Optional[KernelStats]] = [None] * len(kernels)
    use_memo = memo_enabled()

    # Resolve memo hits and deduplicate the cold set by fingerprint.
    cold_idx: List[int] = []
    first_of: Dict[str, int] = {}
    dupes: Dict[int, List[int]] = {}
    fingerprints: List[Optional[str]] = [None] * len(kernels)
    for i, k in enumerate(kernels):
        if not use_memo:
            cold_idx.append(i)
            continue
        fp = KERNEL_MEMO.fingerprint(k, config, dispatch_overhead)
        fingerprints[i] = fp
        cached = KERNEL_MEMO.get(fp)
        if cached is not None:
            PERF.count("kernel_memo_hit")
            results[i] = _restore(cached, k)
            continue
        owner = first_of.get(fp)
        if owner is None:
            first_of[fp] = i
            cold_idx.append(i)
        else:
            dupes.setdefault(owner, []).append(i)

    pool = _get_pool(n_workers) if cold_idx else None
    if pool is None and cold_idx:
        # Fork unavailable: keep the exact serial semantics.
        return (
            [
                r if r is not None
                else simulate_kernel(kernels[i], config, dispatch_overhead)
                for i, r in enumerate(results)
            ],
            {"workers": 1, "fallback": "serial"},
        )

    worker_info: List[Dict[str, object]] = []
    wall = 0.0
    if cold_idx:
        fastpath, mode = fastpath_enabled(), cache_model_mode()
        chunks = [cold_idx[w::n_workers] for w in range(n_workers)]
        chunks = [c for c in chunks if c]
        t0 = time.perf_counter()
        futures = [
            pool.submit(_simulate_chunk, (
                chunk,
                [kernels[i] for i in chunk],
                config,
                dispatch_overhead,
                fastpath,
                use_memo,
                mode,
            ))
            for chunk in chunks
        ]
        # Merge in submission order: worker scheduling cannot perturb
        # the output or the memo-population order.
        for fut in futures:
            chunk_stats, info = fut.result()
            worker_info.append(info)
            for i, stats in chunk_stats:
                PERF.count("kernel_memo_miss")
                if use_memo:
                    KERNEL_MEMO.put(fingerprints[i], stats)
                results[i] = _restore(stats, kernels[i])
                for j in dupes.get(i, ()):
                    PERF.count("kernel_memo_hit")
                    results[j] = _restore(stats, kernels[j])
        wall = time.perf_counter() - t0
        # Fold the workers' stage time into the parent registry so the
        # usual cache_model/schedule attribution stays populated (summed
        # CPU seconds across workers, not wall-clock).
        for info in worker_info:
            PERF.add_seconds(
                "cache_model", float(info["cache_model_seconds"])
            )
            PERF.add_seconds("schedule", float(info["schedule_seconds"]))

    busy = sum(float(i["busy_seconds"]) for i in worker_info)
    PERF.add_seconds("pool_wall", wall)
    PERF.add_seconds("pool_busy", busy)
    info = {
        "workers": n_workers,
        "cold_kernels": len(cold_idx),
        "deduped_kernels": sum(len(v) for v in dupes.values()),
        "pool_wall_seconds": round(wall, 6),
        "worker_busy_seconds": [
            round(float(i["busy_seconds"]), 6) for i in worker_info
        ],
        "pool_utilization": (
            round(busy / (n_workers * wall), 4) if wall > 0 else 0.0
        ),
    }
    return _fill_serial(results, kernels, config, dispatch_overhead), info


def simulate_partition_streams(
    streams: Sequence[Sequence[KernelSpec]],
    config: GPUConfig,
    dispatch_overhead: float,
    n_workers: int,
) -> Tuple[List[List[KernelStats]], Optional[Dict[str, object]]]:
    """Simulate per-partition compute streams, one pool chunk per stream.

    The multi-device executor's partitions are independent until their
    transfer edges, so each partition's cold kernels become one worker
    task — partitions simulate in parallel processes while the dedupe
    and memo-writeback semantics of :func:`simulate_kernels_parallel`
    are preserved (partitions of a symmetric shard share most kernel
    fingerprints, so later partitions ride the first one's memo
    entries).  Returns per-partition stats lists plus the parallel info
    dict (``None`` when the run was serial).
    """
    from .executor import simulate_kernel
    from .memo import KERNEL_MEMO

    streams = [list(s) for s in streams]
    flat: List[KernelSpec] = [k for s in streams for k in s]
    bounds: List[int] = []
    off = 0
    for s in streams:
        bounds.append(off)
        off += len(s)
    bounds.append(off)

    def split(results: List[KernelStats]) -> List[List[KernelStats]]:
        return [
            results[bounds[p] : bounds[p + 1]]
            for p in range(len(streams))
        ]

    pool = _get_pool(n_workers) if n_workers > 1 and flat else None
    if pool is None:
        return (
            split([
                simulate_kernel(k, config, dispatch_overhead)
                for k in flat
            ]),
            None,
        )

    use_memo = memo_enabled()
    results: List[Optional[KernelStats]] = [None] * len(flat)
    cold_by_part: List[List[int]] = [[] for _ in streams]
    first_of: Dict[str, int] = {}
    dupes: Dict[int, List[int]] = {}
    fingerprints: List[Optional[str]] = [None] * len(flat)
    for p in range(len(streams)):
        for i in range(bounds[p], bounds[p + 1]):
            k = flat[i]
            if not use_memo:
                cold_by_part[p].append(i)
                continue
            fp = KERNEL_MEMO.fingerprint(k, config, dispatch_overhead)
            fingerprints[i] = fp
            cached = KERNEL_MEMO.get(fp)
            if cached is not None:
                PERF.count("kernel_memo_hit")
                results[i] = _restore(cached, k)
                continue
            owner = first_of.get(fp)
            if owner is None:
                first_of[fp] = i
                cold_by_part[p].append(i)
            else:
                dupes.setdefault(owner, []).append(i)

    chunks = [c for c in cold_by_part if c]
    worker_info: List[Dict[str, object]] = []
    wall = 0.0
    if chunks:
        fastpath, mode = fastpath_enabled(), cache_model_mode()
        t0 = time.perf_counter()
        futures = [
            pool.submit(_simulate_chunk, (
                chunk,
                [flat[i] for i in chunk],
                config,
                dispatch_overhead,
                fastpath,
                use_memo,
                mode,
            ))
            for chunk in chunks
        ]
        for fut in futures:
            chunk_stats, info = fut.result()
            worker_info.append(info)
            for i, stats in chunk_stats:
                PERF.count("kernel_memo_miss")
                if use_memo:
                    KERNEL_MEMO.put(fingerprints[i], stats)
                results[i] = _restore(stats, flat[i])
                for j in dupes.get(i, ()):
                    PERF.count("kernel_memo_hit")
                    results[j] = _restore(stats, flat[j])
        wall = time.perf_counter() - t0
        for info in worker_info:
            PERF.add_seconds(
                "cache_model", float(info["cache_model_seconds"])
            )
            PERF.add_seconds("schedule", float(info["schedule_seconds"]))

    busy = sum(float(i["busy_seconds"]) for i in worker_info)
    PERF.add_seconds("pool_wall", wall)
    PERF.add_seconds("pool_busy", busy)
    cold_total = sum(len(c) for c in chunks)
    info = {
        "workers": n_workers,
        "partitions": len(streams),
        "cold_kernels": cold_total,
        "deduped_kernels": sum(len(v) for v in dupes.values()),
        "pool_wall_seconds": round(wall, 6),
        "worker_busy_seconds": [
            round(float(i["busy_seconds"]), 6) for i in worker_info
        ],
        "pool_utilization": (
            round(busy / (n_workers * wall), 4) if wall > 0 else 0.0
        ),
    }
    return split(
        _fill_serial(results, flat, config, dispatch_overhead)
    ), info


def presimulate_plans(
    plans: Sequence[object],
    n_workers: int,
    config: Optional[GPUConfig] = None,
) -> Dict[str, object]:
    """Warm :data:`KERNEL_MEMO` for a round of cold plans in one pool pass.

    The serving layer's pooled-execution stage: when a flush round
    resolves several batches whose plans have never been simulated, the
    cold kernels of *all* of them are deduplicated and sharded across
    the PR-6 worker pool in a single invocation — cross-batch dedup that
    per-batch execution could never see.  The subsequent per-batch
    ``simulate_plan`` calls then run entirely against the warmed memo,
    so the simulated numbers are bit-identical to serial execution (the
    memo write-back semantics of :func:`simulate_kernels_parallel`).

    Plans may carry different dispatch overheads (per-framework); each
    (config, dispatch) group is fingerprinted separately since the
    dispatch cost enters the memo key.  No-op (returns ``{}``) when the
    memo is disabled — without a memo there is nothing to warm.
    """
    if not memo_enabled() or n_workers <= 1:
        return {}
    groups: Dict[Tuple[int, float], List[object]] = {}
    for plan in plans:
        cfg = config if config is not None else plan.gpu_config
        groups.setdefault((id(cfg), plan.dispatch_overhead), []).append(
            (cfg, plan)
        )
    info: Dict[str, object] = {"groups": 0, "cold_kernels": 0,
                               "deduped_kernels": 0}
    for entries in groups.values():
        cfg = entries[0][0]
        dispatch = entries[0][1].dispatch_overhead
        kernels = [k for _, plan in entries for k in plan.kernels]
        if len(kernels) < 2:
            continue
        _, ginfo = simulate_kernels_parallel(
            kernels, cfg, dispatch, n_workers
        )
        info["groups"] += 1
        info["cold_kernels"] += int(ginfo.get("cold_kernels", 0))
        info["deduped_kernels"] += int(ginfo.get("deduped_kernels", 0))
    return info


def _fill_serial(results, kernels, config, dispatch_overhead):
    """Defensive: simulate any kernel the pool did not cover."""
    from .executor import simulate_kernel

    return [
        r if r is not None
        else simulate_kernel(kernels[i], config, dispatch_overhead)
        for i, r in enumerate(results)
    ]
