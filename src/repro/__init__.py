"""repro — reproduction of "Understanding and Bridging the Gaps in
Current GNN Performance Optimizations" (PPoPP '21).

Public API tour:

* :mod:`repro.graph` — CSR graphs, synthetic generators and the eight
  scaled OGB-like datasets.
* :mod:`repro.gpusim` — the GPU execution-model simulator (the V100
  substitute): block scheduling, occupancy, L2 models, OOM accounting.
* :mod:`repro.ops` / :mod:`repro.models` — functional operators and the
  GCN / GAT / GraphSAGE-LSTM reference models.
* :mod:`repro.frameworks` — execution strategies of DGL, PyG, ROC and
  our optimized runtime.
* :mod:`repro.core` — the paper's contribution: locality-aware task
  scheduling, neighbor grouping, the data visible range adapter, sparse
  fetching + redundancy bypassing, and the tuner.
* :mod:`repro.bench` — the harness that regenerates every table and
  figure of the paper's evaluation.

Quickstart::

    from repro.graph import load_dataset
    from repro.gpusim import V100_SCALED
    from repro.frameworks import DGLLike, OursRuntime

    g = load_dataset("arxiv")
    base = DGLLike().run_model("gat", g, V100_SCALED)
    ours = OursRuntime().run_model("gat", g, V100_SCALED)
    print(base.time_ms / ours.time_ms, "x speedup")
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
