"""Shared experiment infrastructure: caches, configs, table formatting.

Analyses (locality-aware schedules, MinHash signatures, tuner results)
are expensive and graph-invariant, so they are cached per process here —
the library-level mirror of the paper's "done offline once, reused for
many runs" argument (§4.4).
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Sequence

from ..core.pipeline import shared_schedule
from ..core.scheduling import ScheduleResult
from ..frameworks.ours import OursOptions, OursRuntime
from ..gpusim.config import V100_SCALED, GPUConfig
from ..graph.csr import CSRGraph

__all__ = [
    "bench_config",
    "sweep_config",
    "cached_schedule",
    "cached_runtime",
    "verify_plans_default",
    "format_table",
    "write_result",
    "RESULTS_DIR",
]

#: Where benchmark tables are persisted (next to bench_output.txt).
RESULTS_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))
    ))),
    "benchmarks", "out",
)

_RUNTIMES: Dict[OursOptions, OursRuntime] = {}


def bench_config() -> GPUConfig:
    """The simulator configuration all benchmarks use."""
    return V100_SCALED


def sweep_config() -> GPUConfig:
    """Faster configuration for dense parameter sweeps (Figs. 4/12):
    shorter cache traces — rates are stationary, so sweeps keep their
    shape at a fraction of the cost."""
    return V100_SCALED.replace(cache_trace_limit=400_000)


def cached_schedule(graph: CSRGraph) -> ScheduleResult:
    """Locality-aware schedule, computed once per graph per process.

    Delegates to the compilation pipeline's process-wide analysis tier
    (:func:`repro.core.pipeline.shared_schedule`): same-graph calls
    return the *same* object, keyed by the graph's structural
    fingerprint (``id()`` keys alias once the original arrays are
    garbage-collected and the allocator recycles the address).
    """
    return shared_schedule(graph)


#: Pure function of the graph — runtimes injecting this hook stay in the
#: content-addressed plan cache (see OursRuntime's ``schedule_fn``).
cached_schedule.plan_cache_safe = True


def verify_plans_default() -> bool:
    """Whether benchmark runtimes statically verify every lowered plan.

    Opt-in via ``REPRO_VERIFY_PLANS=1`` — CI turns it on so every
    benchmark pipeline passes through the four analysis passes; local
    perf runs skip the overhead by default.
    """
    return os.environ.get("REPRO_VERIFY_PLANS", "") not in ("", "0")


def cached_runtime(options: Optional[OursOptions] = None) -> OursRuntime:
    """Shared OursRuntime per option set.

    All runtimes resolve their offline analysis through
    :func:`cached_schedule`, so a graph is MinHash-clustered once per
    process no matter how many ablation variants run on it.  When no
    explicit options are given, plan verification follows
    :func:`verify_plans_default`.
    """
    if options is None:
        options = OursOptions(verify_plans=verify_plans_default())
    if options not in _RUNTIMES:
        _RUNTIMES[options] = OursRuntime(
            options, schedule_fn=cached_schedule
        )
    return _RUNTIMES[options]


def format_table(
    title: str,
    columns: Sequence[str],
    rows: Sequence[Sequence[object]],
    col_width: int = 11,
) -> str:
    """Fixed-width text table (the benchmarks' output format)."""
    lines = [title, "-" * max(len(title), 8)]
    header = "".join(f"{c:>{col_width}s}" for c in columns)
    lines.append(header)
    for row in rows:
        cells = []
        for v in row:
            if v is None:
                cells.append(f"{'OOM':>{col_width}s}")
            elif isinstance(v, float):
                cells.append(f"{v:{col_width}.3f}")
            else:
                cells.append(f"{str(v):>{col_width}s}")
        lines.append("".join(cells))
    return "\n".join(lines)


def write_result(name: str, text: str) -> str:
    """Persist a benchmark table under benchmarks/out/ and return text."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, name + ".txt")
    with open(path, "w") as fh:
        fh.write(text + "\n")
    return text
