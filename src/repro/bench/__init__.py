"""Benchmark harness: one function per paper table/figure + shared caches."""

from . import paper_expected
from .experiments import (
    fig3_l2_miss_rates,
    fig4_throughput_sweep,
    fig7_overall,
    fig8_ng_balance,
    fig9_l2_hit_rates,
    fig10_adapter,
    fig11_sage_strategies,
    fig12_tuned_sweep,
    table4_occupancy,
    table5_expansion_transform,
    table6_gat_ablation,
)
from .harness import (
    bench_config,
    cached_runtime,
    cached_schedule,
    format_table,
    sweep_config,
    write_result,
)

__all__ = [
    "paper_expected",
    "fig3_l2_miss_rates",
    "fig4_throughput_sweep",
    "fig7_overall",
    "fig8_ng_balance",
    "fig9_l2_hit_rates",
    "fig10_adapter",
    "fig11_sage_strategies",
    "fig12_tuned_sweep",
    "table4_occupancy",
    "table5_expansion_transform",
    "table6_gat_ablation",
    "bench_config",
    "cached_runtime",
    "cached_schedule",
    "format_table",
    "sweep_config",
    "write_result",
]
