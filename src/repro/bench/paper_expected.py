"""Paper-reported values for every table and figure we reproduce.

Numbers come from the paper's tables verbatim; figure-only results are
read off the plots and marked approximate.  Benchmarks print these next
to our measurements and assert the *qualitative shape* (orderings,
winners, crossovers) rather than absolute values — our substrate is a
simulator, not the authors' V100 testbed (DESIGN.md §2).
"""

from __future__ import annotations

from typing import Dict, Optional

__all__ = [
    "DATASET_ORDER",
    "FIG3_HIGH_MISS",
    "FIG3_LOW_MISS",
    "TABLE4_BELOW_100",
    "TABLE5_EXPANSION_PCT",
    "TABLE5_TRANSFORM_PCT",
    "FIG7_GCN_MS",
    "FIG7_GAT_MS",
    "FIG7_SAGE_MS",
    "FIG8_NG_REGRESSION",
    "FIG10_GCN_ADAPTER_GAIN",
    "FIG11_SPFETCH_GAIN",
    "FIG11_REDBYPASS_GAIN",
    "TABLE6",
    "OVERALL_SPEEDUP",
]

DATASET_ORDER = [
    "arxiv", "collab", "citation", "ddi", "protein", "ppa",
    "reddit", "products",
]

#: Fig. 3: datasets with >50% L2 miss rate in DGL GCN graph ops ...
FIG3_HIGH_MISS = ("arxiv", "collab", "citation", "ppa", "reddit",
                  "products")
#: ... and the "small or already clustered" exceptions.
FIG3_LOW_MISS = ("ddi", "protein")

#: Table 4: % of time with active blocks < 100% in DGL GAT graph ops.
TABLE4_BELOW_100: Dict[str, float] = {
    "arxiv": 89.99, "collab": 34.35, "citation": 3.23, "ddi": 74.39,
    "protein": 14.12, "ppa": 6.49, "reddit": 19.15, "products": 5.70,
}

#: Table 5: expansion / transformation % of DGL GraphSAGE-LSTM time.
TABLE5_EXPANSION_PCT: Dict[str, float] = {
    "arxiv": 9.60, "collab": 9.70, "citation": 7.32, "ddi": 8.89,
    "protein": 9.69, "ppa": 9.95, "reddit": 9.42, "products": 8.05,
}
TABLE5_TRANSFORM_PCT: Dict[str, float] = {
    "arxiv": 25.60, "collab": 21.42, "citation": 19.02, "ddi": 20.85,
    "protein": 23.01, "ppa": 24.32, "reddit": 22.64, "products": 18.77,
}

#: Fig. 7 execution times in ms (None = OOM, absent = not implemented).
FIG7_GCN_MS: Dict[str, Dict[str, Optional[float]]] = {
    "dgl": {"arxiv": 6.15, "collab": 8.54, "citation": 112.09,
            "ddi": 1.83, "protein": 36.10, "ppa": 73.36,
            "reddit": 105.25, "products": 252.18},
    "pyg": {"arxiv": 15.23, "collab": 36.60, "citation": 789.07,
            "ddi": 21.18, "protein": None, "ppa": 945.81,
            "reddit": None, "products": None},
    "roc": {"arxiv": 9.46, "collab": 11.13, "citation": None,
            "ddi": 5.78, "protein": 146.66, "ppa": 113.66,
            "reddit": None, "products": None},
    "ours": {"arxiv": 3.74, "collab": 5.66, "citation": 77.15,
             "ddi": 0.92, "protein": 33.12, "ppa": 31.48,
             "reddit": 52.29, "products": 104.29},
}

FIG7_GAT_MS: Dict[str, Dict[str, Optional[float]]] = {
    "dgl": {"arxiv": 16.76, "collab": 30.28, "citation": 557.08,
            "ddi": 17.89, "protein": 883.76, "ppa": 627.56,
            "reddit": 1743.16, "products": 2417.00},
    "pyg": {"arxiv": 41.86, "collab": 85.40, "citation": None,
            "ddi": 91.50, "protein": None, "ppa": None,
            "reddit": None, "products": None},
    "ours": {"arxiv": 4.13, "collab": 6.33, "citation": 89.19,
             "ddi": 0.99, "protein": 35.58, "ppa": 36.55,
             "reddit": 59.71, "products": 121.00},
}

FIG7_SAGE_MS: Dict[str, Dict[str, Optional[float]]] = {
    "dgl": {"arxiv": 16.06, "collab": 20.30, "citation": 258.95,
            "ddi": 0.47, "protein": 12.40, "ppa": 52.38,
            "reddit": 20.57, "products": 218.13},
    "ours": {"arxiv": 11.25, "collab": 15.02, "citation": 191.28,
             "ddi": 0.33, "protein": 9.23, "ppa": 38.52,
             "reddit": 15.12, "products": 160.89},
}

#: Fig. 8: the one dataset where neighbor grouping LOSES (by ~8%).
FIG8_NG_REGRESSION = "protein"

#: Fig. 10b: adapter+linear gains ~16% on GCN; ddi/protein slightly lose.
FIG10_GCN_ADAPTER_GAIN = 0.16

#: Fig. 11: sparse fetching alone <10%; with redundancy bypassing ~32%.
FIG11_SPFETCH_GAIN = 0.10
FIG11_REDBYPASS_GAIN = 0.32

#: Table 6: GAT last-layer speedup over our unoptimized implementation.
TABLE6: Dict[str, Dict[str, float]] = {
    "arxiv": {"adp": 1.07, "adp_ng": 8.02, "adp_ng_las": 9.85},
    "collab": {"adp": 1.31, "adp_ng": 1.76, "adp_ng_las": 2.41},
    "citation": {"adp": 1.43, "adp_ng": 1.86, "adp_ng_las": 2.24},
    "ddi": {"adp": 1.25, "adp_ng": 2.57, "adp_ng_las": 2.86},
    "protein": {"adp": 1.26, "adp_ng": 1.96, "adp_ng_las": 1.83},
    "ppa": {"adp": 1.20, "adp_ng": 2.20, "adp_ng_las": 2.67},
    "reddit": {"adp": 1.15, "adp_ng": 1.95, "adp_ng_las": 2.68},
    "products": {"adp": 1.51, "adp_ng": 2.83, "adp_ng_las": 3.62},
}

#: §5.1 headline speedups over (DGL, PyG, ROC) per model.
OVERALL_SPEEDUP = {
    "gcn": {"dgl": 1.81, "pyg": 14.8, "roc": 3.76},
    "gat": {"dgl": 15.5, "pyg": 38.6},
    "sage_lstm": {"dgl": 1.37},
}
