"""Experiment implementations: one function per paper table/figure.

Each function returns structured results; the pytest benchmarks in
``benchmarks/`` wrap them, print paper-vs-measured tables and assert the
qualitative shapes.  Examples import them too.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.adapter import plan_fusion
from ..core.compgraph import gat_attention_ops, gcn_layer_ops
from ..core.grouping import identity_grouping, neighbor_grouping
from ..core.lowering import ExecLayout, aggregation_kernel, lower_plan
from ..core.sparse_fetch import SageStrategy, lower_sage_lstm
from ..core.tuner import pick_lanes, tune
from ..frameworks import NotSupported, default_frameworks
from ..gpusim.config import GPUConfig
from ..gpusim.executor import simulate_kernel, simulate_kernels
from ..gpusim.memory import SimulatedOOM
from ..graph.csr import CSRGraph
from ..graph.datasets import DATASET_NAMES, load_dataset
from ..models.sage_lstm import SageLSTMConfig
from .harness import bench_config, cached_runtime, cached_schedule

__all__ = [
    "fig3_l2_miss_rates",
    "table4_occupancy",
    "table5_expansion_transform",
    "fig4_throughput_sweep",
    "fig7_overall",
    "fig8_ng_balance",
    "fig9_l2_hit_rates",
    "fig10_adapter",
    "fig11_sage_strategies",
    "fig12_tuned_sweep",
    "table6_gat_ablation",
    "GCN_LAST_LAYER_FEAT",
]

#: Feature length of the last GCN layer (Figs. 3/8/9 instrument it).
GCN_LAST_LAYER_FEAT = 32
#: Feature length of the GAT layer used for Fig. 10a / Table 6.
GAT_LAYER_FEAT = 32


# ----------------------------------------------------------------------
# §3 observations
# ----------------------------------------------------------------------

def fig3_l2_miss_rates(
    datasets: List[str] = DATASET_NAMES,
    config: Optional[GPUConfig] = None,
) -> Dict[str, Tuple[float, bool]]:
    """Fig. 3: L2 miss rate of DGL's GCN last-layer graph operation.

    Returns {dataset: (miss_rate, uses_cusparse)}; the SUM reducer always
    takes the cuSPARSE path in DGL, so the flag is True throughout (the
    figure's "w/ cuSPARSE" marks).
    """
    config = config or bench_config()
    out = {}
    for name in datasets:
        g = load_dataset(name)
        kernel = aggregation_kernel(
            g, GCN_LAST_LAYER_FEAT, config, ExecLayout.default(g),
            name=f"{name}.gcn_last.aggregate",
            edge_stream_bytes_per_edge=0.0, tag="cusparse",
        )
        stats = simulate_kernel(kernel, config)
        out[name] = (stats.l2_miss_rate, True)
    return out


def table4_occupancy(
    datasets: List[str] = DATASET_NAMES,
    config: Optional[GPUConfig] = None,
) -> Dict[str, Dict[float, float]]:
    """Table 4: % of time active blocks < 100/50/10% in DGL GAT graph ops.

    Instrumented on the dominant graph kernel (the attention-weighted
    aggregation) of the GAT last layer, as lowered by DGL.
    """
    config = config or bench_config()
    out = {}
    for name in datasets:
        g = load_dataset(name)
        kernel = aggregation_kernel(
            g, GAT_LAYER_FEAT, config, ExecLayout.default(g),
            name=f"{name}.gat.aggregate",
            compute_scale=64.0, uncoalesced=8.0,
        )
        stats = simulate_kernel(kernel, config)
        out[name] = {
            frac: 100.0 * val for frac, val in stats.occupancy.items()
        }
    return out


def table5_expansion_transform(
    datasets: List[str] = DATASET_NAMES,
    config: Optional[GPUConfig] = None,
) -> Dict[str, Tuple[float, float]]:
    """Table 5: expansion% and transformation% of DGL GraphSAGE-LSTM."""
    config = config or bench_config()
    model = SageLSTMConfig()
    out = {}
    for name in datasets:
        g = load_dataset(name)
        kernels, phases = lower_sage_lstm(
            g, model.f_in, model.hidden, model.num_neighbors, config,
            SageStrategy.BASE,
        )
        report = simulate_kernels(
            kernels, config, dispatch_overhead=25e-6
        )
        times = np.array([k.time for k in report.kernels])
        total = times.sum()
        exp = sum(
            times[p.kernel_index] for p in phases if p.phase == "expansion"
        )
        trans = sum(
            times[p.kernel_index]
            for p in phases
            if p.phase == "transformation"
        )
        out[name] = (100.0 * exp / total, 100.0 * trans / total)
    return out


def fig4_throughput_sweep(
    datasets: List[str] = DATASET_NAMES,
    feature_lengths: Optional[List[int]] = None,
    config: Optional[GPUConfig] = None,
    tuned: bool = False,
) -> Dict[str, Dict[int, float]]:
    """Figs. 4 and 12: aggregation GFLOPS vs feature length.

    ``tuned=False`` is the fixed DGL-style mapping (Fig. 4's sawtooth);
    ``tuned=True`` applies lane selection, packed rows, grouping and
    scheduling (Fig. 12's smooth curves).
    """
    config = config or bench_config()
    feats = feature_lengths or list(range(16, 257, 16))
    out: Dict[str, Dict[int, float]] = {}
    for name in datasets:
        g = load_dataset(name)
        series = {}
        order = cached_schedule(g).order if tuned else None
        for f in feats:
            if tuned:
                result = tune(g, f, config)
                layout = result.layout(g, center_order=order)
            else:
                layout = ExecLayout.default(g)
            kernel = aggregation_kernel(g, f, config, layout)
            stats = simulate_kernel(kernel, config)
            # Useful FLOPs only (2 per edge element), not lane waste.
            useful = 2.0 * g.num_edges * f
            series[f] = useful / stats.time / 1e9
        out[name] = series
    return out


# ----------------------------------------------------------------------
# §5.1 overall performance
# ----------------------------------------------------------------------

@dataclasses.dataclass
class Fig7Cell:
    time_ms: Optional[float]  # None = OOM
    supported: bool = True

    @property
    def label(self) -> str:
        if not self.supported:
            return "X"
        if self.time_ms is None:
            return "OOM"
        return f"{self.time_ms:.2f}"


def fig7_overall(
    models: Tuple[str, ...] = ("gcn", "gat", "sage_lstm"),
    datasets: List[str] = DATASET_NAMES,
    config: Optional[GPUConfig] = None,
) -> Dict[str, Dict[str, Dict[str, Fig7Cell]]]:
    """Fig. 7: forward-pass time of DGL/PyG/ROC/Ours on all models."""
    config = config or bench_config()
    frameworks = default_frameworks()
    frameworks["ours"] = cached_runtime()
    grid: Dict[str, Dict[str, Dict[str, Fig7Cell]]] = {}
    for model in models:
        grid[model] = {}
        for fname, framework in frameworks.items():
            row = {}
            for dname in datasets:
                g = load_dataset(dname)
                try:
                    res = framework.run_model(model, g, config)
                    row[dname] = Fig7Cell(res.time_ms)
                except NotSupported:
                    row[dname] = Fig7Cell(None, supported=False)
                except SimulatedOOM:
                    row[dname] = Fig7Cell(None)
            grid[model][fname] = row
    return grid


# ----------------------------------------------------------------------
# §5.2 detailed analysis
# ----------------------------------------------------------------------

def fig8_ng_balance(
    datasets: List[str] = DATASET_NAMES,
    config: Optional[GPUConfig] = None,
    bound: int = 32,
) -> Dict[str, Dict[str, float]]:
    """Fig. 8: balanced vs actual time, base vs neighbor grouping,
    on the GCN last-layer graph operation (relative to base actual)."""
    config = config or bench_config()
    out = {}
    for name in datasets:
        g = load_dataset(name)
        base = simulate_kernel(
            aggregation_kernel(
                g, GCN_LAST_LAYER_FEAT, config, ExecLayout.default(g)
            ),
            config,
        )
        ng = simulate_kernel(
            aggregation_kernel(
                g, GCN_LAST_LAYER_FEAT, config,
                ExecLayout(grouping=neighbor_grouping(g, bound)),
            ),
            config,
        )
        ref = base.makespan
        out[name] = {
            "base_balanced": base.balanced_time / ref,
            "base_actual": 1.0,
            "ng_balanced": ng.balanced_time / ref,
            "ng_actual": ng.makespan / ref,
        }
    return out


def fig9_l2_hit_rates(
    datasets: List[str] = DATASET_NAMES,
    config: Optional[GPUConfig] = None,
    bound: int = 32,
) -> Dict[str, Dict[str, float]]:
    """Fig. 9: L2 hit rates of best-prior / NG / LAS / NG+LAS."""
    config = config or bench_config()
    out = {}
    for name in datasets:
        g = load_dataset(name)
        order = cached_schedule(g).order

        def hit(layout: ExecLayout) -> float:
            k = aggregation_kernel(
                g, GCN_LAST_LAYER_FEAT, config, layout
            )
            return 100.0 * simulate_kernel(k, config).l2_hit_rate

        out[name] = {
            "best_prior": hit(ExecLayout.default(g)),
            "ng": hit(ExecLayout(neighbor_grouping(g, bound))),
            "las": hit(ExecLayout(identity_grouping(g),
                                  center_order=order)),
            "ng_las": hit(
                ExecLayout(neighbor_grouping(g, bound),
                           center_order=order)
            ),
        }
    return out


def _gat_layer_time(
    graph: CSRGraph,
    config: GPUConfig,
    *,
    adapter: bool,
    linear: bool,
    grouping_bound: Optional[int],
    order: Optional[np.ndarray],
) -> float:
    """One GAT layer's graph-side time under the given optimizations."""
    layout = ExecLayout(
        grouping=(
            neighbor_grouping(graph, grouping_bound)
            if grouping_bound
            else identity_grouping(graph)
        ),
        center_order=order,
        lanes=pick_lanes(GAT_LAYER_FEAT),
        packed_rows=True,
    )
    plan = plan_fusion(
        gat_attention_ops(),
        allow_adapter=adapter,
        allow_linear=linear,
        grouped=grouping_bound is not None,
    )
    kernels = lower_plan(plan, graph, GAT_LAYER_FEAT, config, layout)
    report = simulate_kernels(kernels, config, dispatch_overhead=25e-6)
    return report.total_time


def fig10_adapter(
    model: str,
    datasets: List[str] = DATASET_NAMES,
    config: Optional[GPUConfig] = None,
) -> Dict[str, Dict[str, float]]:
    """Fig. 10: adapter and linear-property gains on a GAT / GCN layer.

    Baseline = NG + LAS without fusion; normalized to the baseline.
    """
    config = config or bench_config()
    assert model in ("gat", "gcn")
    ops = gat_attention_ops() if model == "gat" else gcn_layer_ops()
    feat = GAT_LAYER_FEAT
    out = {}
    for name in datasets:
        g = load_dataset(name)
        order = cached_schedule(g).order
        layout = ExecLayout(
            grouping=neighbor_grouping(g, 32),
            center_order=order,
            lanes=pick_lanes(feat),
            packed_rows=True,
        )

        def run(adapter: bool, linear: bool) -> float:
            plan = plan_fusion(
                ops, allow_adapter=adapter, allow_linear=linear,
                grouped=True,
            )
            kernels = lower_plan(plan, g, feat, config, layout)
            return simulate_kernels(
                kernels, config, dispatch_overhead=25e-6
            ).total_time

        base = run(False, False)
        out[name] = {
            "base": 1.0,
            "adapter": run(True, False) / base,
            "adapter_linear": run(True, True) / base,
        }
    return out


def fig11_sage_strategies(
    datasets: List[str] = DATASET_NAMES,
    config: Optional[GPUConfig] = None,
) -> Dict[str, Dict[str, float]]:
    """Fig. 11: base vs +sparse-fetching vs +redundancy-bypassing on
    GraphSAGE-LSTM (normalized to base)."""
    config = config or bench_config()
    model = SageLSTMConfig()
    out = {}
    for name in datasets:
        g = load_dataset(name)

        def run(strategy: SageStrategy) -> float:
            kernels, _ = lower_sage_lstm(
                g, model.f_in, model.hidden, model.num_neighbors,
                config, strategy,
            )
            return simulate_kernels(
                kernels, config, dispatch_overhead=25e-6
            ).total_time

        base = run(SageStrategy.BASE)
        out[name] = {
            "base": 1.0,
            "spfetch": run(SageStrategy.SPARSE_FETCH) / base,
            "redbypass": run(SageStrategy.REDUNDANCY_BYPASS) / base,
        }
    return out


def fig12_tuned_sweep(
    datasets: List[str] = DATASET_NAMES,
    feature_lengths: Optional[List[int]] = None,
    config: Optional[GPUConfig] = None,
) -> Dict[str, Dict[int, float]]:
    """Fig. 12: the Fig. 4 sweep with the tuner enabled."""
    return fig4_throughput_sweep(
        datasets, feature_lengths, config, tuned=True
    )


def table6_gat_ablation(
    datasets: List[str] = DATASET_NAMES,
    config: Optional[GPUConfig] = None,
) -> Dict[str, Dict[str, float]]:
    """Table 6: speedups of Adp / Adp+NG / Adp+NG+LAS on the GAT last
    layer over our unoptimized implementation."""
    config = config or bench_config()
    out = {}
    for name in datasets:
        g = load_dataset(name)
        order = cached_schedule(g).order
        base = _gat_layer_time(
            g, config, adapter=False, linear=False,
            grouping_bound=None, order=None,
        )
        adp = _gat_layer_time(
            g, config, adapter=True, linear=True,
            grouping_bound=None, order=None,
        )
        adp_ng = _gat_layer_time(
            g, config, adapter=True, linear=True,
            grouping_bound=32, order=None,
        )
        adp_ng_las = _gat_layer_time(
            g, config, adapter=True, linear=True,
            grouping_bound=32, order=order,
        )
        out[name] = {
            "adp": base / adp,
            "adp_ng": base / adp_ng,
            "adp_ng_las": base / adp_ng_las,
        }
    return out
