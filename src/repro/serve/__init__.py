"""Batched, multi-tenant plan serving (`PlanServer` + ``repro serve``).

The compile-once/run-many substrate (content-addressed
:class:`~repro.core.plan.CompiledPlan`, two-tier
:data:`~repro.core.plan.PLAN_CACHE`, plan-level execution memo) turns
into a serving story here: an in-process request front-end that accepts
(framework, model, graph) inference requests from many tenants, batches
compatible ones onto shared plan executions, keeps a warm pool of hot
plans under the cache's admission/eviction policies, and reports
per-tenant latency percentiles and cache hit rates.

The pipeline is explicit, one stage per module::

    InferenceRequest        (request.py)
      -> admission          (admission.py: quotas, size caps, catalog)
      -> plan resolution    (server.resolve_plan: cache hit or compile)
      -> compatibility batching
                            (batching.py: group by plan signature)
      -> pooled execution   (server.PlanServer.flush: one simulate_plan
                             per batch, cold kernels through the PR-6
                             worker pool)
      -> per-tenant report  (ServeResponse + LatencyHistogram stats)

``Framework.run_*`` routes through :func:`execute_one` — the
single-request degenerate case of the same pipeline — so interactive
runs and served batches share one implementation.  Batched execution is
bit-identical to sequential per-request execution: a batch runs its
plan's simulation once and fans the resulting kernel statistics back to
every member request.
"""

from .admission import (
    REASON_GRAPH_TOO_LARGE,
    REASON_TENANT_QUOTA,
    REASON_UNKNOWN_FRAMEWORK,
    REASON_UNKNOWN_MODEL,
    AdmissionPolicy,
    admit,
)
from .batching import Batch, plan_batches
from .request import InferenceRequest, ServeResponse
from .replay import TraceSpec, replay, synthetic_trace
from .server import PlanServer, execute_one, resolve_plan

__all__ = [
    "InferenceRequest",
    "ServeResponse",
    "AdmissionPolicy",
    "admit",
    "REASON_UNKNOWN_MODEL",
    "REASON_UNKNOWN_FRAMEWORK",
    "REASON_GRAPH_TOO_LARGE",
    "REASON_TENANT_QUOTA",
    "Batch",
    "plan_batches",
    "PlanServer",
    "execute_one",
    "resolve_plan",
    "TraceSpec",
    "synthetic_trace",
    "replay",
]
