"""Admission control: what the server agrees to queue.

Admission is the first pipeline stage and the only one that can say no.
It is deliberately cheap — catalog lookups and integer comparisons, no
graph work — because it runs per request before any batching leverage
exists.  Every rejection carries a stable reason code so tenants (and
the replay benchmark's assertions) can tell quota pressure from bad
requests.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Mapping, Optional

from ..frameworks.base import Framework
from .request import InferenceRequest

__all__ = [
    "REASON_UNKNOWN_MODEL",
    "REASON_UNKNOWN_FRAMEWORK",
    "REASON_GRAPH_TOO_LARGE",
    "REASON_TENANT_QUOTA",
    "AdmissionPolicy",
    "admit",
]

REASON_UNKNOWN_MODEL = "unknown_model"
REASON_UNKNOWN_FRAMEWORK = "unknown_framework"
REASON_GRAPH_TOO_LARGE = "graph_too_large"
REASON_TENANT_QUOTA = "tenant_quota"

#: The model catalog every framework understands (the paper's three).
KNOWN_MODELS = ("gcn", "gat", "sage_lstm")


@dataclasses.dataclass(frozen=True)
class AdmissionPolicy:
    """Server-side limits; ``None`` disables a check.

    ``max_queue_per_tenant`` bounds a single tenant's unflushed
    requests, the classic noisy-neighbour guard: one tenant replaying a
    firehose cannot starve the batch window for everyone else.
    """

    max_nodes: Optional[int] = None
    max_edges: Optional[int] = None
    max_queue_per_tenant: Optional[int] = None

    def describe(self) -> str:
        parts = []
        if self.max_nodes is not None:
            parts.append(f"nodes<={self.max_nodes}")
        if self.max_edges is not None:
            parts.append(f"edges<={self.max_edges}")
        if self.max_queue_per_tenant is not None:
            parts.append(f"queue/tenant<={self.max_queue_per_tenant}")
        return " ".join(parts) if parts else "open"


def admit(
    request: InferenceRequest,
    policy: AdmissionPolicy,
    frameworks: Mapping[str, Framework],
    queued_per_tenant: Dict[str, int],
) -> Optional[str]:
    """Return a rejection reason code, or ``None`` to admit.

    ``queued_per_tenant`` is the server's live count of unflushed
    requests per tenant (the admitted request is *not* counted yet —
    the server increments after a ``None`` verdict).
    """
    if request.model not in KNOWN_MODELS:
        return REASON_UNKNOWN_MODEL
    if isinstance(request.framework, str) and (
        request.framework not in frameworks
    ):
        return REASON_UNKNOWN_FRAMEWORK
    g = request.graph
    if policy.max_nodes is not None and g.num_nodes > policy.max_nodes:
        return REASON_GRAPH_TOO_LARGE
    if policy.max_edges is not None and g.num_edges > policy.max_edges:
        return REASON_GRAPH_TOO_LARGE
    if policy.max_queue_per_tenant is not None:
        if (queued_per_tenant.get(request.tenant, 0)
                >= policy.max_queue_per_tenant):
            return REASON_TENANT_QUOTA
    return None
