"""Traffic replay: deterministic multi-tenant request traces.

The request family is the ``online_offline`` one: tenants train with
sampled minibatches, so their requests are k-hop sampled subgraphs of
the shipped datasets (§5.2 — "the graph dynamically changes at every
iteration when graph sampling is applied").  Each dataset contributes a
small pool of distinct sampled shapes; tenants re-draw from the pool,
which is exactly the regime where compatibility batching pays — the
same sampled shape requested by three tenants costs one compilation
and one simulated execution.

Everything is seeded: the same :class:`TraceSpec` yields the same
request sequence in any process, so the replay benchmark's result hash
is stable and its records comparable across runs.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..graph import khop_sampled_subgraph, load_dataset
from ..graph.csr import CSRGraph
from .request import InferenceRequest
from .server import PlanServer

__all__ = ["TraceSpec", "synthetic_trace", "replay"]


@dataclasses.dataclass(frozen=True)
class TraceSpec:
    """A reproducible multi-tenant traffic mix.

    ``pool_per_dataset`` sampled subgraphs are drawn per dataset; each
    request picks one (tenants share the pool, so distinct plans stay
    bounded while request counts scale).  ``tenants`` maps tenant name
    to the framework that tenant runs — the multi-tenant axis is both
    "who asks" and "which execution strategy serves them".
    """

    num_requests: int = 1000
    datasets: Tuple[str, ...] = ("arxiv", "ddi")
    models: Tuple[str, ...] = ("gcn", "gat")
    tenants: Tuple[Tuple[str, str], ...] = (
        ("tenant-a", "dgl"),
        ("tenant-b", "ours"),
        ("tenant-c", "pyg"),
    )
    pool_per_dataset: int = 4
    sample_seeds: int = 256          # seed minibatch size per sample
    fanouts: Tuple[int, ...] = (10, 10)
    seed: int = 0

    def describe(self) -> str:
        return (
            f"{self.num_requests} requests, "
            f"{len(self.tenants)} tenants "
            f"({', '.join(f'{t}:{f}' for t, f in self.tenants)}), "
            f"models {'/'.join(self.models)}, "
            f"{len(self.datasets)} dataset(s) x "
            f"{self.pool_per_dataset} sampled shapes"
        )


def subgraph_pool(spec: TraceSpec) -> List[CSRGraph]:
    """The distinct sampled request shapes of a trace (deterministic)."""
    rng = np.random.default_rng(spec.seed)
    pool: List[CSRGraph] = []
    for name in spec.datasets:
        parent = load_dataset(name)
        for i in range(spec.pool_per_dataset):
            seeds = rng.choice(
                parent.num_nodes,
                size=min(spec.sample_seeds, parent.num_nodes),
                replace=False,
            )
            sub = khop_sampled_subgraph(
                parent, seeds, spec.fanouts, seed=spec.seed * 1000 + i
            ).graph
            pool.append(sub)
    return pool


def synthetic_trace(spec: TraceSpec) -> List[InferenceRequest]:
    """Materialize the request sequence of a :class:`TraceSpec`."""
    pool = subgraph_pool(spec)
    rng = np.random.default_rng(spec.seed + 1)
    tenants = list(spec.tenants)
    requests: List[InferenceRequest] = []
    for i in range(spec.num_requests):
        tenant, framework = tenants[int(rng.integers(len(tenants)))]
        graph = pool[int(rng.integers(len(pool)))]
        model = spec.models[int(rng.integers(len(spec.models)))]
        requests.append(InferenceRequest(
            model=model,
            graph=graph,
            framework=framework,
            tenant=tenant,
            request_id=f"trace-{spec.seed}-{i:06d}",
        ))
    return requests


def replay(
    server: PlanServer,
    requests: Sequence[InferenceRequest],
    window: int = 64,
) -> List[Dict[str, object]]:
    """Push a trace through the server in batching windows.

    Requests arrive ``window`` at a time (the server's batching
    opportunity); each window is flushed before the next arrives —
    the synchronous stand-in for a time-based batch window.  Returns
    one summary dict per response, in trace order: enough for result
    hashing and assertions without holding every ForwardResult alive.
    """
    summaries: List[Dict[str, object]] = []
    for start in range(0, len(requests), max(1, window)):
        chunk = requests[start:start + max(1, window)]
        for resp in server.serve(chunk):
            entry: Dict[str, object] = {
                "request_id": resp.request.request_id,
                "tenant": resp.request.tenant,
                "status": resp.status,
            }
            if resp.ok:
                entry.update(
                    time_ms=resp.result.time_ms,
                    num_kernels=resp.result.report.num_kernels,
                    plan_id=resp.plan_id,
                    cache_hit=resp.cache_hit,
                    batch_size=resp.batch_size,
                    latency_seconds=resp.latency_seconds,
                )
            else:
                entry["reason"] = resp.reason
            summaries.append(entry)
    return summaries
