"""Compatibility batching: group requests onto shared plan executions.

Two requests are *compatible* exactly when they resolve to the same
plan content address (:meth:`Framework.plan_signature`): same execution
strategy and options, same model config, same graph fingerprint, same
GPU config and dispatch overhead.  That is precisely the condition
under which the simulator's outcome is shared — so a batch runs one
compilation and one simulated execution, and every member gets
bit-identical kernel statistics.

Sampled-subgraph traffic (the ``online_offline`` request family) is
where this pays: minibatch tenants re-request the same sampled shapes,
and each distinct shape costs one plan no matter how many tenants ask.

Requests on frameworks whose plans are not globally cacheable
(``plan_cache_enabled() is False``, e.g. injected scheduling callables
the content address cannot see) are never batched together: each gets a
singleton batch keyed uniquely, preserving their bypass of the plan
cache.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Callable, Dict, List, Sequence

from ..frameworks.base import Framework
from ..gpusim.config import GPUConfig
from ..graph.csr import CSRGraph
from .request import InferenceRequest

__all__ = ["Batch", "plan_batches"]

_UNCACHEABLE_IDS = itertools.count(1)


@dataclasses.dataclass
class Batch:
    """One shared plan execution and the requests riding it."""

    key: str                       # grouping key (unique per batch for
    #                                uncacheable frameworks)
    framework: Framework
    model_name: str
    model: object                  # resolved model config dataclass
    graph: CSRGraph
    requests: List[InferenceRequest]
    cacheable: bool = True
    signature_key: str = ""        # the true plan content address

    @property
    def signature(self):
        """The precomputed ``plan_signature`` result for ``compile``."""
        return self.signature_key, self.model, self.cacheable

    @property
    def size(self) -> int:
        return len(self.requests)

    @property
    def leader(self) -> InferenceRequest:
        return self.requests[0]


def plan_batches(
    requests: Sequence[InferenceRequest],
    resolve_framework: Callable[[InferenceRequest], Framework],
    sim: GPUConfig,
) -> List[Batch]:
    """Group admitted requests by plan signature, submission order kept.

    Batches come back ordered by their first member's submission
    position, and requests inside a batch keep their relative order —
    the fan-out stage assigns leader/follower roles from that.
    """
    batches: Dict[str, Batch] = {}
    order: List[str] = []
    for req in requests:
        fw = resolve_framework(req)
        signature_key, model, cacheable = fw.plan_signature(
            req.model, req.graph, sim, model=req.model_config
        )
        key = signature_key
        if not cacheable:
            # A plan the content address cannot describe must not be
            # shared — singleton batch under a unique key.
            key = f"uncacheable-{next(_UNCACHEABLE_IDS):06d}"
        batch = batches.get(key)
        if batch is None:
            batch = Batch(
                key=key, framework=fw, model_name=req.model,
                model=model, graph=req.graph, requests=[],
                cacheable=cacheable, signature_key=signature_key,
            )
            batches[key] = batch
            order.append(key)
        batch.requests.append(req)
    return [batches[k] for k in order]
