"""`PlanServer`: the in-process batched, multi-tenant serving front-end.

The server owns the pipeline's stateful stages: it queues admitted
requests, resolves each compatibility batch to a plan through the
content-addressed cache (:data:`~repro.core.plan.PLAN_CACHE` by
default, with whatever admission/eviction policy it is configured
with), pushes the round's cold plans through the PR-6 worker pool in
one pass, executes every batch exactly once, and fans bit-identical
results back to each member request while per-tenant latency
histograms accumulate.

:func:`execute_one` is the single-request degenerate case of the same
stages — it is what ``Framework.run_*`` calls, so there is one
implementation of plan resolution and cache-hit attribution in the
codebase.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from ..frameworks.base import ForwardResult, Framework
from ..gpusim.config import GPUConfig
from ..gpusim.metrics import RunReport
from ..graph.csr import CSRGraph
from ..perf import PERF, LatencyHistogram, workers
from .admission import AdmissionPolicy, admit
from .batching import Batch, plan_batches
from .request import InferenceRequest, ServeResponse

__all__ = ["PlanServer", "execute_one", "resolve_plan"]


# ----------------------------------------------------------------------
# Plan resolution (shared by the run path and the batch path)
# ----------------------------------------------------------------------

def resolve_plan(
    framework: Framework,
    model_name: str,
    graph: CSRGraph,
    sim: GPUConfig,
    model=None,
    signature=None,
):
    """Compile-or-load with cache-hit attribution.

    Returns ``(plan, cache_hit)`` where ``cache_hit`` is True when the
    plan came out of either plan-cache tier rather than the staged
    pipeline.  ``signature`` forwards a precomputed
    :meth:`Framework.plan_signature` result (the batcher holds one per
    batch) so the content address is not derived twice.
    """
    hits_before = (
        PERF.counts.get("plan_cache_hit", 0)
        + PERF.counts.get("plan_cache_disk_hit", 0)
    )
    plan = framework.compile(
        model_name, graph, sim, model=model, signature=signature
    )
    cache_hit = (
        PERF.counts.get("plan_cache_hit", 0)
        + PERF.counts.get("plan_cache_disk_hit", 0)
    ) > hits_before
    return plan, cache_hit


def execute_one(
    framework: Framework,
    model_name: str,
    graph: CSRGraph,
    sim: GPUConfig,
    *,
    model=None,
    compute: bool = False,
    feat=None,
    seed: int = 0,
) -> ForwardResult:
    """One request through resolution + execution (the ``run_*`` path)."""
    plan, cache_hit = resolve_plan(
        framework, model_name, graph, sim, model=model
    )
    result = framework.execute(
        plan, sim, graph=graph, model=model,
        compute=compute, feat=feat, seed=seed,
    )
    result.report.extra["perf"]["plan"]["cache_hit"] = cache_hit
    return result


def _clone_result(
    leader: ForwardResult, plan, batch_size: int
) -> ForwardResult:
    """Fan-out: a member's result from the batch's single execution.

    The simulated kernel statistics are copied stat-by-stat exactly the
    way the plan-level memo restores them, so a fanned-out report is
    bit-identical (kernels, peak memory, totals) to what a sequential
    per-request ``execute()`` would have produced.  Only the host-side
    ``perf`` bookkeeping differs: it records that this request rode a
    batch instead of driving its own simulation.
    """
    src = leader.report
    report = RunReport(label=src.label, peak_mem_bytes=src.peak_mem_bytes)
    for stats in src.kernels:
        report.add(dataclasses.replace(
            stats, occupancy=dict(stats.occupancy)
        ))
    for key, value in plan.extra.items():
        report.extra.setdefault(key, value)
    perf = report.extra.setdefault("perf", {})
    opt = plan.extra.get("optimize")
    if isinstance(opt, dict):
        perf["optimize"] = dict(opt)
    perf["plan"] = {
        "plan_id": plan.plan_id,
        "compile_seconds": plan.compile_seconds,
        "stage_seconds": dict(plan.stage_seconds),
        "execute_seconds": 0.0,
        "fanned_out": True,
        "batch_size": batch_size,
    }
    return ForwardResult(report, None)


class PlanServer:
    """Batched multi-tenant inference over compiled plans.

    Parameters
    ----------
    frameworks:
        Name -> :class:`Framework` catalog requests may address by
        string (defaults to :func:`repro.frameworks.all_frameworks`).
    sim:
        The :class:`GPUConfig` every served execution simulates
        (defaults to the benchmark V100 configuration).
    policy:
        :class:`AdmissionPolicy`; the default admits everything.
    plan_cache:
        The :class:`~repro.core.plan.PlanCache` whose occupancy and
        hit statistics :meth:`stats` reports.  Defaults to the
        process-wide :data:`~repro.core.plan.PLAN_CACHE`, which is
        what compilation resolves through; bound that pool with
        ``REPRO_PLAN_CACHE_ENTRIES`` / ``REPRO_PLAN_CACHE_BYTES`` or
        :meth:`~repro.core.plan.PlanCache.set_capacity`.

    Usage::

        server = PlanServer()
        server.submit(InferenceRequest("gcn", graph, tenant="a"))
        responses = server.flush()          # admission -> ... -> report

    ``flush`` processes the whole queue as one batching window;
    :func:`repro.serve.replay` drives windows from a trace.
    """

    def __init__(
        self,
        frameworks: Optional[Mapping[str, Framework]] = None,
        sim: Optional[GPUConfig] = None,
        policy: Optional[AdmissionPolicy] = None,
        plan_cache=None,
    ) -> None:
        if frameworks is None:
            from ..frameworks import all_frameworks

            frameworks = all_frameworks()
        if sim is None:
            from ..bench import bench_config

            sim = bench_config()
        if plan_cache is None:
            from ..core.plan import PLAN_CACHE

            plan_cache = PLAN_CACHE
        self.frameworks: Dict[str, Framework] = dict(frameworks)
        self.sim = sim
        self.policy = policy or AdmissionPolicy()
        self.plan_cache = plan_cache
        self._queue: List[Tuple[InferenceRequest, float]] = []
        self._queued_per_tenant: Dict[str, int] = {}
        self._latency = LatencyHistogram("serve")
        self._tenant_latency: Dict[str, LatencyHistogram] = {}
        self._served_plans: Dict[str, Tuple[str, object, object]] = {}
        self._counts = {
            "submitted": 0, "served": 0, "rejected": 0,
            "batches": 0, "fanned_out": 0, "cache_hits": 0,
            "flushes": 0, "max_batch": 0,
        }
        self._pool_info: Dict[str, object] = {}

    # ------------------------------------------------------------------
    # Stage 1+2: admission and queueing
    # ------------------------------------------------------------------
    def submit(
        self, request: InferenceRequest
    ) -> Optional[ServeResponse]:
        """Admit one request into the current batching window.

        Returns ``None`` when the request is queued; a rejected
        :class:`ServeResponse` (with its reason code) otherwise.
        """
        self._counts["submitted"] += 1
        PERF.count("serve_requests")
        reason = admit(
            request, self.policy, self.frameworks,
            self._queued_per_tenant,
        )
        if reason is not None:
            self._counts["rejected"] += 1
            PERF.count("serve_rejected")
            return ServeResponse(
                request=request, status="rejected", reason=reason
            )
        self._queue.append((request, time.perf_counter()))
        self._queued_per_tenant[request.tenant] = (
            self._queued_per_tenant.get(request.tenant, 0) + 1
        )
        return None

    def _resolve_framework(self, request: InferenceRequest) -> Framework:
        if isinstance(request.framework, str):
            return self.frameworks[request.framework]
        return request.framework

    # ------------------------------------------------------------------
    # Stages 3-6: resolution, batching, pooled execution, fan-out
    # ------------------------------------------------------------------
    def flush(self) -> List[ServeResponse]:
        """Process the queued window; responses in submission order."""
        if not self._queue:
            return []
        queue, self._queue = self._queue, []
        self._queued_per_tenant = {}
        self._counts["flushes"] += 1
        with PERF.stage("serve_flush"):
            submit_time = {req.request_id: t for req, t in queue}
            batches = plan_batches(
                [req for req, _ in queue],
                self._resolve_framework, self.sim,
            )
            resolved = self._resolve_batches(batches)
            self._presimulate_cold(resolved)
            responses: Dict[str, ServeResponse] = {}
            for batch_id, (batch, plan, cache_hit) in enumerate(resolved):
                self._execute_batch(
                    batch, plan, cache_hit, batch_id,
                    submit_time, responses,
                )
        return [responses[req.request_id] for req, _ in queue]

    def serve(
        self, requests: Iterable[InferenceRequest]
    ) -> List[ServeResponse]:
        """Submit + flush as one window; responses in request order."""
        requests = list(requests)
        rejected: Dict[str, ServeResponse] = {}
        for req in requests:
            resp = self.submit(req)
            if resp is not None:
                rejected[req.request_id] = resp
        flushed = {r.request.request_id: r for r in self.flush()}
        flushed.update(rejected)
        return [flushed[req.request_id] for req in requests]

    # ------------------------------------------------------------------
    def _resolve_batches(self, batches: List[Batch]):
        resolved = []
        for batch in batches:
            plan, cache_hit = resolve_plan(
                batch.framework, batch.model_name, batch.graph,
                self.sim, model=batch.model, signature=batch.signature,
            )
            resolved.append((batch, plan, cache_hit))
        return resolved

    def _presimulate_cold(self, resolved) -> None:
        """Pooled execution: cold plans of this round share one pool pass.

        Only plans whose whole-plan memo entry is missing go to the
        pool; everything else replays from the memo.  Bit-identity with
        serial execution is the pool's documented contract.
        """
        n_workers = workers()
        if n_workers <= 1:
            return
        from ..gpusim.executor import plan_memo_key
        from ..gpusim.memo import PLAN_MEMO
        from ..gpusim.parallel import presimulate_plans

        cold = [
            plan for batch, plan, _ in resolved
            if batch.cacheable
            and not PLAN_MEMO.contains(plan_memo_key(plan, self.sim))
        ]
        if len(cold) > 1:
            info = presimulate_plans(cold, n_workers, config=self.sim)
            if info:
                self._pool_info = info

    def _execute_batch(
        self, batch: Batch, plan, cache_hit: bool, batch_id: int,
        submit_time: Dict[str, float],
        responses: Dict[str, ServeResponse],
    ) -> None:
        fw = batch.framework
        self._counts["batches"] += 1
        self._counts["max_batch"] = max(
            self._counts["max_batch"], batch.size
        )
        if cache_hit:
            self._counts["cache_hits"] += 1
        PERF.count("serve_batches")
        leader = batch.leader
        leader_result = fw.execute(
            plan, self.sim, graph=batch.graph, model=batch.model,
            compute=leader.compute, feat=leader.feat, seed=leader.seed,
        )
        leader_result.report.extra["perf"]["plan"]["cache_hit"] = cache_hit
        leader_result.report.extra["perf"]["plan"]["batch_size"] = (
            batch.size
        )
        self._served_plans[plan.plan_id] = (fw.name, plan, batch.graph)
        now = time.perf_counter()
        for position, req in enumerate(batch.requests):
            if position == 0:
                result = leader_result
            else:
                PERF.count("serve_fanout")
                self._counts["fanned_out"] += 1
                result = _clone_result(leader_result, plan, batch.size)
                if req.compute:
                    result.output = fw.reference_output(
                        batch.model_name, batch.graph, batch.model,
                        feat=req.feat, seed=req.seed,
                    )
            latency = now - submit_time[req.request_id]
            self._latency.record(latency)
            self._tenant_latency.setdefault(
                req.tenant, LatencyHistogram(req.tenant)
            ).record(latency)
            self._counts["served"] += 1
            responses[req.request_id] = ServeResponse(
                request=req,
                status="ok",
                result=result,
                plan_id=plan.plan_id,
                cache_hit=cache_hit,
                batch_id=batch_id,
                batch_size=batch.size,
                batch_leader=position == 0,
                latency_seconds=latency,
            )

    # ------------------------------------------------------------------
    # Warm pool + reporting
    # ------------------------------------------------------------------
    def warm(
        self, specs: Iterable[Tuple[object, str, CSRGraph]]
    ) -> List[Tuple[str, bool]]:
        """Pre-resolve hot plans into the cache (the warm-start pool).

        ``specs`` is an iterable of ``(framework-or-name, model_name,
        graph)``.  With a disk tier configured
        (``REPRO_PLAN_CACHE_DIR``), a fresh serving process warms
        entirely from disk artifacts — no staged pipeline runs.
        Returns ``(plan_id, cache_hit)`` per spec.
        """
        out = []
        for fw, model_name, graph in specs:
            if isinstance(fw, str):
                fw = self.frameworks[fw]
            plan, hit = resolve_plan(fw, model_name, graph, self.sim)
            self._served_plans.setdefault(
                plan.plan_id, (fw.name, plan, graph)
            )
            out.append((plan.plan_id, hit))
        return out

    @property
    def served_plans(self) -> Dict[str, Tuple[str, object, object]]:
        """plan_id -> (framework name, plan, graph) for everything served.

        The graph rides along so sampled-subgraph plans (whose
        ``graph_name`` is no shipped dataset) can still be linted —
        :func:`repro.analysis.lint_plan` needs the structure the plan
        was compiled for.
        """
        return dict(self._served_plans)

    def tenant_latency(self, tenant: str) -> LatencyHistogram:
        return self._tenant_latency.setdefault(
            tenant, LatencyHistogram(tenant)
        )

    def stats(self) -> Dict[str, object]:
        """The per-tenant serving report (PERF-backed cache counters)."""
        batches = self._counts["batches"]
        served = self._counts["served"]
        return {
            **self._counts,
            "batch_dedup_rate": (
                self._counts["fanned_out"] / served if served else 0.0
            ),
            "plan_cache_hit_rate": (
                self._counts["cache_hits"] / batches if batches else 0.0
            ),
            "plan_cache": (
                self.plan_cache.stats()
                if hasattr(self.plan_cache, "stats") else {}
            ),
            "latency": self._latency.summary(),
            "tenants": {
                t: h.summary()
                for t, h in sorted(self._tenant_latency.items())
            },
            "pool": dict(self._pool_info),
        }
