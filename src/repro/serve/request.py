"""Request and response records of the serving pipeline.

An :class:`InferenceRequest` is everything one tenant asks of the
system: run ``model`` on ``graph`` under an execution strategy
(``framework``), optionally computing the real output on the tenant's
features.  A :class:`ServeResponse` is the per-tenant report the
pipeline fans back: the simulated :class:`ForwardResult`, which plan
served it, whether the plan was a cache hit, and the request's position
inside its compatibility batch.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Optional, Union

import numpy as np

from ..frameworks.base import ForwardResult, Framework
from ..graph.csr import CSRGraph

__all__ = ["InferenceRequest", "ServeResponse"]

#: Process-wide monotonically increasing request ids ("req-000001", ...).
_REQUEST_IDS = itertools.count(1)


@dataclasses.dataclass
class InferenceRequest:
    """One tenant's inference call, as admitted by the server.

    ``framework`` is either a registered name (resolved against the
    server's catalog) or a live :class:`Framework` instance — the latter
    for callers carrying configured strategies (e.g. an
    ``OursRuntime`` with non-default options).  ``model_config`` is the
    model's config dataclass (``GCNConfig`` etc.); ``None`` means the
    model's defaults, exactly as in ``Framework.run_model``.
    """

    model: str
    graph: CSRGraph
    framework: Union[str, Framework] = "ours"
    tenant: str = "default"
    model_config: Optional[object] = None
    compute: bool = False
    feat: Optional[np.ndarray] = None
    seed: int = 0
    request_id: str = dataclasses.field(
        default_factory=lambda: f"req-{next(_REQUEST_IDS):06d}"
    )

    def framework_name(self) -> str:
        if isinstance(self.framework, str):
            return self.framework
        return self.framework.name


@dataclasses.dataclass
class ServeResponse:
    """Per-request outcome: a result, or an admission rejection.

    ``batch_size``/``batch_leader`` expose the compatibility batching:
    the leader request drove the batch's single simulated execution, the
    rest had identical kernel statistics fanned back.  ``latency_seconds``
    is host wall-clock from submission to response (queue wait plus the
    batch's share of the flush), the quantity the per-tenant percentile
    histograms accumulate.
    """

    request: InferenceRequest
    status: str = "ok"                       # "ok" | "rejected"
    result: Optional[ForwardResult] = None
    reason: Optional[str] = None             # admission reason code
    plan_id: Optional[str] = None
    cache_hit: bool = False
    batch_id: int = -1
    batch_size: int = 0
    batch_leader: bool = False
    latency_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def describe(self) -> str:
        if not self.ok:
            return (f"{self.request.request_id} [{self.request.tenant}] "
                    f"REJECTED ({self.reason})")
        return (
            f"{self.request.request_id} [{self.request.tenant}] "
            f"{self.request.framework_name()}:{self.request.model}:"
            f"{self.request.graph.name} plan={self.plan_id[:12]} "
            f"{'hit' if self.cache_hit else 'compile'} "
            f"batch={self.batch_id}({self.batch_size}) "
            f"{self.latency_seconds * 1e3:.2f}ms"
        )
