"""Multi-device sharded execution (graph partitioning + transfer model).

The paper's strongest baselines — ROC and NeuGraph — are fundamentally
multi-GPU systems: they shard the graph across devices, exchange
halo/ghost features at layer boundaries, and overlap per-partition
compute.  This package reproduces that execution model on top of the
existing single-device simulator:

* :mod:`repro.shard.partition` — deterministic edge-cut / vertex-cut
  graph partitioning over the CSR, producing content-addressable
  :class:`ShardPlan` artifacts with exact halo (ghost-node) and mirror
  sets;
* :mod:`repro.shard.cost` — the inter-device link model and the
  first-class transfer :class:`~repro.gpusim.kernel.KernelSpec`s
  (halo feature exchange, mirror partial-aggregate reduction) sized by
  the DESIGN §5 byte conventions;
* :mod:`repro.shard.run` — the high-level orchestrator: partition,
  compile one :class:`~repro.core.plan.CompiledPlan` per partition
  (the partitioning blob enters the plan key, so single-device plan
  ids never move), and execute on the multi-device simulator
  (:mod:`repro.gpusim.multidev`).

The generalized happens-before checker
(:func:`repro.analysis.hb.check_happens_before_multidev`) verifies the
per-device streams: a ghost feature read before its exchange completes
is a machine-checkable HB004 error.
"""

from .cost import DeviceConfig, LinkConfig, transfer_seconds
from .partition import (
    GraphPartition,
    ShardPlan,
    load_shard_plan,
    partition_graph,
    save_shard_plan,
)
from .run import run_sharded

__all__ = [
    "GraphPartition",
    "ShardPlan",
    "DeviceConfig",
    "LinkConfig",
    "partition_graph",
    "save_shard_plan",
    "load_shard_plan",
    "transfer_seconds",
    "run_sharded",
]
