"""Inter-device link model and first-class transfer kernels.

The multi-GPU GNN systems the paper benchmarks (ROC, NeuGraph) are
dominated at scale by *IO*, not compute: every layer boundary moves the
ghost (halo) feature rows between devices, and vertex-cut systems
additionally reduce mirrored partial aggregates at each center's owner.
This module prices that traffic and emits it as first-class
:class:`~repro.gpusim.kernel.KernelSpec` objects with ``tag="transfer"``
so transfers appear in kernel streams, lint passes and reports exactly
like compute kernels.

Byte sizing follows the DESIGN §5 conventions: feature rows are float32,
so one node's layer-``l`` feature row is ``4 * feat_len`` bytes.  A halo
exchange for partition ``p`` at layer ``l`` moves
``sum_q halo_from[q] * 4F`` bytes over the link; a mirror reduction
additionally pays one add per transferred float at the owner.

Link parameters live in :class:`LinkConfig`, **not** in
:class:`~repro.gpusim.config.GPUConfig`: the GPU config enters every
plan's content address via ``dataclasses.asdict``, so adding fields
there would silently move all plan ids and the pinned bench hashes.
The link never affects single-device plans, so it stays out of the key.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

import numpy as np

from ..gpusim.kernel import KernelDataflow, KernelSpec

__all__ = [
    "DeviceConfig",
    "LinkConfig",
    "transfer_seconds",
    "halo_exchange_kernel",
    "mirror_reduce_kernel",
    "ghost_buffer",
    "out_buffer",
    "partial_buffer",
]

FLOAT_BYTES = 4  # float32 feature rows (DESIGN §5)


@dataclasses.dataclass(frozen=True)
class DeviceConfig:
    """Declared per-device memory capacity for static shard checks.

    This is the budget the shard lint passes (SH001/SH004) verify the
    per-device *symbolic* footprint against — the same 1 GiB the
    simulator's :class:`~repro.gpusim.memory.DeviceMemory` enforces at
    compile time, but declared here on the link/device model so the
    verdict is reachable without compiling anything.  It deliberately
    lives beside :class:`LinkConfig` and **not** on
    :class:`~repro.gpusim.config.GPUConfig`: the GPU config enters
    every plan's content address, so a field there would silently move
    all plan ids and the pinned bench hashes.
    """

    mem_bytes: int = 1 * 1024**3

    @staticmethod
    def from_gpu(config) -> "DeviceConfig":
        """Mirror a :class:`GPUConfig`'s simulated memory budget."""
        return DeviceConfig(mem_bytes=int(config.device_mem_bytes))


@dataclasses.dataclass(frozen=True)
class LinkConfig:
    """One inter-device link (NVLink-generation defaults).

    ``bandwidth`` is the per-direction peer-to-peer bandwidth in bytes/s
    (NVLink 2.0 on the V100 DGX boxes ROC/NeuGraph report on: ~50 GB/s
    effective per link pair); ``latency`` the per-message fixed cost
    (driver + DMA setup, ~5 us — same order as a kernel launch).
    """

    bandwidth: float = 50e9
    latency: float = 5e-6

    def seconds(self, payload_bytes: float, messages: int = 1) -> float:
        """Time to move ``payload_bytes`` as ``messages`` transfers."""
        if payload_bytes <= 0 and messages <= 0:
            return 0.0
        return max(messages, 1) * self.latency + (
            payload_bytes / self.bandwidth
        )


def transfer_seconds(
    payload_bytes: float, link: LinkConfig, *, messages: int = 1,
    reduce_flops: float = 0.0, flops_per_second: float = 0.0,
) -> float:
    """Wall seconds for one transfer (+ optional on-arrival reduction)."""
    t = link.seconds(payload_bytes, messages)
    if reduce_flops > 0.0 and flops_per_second > 0.0:
        t += reduce_flops / flops_per_second
    return t


# ----------------------------------------------------------------------
# Buffer naming: the cross-device dataflow vocabulary.
#
# Per-device kernel streams prefix their compute buffers "d{p}/"; the
# shard-level buffers below connect them.  ``out_buffer`` is the layer
# output a device publishes, ``ghost_buffer`` the halo replica a device
# reads during the next layer's aggregation, ``partial_buffer`` a
# mirrored partial aggregate in flight to its owner.
# ----------------------------------------------------------------------

def out_buffer(device: int, layer: int) -> str:
    return f"d{device}/L{layer}/out"


def ghost_buffer(device: int, layer: int) -> str:
    return f"d{device}/L{layer}/ghost"


def partial_buffer(device: int, layer: int, owner: int) -> str:
    return f"d{device}/L{layer}/partial@d{owner}"


def halo_exchange_kernel(
    device: int,
    round_idx: int,
    halo_by_owner: Dict[int, int],
    feat_len: int,
    *,
    upstream_round: int | None,
) -> KernelSpec:
    """The halo feature exchange feeding ``device``'s round ``round_idx``.

    Pulls each peer's published feature rows for the ghost nodes this
    device reads during the round's aggregation; the kernel *reads*
    every peer's ``upstream_round`` output and *writes* this device's
    ghost buffer — the dataflow edge the per-device happens-before pass
    orders aggregations against.  ``upstream_round=None`` marks the
    first exchange of a plan whose ghost rows are statically resident at
    the owners (raw inputs): it still pays link time but waits on no
    peer compute.  One block per peer keeps per-peer payloads visible.
    """
    peers = sorted(q for q in halo_by_owner if q != device)
    row_bytes = FLOAT_BYTES * feat_len
    payloads = np.array(
        [halo_by_owner[q] * row_bytes for q in peers], dtype=np.float64
    )
    if payloads.size == 0:
        payloads = np.zeros(1, dtype=np.float64)
    reads = (
        tuple(out_buffer(q, upstream_round) for q in peers)
        if upstream_round is not None else ()
    )
    flow = KernelDataflow(
        reads=reads,
        writes=(ghost_buffer(device, round_idx),),
        sync_writes=(ghost_buffer(device, round_idx),),
    )
    return KernelSpec(
        name=f"d{device}.L{round_idx}.halo_exchange",
        block_flops=np.zeros(payloads.shape[0]),
        stream_bytes=payloads,
        counts_launch=True,
        tag="transfer",
        dataflow=flow,
    )


def mirror_reduce_kernel(
    device: int,
    round_idx: int,
    mirror_by_source: Dict[int, int],
    feat_len: int,
    *,
    publishes: tuple = (),
) -> KernelSpec:
    """The mirror partial-aggregate reduction at owner ``device``.

    Vertex-cut spill: peers that aggregated edges of centers owned here
    send their partial rows, and the owner adds them into its round
    output (one FLOP per float received).  Reads each peer's in-flight
    partial buffer and re-publishes ``publishes`` — normally the
    aggregation output buffers of the owner's own segment, so every
    downstream reader of the aggregation is ordered after the reduction
    completes.
    """
    peers = sorted(q for q in mirror_by_source if q != device)
    row_bytes = FLOAT_BYTES * feat_len
    payloads = np.array(
        [mirror_by_source[q] * row_bytes for q in peers], dtype=np.float64
    )
    if payloads.size == 0:
        payloads = np.zeros(1, dtype=np.float64)
    publishes = tuple(publishes)
    flow = KernelDataflow(
        reads=tuple(
            partial_buffer(q, round_idx, device) for q in peers
        ),
        writes=publishes,
        sync_writes=publishes,
        aggregate=True,
    )
    return KernelSpec(
        name=f"d{device}.L{round_idx}.mirror_reduce",
        block_flops=payloads / FLOAT_BYTES,  # one add per float
        stream_bytes=payloads,
        counts_launch=True,
        tag="transfer",
        dataflow=flow,
    )
