"""High-level sharded execution: partition, compile per part, run.

:func:`run_sharded` is the one-call entry the CLI and benchmarks use:

1. partition the graph (:func:`repro.shard.partition.partition_graph`);
2. compile one plan per partition on its *local* graph — the
   partitioning blob enters each plan's content address (see
   ``Framework.compile(shard_options=...)``), so per-partition plans
   cache independently and single-device plan ids never move;
3. stitch the plans into per-device streams with transfer kernels and
   dependency edges (:func:`repro.gpusim.multidev.build_shard_streams`);
4. optionally lint the streams with the generalized happens-before
   checker — a partition stream that reads ghost features before their
   exchange is a machine-caught HB004/HB001, not a silent wrong answer;
5. execute on the multi-device simulator (:func:`run_multidev`).

Per-partition compilation is where sharding pays off against device
memory: a graph whose monolithic plan raises
:class:`~repro.gpusim.memory.SimulatedOOM` often compiles fine split
into partitions — the ROC/NeuGraph "runnable once sharded" story.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from ..gpusim.config import GPUConfig
from ..gpusim.metrics import RunReport
from ..graph.csr import CSRGraph
from ..perf import PERF
from .cost import DeviceConfig, LinkConfig
from .partition import ShardPlan, partition_graph

__all__ = ["ShardResult", "run_sharded"]


@dataclasses.dataclass
class ShardResult:
    """Everything one sharded execution produced."""

    shard: ShardPlan
    plans: List[object]            # CompiledPlan per partition
    streams: object                # gpusim.multidev.ShardStreams
    report: RunReport
    findings: List[object]         # Findings: HB pass + SH shard passes

    @property
    def wall_seconds(self) -> float:
        return self.report.extra["perf"]["shard"]["wall_seconds"]

    @property
    def errors(self) -> List[object]:
        from ..analysis.findings import ERROR

        return [f for f in self.findings if f.severity == ERROR]


def run_sharded(
    framework,
    model_name: str,
    graph: CSRGraph,
    sim: GPUConfig,
    *,
    num_parts: int,
    method: str = "edge_cut",
    model=None,
    link: LinkConfig = LinkConfig(),
    lint: bool = True,
    shard: Optional[ShardPlan] = None,
    device: Optional[DeviceConfig] = None,
) -> ShardResult:
    """Partition ``graph``, compile per partition, run multi-device.

    ``framework`` is a :class:`~repro.frameworks.base.Framework`
    instance.  Pass a pre-computed ``shard`` (e.g. loaded from a saved
    artifact) to skip partitioning; its method/parts take precedence.
    With ``lint=True`` the streams are verified by the generalized
    happens-before checker *and* the shard-scope SH passes (transfer
    conservation, exchange liveness, per-device symbolic memory
    against ``device`` — defaulting to the simulated GPU's budget).
    """
    from ..analysis.hb import check_happens_before_multidev
    from ..analysis.shardlint import lint_shard
    from ..gpusim.multidev import build_shard_streams, run_multidev

    if shard is None:
        with PERF.stage("shard_partition"):
            shard = partition_graph(graph, num_parts, method)
    plans = []
    with PERF.stage("shard_compile"):
        for part in shard.parts:
            plans.append(framework.compile(
                model_name, part.local_graph, sim, model=model,
                shard_options=shard.options_blob(part.part_id),
            ))
    streams = build_shard_streams(shard, plans, link)
    findings: List[object] = []
    if lint:
        findings = check_happens_before_multidev(
            streams.streams, streams.deps
        )
        shard_report = lint_shard(
            shard, model_name=model_name, model=model,
            device=device or DeviceConfig.from_gpu(sim), link=link,
            plans=plans, streams=streams,
        )
        findings = findings + list(shard_report.findings)
    report = run_multidev(
        shard, plans, sim, link, streams=streams
    )
    if lint:
        by_sev: dict = {}
        for f in findings:
            by_sev[f.severity] = by_sev.get(f.severity, 0) + 1
        report.extra["perf"]["shard"]["lint"] = {
            "findings": len(findings),
            "by_severity": by_sev,
        }
    return ShardResult(
        shard=shard,
        plans=plans,
        streams=streams,
        report=report,
        findings=findings,
    )
