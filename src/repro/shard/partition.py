"""Deterministic graph partitioning over the destination-major CSR.

Two methods, matching the two families the multi-GPU GNN systems use:

* **edge-cut** (ROC-style): center (destination) nodes are split into
  ``P`` contiguous ranges balanced by *edge count*; every edge follows
  its destination, so each edge lives in exactly one partition.  The
  partition reads the features of non-owned source nodes through a
  *halo* (ghost) replica that must be exchanged from the owner before
  each layer's aggregation.
* **vertex-cut** (NeuGraph/PowerGraph-style): the positional edge array
  is split into ``P`` contiguous balanced ranges, so a hub center's
  edges may span several partitions.  Every vertex has exactly one
  *owner* (the partition holding its first incoming edge position);
  non-owner partitions that aggregate for a center hold a *mirror*
  whose partial sum is sent to the owner and reduced there.

Everything is a pure function of (graph fingerprint, method, P): the
same inputs produce byte-identical partitions on any machine, and the
:class:`ShardPlan` fingerprint content-addresses the artifact the same
way :func:`repro.core.plan.plan_key` addresses compiled plans.

The local node space of a partition is ``[owned..., halo...]``: owned
(or locally-aggregated) centers keep their relative order as local ids
``0..n_centers-1``; ghost sources follow, sorted by global id.  With
``P == 1`` both methods degenerate to the identity: the local graph is
byte-identical to the input CSR (pinned by ``tests/test_shard.py``).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from typing import Dict, Optional, Tuple

import numpy as np

from ..graph.csr import CSRGraph

__all__ = [
    "GraphPartition",
    "ShardPlan",
    "partition_graph",
    "save_shard_plan",
    "load_shard_plan",
    "METHODS",
]

METHODS = ("edge_cut", "vertex_cut")


@dataclasses.dataclass(frozen=True)
class GraphPartition:
    """One device's shard of the graph.

    ``centers`` are the global ids this partition aggregates for (for
    edge-cut these are exactly the owned nodes; for vertex-cut they
    include mirrors of centers owned elsewhere).  ``halo`` are the
    global ids of ghost *source* nodes read here but owned by another
    partition — their features must be exchanged in before every
    layer's aggregation.  ``halo_owner`` aligns with ``halo`` and names
    the owning partition of each ghost, so the transfer model can size
    per-peer traffic.  ``mirrors`` (vertex-cut only) are the centers
    whose partial aggregate this partition must ship to ``mirror_owner``
    for reduction.
    """

    part_id: int
    num_parts: int
    method: str
    centers: np.ndarray            # int64[n_centers] global center ids
    owned_centers: np.ndarray      # int64, subset of centers owned here
    halo: np.ndarray               # int64[n_halo] global ghost source ids
    halo_owner: np.ndarray         # int32[n_halo] owning partition
    local_graph: CSRGraph          # nodes = [centers..., halo-only...]
    edge_start: int                # global positional edge range covered
    edge_stop: int
    mirrors: np.ndarray            # int64[n_mirrors] (vertex-cut; else empty)
    mirror_owner: np.ndarray       # int32[n_mirrors]

    @property
    def num_local_nodes(self) -> int:
        return self.local_graph.num_nodes

    @property
    def num_edges(self) -> int:
        return self.local_graph.num_edges

    def halo_count_by_owner(self) -> Dict[int, int]:
        """Ghost-node count per owning peer (transfer sizing)."""
        if self.halo_owner.size == 0:
            return {}
        owners, counts = np.unique(self.halo_owner, return_counts=True)
        return {int(o): int(c) for o, c in zip(owners, counts)}

    def mirror_count_by_owner(self) -> Dict[int, int]:
        """Mirrored-center count per owning peer (reduction sizing)."""
        if self.mirror_owner.size == 0:
            return {}
        owners, counts = np.unique(self.mirror_owner, return_counts=True)
        return {int(o): int(c) for o, c in zip(owners, counts)}


@dataclasses.dataclass(frozen=True)
class ShardPlan:
    """The full partitioning of one graph onto ``num_parts`` devices."""

    method: str
    num_parts: int
    graph_name: str
    graph_fingerprint: str
    num_nodes: int
    num_edges: int
    owner: np.ndarray              # int32[num_nodes] owning partition
    parts: Tuple[GraphPartition, ...]

    @property
    def fingerprint(self) -> str:
        """Content address: changes iff the partitioning changes."""
        cached = self.__dict__.get("_fingerprint")
        if cached is None:
            h = hashlib.sha256()
            h.update(json.dumps({
                "method": self.method,
                "parts": self.num_parts,
                "graph": self.graph_fingerprint,
            }, sort_keys=True).encode())
            for p in self.parts:
                h.update(p.centers.tobytes())
                h.update(p.halo.tobytes())
                h.update(p.local_graph.indptr.tobytes())
                h.update(p.local_graph.indices.tobytes())
            cached = h.hexdigest()[:16]
            object.__setattr__(self, "_fingerprint", cached)
        return cached

    @property
    def total_halo(self) -> int:
        return int(sum(p.halo.size for p in self.parts))

    @property
    def total_mirrors(self) -> int:
        return int(sum(p.mirrors.size for p in self.parts))

    @property
    def replication_factor(self) -> float:
        """Average number of copies (owned + ghost + mirror) per node."""
        n = self.num_nodes
        return (n + self.total_halo + self.total_mirrors) / n if n else 1.0

    def options_blob(self, part_id: int) -> Dict[str, object]:
        """The partitioning blob a per-partition plan key carries.

        Only sharded compilations carry it — the default single-device
        path passes nothing, so default plan ids (and the pinned bench
        hashes) never move.
        """
        return {
            "method": self.method,
            "parts": self.num_parts,
            "part": part_id,
            "shard_fingerprint": self.fingerprint,
        }

    def describe(self) -> str:
        lines = [
            f"shard {self.fingerprint}: {self.graph_name} "
            f"({self.num_nodes:,} nodes / {self.num_edges:,} edges) "
            f"-> {self.num_parts} partition(s), {self.method}",
            f"  total halo {self.total_halo:,}, mirrors "
            f"{self.total_mirrors:,}, replication "
            f"{self.replication_factor:.3f}x",
        ]
        for p in self.parts:
            lines.append(
                f"  part {p.part_id}: {p.owned_centers.size:,} owned, "
                f"{p.centers.size:,} centers, {p.num_edges:,} edges, "
                f"{p.halo.size:,} halo, {p.mirrors.size:,} mirrors"
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Partitioners
# ----------------------------------------------------------------------

def _balanced_cuts(totals_prefix: np.ndarray, num_parts: int) -> np.ndarray:
    """Split positions so each range carries ~equal prefix-sum weight.

    ``totals_prefix`` is a monotone prefix array (e.g. ``indptr``); the
    returned ``cuts`` (``int64[P+1]``) index into it, with ``cuts[0]=0``
    and ``cuts[-1]=len(totals_prefix)-1``.
    """
    n = totals_prefix.shape[0] - 1
    total = int(totals_prefix[-1])
    targets = (total * np.arange(1, num_parts, dtype=np.int64)) // num_parts
    inner = np.searchsorted(totals_prefix, targets, side="left")
    cuts = np.concatenate(([0], inner, [n])).astype(np.int64)
    # Monotone repair: empty ranges are legal (a partition may own zero
    # edges on degenerate graphs) but cuts must never run backwards.
    return np.maximum.accumulate(cuts)


def _local_csr(
    indptr_local: np.ndarray,
    src_global: np.ndarray,
    center_lo: int,
    center_hi: int,
    owner: np.ndarray,
    edge_weight: Optional[np.ndarray],
    name: str,
) -> Tuple[CSRGraph, np.ndarray, np.ndarray]:
    """Relabel a partition's edges into the local node space.

    Centers are the contiguous global range ``[center_lo, center_hi)``;
    center ``v`` becomes local node ``v - center_lo``, and sources
    outside the range follow as ``n_centers + rank-in-sorted-halo``
    ghost nodes.  Returns ``(local_graph, halo, halo_owner)``.
    """
    n_centers = center_hi - center_lo
    is_center = (src_global >= center_lo) & (src_global < center_hi)
    halo = np.unique(src_global[~is_center]).astype(np.int64)
    halo_local = np.searchsorted(halo, src_global)
    src_local = np.where(
        is_center, src_global - center_lo, n_centers + halo_local
    ).astype(np.int32)
    # Halo nodes carry no in-edges here: extend indptr flat.
    full_indptr = np.concatenate([
        indptr_local,
        np.full(halo.shape[0], indptr_local[-1], dtype=np.int64),
    ])
    local = CSRGraph(full_indptr, src_local, edge_weight, name)
    return local, halo, owner[halo].astype(np.int32)


def partition_edge_cut(graph: CSRGraph, num_parts: int) -> ShardPlan:
    """Edge-cut: contiguous center ranges balanced by edge count."""
    indptr = graph.indptr
    cuts = _balanced_cuts(indptr, num_parts)
    owner = np.repeat(
        np.arange(num_parts, dtype=np.int32), np.diff(cuts)
    )
    parts = []
    for p in range(num_parts):
        lo, hi = int(cuts[p]), int(cuts[p + 1])
        e0, e1 = int(indptr[lo]), int(indptr[hi])
        indptr_local = (indptr[lo : hi + 1] - e0).astype(np.int64)
        src = graph.indices[e0:e1].astype(np.int64)
        centers = np.arange(lo, hi, dtype=np.int64)
        ew = (
            graph.edge_weight[e0:e1]
            if graph.edge_weight is not None else None
        )
        local, halo, halo_owner = _local_csr(
            indptr_local, src, lo, hi, owner, ew,
            name=f"{graph.name}:edge_cut{num_parts}.{p}",
        )
        parts.append(GraphPartition(
            part_id=p,
            num_parts=num_parts,
            method="edge_cut",
            centers=centers,
            owned_centers=centers,
            halo=halo,
            halo_owner=halo_owner,
            local_graph=local,
            edge_start=e0,
            edge_stop=e1,
            mirrors=np.zeros(0, dtype=np.int64),
            mirror_owner=np.zeros(0, dtype=np.int32),
        ))
    return ShardPlan(
        method="edge_cut",
        num_parts=num_parts,
        graph_name=graph.name,
        graph_fingerprint=graph.fingerprint,
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        owner=owner,
        parts=tuple(parts),
    )


def partition_vertex_cut(graph: CSRGraph, num_parts: int) -> ShardPlan:
    """Vertex-cut: contiguous positional edge ranges; hubs may split.

    Every vertex has exactly one owner — the partition whose edge range
    contains its first in-edge position ``indptr[v]`` (zero-degree
    vertices land where their empty position falls, so ownership stays a
    total, deterministic function of the CSR).  A partition's *centers*
    are the contiguous node range covering both its owned vertices and
    the destinations of its edge range; a hub whose edges spill across a
    cut is aggregated partially on each side and reduced at its owner
    (the spill-side replica is a *mirror*).
    """
    indptr = graph.indptr
    n, e = graph.num_nodes, graph.num_edges
    ecuts = np.concatenate((
        [0],
        (e * np.arange(1, num_parts, dtype=np.int64)) // num_parts,
        [e],
    )).astype(np.int64)
    ecuts = np.maximum.accumulate(ecuts)
    # owner[v]: the edge range containing position indptr[v] (ties at a
    # cut go to the later partition; duplicate cuts collapse to the
    # last, so empty partitions own nothing).
    owner = np.searchsorted(ecuts, indptr[:-1], side="right") - 1
    owner = np.minimum(owner, num_parts - 1).astype(np.int32)
    parts = []
    for p in range(num_parts):
        e0, e1 = int(ecuts[p]), int(ecuts[p + 1])
        # Owned node range (owner is non-decreasing in v).
        o_lo = int(np.searchsorted(owner, p, side="left"))
        o_hi = int(np.searchsorted(owner, p, side="right"))
        # Destination node range of the edge slice.
        if e1 > e0:
            d_lo = int(np.searchsorted(indptr, e0, side="right")) - 1
            d_hi = int(np.searchsorted(indptr, e1 - 1, side="right"))
        else:
            d_lo, d_hi = o_lo, o_lo
        c_lo = min(o_lo, d_lo) if o_hi > o_lo else d_lo
        c_hi = max(o_hi, d_hi) if o_hi > o_lo else d_hi
        centers = np.arange(c_lo, c_hi, dtype=np.int64)
        # Clip each center's global edge range to this partition's edge
        # slice: spilled hub edges fall away, local rows keep positional
        # (dst-grouped, src-sorted) order.
        indptr_local = (
            np.clip(indptr[c_lo : c_hi + 1], e0, e1) - e0
        ).astype(np.int64)
        src = graph.indices[e0:e1].astype(np.int64)
        ew = (
            graph.edge_weight[e0:e1]
            if graph.edge_weight is not None else None
        )
        local, halo, halo_owner = _local_csr(
            indptr_local, src, c_lo, c_hi, owner, ew,
            name=f"{graph.name}:vertex_cut{num_parts}.{p}",
        )
        center_owner = owner[centers] if centers.size else (
            np.zeros(0, dtype=np.int32)
        )
        mirror_mask = center_owner != p
        parts.append(GraphPartition(
            part_id=p,
            num_parts=num_parts,
            method="vertex_cut",
            centers=centers,
            owned_centers=centers[~mirror_mask],
            halo=halo,
            halo_owner=halo_owner,
            local_graph=local,
            edge_start=e0,
            edge_stop=e1,
            mirrors=centers[mirror_mask],
            mirror_owner=center_owner[mirror_mask].astype(np.int32),
        ))
    return ShardPlan(
        method="vertex_cut",
        num_parts=num_parts,
        graph_name=graph.name,
        graph_fingerprint=graph.fingerprint,
        num_nodes=n,
        num_edges=e,
        owner=owner,
        parts=tuple(parts),
    )


def partition_graph(
    graph: CSRGraph, num_parts: int, method: str = "edge_cut"
) -> ShardPlan:
    """Partition ``graph`` onto ``num_parts`` simulated devices."""
    if num_parts < 1:
        raise ValueError(f"num_parts must be >= 1, got {num_parts}")
    if method == "edge_cut":
        return partition_edge_cut(graph, num_parts)
    if method == "vertex_cut":
        return partition_vertex_cut(graph, num_parts)
    raise ValueError(
        f"unknown partition method {method!r}; choose from {METHODS}"
    )


# ----------------------------------------------------------------------
# Content-addressed persistence
# ----------------------------------------------------------------------

def shard_path(out_dir: str, plan: ShardPlan) -> str:
    return os.path.join(out_dir, f"shard_{plan.fingerprint}.npz")


def save_shard_plan(out_dir: str, plan: ShardPlan) -> str:
    """Persist a shard plan as one content-addressed npz artifact."""
    os.makedirs(out_dir, exist_ok=True)
    arrays: Dict[str, np.ndarray] = {"owner": plan.owner}
    meta = {
        "method": plan.method,
        "num_parts": plan.num_parts,
        "graph_name": plan.graph_name,
        "graph_fingerprint": plan.graph_fingerprint,
        "num_nodes": plan.num_nodes,
        "num_edges": plan.num_edges,
        "fingerprint": plan.fingerprint,
        "parts": [],
    }
    for p in plan.parts:
        k = f"p{p.part_id}_"
        arrays[k + "centers"] = p.centers
        arrays[k + "owned"] = p.owned_centers
        arrays[k + "halo"] = p.halo
        arrays[k + "halo_owner"] = p.halo_owner
        arrays[k + "indptr"] = p.local_graph.indptr
        arrays[k + "indices"] = p.local_graph.indices
        arrays[k + "mirrors"] = p.mirrors
        arrays[k + "mirror_owner"] = p.mirror_owner
        if p.local_graph.edge_weight is not None:
            arrays[k + "edge_weight"] = p.local_graph.edge_weight
        meta["parts"].append({
            "part_id": p.part_id,
            "edge_start": p.edge_start,
            "edge_stop": p.edge_stop,
            "local_name": p.local_graph.name,
        })
    path = shard_path(out_dir, plan)
    tmp = path + f".tmp{os.getpid()}"
    with open(tmp, "wb") as fh:
        np.savez_compressed(fh, meta=json.dumps(meta), **arrays)
    os.replace(tmp, path)
    return path


def load_shard_plan(path: str) -> Optional[ShardPlan]:
    """Load a saved shard plan; ``None`` on unreadable artifacts."""
    try:
        with np.load(path, allow_pickle=False) as z:
            meta = json.loads(str(z["meta"]))
            owner = z["owner"]
            parts = []
            for pm in meta["parts"]:
                k = f"p{pm['part_id']}_"
                ew = z[k + "edge_weight"] if k + "edge_weight" in z else None
                local = CSRGraph(
                    z[k + "indptr"], z[k + "indices"], ew,
                    pm["local_name"],
                )
                parts.append(GraphPartition(
                    part_id=pm["part_id"],
                    num_parts=meta["num_parts"],
                    method=meta["method"],
                    centers=z[k + "centers"],
                    owned_centers=z[k + "owned"],
                    halo=z[k + "halo"],
                    halo_owner=z[k + "halo_owner"],
                    local_graph=local,
                    edge_start=pm["edge_start"],
                    edge_stop=pm["edge_stop"],
                    mirrors=z[k + "mirrors"],
                    mirror_owner=z[k + "mirror_owner"],
                ))
    except (OSError, ValueError, KeyError) as exc:
        import warnings

        warnings.warn(f"cannot load shard plan {path}: {exc}",
                      stacklevel=2)
        return None
    return ShardPlan(
        method=meta["method"],
        num_parts=meta["num_parts"],
        graph_name=meta["graph_name"],
        graph_fingerprint=meta["graph_fingerprint"],
        num_nodes=meta["num_nodes"],
        num_edges=meta["num_edges"],
        owner=owner,
        parts=tuple(parts),
    )
