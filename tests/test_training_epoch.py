"""Tests for the training-epoch (forward+backward) simulation."""

import pytest

from repro.frameworks import (
    DGLLike,
    OursRuntime,
    gcn_epoch_report,
    lower_gcn_backward,
)
from repro.gpusim import V100_SCALED
from repro.graph import small_dataset
from repro.models import GCNConfig

CFG = GCNConfig(dims=(64, 32, 16))


@pytest.fixture(scope="module")
def g():
    return small_dataset()


class TestBackwardLowering:
    def test_unfused_kernel_count(self, g):
        ks = lower_gcn_backward(g, CFG, V100_SCALED, fused=False)
        # Layer 1 (last): norm_dst + rev_agg + norm_src + grad_w +
        # grad_input = 5; layer 0: relu_grad + those minus grad_input = 5.
        assert len(ks) == 10

    def test_fused_fewer_kernels(self, g):
        fused = lower_gcn_backward(g, CFG, V100_SCALED, fused=True)
        unfused = lower_gcn_backward(g, CFG, V100_SCALED, fused=False)
        assert len(fused) < len(unfused)

    def test_reverse_aggregation_present(self, g):
        ks = lower_gcn_backward(g, CFG, V100_SCALED, fused=False)
        assert any("rev_aggregate" in k.name for k in ks)

    def test_weight_grad_flops(self, g):
        ks = lower_gcn_backward(g, CFG, V100_SCALED, fused=False)
        gw = [k for k in ks if "grad_w" in k.name]
        assert len(gw) == 2
        # grad_W1 = h0^T @ g: [64, N] @ [N, 32].
        assert gw[-1].total_flops == pytest.approx(
            2 * 64 * g.num_nodes * 32
        )


class TestEpochReports:
    def test_epoch_has_both_phases(self, g):
        fwd, bwd = gcn_epoch_report(DGLLike(), g, CFG, V100_SCALED)
        assert fwd.total_time > 0 and bwd.total_time > 0
        assert any("bwd" in k.name for k in bwd.kernels)

    def test_ours_epoch_faster_than_dgl(self, g):
        dgl_f, dgl_b = gcn_epoch_report(DGLLike(), g, CFG, V100_SCALED)
        ours_f, ours_b = gcn_epoch_report(
            OursRuntime(), g, CFG, V100_SCALED
        )
        assert (
            ours_f.total_time + ours_b.total_time
            < dgl_f.total_time + dgl_b.total_time
        )

    def test_backward_heavier_than_forward_in_gemms(self, g):
        """Backward adds the weight/input gradient GEMMs."""
        fwd, bwd = gcn_epoch_report(DGLLike(), g, CFG, V100_SCALED)
        fwd_gemm = sum(
            k.flops for k in fwd.kernels if "gemm" in k.name
        )
        bwd_gemm = sum(
            k.flops for k in bwd.kernels if "grad" in k.name
        )
        assert bwd_gemm > 0.8 * fwd_gemm
