"""Tests for the CLI and the NeuGraph framework extension."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.frameworks import DGLLike, NeuGraphLike, NotSupported, all_frameworks
from repro.frameworks import make_features
from repro.gpusim import V100_SCALED
from repro.graph import small_dataset
from repro.models import GCNConfig


class TestNeuGraph:
    @pytest.fixture(scope="class")
    def g(self):
        return small_dataset()

    def test_gcn_runs(self, g):
        res = NeuGraphLike().run_gcn(
            g, GCNConfig(dims=(32, 16, 8)), V100_SCALED
        )
        assert res.time_ms > 0

    def test_semantics_match_dgl(self, g):
        cfg = GCNConfig(dims=(32, 16, 8))
        feat = make_features(g, 32, seed=0)
        a = DGLLike().run_gcn(
            g, cfg, V100_SCALED, compute=True, feat=feat
        ).output
        b = NeuGraphLike().run_gcn(
            g, cfg, V100_SCALED, compute=True, feat=feat
        ).output
        assert np.allclose(a, b, atol=1e-4)

    def test_streaming_makes_it_slower_than_dgl(self, g):
        cfg = GCNConfig()
        t_dgl = DGLLike().run_gcn(g, cfg, V100_SCALED).time_ms
        t_ng = NeuGraphLike().run_gcn(g, cfg, V100_SCALED).time_ms
        assert t_ng > t_dgl

    def test_small_resident_footprint(self, g):
        """Chunking keeps the live footprint below full materialization."""
        cfg = GCNConfig()
        ng = NeuGraphLike().run_gcn(g, cfg, V100_SCALED)
        dgl = DGLLike().run_gcn(g, cfg, V100_SCALED)
        assert ng.report.peak_mem_bytes < dgl.report.peak_mem_bytes

    def test_unsupported_models(self, g):
        from repro.models import GATConfig, SageLSTMConfig

        with pytest.raises(NotSupported):
            NeuGraphLike().run_gat(g, GATConfig(), V100_SCALED)
        with pytest.raises(NotSupported):
            NeuGraphLike().run_sage_lstm(
                g, SageLSTMConfig(), V100_SCALED
            )

    def test_all_frameworks_registry(self):
        fw = all_frameworks()
        assert "neugraph" in fw
        assert list(fw)[:4] == ["dgl", "pyg", "roc", "ours"]


class TestCLI:
    def test_parser_builds(self):
        parser = build_parser()
        args = parser.parse_args(["datasets"])
        assert args.command == "datasets"

    def test_datasets_command(self, capsys):
        assert main(["datasets", "--datasets", "ddi"]) == 0
        out = capsys.readouterr().out
        assert "ddi" in out and "density" in out

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            main(["datasets", "--datasets", "cora"])

    def test_compare_command(self, capsys):
        assert main([
            "compare", "--model", "gcn", "--datasets", "ddi",
            "--frameworks", "dgl", "ours",
        ]) == 0
        out = capsys.readouterr().out
        assert "dgl" in out and "ours" in out

    def test_fig3_command(self, capsys):
        assert main(["fig3", "--datasets", "ddi"]) == 0
        assert "miss%" in capsys.readouterr().out

    def test_tune_command(self, capsys):
        assert main(["tune", "--dataset", "ddi", "--feat", "32"]) == 0
        assert "bound" in capsys.readouterr().out

    def test_schedule_command(self, capsys):
        assert main(["schedule", "--dataset", "ddi"]) == 0
        assert "clusters" in capsys.readouterr().out
