"""Unit tests for the latency-percentile helpers (``repro.perf.latency``).

Nearest-rank percentiles have exact answers on small inputs, so every
assertion here is against a hand-computed value — no statistical slack.
"""

import pytest

from repro.perf import LatencyHistogram, percentile


class TestPercentile:
    def test_nearest_rank_small(self):
        values = [10.0, 20.0, 30.0, 40.0]
        assert percentile(values, 0) == 10.0
        assert percentile(values, 25) == 10.0
        assert percentile(values, 50) == 20.0
        assert percentile(values, 75) == 30.0
        assert percentile(values, 100) == 40.0

    def test_order_independent(self):
        assert percentile([3.0, 1.0, 2.0], 50) == 2.0
        assert percentile([2.0, 3.0, 1.0], 50) == 2.0

    def test_single_value(self):
        for p in (0, 1, 50, 99, 100):
            assert percentile([7.5], p) == 7.5

    def test_p99_needs_hundred_samples(self):
        # With 100 samples, p99 is the 99th ranked value, p100 the max.
        values = [float(i) for i in range(1, 101)]
        assert percentile(values, 99) == 99.0
        assert percentile(values, 100) == 100.0
        assert percentile(values, 50) == 50.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            percentile([1.0], -1)
        with pytest.raises(ValueError):
            percentile([1.0], 101)


class TestLatencyHistogram:
    def test_empty_summary_all_zero(self):
        h = LatencyHistogram("t")
        s = h.summary()
        assert s == {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0,
                     "p99": 0.0, "max": 0.0}

    def test_summary_values(self):
        h = LatencyHistogram("t")
        h.record_many([1.0, 2.0, 3.0, 4.0])
        s = h.summary()
        assert s["count"] == 4
        assert s["mean"] == pytest.approx(2.5)
        assert s["p50"] == 2.0
        assert s["max"] == 4.0

    def test_record_invalidates_sorted_cache(self):
        h = LatencyHistogram("t")
        h.record(5.0)
        assert h.percentile(50) == 5.0
        h.record(1.0)   # must re-sort, not reuse the cached order
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 5.0

    def test_merge(self):
        a, b = LatencyHistogram("a"), LatencyHistogram("b")
        a.record_many([1.0, 2.0])
        b.record_many([3.0, 4.0])
        a.merge(b)
        assert a.count == 4
        assert a.total == pytest.approx(10.0)
        assert a.percentile(100) == 4.0
        # The source histogram is untouched.
        assert b.count == 2

    def test_mean_and_total(self):
        h = LatencyHistogram("t")
        h.record_many([2.0, 4.0, 6.0])
        assert h.total == pytest.approx(12.0)
        assert h.mean == pytest.approx(4.0)
        assert LatencyHistogram("empty").mean == 0.0
