"""Shard-scope static analysis: the SH pass family.

The acceptance contract of the shardlint milestone:

* the symbolic per-device peak (SH001's quantity) reproduces the
  per-partition compile's ``peak_mem_bytes`` **exactly** — the static
  verdict *is* the simulator's OOM verdict, reached with zero compiles;
* the symbolic transfer bytes (SH002's quantity) equal the simulated
  halo/mirror byte counters **exactly**, across methods, device counts
  and models;
* the corrupted-stream hooks trip SH002/SH005 statically;
* ``choose_partitioning`` ranks candidates by the lexicographic
  ShardScore with feasibility dominating.
"""

import dataclasses
import json
import os

import pytest

from repro.analysis.findings import ERROR, INFO, WARNING
from repro.analysis.search import choose_partitioning
from repro.analysis.shardlint import (
    lint_shard,
    resolve_model,
    round_feat_lens,
    shard_peak_bytes,
    shard_transfer_bytes,
)
from repro.bench import bench_config
from repro.frameworks.dgl_like import DGLLike
from repro.graph import load_dataset
from repro.graph.generators import power_law_graph
from repro.gpusim.config import V100_SCALED
from repro.shard import DeviceConfig, run_sharded
from repro.shard.partition import partition_graph

GRAPH = power_law_graph(1500, avg_degree=7, seed=11, name="md1500")
#: Uncapped device: the symbolic-vs-compiled equality must hold even
#: for partitionings the default budget would refuse to compile.
UNCAPPED = dataclasses.replace(V100_SCALED, device_mem_bytes=1 << 40)
AMPLE = DeviceConfig(mem_bytes=1 << 40)


def codes(report):
    return {f.code for f in report.findings}


# ----------------------------------------------------------------------
# SH001: the symbolic peak IS the compiled peak
# ----------------------------------------------------------------------

class TestSymbolicPeakMatchesCompiled:
    @pytest.mark.parametrize("model_name", ["gcn", "gat", "sage_lstm"])
    @pytest.mark.parametrize("method", ["edge_cut", "vertex_cut"])
    @pytest.mark.parametrize("parts", [1, 2, 3])
    def test_exact_equality(self, model_name, method, parts):
        fw = DGLLike()
        shard = partition_graph(GRAPH, parts, method)
        model = resolve_model(model_name)
        peaks = {
            p: peak
            for p, peak, _ in shard_peak_bytes(shard, model_name, model)
        }
        for part in shard.parts:
            plan = fw.compile(
                model_name, part.local_graph, UNCAPPED,
                shard_options=shard.options_blob(part.part_id),
            )
            assert peaks[part.part_id] == plan.peak_mem_bytes, (
                f"{model_name}/{method}/P={parts} device "
                f"{part.part_id}: symbolic {peaks[part.part_id]} != "
                f"compiled {plan.peak_mem_bytes}"
            )


# ----------------------------------------------------------------------
# SH002: symbolic transfer bytes == simulated transfer bytes, exactly
# ----------------------------------------------------------------------

class TestTransferConservation:
    @pytest.mark.parametrize("dataset", ["arxiv", "ddi"])
    @pytest.mark.parametrize("method", ["edge_cut", "vertex_cut"])
    @pytest.mark.parametrize("parts", [1, 2, 4, 8])
    @pytest.mark.parametrize("model_name", ["gcn", "gat"])
    def test_simulated_equals_symbolic(
        self, dataset, method, parts, model_name
    ):
        g = load_dataset(dataset)
        res = run_sharded(
            DGLLike(), model_name, g, bench_config(),
            num_parts=parts, method=method, lint=False,
        )
        feats = round_feat_lens(
            model_name, resolve_model(model_name), res.plans
        )
        symbolic = shard_transfer_bytes(res.shard, feats)
        for d in res.report.extra["perf"]["shard"]["devices"]:
            p = d["device"]
            assert d["halo_bytes"] == symbolic[p]["halo"]
            assert d["mirror_bytes"] == symbolic[p]["mirror"]

    def test_single_device_predicts_zero(self):
        shard = partition_graph(GRAPH, 1, "edge_cut")
        symbolic = shard_transfer_bytes(shard, [128, 64, 32])
        assert symbolic == {0: {"halo": 0.0, "mirror": 0.0}}


# ----------------------------------------------------------------------
# shardmem verdicts: SH001 / SH003 / SH004
# ----------------------------------------------------------------------

class TestShardMemVerdicts:
    def test_clean_with_ample_budget(self):
        shard = partition_graph(GRAPH, 2, "edge_cut")
        report = lint_shard(shard, model_name="gcn", device=AMPLE)
        assert report.findings == []
        assert report.ok

    def test_sh001_fires_per_device_over_budget(self):
        shard = partition_graph(GRAPH, 2, "edge_cut")
        report = lint_shard(
            shard, model_name="gcn",
            device=DeviceConfig(mem_bytes=2_000_000),
        )
        sh001 = [f for f in report.findings if f.code == "SH001"]
        assert len(sh001) == 2
        assert all(f.severity == ERROR for f in sh001)
        assert not report.ok

    def test_sh001_verdict_flips_with_partitioning(self):
        # The static form of the "fits only once sharded wide enough"
        # regime: a budget between peak(P=4) and peak(P=2) on this
        # graph must flip the verdict between those device counts.
        device = DeviceConfig(mem_bytes=4_000_000)
        for parts, fires in [(1, True), (2, True), (4, False)]:
            shard = partition_graph(GRAPH, parts, "edge_cut")
            report = lint_shard(shard, model_name="gcn", device=device)
            assert ("SH001" in codes(report)) == fires, (
                f"P={parts}: expected SH001 fired={fires}"
            )

    def test_sh003_fires_on_tight_threshold(self):
        shard = partition_graph(GRAPH, 4, "edge_cut")
        report = lint_shard(
            shard, model_name="gcn", device=AMPLE,
            imbalance_threshold=1.0001,
        )
        sh003 = [f for f in report.findings if f.code == "SH003"]
        assert len(sh003) == 1
        assert sh003[0].severity == INFO

    def test_sh003_never_fires_single_device(self):
        shard = partition_graph(GRAPH, 1, "edge_cut")
        report = lint_shard(
            shard, model_name="gcn", device=AMPLE,
            imbalance_threshold=1.0001,
        )
        assert "SH003" not in codes(report)

    def test_sh004_fires_on_tight_blowup_threshold(self):
        shard = partition_graph(GRAPH, 4, "edge_cut")
        report = lint_shard(
            shard, model_name="gcn", device=AMPLE,
            blowup_threshold=1.0,
        )
        sh004 = [f for f in report.findings if f.code == "SH004"]
        assert len(sh004) == 1
        assert sh004[0].severity == INFO
        # The default threshold (P) does not fire on this graph.
        report = lint_shard(shard, model_name="gcn", device=AMPLE)
        assert "SH004" not in codes(report)

    def test_advisories_never_gate(self):
        shard = partition_graph(GRAPH, 4, "edge_cut")
        report = lint_shard(
            shard, model_name="gcn", device=AMPLE,
            imbalance_threshold=1.0001, blowup_threshold=1.0,
        )
        assert codes(report) <= {"SH003", "SH004"}
        assert report.gate("error") and report.gate("warning")


# ----------------------------------------------------------------------
# shardflow verdicts: SH002 / SH005
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def sharded2():
    return run_sharded(
        DGLLike(), "gcn", GRAPH, V100_SCALED, num_parts=2,
        method="edge_cut",
    )


class TestShardFlowVerdicts:
    def test_healthy_streams_are_clean(self, sharded2):
        report = lint_shard(
            sharded2.shard, model_name="gcn", device=AMPLE,
            plans=sharded2.plans, streams=sharded2.streams,
        )
        assert report.findings == []

    def test_flow_checks_skipped_without_streams(self):
        shard = partition_graph(GRAPH, 2, "edge_cut")
        report = lint_shard(shard, model_name="gcn", device=AMPLE)
        assert codes(report) & {"SH002", "SH005"} == set()

    def test_duplicated_exchange_is_sh002_and_sh005(self, sharded2):
        from repro.gpusim.multidev import (
            corrupt_stream_duplicate_exchange,
        )

        bad = corrupt_stream_duplicate_exchange(sharded2.streams, 0, 0)
        report = lint_shard(
            sharded2.shard, model_name="gcn", device=AMPLE,
            plans=sharded2.plans, streams=bad,
        )
        assert "SH002" in codes(report)
        sh005 = [f for f in report.findings if f.code == "SH005"]
        assert sh005 and all(f.severity == WARNING for f in sh005)
        assert any("duplicated exchange" in f.message for f in sh005)

    def test_dropped_exchange_is_sh002(self, sharded2):
        from repro.gpusim.multidev import corrupt_stream_drop_exchange

        bad = corrupt_stream_drop_exchange(sharded2.streams, 0, 0)
        report = lint_shard(
            sharded2.shard, model_name="gcn", device=AMPLE,
            plans=sharded2.plans, streams=bad,
        )
        sh002 = [f for f in report.findings if f.code == "SH002"]
        assert sh002 and all(f.severity == ERROR for f in sh002)

    def test_run_sharded_carries_shard_lint(self, sharded2):
        # run_sharded wires the SH passes in: a healthy run records a
        # zero-finding lint block in the perf payload.
        lint = sharded2.report.extra["perf"]["shard"]["lint"]
        assert lint["findings"] == 0
        assert sharded2.findings == []


# ----------------------------------------------------------------------
# choose_partitioning: ShardScore ranking
# ----------------------------------------------------------------------

class TestChoosePartitioning:
    def test_p1_wins_when_it_fits(self):
        choices = choose_partitioning(
            GRAPH, "gcn", device=AMPLE, parts=(1, 2, 4),
        )
        best = choices[0]
        assert best.feasible
        assert best.num_parts == 1
        assert best.score.transfer_bytes == 0.0

    def test_tight_budget_prefers_smallest_feasible_p(self):
        # 4 MB sits between this graph's P=4 and P=2 symbolic peaks:
        # P=1/P=2 are infeasible, P=4 and P=8 fit, and P=4 moves fewer
        # bytes — feasibility dominates, then transfer volume.
        device = DeviceConfig(mem_bytes=4_000_000)
        choices = choose_partitioning(
            GRAPH, "gcn", device=device, parts=(1, 2, 4, 8),
        )
        best = choices[0]
        assert best.feasible
        assert best.num_parts == 4
        infeasible = [c for c in choices if not c.feasible]
        assert {c.num_parts for c in infeasible} == {1, 2}
        # Every feasible candidate sorts ahead of every infeasible one.
        flags = [c.feasible for c in choices]
        assert flags == sorted(flags, reverse=True)

    def test_all_infeasible_is_reported_not_hidden(self):
        device = DeviceConfig(mem_bytes=1000)
        choices = choose_partitioning(
            GRAPH, "gcn", device=device, parts=(1, 2),
        )
        assert choices and not any(c.feasible for c in choices)
        assert all(
            any(f.code == "SH001" for f in c.report.findings)
            for c in choices
        )

    def test_scores_are_deterministic(self):
        a = choose_partitioning(GRAPH, "gcn", device=AMPLE,
                                parts=(1, 2))
        b = choose_partitioning(GRAPH, "gcn", device=AMPLE,
                                parts=(1, 2))
        assert [c.score for c in a] == [c.score for c in b]


# ----------------------------------------------------------------------
# The full-scale regime (slow: ~49M edges; opt-in via REPRO_TEST_FULL)
# ----------------------------------------------------------------------

@pytest.mark.skipif(
    not os.environ.get("REPRO_TEST_FULL"),
    reason="full-scale ogb graph takes minutes; set REPRO_TEST_FULL=1",
)
def test_ogb_scale_sh001_flips_at_p8():
    from repro.graph import ogb_scale_graph

    g = ogb_scale_graph()
    device = DeviceConfig()  # the 1 GiB simulated budget
    for parts, fires in [(1, True), (2, True), (4, True), (8, False)]:
        shard = partition_graph(g, parts, "edge_cut")
        report = lint_shard(shard, model_name="gcn", device=device)
        assert ("SH001" in codes(report)) == fires, (
            f"P={parts}: expected SH001 fired={fires}"
        )


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

class TestShardLintCLI:
    def test_clean_run_exits_zero(self, capsys):
        from repro.cli import main

        assert main(["shard", "lint", "--dataset", "arxiv",
                     "--model", "gcn", "--parts", "2"]) == 0
        out = capsys.readouterr().out
        assert "shardlint:arxiv:gcn:edge_cutx2" in out

    def test_device_mem_gate_exits_one(self, capsys):
        from repro.cli import main

        assert main(["shard", "lint", "--dataset", "arxiv",
                     "--parts", "2", "--device-mem", "2e6",
                     "--no-plans"]) == 1
        assert "SH001" in capsys.readouterr().out

    def test_sarif_export_carries_sh_rules(self, tmp_path, capsys):
        from repro.cli import main

        sarif = tmp_path / "shard.sarif"
        assert main(["shard", "lint", "--dataset", "arxiv",
                     "--parts", "2", "--device-mem", "2e6",
                     "--no-plans", "--sarif", str(sarif)]) == 1
        capsys.readouterr()
        log = json.loads(sarif.read_text())
        run = log["runs"][0]
        rules = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert "SH001" in rules
        assert all(r["level"] == "error" for r in run["results"])

    def test_choose_recommends(self, capsys):
        from repro.cli import main

        assert main(["shard", "choose", "--dataset", "arxiv",
                     "--model", "gcn", "--parts", "1", "2"]) == 0
        assert "recommended:" in capsys.readouterr().out

    def test_partition_runs_symbolic_lint(self, capsys):
        from repro.cli import main

        assert main(["shard", "partition", "--dataset", "arxiv",
                     "--parts", "2"]) == 0
        assert "shardlint:" in capsys.readouterr().out

    def test_lint_fail_stale_gates(self, tmp_path, capsys):
        from repro.cli import main

        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(
            [{"code": "FP001", "where": "no-such-context*"}]
        ))
        argv = ["lint", "--model", "gcn", "--dataset", "arxiv",
                "--baseline", str(baseline)]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv + ["--fail-stale"]) == 1
        assert "stale baseline" in capsys.readouterr().out
