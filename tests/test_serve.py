"""Tests for the batched, multi-tenant serving layer (``repro.serve``).

The central contract: a request served through :class:`PlanServer` —
admission, compatibility batching, pooled execution, fan-out — returns
*bit-identical* simulated results to the same request run alone through
``execute_one`` (which is what every ``run_*`` entry point calls).
Covered here across the framework x model x fusion matrix, plus the
bounded plan-cache tiers, admission reason codes, batching
compatibility, the fresh-process disk-tier warm start, and the
``repro serve replay`` CLI.
"""

import dataclasses
import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro import perf
from repro.core import reset_stage_counts, stage_counts
from repro.core.plan import PLAN_CACHE, PlanCache, plan_nbytes
from repro.frameworks import all_frameworks
from repro.frameworks.ours import OursOptions, OursRuntime
from repro.gpusim import V100_SCALED
from repro.gpusim.memo import clear_caches
from repro.graph import khop_sampled_subgraph, small_dataset
from repro.models import GCNConfig
from repro.perf import PERF
from repro.serve import (
    REASON_GRAPH_TOO_LARGE,
    REASON_TENANT_QUOTA,
    REASON_UNKNOWN_FRAMEWORK,
    REASON_UNKNOWN_MODEL,
    AdmissionPolicy,
    InferenceRequest,
    PlanServer,
    execute_one,
    plan_batches,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


@pytest.fixture(autouse=True)
def _clean_state():
    clear_caches()
    reset_stage_counts()
    perf.configure(fastpath="env", memo="env")
    yield
    clear_caches()
    reset_stage_counts()
    perf.configure(fastpath="env", memo="env")


@pytest.fixture(scope="module")
def g():
    return small_dataset()


@pytest.fixture(scope="module")
def g2():
    return small_dataset(seed=11)


def _stats_tuple(stats):
    d = dataclasses.asdict(stats)
    d["occupancy"] = sorted(d["occupancy"].items())
    return d


def assert_results_identical(a, b):
    """Bit-identity over the simulated contract: kernels, memory, output."""
    assert a.report.num_kernels == b.report.num_kernels
    assert a.report.peak_mem_bytes == b.report.peak_mem_bytes
    assert a.time_ms == b.time_ms
    for sa, sb in zip(a.report.kernels, b.report.kernels):
        assert _stats_tuple(sa) == _stats_tuple(sb)
    if a.output is None or b.output is None:
        assert a.output is None and b.output is None
    else:
        assert a.output.dtype == b.output.dtype
        assert a.output.tobytes() == b.output.tobytes()


# ----------------------------------------------------------------------
# Tentpole contract: batched == sequential, bit for bit
# ----------------------------------------------------------------------

def _serve_cases():
    cases = []
    for fw_name, fw in sorted(all_frameworks().items()):
        for model in ("gcn", "gat", "sage_lstm"):
            cases.append((fw_name, model))
    return cases


class TestBatchedBitIdentity:
    @pytest.mark.parametrize("fw_name,model", _serve_cases())
    def test_batch_equals_sequential(self, g, fw_name, model):
        """Three tenants sharing one plan: every fanned-out response is
        bit-identical to a standalone ``execute_one`` of that request."""
        from repro.frameworks.base import NotSupported

        frameworks = all_frameworks()
        try:
            sequential = execute_one(
                frameworks[fw_name], model, g, V100_SCALED
            )
        except NotSupported:
            pytest.skip(f"{fw_name} does not support {model}")
        clear_caches()
        server = PlanServer(frameworks=frameworks, sim=V100_SCALED)
        responses = server.serve([
            InferenceRequest(model, g, framework=fw_name, tenant=t)
            for t in ("a", "b", "c")
        ])
        assert [r.status for r in responses] == ["ok"] * 3
        assert {r.batch_size for r in responses} == {3}
        assert sum(r.batch_leader for r in responses) == 1
        for resp in responses:
            assert_results_identical(resp.result, sequential)

    @pytest.mark.parametrize(
        "options",
        [OursOptions(), OursOptions(adapter=True),
         OursOptions(adapter=True, linear_property=True)],
        ids=["unfused", "adapter", "linear"],
    )
    def test_fusion_variants_batch_independently(self, g, options):
        """Different fusion configs are different plans: they must never
        share a batch, and each member still matches its own sequential
        run bit for bit."""
        fws = {"tuned": OursRuntime(options), "plain": OursRuntime()}
        seq = {
            name: execute_one(fw, "gcn", g, V100_SCALED)
            for name, fw in fws.items()
        }
        clear_caches()
        server = PlanServer(frameworks=fws, sim=V100_SCALED)
        responses = server.serve([
            InferenceRequest("gcn", g, framework=name, tenant=name)
            for name in ("tuned", "plain", "tuned")
        ])
        for resp in responses:
            assert resp.ok
            assert_results_identical(
                resp.result, seq[resp.request.framework_name()]
            )

    def test_compute_outputs_fan_out(self, g):
        """``compute=True`` followers get their own functional forward
        pass — byte-equal to sequential because the math is seeded by
        the request, not by batch position."""
        frameworks = all_frameworks()
        sequential = execute_one(
            frameworks["dgl"], "gcn", g, V100_SCALED,
            compute=True, seed=3,
        )
        assert sequential.output is not None
        clear_caches()
        server = PlanServer(frameworks=frameworks, sim=V100_SCALED)
        responses = server.serve([
            InferenceRequest("gcn", g, framework="dgl", tenant=t,
                             compute=True, seed=3)
            for t in ("a", "b")
        ])
        for resp in responses:
            assert_results_identical(resp.result, sequential)

    def test_sampled_subgraph_trace_identity(self, g):
        """The serving traffic shape: distinct sampled subgraphs batch
        by shape, and the whole mixed window replays sequentially to the
        same numbers."""
        rng = np.random.default_rng(0)
        subs = [
            khop_sampled_subgraph(
                g, rng.choice(g.num_nodes, size=16, replace=False),
                (4, 4), seed=i,
            ).graph
            for i in range(2)
        ]
        frameworks = all_frameworks()
        requests = [
            InferenceRequest("gcn", subs[i % 2],
                             framework=("dgl", "pyg")[(i // 2) % 2],
                             tenant=f"t{i % 3}")
            for i in range(12)
        ]
        sequential = [
            execute_one(
                frameworks[r.framework_name()], r.model, r.graph,
                V100_SCALED,
            )
            for r in requests
        ]
        clear_caches()
        server = PlanServer(frameworks=frameworks, sim=V100_SCALED)
        responses = server.serve(requests)
        assert all(r.ok for r in responses)
        # 2 shapes x 2 frameworks -> 4 batches for 12 requests.
        assert server.stats()["batches"] == 4
        for resp, seq in zip(responses, sequential):
            assert_results_identical(resp.result, seq)

    def test_uncacheable_framework_never_batches(self, g):
        """Injected scheduling the content address cannot see: requests
        stay singleton batches and bypass the plan cache."""
        def custom_schedule(graph):
            from repro.core.scheduling import locality_aware_schedule

            return locality_aware_schedule(graph)

        fws = {"custom": OursRuntime(schedule_fn=custom_schedule)}
        assert not fws["custom"].plan_cache_enabled()
        server = PlanServer(frameworks=fws, sim=V100_SCALED)
        responses = server.serve([
            InferenceRequest("gcn", g, framework="custom", tenant="a")
            for _ in range(3)
        ])
        assert [r.batch_size for r in responses] == [1, 1, 1]
        assert server.stats()["batches"] == 3
        assert PLAN_CACHE.stats()["entries"] == 0


# ----------------------------------------------------------------------
# Batching compatibility
# ----------------------------------------------------------------------

class TestBatching:
    def test_groups_by_signature(self, g, g2):
        frameworks = all_frameworks()
        reqs = [
            InferenceRequest("gcn", g, framework="dgl"),
            InferenceRequest("gcn", g2, framework="dgl"),
            InferenceRequest("gcn", g, framework="dgl"),
            InferenceRequest("gat", g, framework="dgl"),
            InferenceRequest("gcn", g, framework="pyg"),
        ]
        batches = plan_batches(
            reqs, lambda r: frameworks[r.framework_name()], V100_SCALED
        )
        assert [b.size for b in batches] == [2, 1, 1, 1]
        # Submission order: the first batch is led by the first request.
        assert batches[0].leader is reqs[0]
        assert batches[0].requests[1] is reqs[2]
        assert batches[0].signature_key == batches[0].key

    def test_model_config_enters_compatibility(self, g):
        frameworks = all_frameworks()
        reqs = [
            InferenceRequest("gcn", g, framework="dgl",
                             model_config=GCNConfig(dims=(32, 16, 4))),
            InferenceRequest("gcn", g, framework="dgl",
                             model_config=GCNConfig(dims=(32, 8, 4))),
        ]
        batches = plan_batches(
            reqs, lambda r: frameworks[r.framework_name()], V100_SCALED
        )
        assert len(batches) == 2


# ----------------------------------------------------------------------
# Admission
# ----------------------------------------------------------------------

class TestAdmission:
    def test_unknown_model_rejected(self, g):
        server = PlanServer(sim=V100_SCALED)
        resp = server.submit(InferenceRequest("transformer", g))
        assert resp is not None and not resp.ok
        assert resp.reason == REASON_UNKNOWN_MODEL

    def test_unknown_framework_rejected(self, g):
        server = PlanServer(sim=V100_SCALED)
        resp = server.submit(
            InferenceRequest("gcn", g, framework="tensorflow")
        )
        assert resp is not None and resp.reason == REASON_UNKNOWN_FRAMEWORK

    def test_graph_size_cap(self, g):
        server = PlanServer(
            sim=V100_SCALED,
            policy=AdmissionPolicy(max_nodes=g.num_nodes - 1),
        )
        resp = server.submit(InferenceRequest("gcn", g))
        assert resp is not None and resp.reason == REASON_GRAPH_TOO_LARGE

    def test_tenant_quota(self, g):
        server = PlanServer(
            sim=V100_SCALED,
            policy=AdmissionPolicy(max_queue_per_tenant=2),
        )
        assert server.submit(InferenceRequest("gcn", g, tenant="a")) is None
        assert server.submit(InferenceRequest("gcn", g, tenant="a")) is None
        resp = server.submit(InferenceRequest("gcn", g, tenant="a"))
        assert resp is not None and resp.reason == REASON_TENANT_QUOTA
        # Another tenant is unaffected, and the quota resets per window.
        assert server.submit(InferenceRequest("gcn", g, tenant="b")) is None
        assert all(r.ok for r in server.flush())
        assert server.submit(InferenceRequest("gcn", g, tenant="a")) is None

    def test_rejected_requests_never_execute(self, g):
        server = PlanServer(
            sim=V100_SCALED, policy=AdmissionPolicy(max_nodes=1)
        )
        responses = server.serve([
            InferenceRequest("gcn", g, tenant="a"),
            InferenceRequest("gcn", g, tenant="b"),
        ])
        assert all(not r.ok for r in responses)
        assert server.stats()["batches"] == 0
        assert stage_counts() == {}


# ----------------------------------------------------------------------
# Bounded plan-cache tiers
# ----------------------------------------------------------------------

class TestPlanCacheBounds:
    def _plans(self, g, n):
        fw = OursRuntime()
        return [
            fw.compile("gcn", g, V100_SCALED,
                       model=GCNConfig(dims=(32, 8 * (i + 1), 4)))
            for i in range(n)
        ]

    def test_entry_capacity_evicts_lru(self, g):
        cache = PlanCache(max_entries=2)
        p1, p2, p3 = self._plans(g, 3)
        evictions = PERF.counts.get("plan_cache_evict", 0)
        cache.put(p1)
        cache.put(p2)
        assert cache.get(p1.plan_id) is p1   # p1 now most-recent
        cache.put(p3)                        # evicts p2, the LRU
        assert PERF.counts.get("plan_cache_evict", 0) == evictions + 1
        assert cache.contains(p1.plan_id)
        assert not cache.contains(p2.plan_id)
        assert cache.contains(p3.plan_id)
        assert cache.stats()["entries"] == 2

    def test_byte_capacity_keeps_at_least_one(self, g):
        p1, p2 = self._plans(g, 2)
        cache = PlanCache(max_bytes=1)   # smaller than any single plan
        cache.put(p1)
        cache.put(p2)
        # The newest entry always survives: a cache that evicted its own
        # admission would break the compile-return path.
        assert cache.contains(p2.plan_id)
        assert not cache.contains(p1.plan_id)
        assert cache.stats()["entries"] == 1

    def test_nbytes_accounting(self, g):
        (p1,) = self._plans(g, 1)
        cache = PlanCache()
        cache.put(p1)
        assert cache.nbytes == plan_nbytes(p1) > 0
        assert cache.stats()["nbytes"] == cache.nbytes

    def test_unbounded_default_never_evicts(self, g):
        cache = PlanCache()
        plans = self._plans(g, 3)
        evictions = PERF.counts.get("plan_cache_evict", 0)
        for p in plans:
            cache.put(p)
        assert cache.stats()["entries"] == 3
        assert PERF.counts.get("plan_cache_evict", 0) == evictions

    def test_env_capacity(self, g, monkeypatch):
        monkeypatch.setenv("REPRO_PLAN_CACHE_ENTRIES", "1")
        cache = PlanCache()
        p1, p2 = self._plans(g, 2)
        cache.put(p1)
        cache.put(p2)
        assert cache.stats()["entries"] == 1
        assert cache.contains(p2.plan_id)

    def test_served_pool_bounded(self, g, g2):
        """Bounding the process-wide cache under a live server: serving
        more distinct plans than capacity keeps the hot pool at
        capacity, and every response stays correct."""
        PLAN_CACHE.set_capacity(max_entries=1)
        try:
            server = PlanServer(sim=V100_SCALED)
            responses = server.serve([
                InferenceRequest("gcn", g, framework="dgl"),
                InferenceRequest("gcn", g2, framework="dgl"),
            ])
            assert all(r.ok for r in responses)
            assert PLAN_CACHE.stats()["entries"] == 1
            assert PERF.counts.get("plan_cache_evict", 0) >= 1
        finally:
            PLAN_CACHE.set_capacity()

    def test_plan_memo_capacity_counts_evictions(self, g):
        from repro.gpusim.memo import LRUCache

        cache = LRUCache(max_entries=1, name="test_memo")
        evictions = PERF.counts.get("test_memo_evict", 0)
        cache.put("a", 1)
        cache.put("b", 2)
        assert PERF.counts.get("test_memo_evict", 0) == evictions + 1
        assert cache.contains("b") and not cache.contains("a")


# ----------------------------------------------------------------------
# Fresh-process disk-tier warm start
# ----------------------------------------------------------------------

_WARM_WORKER = """
import json
from repro.core.pipeline import stage_counts
from repro.gpusim import V100_SCALED
from repro.graph import small_dataset
from repro.perf import PERF
from repro.serve import InferenceRequest, PlanServer

server = PlanServer(sim=V100_SCALED)
responses = server.serve([
    InferenceRequest("gcn", small_dataset(), framework=f, tenant=t)
    for f, t in [("dgl", "a"), ("ours", "b"), ("dgl", "c")]
])
assert all(r.ok for r in responses)
print(json.dumps({
    "plan_ids": sorted({r.plan_id for r in responses}),
    "stages": sum(stage_counts().values(), 0),
    "disk_hits": PERF.counts.get("plan_cache_disk_hit", 0),
    "time_ms": [r.result.time_ms for r in responses],
}))
"""


class TestDiskWarmStart:
    def _spawn(self, cache_dir):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in [os.path.join(REPO_ROOT, "src"),
                        env.get("PYTHONPATH")] if p
        )
        env["REPRO_PLAN_CACHE_DIR"] = cache_dir
        proc = subprocess.run(
            [sys.executable, "-c", _WARM_WORKER],
            env=env, capture_output=True, text=True, check=False,
        )
        assert proc.returncode == 0, proc.stderr
        return json.loads(proc.stdout.splitlines()[-1])

    def test_fresh_process_serves_from_disk_tier(self, tmp_path):
        """The hot-plan pool survives a restart: the second process
        serves the same trace from the disk tier with zero pipeline
        stages and identical simulated times."""
        cold = self._spawn(str(tmp_path))
        assert cold["stages"] > 0 and cold["disk_hits"] == 0
        warm = self._spawn(str(tmp_path))
        assert warm["stages"] == 0
        assert warm["disk_hits"] == len(warm["plan_ids"])
        assert warm["plan_ids"] == cold["plan_ids"]
        assert warm["time_ms"] == cold["time_ms"]


# ----------------------------------------------------------------------
# Server bookkeeping and CLI
# ----------------------------------------------------------------------

class TestServerStats:
    def test_counters_and_latency(self, g):
        server = PlanServer(sim=V100_SCALED)
        server.serve([
            InferenceRequest("gcn", g, framework="dgl", tenant=t)
            for t in ("a", "b", "a")
        ])
        stats = server.stats()
        assert stats["submitted"] == stats["served"] == 3
        assert stats["batches"] == 1 and stats["max_batch"] == 3
        assert stats["fanned_out"] == 2
        assert stats["latency"]["count"] == 3
        assert set(stats["tenants"]) == {"a", "b"}
        assert stats["tenants"]["a"]["count"] == 2
        assert all(
            r["p50"] > 0.0 for r in stats["tenants"].values()
        )

    def test_warm_prepopulates(self, g):
        server = PlanServer(sim=V100_SCALED)
        warmed = server.warm([("dgl", "gcn", g)])
        assert len(warmed) == 1 and warmed[0][1] is False
        [resp] = server.serve(
            [InferenceRequest("gcn", g, framework="dgl")]
        )
        assert resp.cache_hit


class TestServeCLI:
    def test_replay_smoke(self, capsys):
        from repro.cli import main

        rc = main([
            "serve", "replay", "--requests", "8", "--window", "4",
            "--pool", "1", "--datasets", "ddi", "--models", "gcn",
            "--fail-on", "warning",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "per-tenant serving latency" in out
        assert "served 8/8 request(s)" in out
