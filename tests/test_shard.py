"""Partitioner property tests: coverage, halo exactness, determinism."""

import numpy as np
import pytest

from repro.graph.generators import (
    clustered_graph,
    ogb_scale_graph,
    power_law_graph,
)
from repro.shard import (
    ShardPlan,
    load_shard_plan,
    partition_graph,
    save_shard_plan,
)

GRAPHS = [
    power_law_graph(800, avg_degree=6, seed=3, name="pl800"),
    clustered_graph(600, avg_degree=5, seed=7, name="cl600"),
    ogb_scale_graph(2000, 8.0, seed=5, name="mini"),
]
PARTS = [1, 2, 3, 4, 7]


def _global_edges(graph):
    """Multiset of (dst, src) pairs of the whole graph."""
    dst = np.repeat(
        np.arange(graph.num_nodes, dtype=np.int64),
        np.diff(graph.indptr),
    )
    return np.stack([dst, graph.indices.astype(np.int64)], axis=1)


def _part_edges(part):
    """Each partition edge mapped back to global (dst, src) ids."""
    local = part.local_graph
    n_centers = part.centers.size
    c_lo = int(part.centers[0]) if n_centers else 0
    dst_local = np.repeat(
        np.arange(local.num_nodes, dtype=np.int64),
        np.diff(local.indptr),
    )
    src_local = local.indices.astype(np.int64)
    dst = dst_local + c_lo          # rows only exist for centers
    src = np.where(
        src_local < n_centers,
        src_local + c_lo,
        part.halo[np.maximum(src_local - n_centers, 0)]
        if part.halo.size else src_local,
    )
    return np.stack([dst, src], axis=1)


def _sorted_rows(pairs):
    order = np.lexsort((pairs[:, 1], pairs[:, 0]))
    return pairs[order]


@pytest.mark.parametrize("graph", GRAPHS, ids=lambda g: g.name)
@pytest.mark.parametrize("method", ["edge_cut", "vertex_cut"])
@pytest.mark.parametrize("num_parts", PARTS)
class TestPartitionProperties:
    def test_every_edge_in_exactly_one_partition(
        self, graph, method, num_parts
    ):
        # The union of the partitions' edges, mapped back to global
        # ids, is the original edge multiset — nothing lost, nothing
        # duplicated (for vertex-cut this also proves hub-spill rows
        # clip exactly).
        plan = partition_graph(graph, num_parts, method)
        got = np.concatenate([_part_edges(p) for p in plan.parts])
        want = _global_edges(graph)
        assert got.shape == want.shape
        assert np.array_equal(_sorted_rows(got), _sorted_rows(want))

    def test_every_vertex_has_exactly_one_owner(
        self, graph, method, num_parts
    ):
        plan = partition_graph(graph, num_parts, method)
        assert plan.owner.shape == (graph.num_nodes,)
        assert plan.owner.min() >= 0
        assert plan.owner.max() < num_parts
        owned = np.concatenate(
            [p.owned_centers for p in plan.parts]
        )
        assert np.array_equal(np.sort(owned),
                              np.arange(graph.num_nodes))
        for p in plan.parts:
            assert np.all(plan.owner[p.owned_centers] == p.part_id)

    def test_halo_is_exactly_the_cross_partition_frontier(
        self, graph, method, num_parts
    ):
        # Recompute each partition's ghost set from first principles:
        # the distinct sources of its edges outside the contiguous
        # center range (for edge-cut that is exactly "owner is another
        # partition"; vertex-cut mirrors inside the range already hold
        # local feature rows, so only out-of-range sources need an
        # exchange).  Every ghost must be owned elsewhere.
        plan = partition_graph(graph, num_parts, method)
        for p in plan.parts:
            edges = _part_edges(p)
            src = edges[:, 1]
            if p.centers.size:
                c_lo, c_hi = int(p.centers[0]), int(p.centers[-1]) + 1
                outside = (src < c_lo) | (src >= c_hi)
            else:
                outside = np.ones(src.shape[0], dtype=bool)
            frontier = np.unique(src[outside])
            assert np.array_equal(p.halo, frontier)
            assert np.array_equal(
                p.halo_owner, plan.owner[p.halo].astype(np.int32)
            )
            assert not np.any(p.halo_owner == p.part_id)

    def test_mirror_partials_complete_every_degree(
        self, graph, method, num_parts
    ):
        # Summing each center's local in-degree over all partitions
        # that aggregate for it must recover the global degree — the
        # invariant the mirror reduction relies on.
        plan = partition_graph(graph, num_parts, method)
        deg = np.zeros(graph.num_nodes, dtype=np.int64)
        for p in plan.parts:
            n_centers = p.centers.size
            local_deg = np.diff(p.local_graph.indptr)[:n_centers]
            np.add.at(deg, p.centers, local_deg)
        assert np.array_equal(deg, np.diff(graph.indptr))


@pytest.mark.parametrize("method", ["edge_cut", "vertex_cut"])
class TestSingleDeviceIdentity:
    def test_one_partition_is_byte_identical(self, method):
        # The P=1 "shard" must be a no-op: local CSR arrays byte-equal
        # to the input, empty halo/mirrors.
        g = GRAPHS[0]
        plan = partition_graph(g, 1, method)
        (part,) = plan.parts
        assert part.local_graph.indptr.tobytes() == g.indptr.tobytes()
        assert (part.local_graph.indices.tobytes()
                == g.indices.tobytes())
        assert part.halo.size == 0
        assert part.mirrors.size == 0
        assert np.array_equal(part.owned_centers,
                              np.arange(g.num_nodes))


class TestDeterminismAndPersistence:
    def test_fingerprint_is_deterministic_and_content_addressed(self):
        g = GRAPHS[0]
        a = partition_graph(g, 4, "edge_cut")
        b = partition_graph(g, 4, "edge_cut")
        assert a.fingerprint == b.fingerprint
        assert (a.fingerprint
                != partition_graph(g, 2, "edge_cut").fingerprint)
        assert (a.fingerprint
                != partition_graph(g, 4, "vertex_cut").fingerprint)

    @pytest.mark.parametrize("method", ["edge_cut", "vertex_cut"])
    def test_save_load_roundtrip(self, tmp_path, method):
        g = GRAPHS[1]
        plan = partition_graph(g, 3, method)
        path = save_shard_plan(str(tmp_path), plan)
        loaded = load_shard_plan(path)
        assert isinstance(loaded, ShardPlan)
        assert loaded.fingerprint == plan.fingerprint
        assert loaded.method == plan.method
        for a, b in zip(plan.parts, loaded.parts):
            assert np.array_equal(a.centers, b.centers)
            assert np.array_equal(a.halo, b.halo)
            assert np.array_equal(a.mirrors, b.mirrors)
            assert (a.local_graph.indices.tobytes()
                    == b.local_graph.indices.tobytes())

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "shard_dead.npz"
        path.write_bytes(b"not an npz")
        with pytest.warns(UserWarning):
            assert load_shard_plan(str(path)) is None

    def test_options_blob_is_per_partition(self):
        plan = partition_graph(GRAPHS[0], 2, "edge_cut")
        b0 = plan.options_blob(0)
        b1 = plan.options_blob(1)
        assert b0["shard_fingerprint"] == plan.fingerprint
        assert b0 != b1 and b0["part"] == 0 and b1["part"] == 1

    def test_bad_arguments(self):
        with pytest.raises(ValueError):
            partition_graph(GRAPHS[0], 0)
        with pytest.raises(ValueError):
            partition_graph(GRAPHS[0], 2, "metis")
